#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "graph/algorithms.hpp"
#include "sim/distributed_gradient.hpp"
#include "sim/runtime.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"

namespace {

using maxutil::sim::Actor;
using maxutil::sim::ActorId;
using maxutil::sim::DistributedGradientSystem;
using maxutil::sim::Message;
using maxutil::sim::Outbox;
using maxutil::sim::QuietResult;
using maxutil::sim::QuietStatus;
using maxutil::sim::Runtime;
using maxutil::stream::StreamNetwork;
using maxutil::util::CheckError;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

/// Test actor: forwards a counter to a fixed peer until it reaches a limit.
class PingPong : public Actor {
 public:
  PingPong(ActorId peer, double limit, bool starts)
      : peer_(peer), limit_(limit), starts_(starts) {}

  void on_round(Outbox& out, std::span<const Message> inbox) override {
    if (starts_) {
      starts_ = false;
      out.send(peer_, 0, 0, {1.0});
      return;
    }
    for (const Message& m : inbox) {
      received_ = m.payload[0];
      if (received_ < limit_) out.send(peer_, 0, 0, {received_ + 1.0});
    }
  }

  double received() const { return received_; }

 private:
  ActorId peer_;
  double limit_;
  bool starts_;
  double received_ = 0.0;
};

TEST(Runtime, PingPongTerminatesAndCounts) {
  Runtime rt;
  const ActorId a = rt.add_actor(std::make_unique<PingPong>(1, 10.0, true));
  const ActorId b = rt.add_actor(std::make_unique<PingPong>(0, 10.0, false));
  ASSERT_EQ(a, 0u);
  ASSERT_EQ(b, 1u);
  rt.run_round();  // lets the starter emit
  rt.run_until_quiet();
  EXPECT_EQ(rt.delivered_messages(), 10u);
  EXPECT_EQ(rt.delivered_payload_doubles(), 10u);
  EXPECT_TRUE(rt.quiet());
  const auto& last = dynamic_cast<const PingPong&>(rt.actor(1));
  EXPECT_DOUBLE_EQ(last.received(), 9.0);
}

TEST(Runtime, UnitDelayIsOneRoundPerHop) {
  Runtime rt;
  rt.add_actor(std::make_unique<PingPong>(1, 4.0, true));
  rt.add_actor(std::make_unique<PingPong>(0, 4.0, false));
  rt.run_round();  // emit 1
  // messages: 1, 2, 3, 4 -> four more rounds to drain.
  const QuietResult result = rt.run_until_quiet();
  EXPECT_EQ(result.rounds, 4u);
  EXPECT_EQ(result.status, QuietStatus::kQuiet);
}

TEST(Runtime, FailedNodeDropsTraffic) {
  Runtime rt;
  rt.add_actor(std::make_unique<PingPong>(1, 100.0, true));
  rt.add_actor(std::make_unique<PingPong>(0, 100.0, false));
  rt.run_round();
  rt.run_round();
  rt.fail(1);
  rt.run_until_quiet(100);
  EXPECT_TRUE(rt.quiet());
  EXPECT_GT(rt.dropped_messages(), 0u);
  EXPECT_TRUE(rt.is_failed(1));
  EXPECT_FALSE(rt.is_failed(0));
}

TEST(Runtime, RejectsBadInput) {
  Runtime rt;
  EXPECT_THROW(rt.add_actor(nullptr), CheckError);
  EXPECT_THROW(rt.fail(3), CheckError);
  EXPECT_THROW(rt.actor(0), CheckError);
}

// --- Distributed gradient ---

TEST(DistributedGradient, MatchesCentralizedOptimizerExactly) {
  // The actor implementation and the centralized sweeps must produce the
  // same iterates when the safeguard never engages — this pins the
  // message protocol to the reference mathematics.
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);

  maxutil::core::GradientOptions copts;
  copts.eta = 0.05;
  copts.max_iterations = 40;
  maxutil::core::GradientOptimizer centralized(xg, copts);
  centralized.run();
  // Safeguard must not have engaged, otherwise the comparison is unfair.
  for (const double d : centralized.history().column("damping_rounds")) {
    ASSERT_EQ(d, 0.0);
  }

  maxutil::core::GammaOptions gopts;
  gopts.eta = 0.05;
  DistributedGradientSystem distributed(xg, gopts);
  distributed.run(40);

  const auto snapshot = distributed.routing_snapshot();
  EXPECT_LT(snapshot.max_difference(centralized.routing()), 1e-10);
  EXPECT_NEAR(distributed.utility(), centralized.utility(), 1e-10);
}

TEST(DistributedGradient, ConvergesOnPaperInstance) {
  Rng rng(2007);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);

  maxutil::core::GammaOptions gopts;
  gopts.eta = 0.04;
  DistributedGradientSystem distributed(xg, gopts);
  distributed.run(400);
  // Matches the centralized result at the same iteration count.
  maxutil::core::GradientOptions copts;
  copts.eta = 0.04;
  copts.max_iterations = 400;
  copts.record_history = false;
  maxutil::core::GradientOptimizer centralized(xg, copts);
  centralized.run();
  EXPECT_NEAR(distributed.utility(), centralized.utility(),
              1e-6 * (1.0 + centralized.utility()));
}

TEST(DistributedGradient, RoundsPerIterationScaleWithDepth) {
  // The marginal wave takes (longest path) rounds and the forecast wave the
  // same, so rounds per iteration grow linearly with commodity depth — the
  // O(L) message-latency cost of Section 6.
  Rng rng(5);
  std::vector<std::size_t> rounds_by_depth;
  for (const std::size_t stages : {3u, 6u, 9u}) {
    maxutil::gen::RandomInstanceParams p;
    p.servers = 40;
    p.commodities = 1;
    p.stages = stages;
    p.min_width = 2;
    p.max_width = 2;
    const StreamNetwork net = maxutil::gen::random_instance(p, rng);
    const ExtendedGraph xg(net);
    DistributedGradientSystem system(xg);
    system.iterate();
    rounds_by_depth.push_back(system.last_iteration_rounds());
  }
  EXPECT_GT(rounds_by_depth[1], rounds_by_depth[0]);
  EXPECT_GT(rounds_by_depth[2], rounds_by_depth[1]);
  // Depth in the extended graph doubles physical hops (bandwidth nodes), so
  // the growth must be at least 2 extra rounds per extra stage, twice per
  // iteration (two waves).
  EXPECT_GE(rounds_by_depth[2] - rounds_by_depth[0], 4u * 2u);
}

TEST(DistributedGradient, MessageCountStableAcrossIterations) {
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);
  DistributedGradientSystem system(xg);
  system.iterate();
  const std::size_t first = system.last_iteration_messages();
  system.iterate();
  EXPECT_EQ(system.last_iteration_messages(), first);
  EXPECT_GT(first, 0u);
}

TEST(Runtime, DelayModelPostponesDelivery) {
  Runtime rt;
  rt.add_actor(std::make_unique<PingPong>(1, 3.0, true));
  rt.add_actor(std::make_unique<PingPong>(0, 3.0, false));
  rt.set_delay_model([](ActorId, ActorId) { return 5; });
  rt.run_round();  // starter emits; due in 5 rounds
  // 3 messages x 5 rounds each.
  const std::size_t used = rt.run_until_quiet().rounds;
  EXPECT_EQ(used, 15u);
  EXPECT_EQ(rt.delivered_messages(), 3u);
}

TEST(DistributedGradient, DelayInsensitiveResults) {
  // Heterogeneous link delays change only the round count, never the
  // computed iterates: the wave protocols wait for all inputs.
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);

  maxutil::core::GammaOptions gopts;
  gopts.eta = 0.05;
  DistributedGradientSystem uniform(xg, gopts);
  uniform.run(15);

  DistributedGradientSystem delayed(xg, gopts);
  delayed.set_delay_model([](ActorId a, ActorId b) {
    return 1 + (a * 7 + b * 13) % 4;  // deterministic 1..4 round delays
  });
  delayed.run(15);

  EXPECT_LT(delayed.routing_snapshot().max_difference(
                uniform.routing_snapshot()),
            1e-14);
  EXPECT_GT(delayed.last_iteration_rounds(),
            uniform.last_iteration_rounds());
  EXPECT_EQ(delayed.last_iteration_messages(),
            uniform.last_iteration_messages());
}

TEST(DistributedGradient, SnapshotIsValidRouting) {
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);
  DistributedGradientSystem system(xg);
  system.run(10);
  EXPECT_TRUE(system.routing_snapshot().is_valid(xg, 1e-9));
}


TEST(DistributedGradient, CurvatureModeMatchesCentralized) {
  // The second-derivative step variant must also be bit-identical between
  // the actor protocol (K rides in the marginal messages) and the
  // centralized sweeps.
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);

  maxutil::core::GradientOptions copts;
  copts.eta = 0.5;
  copts.curvature_scaled = true;
  copts.max_iterations = 40;
  maxutil::core::GradientOptimizer centralized(xg, copts);
  centralized.run();
  for (const double d : centralized.history().column("damping_rounds")) {
    ASSERT_EQ(d, 0.0);  // safeguard must not engage for a fair comparison
  }

  maxutil::core::GammaOptions gopts;
  gopts.eta = 0.5;
  gopts.step_mode = maxutil::core::StepMode::kCurvatureScaled;
  DistributedGradientSystem distributed(xg, gopts);
  distributed.run(40);

  EXPECT_LT(distributed.routing_snapshot().max_difference(
                centralized.routing()),
            1e-10);
}

}  // namespace
