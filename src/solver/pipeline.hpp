#pragma once

#include <string>
#include <vector>

#include "solver/registry.hpp"
#include "solver/solver.hpp"

namespace maxutil::solver {

/// A warm-start chain of registered solvers, written "lp,gradient" (the
/// pipeline grammar: a comma-separated list of registry names; docs/
/// SOLVERS.md). Each stage runs on the shared Problem with the shared
/// SolveOptions; when a stage emits a routing and the next stage supports
/// warm starts, the routing is threaded through SolveOptions::warm_start —
/// e.g. `lp,gradient` seeds the gradient from the (guard-repaired) LP
/// vertex, and `gradient,distributed` initializes the actor runtime from
/// the centralized fixed point.
///
/// A single name is the degenerate one-stage pipeline, so all dispatch
/// (CLI, benches) can go through Pipeline uniformly.
class Pipeline {
 public:
  /// Parses a spec against the registry; throws util::CheckError on an
  /// empty spec, an empty stage, or an unknown solver name (the message
  /// lists the live registry names).
  static Pipeline parse(const std::string& spec,
                        const SolverRegistry& registry =
                            SolverRegistry::instance());

  const std::vector<std::string>& stages() const { return stages_; }

  /// The spec in canonical "a,b,c" form.
  std::string spec() const;

  /// True when any stage's backend has the given capability flag set
  /// (member pointer into SolverInfo, e.g. &SolverInfo::supports_observation).
  bool any_stage(bool SolverInfo::* capability) const;

  /// Runs the stages in order. The returned result is the last completed
  /// stage's, with `stages` filled with every stage's summary and
  /// `warnings` accumulated across stages; a stage with a non-usable status
  /// stops the chain (its result is returned).
  SolveResult run(const Problem& problem,
                  const SolveOptions& options = {}) const;

 private:
  Pipeline(std::vector<std::string> stages, const SolverRegistry& registry);

  std::vector<std::string> stages_;
  const SolverRegistry* registry_;
};

}  // namespace maxutil::solver
