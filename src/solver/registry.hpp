#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "solver/solver.hpp"

namespace maxutil::solver {

using SolverFn = std::function<SolveResult(const Problem&, const SolveOptions&)>;

/// One registered backend: its name (the CLI's --algo vocabulary), a
/// one-line description, capability flags the dispatch layers key off
/// (instead of per-name if/else), and the solve entry point.
struct SolverInfo {
  std::string name;
  std::string description;

  /// Iteration budget used when SolveOptions::max_iterations == 0.
  std::size_t default_iterations = 0;

  /// Honors SolveOptions::warm_start (pipelines only chain routings into
  /// backends with this set).
  bool supports_warm_start = false;

  /// Honors SolveOptions::threads (parallel execution engine).
  bool supports_threads = false;

  /// Honors SolveOptions::observe (fills SolveResult::obs).
  bool supports_observation = false;

  /// Fills SolveResult::routing (can seed a downstream pipeline stage).
  bool emits_routing = false;

  SolverFn solve;
};

/// Name-indexed registry of solver backends. The five built-in adapters
/// self-register on first access (lazy, deterministic order — static
/// libraries would silently drop static-initializer registrars, see
/// docs/SOLVERS.md); future backends call `add` from their own code.
class SolverRegistry {
 public:
  /// The process-wide registry, with the built-in backends registered.
  static SolverRegistry& instance();

  /// Registers a backend; throws util::CheckError on a duplicate or empty
  /// name, or a missing solve function.
  void add(SolverInfo info);

  /// Lookup by name; nullptr when unknown.
  const SolverInfo* find(std::string_view name) const;

  /// All backends, in registration order.
  const std::vector<SolverInfo>& solvers() const { return solvers_; }

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// "a, b, c" — for help/error messages that must list the live registry.
  std::string names_joined() const;

  /// Dispatches to the named backend and stamps SolveResult::wall_seconds.
  /// Throws util::CheckError (message includes the live name list) on an
  /// unknown name.
  SolveResult solve(const std::string& name, const Problem& problem,
                    const SolveOptions& options = {}) const;

 private:
  std::vector<SolverInfo> solvers_;
};

}  // namespace maxutil::solver
