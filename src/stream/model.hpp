#pragma once

#include <limits>
#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "stream/utility.hpp"

namespace maxutil::stream {

/// Index of a commodity (stream/query product) within a StreamNetwork.
using CommodityId = std::size_t;

/// Physical link identifier — same id space as the underlying Digraph edges.
using LinkId = maxutil::graph::EdgeId;

using maxutil::graph::NodeId;

/// The paper's Section 2 system model: a capacitated directed graph
/// G0 = (N0, E0) of processing nodes and sinks, plus J commodities.
///
/// * Each **server** u has computing power C_u; each **sink** only receives
///   data (modelled as infinite capacity, no outgoing processing).
/// * Each **link** (i, k) has communication bandwidth B_ik.
/// * Each **commodity** j has a unique source s_j (a server), a unique sink,
///   a maximum source rate lambda_j, and a concave increasing utility
///   U_j(a_j) of its admitted rate a_j.
/// * A commodity uses a subset of links (the task-to-server assignment is
///   given, per the paper); on each used link (i, k) node i spends
///   c_ik(j) units of computing power per unit of commodity-j flow and emits
///   beta_ik(j) units of output ("shrinkage factor").
///
/// Shrinkage factors are specified through per-node potentials g_n(j)
/// (beta_ik(j) = g_k(j) / g_i(j)), which makes the paper's Property 1
/// (path-independence of the beta product) hold by construction. The
/// potential of the source is normalized to 1 in validate().
class StreamNetwork {
 public:
  /// Adds a processing node with computing power `capacity` > 0.
  NodeId add_server(std::string name, double capacity);

  /// Adds a sink node (receives data only).
  NodeId add_sink(std::string name);

  /// Adds a physical link with bandwidth `bandwidth` > 0. Links out of sink
  /// nodes are rejected.
  LinkId add_link(NodeId from, NodeId to, double bandwidth);

  /// Declares commodity j with its source server, sink node, maximum source
  /// rate lambda > 0, and utility function.
  CommodityId add_commodity(std::string name, NodeId source, NodeId sink,
                            double lambda, Utility utility);

  /// Sets the potential g_n(j) > 0 used to derive shrinkage factors for
  /// commodity j at node n. Defaults to 1 everywhere (no shrinkage).
  void set_potential(CommodityId j, NodeId n, double g);

  /// Marks `link` usable by commodity j with per-unit computing cost
  /// `consumption` > 0 at the link's tail server.
  void enable_link(CommodityId j, LinkId link, double consumption);

  /// Updates the maximum source rate of commodity j (demand change at run
  /// time). Optimizers that hold an ExtendedGraph over this network observe
  /// the new rate on their next iteration — the mechanism behind the
  /// demand-tracking experiments.
  void set_lambda(CommodityId j, double lambda);

  // --- Structure ---
  const maxutil::graph::Digraph& graph() const { return graph_; }
  std::size_t node_count() const { return graph_.node_count(); }
  std::size_t link_count() const { return graph_.edge_count(); }
  std::size_t commodity_count() const { return commodities_.size(); }

  const std::string& node_name(NodeId n) const;
  bool is_sink(NodeId n) const;

  /// Computing power of a server; +inf for sinks.
  double capacity(NodeId n) const;

  /// Bandwidth of a physical link.
  double bandwidth(LinkId link) const;

  // --- Commodity accessors ---
  const std::string& commodity_name(CommodityId j) const;
  NodeId source(CommodityId j) const;
  NodeId sink(CommodityId j) const;
  double lambda(CommodityId j) const;
  const Utility& utility(CommodityId j) const;

  /// True when commodity j may route over `link`.
  bool uses_link(CommodityId j, LinkId link) const;

  /// Links enabled for commodity j, in the order they were first enabled
  /// (not sorted, never with duplicates). Lets per-commodity consumers
  /// iterate O(|usable_j|) instead of probing every link with uses_link.
  const std::vector<LinkId>& enabled_links(CommodityId j) const;

  /// Computing cost c_ik(j) of `link` for commodity j; link must be enabled.
  double consumption(CommodityId j, LinkId link) const;

  /// Shrinkage factor beta_ik(j) = g_head / g_tail; link must be enabled.
  double shrinkage(CommodityId j, LinkId link) const;

  /// Potential g_n(j) (1 where unset or unreachable, per the paper).
  double potential(CommodityId j, NodeId n) const;

  /// Edge filter selecting commodity j's usable links, for graph algorithms.
  maxutil::graph::EdgeFilter commodity_filter(CommodityId j) const;

  /// Amount of commodity-j data delivered at the sink per unit admitted at
  /// the source: the beta product along any path (= g_sink / g_source).
  double delivery_gain(CommodityId j) const;

 private:
  friend class NetworkValidator;

  struct Node {
    std::string name;
    double capacity;  // +inf for sinks
    bool sink;
  };
  struct Commodity {
    std::string name;
    NodeId source;
    NodeId sink;
    double lambda;
    Utility utility;
    // Both arrays grow lazily on write: entries past the stored tail hold
    // their defaults, so add_server/add_sink/add_link stay O(1) instead of
    // re-growing every commodity's vectors.
    std::vector<double> potential;    // per node; default (unstored) is 1
    std::vector<double> consumption;  // per link; < 0 or unstored: unusable
    std::vector<LinkId> enabled;      // links usable by this commodity
  };

  void check_commodity(CommodityId j) const;
  void check_node(NodeId n) const;
  void check_link(LinkId link) const;

  maxutil::graph::Digraph graph_;
  std::vector<Node> nodes_;
  std::vector<double> bandwidth_;
  std::vector<Commodity> commodities_;
};

}  // namespace maxutil::stream
