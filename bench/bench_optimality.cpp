// E6 — optimality across random instances (Section 5's convergence claim /
// Theorem 2): the distributed gradient algorithm converges to the optimal
// solution. For 30 random instances of varying size, report the final
// utility gap against the simplex reference and the Theorem-2 residuals.
// Both solvers dispatch through solver::SolverRegistry on a shared
// solver::Problem, so the LP and the gradient differentiate the same
// extended-graph cost model.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "gen/random_instance.hpp"
#include "solver/registry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E6: convergence-to-optimum across 30 random instances"
              " ===\n");
  std::printf("sizes in {12, 24, 40} servers x {2, 3} commodities, eps=0.05,"
              " eta=0.05, 12000 iterations\n\n");

  util::Table table({"servers", "commodities", "seed", "LP optimum",
                     "gradient", "% of LP", "Thm2 violation"});
  util::RunningStats ratio_stats;
  util::RunningStats violation_stats;
  bool all_bounded = true;

  int id = 0;
  for (const std::size_t servers : {12u, 24u, 40u}) {
    for (const std::size_t commodities : {2u, 3u}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed, ++id) {
        util::Rng rng(seed * 7717 + servers);
        gen::RandomInstanceParams p;
        p.servers = servers;
        p.commodities = commodities;
        p.stages = 3;
        const auto net = gen::random_instance(p, rng);
        xform::PenaltyConfig penalty;
        penalty.epsilon = 0.05;
        const solver::Problem problem(net, penalty);
        const auto& registry = solver::SolverRegistry::instance();
        const auto reference = registry.solve("lp", problem, {});
        if (reference.status != solver::Status::kConverged) continue;

        solver::SolveOptions options;
        options.eta = 0.05;
        options.max_iterations = 12000;
        const auto result = registry.solve("gradient", problem, options);

        const double pct = 100.0 * result.utility / reference.utility;
        ratio_stats.add(pct);
        violation_stats.add(result.optimality->sufficient_violation);
        all_bounded = all_bounded &&
                      result.utility <= reference.utility + 1e-6;
        table.add_row({util::Table::cell(static_cast<long long>(servers)),
                       util::Table::cell(static_cast<long long>(commodities)),
                       util::Table::cell(static_cast<long long>(seed)),
                       util::Table::cell(reference.utility),
                       util::Table::cell(result.utility),
                       util::Table::cell(pct, 2),
                       util::Table::cell(result.optimality->sufficient_violation,
                                         5)});
      }
    }
  }
  table.print(std::cout);

  std::printf("\nsummary: mean %.2f%% of LP (min %.2f%%, max %.2f%%);"
              " mean Thm2 violation %.5f\n\n",
              ratio_stats.mean(), ratio_stats.min(), ratio_stats.max(),
              violation_stats.mean());

  std::printf("shape checks:\n");
  bool ok = true;
  ok &= bench::shape_check("every instance converges to >= 92% of its LP optimum",
                           ratio_stats.min() >= 92.0);
  ok &= bench::shape_check("mean convergence >= 95% of LP", ratio_stats.mean() >= 95.0);
  ok &= bench::shape_check("gradient never exceeds the LP optimum", all_bounded);
  // Residuals vanish as the step-size tail plays out; at the 12k-iteration
  // budget a few instances retain ~1e-2 (they are at ~98-99% of LP already).
  ok &= bench::shape_check("Theorem-2 sufficient violations are small (< 0.02)",
                           violation_stats.max() < 0.02);
  return ok ? 0 : 1;
}
