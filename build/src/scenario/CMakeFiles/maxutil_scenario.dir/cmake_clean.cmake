file(REMOVE_RECURSE
  "CMakeFiles/maxutil_scenario.dir/scenario.cpp.o"
  "CMakeFiles/maxutil_scenario.dir/scenario.cpp.o.d"
  "libmaxutil_scenario.a"
  "libmaxutil_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
