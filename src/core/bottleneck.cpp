#include "core/bottleneck.hpp"

#include <algorithm>

namespace maxutil::core {

std::vector<BottleneckEntry> bottleneck_report(const xform::ExtendedGraph& xg,
                                               const FlowState& flows,
                                               std::size_t top_k) {
  std::vector<BottleneckEntry> entries;
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    if (!xg.has_finite_capacity(v)) continue;
    BottleneckEntry entry;
    entry.node = v;
    entry.utilization = flows.f_node[v] / xg.capacity(v);
    entry.price = xg.node_penalty_derivative(v, flows.f_node[v]);
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const BottleneckEntry& a, const BottleneckEntry& b) {
              return a.price > b.price;
            });
  if (top_k > 0 && entries.size() > top_k) entries.resize(top_k);
  return entries;
}

}  // namespace maxutil::core
