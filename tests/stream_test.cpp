#include <gtest/gtest.h>

#include <cmath>

#include "stream/model.hpp"
#include "stream/utility.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"

namespace {

using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;

TEST(Utility, LinearValueAndDerivative) {
  const Utility u = Utility::linear(2.5);
  EXPECT_DOUBLE_EQ(u.value(4.0), 10.0);
  EXPECT_DOUBLE_EQ(u.derivative(4.0), 2.5);
  EXPECT_TRUE(u.is_linear());
  EXPECT_DOUBLE_EQ(u.weight(), 2.5);
}

TEST(Utility, LogarithmicConcave) {
  const Utility u = Utility::logarithmic();
  EXPECT_DOUBLE_EQ(u.value(0.0), 0.0);
  EXPECT_NEAR(u.value(std::exp(1.0) - 1.0), 1.0, 1e-12);
  EXPECT_GT(u.derivative(1.0), u.derivative(2.0));
  EXPECT_FALSE(u.is_linear());
}

TEST(Utility, SqrtDerivativeFiniteAtZero) {
  const Utility u = Utility::square_root();
  EXPECT_DOUBLE_EQ(u.value(9.0), 3.0);
  EXPECT_TRUE(std::isfinite(u.derivative(0.0)));
  EXPECT_NEAR(u.derivative(4.0), 0.25, 1e-12);
}

TEST(Utility, AlphaFairFamilies) {
  // alpha = 0 reduces to linear-like: U(a) = (1+a) - 1 = a.
  const Utility u0 = Utility::alpha_fair(0.0);
  EXPECT_NEAR(u0.value(3.0), 3.0, 1e-12);
  // alpha = 1 is the log family.
  const Utility u1 = Utility::alpha_fair(1.0);
  EXPECT_NEAR(u1.value(1.0), std::log(2.0), 1e-12);
  // alpha = 2: U(a) = 1 - 1/(1+a).
  const Utility u2 = Utility::alpha_fair(2.0);
  EXPECT_NEAR(u2.value(1.0), 0.5, 1e-12);
  EXPECT_NEAR(u2.derivative(1.0), 0.25, 1e-12);
}

TEST(Utility, DerivativeMatchesFiniteDifference) {
  const double h = 1e-6;
  for (const Utility u : {Utility::linear(2.0), Utility::logarithmic(3.0),
                          Utility::square_root(1.5), Utility::alpha_fair(2.0),
                          Utility::alpha_fair(0.5, 2.0)}) {
    for (const double a : {0.5, 1.0, 5.0, 20.0}) {
      const double fd = (u.value(a + h) - u.value(a - h)) / (2.0 * h);
      EXPECT_NEAR(u.derivative(a), fd, 1e-5) << u.describe() << " at " << a;
    }
  }
}

TEST(Utility, RejectsBadParameters) {
  EXPECT_THROW(Utility::linear(0.0), CheckError);
  EXPECT_THROW(Utility::linear(-1.0), CheckError);
  EXPECT_THROW(Utility::alpha_fair(-0.5), CheckError);
  EXPECT_THROW(Utility::linear().value(-1.0), CheckError);
}

TEST(Utility, DescribeNamesFamily) {
  EXPECT_NE(Utility::linear().describe().find("linear"), std::string::npos);
  EXPECT_NE(Utility::alpha_fair(2.0).describe().find("alpha"),
            std::string::npos);
}

// --- StreamNetwork structure ---

StreamNetwork tiny_network(NodeId* src = nullptr, NodeId* mid = nullptr,
                           NodeId* dst = nullptr, CommodityId* j = nullptr) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 20.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 5.0);
  const auto bt = net.add_link(b, t, 6.0);
  const CommodityId c = net.add_commodity("c0", a, t, 3.0, Utility::linear());
  net.enable_link(c, ab, 2.0);
  net.enable_link(c, bt, 1.0);
  if (src) *src = a;
  if (mid) *mid = b;
  if (dst) *dst = t;
  if (j) *j = c;
  return net;
}

TEST(StreamNetwork, BasicAccessors) {
  NodeId a, b, t;
  CommodityId j;
  const StreamNetwork net = tiny_network(&a, &b, &t, &j);
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.link_count(), 2u);
  EXPECT_EQ(net.commodity_count(), 1u);
  EXPECT_EQ(net.node_name(a), "a");
  EXPECT_FALSE(net.is_sink(a));
  EXPECT_TRUE(net.is_sink(t));
  EXPECT_DOUBLE_EQ(net.capacity(a), 10.0);
  EXPECT_TRUE(std::isinf(net.capacity(t)));
  EXPECT_DOUBLE_EQ(net.bandwidth(0), 5.0);
  EXPECT_EQ(net.source(j), a);
  EXPECT_EQ(net.sink(j), t);
  EXPECT_DOUBLE_EQ(net.lambda(j), 3.0);
  EXPECT_EQ(net.commodity_name(j), "c0");
}

TEST(StreamNetwork, LinkUsageAndConsumption) {
  CommodityId j;
  const StreamNetwork net = tiny_network(nullptr, nullptr, nullptr, &j);
  EXPECT_TRUE(net.uses_link(j, 0));
  EXPECT_DOUBLE_EQ(net.consumption(j, 0), 2.0);
  EXPECT_DOUBLE_EQ(net.consumption(j, 1), 1.0);
}

TEST(StreamNetwork, ShrinkageFromPotentials) {
  NodeId a, b, t;
  CommodityId j;
  StreamNetwork net = tiny_network(&a, &b, &t, &j);
  net.set_potential(j, a, 1.0);
  net.set_potential(j, b, 0.5);   // a->b halves the stream
  net.set_potential(j, t, 1.5);   // b->t expands it threefold
  EXPECT_DOUBLE_EQ(net.shrinkage(j, 0), 0.5);
  EXPECT_DOUBLE_EQ(net.shrinkage(j, 1), 3.0);
  EXPECT_DOUBLE_EQ(net.delivery_gain(j), 1.5);
}

TEST(StreamNetwork, DefaultPotentialIsOne) {
  CommodityId j;
  const StreamNetwork net = tiny_network(nullptr, nullptr, nullptr, &j);
  EXPECT_DOUBLE_EQ(net.shrinkage(j, 0), 1.0);
  EXPECT_DOUBLE_EQ(net.delivery_gain(j), 1.0);
}

TEST(StreamNetwork, RejectsInvalidConstruction) {
  StreamNetwork net;
  EXPECT_THROW(net.add_server("bad", 0.0), CheckError);
  const NodeId a = net.add_server("a", 1.0);
  const NodeId t = net.add_sink("t");
  EXPECT_THROW(net.add_link(t, a, 1.0), CheckError);   // sinks cannot send
  EXPECT_THROW(net.add_link(a, t, 0.0), CheckError);   // zero bandwidth
  const auto l = net.add_link(a, t, 1.0);
  EXPECT_THROW(net.add_commodity("c", t, a, 1.0, Utility::linear()),
               CheckError);                            // swapped endpoints
  EXPECT_THROW(net.add_commodity("c", a, t, 0.0, Utility::linear()),
               CheckError);                            // zero lambda
  const CommodityId j = net.add_commodity("c", a, t, 1.0, Utility::linear());
  EXPECT_THROW(net.enable_link(j, l, -1.0), CheckError);
  EXPECT_THROW(net.set_potential(j, a, 0.0), CheckError);
  EXPECT_THROW(net.consumption(j, l), CheckError);     // not enabled yet
}

TEST(StreamNetwork, RejectsLinkIntoCommoditySource) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 1.0);
  const NodeId b = net.add_server("b", 1.0);
  const NodeId t = net.add_sink("t");
  const auto ba = net.add_link(b, a, 1.0);
  net.add_link(a, t, 1.0);
  const CommodityId j = net.add_commodity("c", a, t, 1.0, Utility::linear());
  EXPECT_THROW(net.enable_link(j, ba, 1.0), CheckError);
}

// --- Validation ---

TEST(Validate, AcceptsTinyNetwork) {
  const StreamNetwork net = tiny_network();
  const auto report = maxutil::stream::validate(net);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NO_THROW(maxutil::stream::validate_or_throw(net));
}

TEST(Validate, DetectsUnreachableSink) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 1.0);
  const NodeId b = net.add_server("b", 1.0);
  const NodeId t = net.add_sink("t");
  net.add_link(a, b, 1.0);
  net.add_link(b, t, 1.0);
  const CommodityId j = net.add_commodity("c", a, t, 1.0, Utility::linear());
  net.enable_link(j, 0, 1.0);  // a->b only; sink unreachable
  const auto report = maxutil::stream::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("unreachable"), std::string::npos);
}

TEST(Validate, DetectsDeadEnd) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 1.0);
  const NodeId b = net.add_server("b", 1.0);  // dead end
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 1.0);
  const auto at = net.add_link(a, t, 1.0);
  const CommodityId j = net.add_commodity("c", a, t, 1.0, Utility::linear());
  net.enable_link(j, ab, 1.0);
  net.enable_link(j, at, 1.0);
  const auto report = maxutil::stream::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("dead end"), std::string::npos);
}

TEST(Validate, DetectsCycle) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 1.0);
  const NodeId b = net.add_server("b", 1.0);
  const NodeId c = net.add_server("c", 1.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 1.0);
  const auto bc = net.add_link(b, c, 1.0);
  const auto cb = net.add_link(c, b, 1.0);
  const auto bt = net.add_link(b, t, 1.0);
  const CommodityId j = net.add_commodity("s", a, t, 1.0, Utility::linear());
  for (const auto l : {ab, bc, cb, bt}) net.enable_link(j, l, 1.0);
  const auto report = maxutil::stream::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("cycle"), std::string::npos);
}

TEST(Validate, DetectsForeignSink) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 1.0);
  const NodeId t1 = net.add_sink("t1");
  const NodeId t2 = net.add_sink("t2");
  const auto at1 = net.add_link(a, t1, 1.0);
  const auto at2 = net.add_link(a, t2, 1.0);
  const CommodityId j = net.add_commodity("c", a, t1, 1.0, Utility::linear());
  net.enable_link(j, at1, 1.0);
  net.enable_link(j, at2, 1.0);  // enters t2, not this commodity's sink
  const auto report = maxutil::stream::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("foreign sink"), std::string::npos);
}

TEST(Validate, WarnsOnDisconnectedGraph) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 1.0);
  net.add_server("island", 1.0);
  const NodeId t = net.add_sink("t");
  const auto at = net.add_link(a, t, 1.0);
  const CommodityId j = net.add_commodity("c", a, t, 1.0, Utility::linear());
  net.enable_link(j, at, 1.0);
  const auto report = maxutil::stream::validate(net);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("connected"), std::string::npos);
}

TEST(Property1, HoldsByConstructionOnDiamond) {
  // Diamond a -> {b, c} -> t with arbitrary potentials: both paths must
  // deliver the same beta product.
  StreamNetwork net;
  const NodeId a = net.add_server("a", 1.0);
  const NodeId b = net.add_server("b", 1.0);
  const NodeId c = net.add_server("c", 1.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 1.0);
  const auto ac = net.add_link(a, c, 1.0);
  const auto bt = net.add_link(b, t, 1.0);
  const auto ct = net.add_link(c, t, 1.0);
  const CommodityId j = net.add_commodity("s", a, t, 1.0, Utility::linear());
  for (const auto l : {ab, ac, bt, ct}) net.enable_link(j, l, 1.0);
  net.set_potential(j, a, 2.0);
  net.set_potential(j, b, 7.0);
  net.set_potential(j, c, 3.0);
  net.set_potential(j, t, 5.0);
  EXPECT_TRUE(maxutil::stream::verify_path_independence(net, j));
  // Path via b: (7/2)*(5/7) = 5/2; via c: (3/2)*(5/3) = 5/2 = gain.
  EXPECT_DOUBLE_EQ(net.delivery_gain(j), 2.5);
}

}  // namespace
