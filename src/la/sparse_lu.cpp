#include "la/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace maxutil::la {

using maxutil::util::ensure;

namespace {

constexpr std::uint32_t kUnpivoted = ~std::uint32_t{0};

}  // namespace

SparseLu::SparseLu(std::size_t n, const std::vector<SparseColumnView>& columns,
                   double pivot_tolerance) {
  ensure(columns.size() == n, "SparseLu: column count mismatch");
  n_ = n;
  l_starts_.assign(1, 0);
  u_starts_.assign(1, 0);
  u_diag_.reserve(n);
  perm_row_.assign(n, kUnpivoted);
  perm_col_.resize(n);

  // Column pre-order: ascending nonzero count, ties by position. Slack and
  // near-singleton columns pivot first, which keeps network bases almost
  // fill-free. Deterministic in the input columns alone (no dependence on
  // how the caller happened to arrange the basis header).
  std::iota(perm_col_.begin(), perm_col_.end(), 0u);
  std::stable_sort(perm_col_.begin(), perm_col_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return columns[a].rows.size() < columns[b].rows.size();
                   });

  // pinv[original row] = pivot position, or kUnpivoted.
  std::vector<std::uint32_t> pinv(n, kUnpivoted);
  std::vector<double> work(n, 0.0);          // scatter accumulator
  std::vector<std::uint32_t> pattern;        // reach of the current column
  std::vector<std::uint32_t> stack;          // DFS stack: column positions
  std::vector<std::size_t> edge;             // DFS resume point per column
  std::vector<unsigned char> visited(n, 0);  // per original row
  pattern.reserve(64);
  stack.reserve(64);
  edge.assign(n, 0);

  for (std::size_t k = 0; k < n; ++k) {
    const SparseColumnView& col = columns[perm_col_[k]];
    ensure(col.rows.size() == col.values.size(),
           "SparseLu: ragged column input");

    // --- Symbolic: reach of the column pattern over the L pattern. ---
    // DFS from every nonzero row; traversing a pivoted row i descends into
    // L column pinv[i]. Emits `pattern` in reverse-topological order.
    pattern.clear();
    for (const std::uint32_t r0 : col.rows) {
      if (visited[r0]) continue;
      stack.clear();
      stack.push_back(r0);
      visited[r0] = 1;
      while (!stack.empty()) {
        const std::uint32_t r = stack.back();
        const std::uint32_t piv = pinv[r];
        bool descended = false;
        if (piv != kUnpivoted) {
          std::size_t& e = edge[r];
          const std::size_t end = l_starts_[piv + 1];
          while (l_starts_[piv] + e < end) {
            const std::uint32_t child = l_rows_[l_starts_[piv] + e];
            ++e;
            if (!visited[child]) {
              visited[child] = 1;
              stack.push_back(child);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          edge[r] = 0;
          stack.pop_back();
          pattern.push_back(r);
        }
      }
    }

    // --- Numeric: solve L x = A(:, col) on the reach, topological order. ---
    for (std::size_t i = 0; i < col.rows.size(); ++i) {
      work[col.rows[i]] += col.values[i];  // += tolerates duplicate rows
    }
    for (std::size_t p = pattern.size(); p-- > 0;) {
      const std::uint32_t r = pattern[p];
      const std::uint32_t piv = pinv[r];
      if (piv == kUnpivoted) continue;
      const double xr = work[r];
      if (xr == 0.0) continue;
      for (std::size_t t = l_starts_[piv]; t < l_starts_[piv + 1]; ++t) {
        work[l_rows_[t]] -= l_values_[t] * xr;
      }
    }

    // --- Pivot: largest magnitude among unpivoted rows of the reach. ---
    std::uint32_t pivot_row = kUnpivoted;
    double pivot_value = 0.0;
    for (const std::uint32_t r : pattern) {
      if (pinv[r] != kUnpivoted) continue;
      const double a = std::abs(work[r]);
      if (a > std::abs(pivot_value)) {
        pivot_value = work[r];
        pivot_row = r;
      }
    }
    if (pivot_row == kUnpivoted || std::abs(pivot_value) <= pivot_tolerance) {
      singular_ = true;
      for (const std::uint32_t r : pattern) {
        work[r] = 0.0;
        visited[r] = 0;
      }
      return;
    }

    // --- Store: U entries (pivoted rows), L entries (unpivoted, scaled). ---
    for (const std::uint32_t r : pattern) {
      const double v = work[r];
      work[r] = 0.0;
      visited[r] = 0;
      if (r == pivot_row) continue;
      if (pinv[r] != kUnpivoted) {
        if (v != 0.0) {
          u_rows_.push_back(pinv[r]);
          u_values_.push_back(v);
        }
      } else if (v != 0.0) {
        l_rows_.push_back(r);
        l_values_.push_back(v / pivot_value);
      }
    }
    u_diag_.push_back(pivot_value);
    pinv[pivot_row] = static_cast<std::uint32_t>(k);
    perm_row_[k] = pivot_row;
    l_starts_.push_back(l_rows_.size());
    u_starts_.push_back(u_rows_.size());
  }

  // Remap L row ids from original to pivot coordinates so the solves are
  // plain triangular sweeps.
  for (std::uint32_t& r : l_rows_) r = pinv[r];
}

void SparseLu::solve_in_place(std::vector<double>& b) const {
  ensure(!singular_, "SparseLu::solve_in_place: singular factorization");
  ensure(b.size() == n_, "SparseLu::solve_in_place: dimension mismatch");
  // y = P b.
  std::vector<double> y(n_);
  for (std::size_t k = 0; k < n_; ++k) y[k] = b[perm_row_[k]];
  // L y' = y (unit lower triangular, column sweep).
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = y[k];
    if (yk == 0.0) continue;
    for (std::size_t t = l_starts_[k]; t < l_starts_[k + 1]; ++t) {
      y[l_rows_[t]] -= l_values_[t] * yk;
    }
  }
  // U z = y' (column back-substitution).
  for (std::size_t k = n_; k-- > 0;) {
    const double zk = y[k] / u_diag_[k];
    y[k] = zk;
    if (zk == 0.0) continue;
    for (std::size_t t = u_starts_[k]; t < u_starts_[k + 1]; ++t) {
      y[u_rows_[t]] -= u_values_[t] * zk;
    }
  }
  // x = Q z.
  for (std::size_t k = 0; k < n_; ++k) b[perm_col_[k]] = y[k];
}

void SparseLu::solve_transposed_in_place(std::vector<double>& b) const {
  ensure(!singular_, "SparseLu::solve_transposed_in_place: singular");
  ensure(b.size() == n_, "SparseLu::solve_transposed_in_place: size");
  // w = Q^T b.
  std::vector<double> w(n_);
  for (std::size_t k = 0; k < n_; ++k) w[k] = b[perm_col_[k]];
  // U^T w' = w (lower triangular in transpose: forward sweep with dots).
  for (std::size_t k = 0; k < n_; ++k) {
    double s = w[k];
    for (std::size_t t = u_starts_[k]; t < u_starts_[k + 1]; ++t) {
      s -= u_values_[t] * w[u_rows_[t]];
    }
    w[k] = s / u_diag_[k];
  }
  // L^T v = w' (upper triangular in transpose: backward sweep with dots).
  for (std::size_t k = n_; k-- > 0;) {
    double s = w[k];
    for (std::size_t t = l_starts_[k]; t < l_starts_[k + 1]; ++t) {
      s -= l_values_[t] * w[l_rows_[t]];
    }
    w[k] = s;
  }
  // x = P^T v.
  for (std::size_t k = 0; k < n_; ++k) b[perm_row_[k]] = w[k];
}

}  // namespace maxutil::la
