file(REMOVE_RECURSE
  "../bench/bench_depth_messages"
  "../bench/bench_depth_messages.pdb"
  "CMakeFiles/bench_depth_messages.dir/bench_depth_messages.cpp.o"
  "CMakeFiles/bench_depth_messages.dir/bench_depth_messages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_depth_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
