#include "gen/figure1.hpp"

#include <cmath>
#include <string>

#include "stream/validate.hpp"

namespace maxutil::gen {

using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;

StreamNetwork figure1_example(const Figure1Params& params, Figure1Ids* ids) {
  StreamNetwork net;
  Figure1Ids local;
  for (int i = 0; i < 8; ++i) {
    local.server[static_cast<std::size_t>(i)] =
        net.add_server("Server " + std::to_string(i + 1), params.server_capacity);
  }
  local.sink1 = net.add_sink("Sink 1");
  local.sink2 = net.add_sink("Sink 2");

  const auto s = [&](int i) { return local.server[static_cast<std::size_t>(i - 1)]; };
  const auto link = [&](NodeId a, NodeId b) {
    return net.add_link(a, b, params.link_bandwidth);
  };

  // Physical links. 3->5 is shared by both streams (E->F for S2 and one of
  // the B->C stages for S1).
  const auto l12 = link(s(1), s(2));
  const auto l13 = link(s(1), s(3));
  const auto l24 = link(s(2), s(4));
  const auto l25 = link(s(2), s(5));
  const auto l34 = link(s(3), s(4));
  const auto l35 = link(s(3), s(5));
  const auto l46 = link(s(4), s(6));
  const auto l56 = link(s(5), s(6));
  const auto l6k1 = link(s(6), local.sink1);
  const auto l73 = link(s(7), s(3));
  const auto l58 = link(s(5), s(8));
  const auto l8k2 = link(s(8), local.sink2);

  local.s1 = net.add_commodity("S1", s(1), local.sink1, params.lambda,
                               Utility::linear());
  local.s2 = net.add_commodity("S2", s(7), local.sink2, params.lambda,
                               Utility::linear());

  // Stream S1: A at 1; B at 2 or 3; C at 4 or 5; D at 6.
  for (const auto l : {l12, l13, l24, l25, l34, l35, l46, l56, l6k1}) {
    net.enable_link(local.s1, l, params.consumption);
  }
  // Stream S2: G at 7; E at 3; F at 5; H at 8.
  for (const auto l : {l73, l35, l58, l8k2}) {
    net.enable_link(local.s2, l, params.consumption);
  }

  // Potentials encode uniform per-stage shrinkage. Stages for S1:
  // 1 (A done) -> {2,3} (B done) -> {4,5} (C done) -> 6 (D done) -> sink.
  const double r = params.stage_shrinkage;
  const auto set_stage = [&](CommodityId j, NodeId n, int stage) {
    net.set_potential(j, n, std::pow(r, stage));
  };
  set_stage(local.s1, s(1), 0);
  set_stage(local.s1, s(2), 1);
  set_stage(local.s1, s(3), 1);
  set_stage(local.s1, s(4), 2);
  set_stage(local.s1, s(5), 2);
  set_stage(local.s1, s(6), 3);
  set_stage(local.s1, local.sink1, 4);
  // Stages for S2: 7 (G) -> 3 (E) -> 5 (F) -> 8 (H) -> sink.
  set_stage(local.s2, s(7), 0);
  set_stage(local.s2, s(3), 1);
  set_stage(local.s2, s(5), 2);
  set_stage(local.s2, s(8), 3);
  set_stage(local.s2, local.sink2, 4);

  maxutil::stream::validate_or_throw(net);
  if (ids != nullptr) *ids = local;
  return net;
}

}  // namespace maxutil::gen
