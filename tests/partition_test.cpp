// Tests for the shard partitioner (src/graph/partition).
//
// The runtime's determinism contract requires the partition to be a pure
// function of (graph, shards, weights, options); the perf contract requires
// it to beat the contiguous-chunk baseline on edge cut for the layered
// instances the Section-6 workload generates. Both are pinned here, along
// with the degenerate shapes (empty graph, singleton, shards > nodes).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "gen/random_instance.hpp"
#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"

namespace {

using maxutil::gen::RandomInstanceParams;
using maxutil::graph::Digraph;
using maxutil::graph::EdgeId;
using maxutil::graph::NodeId;
using maxutil::graph::Partition;
using maxutil::graph::PartitionOptions;
using maxutil::graph::ShardId;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

// A ring of n nodes: the ideal case for BFS growth (contiguous arcs cut
// exactly 2 edges per boundary) and an easy place to check balance.
Digraph ring(std::size_t n) {
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

// Commodity-aware edge weights for an extended graph: the number of
// commodities able to route over each edge — the same weighting the
// distributed runtime feeds the partitioner.
std::vector<double> commodity_weights(const ExtendedGraph& xg) {
  std::vector<double> w(xg.edge_count(), 0.0);
  for (maxutil::stream::CommodityId j = 0; j < xg.commodity_count(); ++j) {
    for (EdgeId e = 0; e < xg.edge_count(); ++e) {
      if (xg.usable(j, e)) w[e] += 1.0;
    }
  }
  return w;
}

void expect_valid(const Partition& p, std::size_t nodes, std::size_t shards) {
  ASSERT_EQ(p.shard_of.size(), nodes);
  EXPECT_EQ(p.shards, shards);
  for (ShardId s : p.shard_of) EXPECT_LT(s, shards);
  std::size_t total = 0;
  for (ShardId s = 0; s < shards; ++s) total += p.shard_size(s);
  EXPECT_EQ(total, nodes);
}

TEST(Partition, EmptyGraph) {
  const Digraph g;
  const Partition p = maxutil::graph::partition_bfs_grow(g, 4);
  expect_valid(p, 0, 4);
  EXPECT_EQ(p.edge_cut, 0u);
  EXPECT_EQ(p.weighted_cut, 0.0);
}

TEST(Partition, SingleNode) {
  Digraph g(1);
  const Partition p = maxutil::graph::partition_bfs_grow(g, 3);
  expect_valid(p, 1, 3);
  EXPECT_EQ(p.shard_of[0], 0u);
  EXPECT_EQ(p.edge_cut, 0u);
}

TEST(Partition, SingleShardIsIdentity) {
  const Digraph g = ring(10);
  const Partition p = maxutil::graph::partition_bfs_grow(g, 1);
  expect_valid(p, 10, 1);
  for (ShardId s : p.shard_of) EXPECT_EQ(s, 0u);
  EXPECT_EQ(p.edge_cut, 0u);
}

TEST(Partition, MoreShardsThanNodes) {
  const Digraph g = ring(3);
  const Partition p = maxutil::graph::partition_bfs_grow(g, 8);
  expect_valid(p, 3, 8);
  // One node per shard; every ring edge is cut.
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(p.shard_of[v], v);
  EXPECT_EQ(p.edge_cut, 3u);
}

TEST(Partition, ContiguousBaselineShape) {
  const Partition p = maxutil::graph::partition_contiguous(10, 4);
  expect_valid(p, 10, 4);
  // ceil(10/4) = 3 per chunk: sizes 3,3,3,1.
  EXPECT_EQ(p.shard_size(0), 3u);
  EXPECT_EQ(p.shard_size(3), 1u);
  EXPECT_EQ(p.shard_of[0], 0u);
  EXPECT_EQ(p.shard_of[9], 3u);
}

TEST(Partition, RingIsCutNearOptimally) {
  const Digraph g = ring(64);
  const Partition p = maxutil::graph::partition_bfs_grow(g, 4);
  expect_valid(p, 64, 4);
  // Optimal 4-way ring cut is 4 (contiguous arcs); BFS growth on a ring
  // recovers arcs up to the wrap-around, so allow a small excess.
  EXPECT_LE(p.edge_cut, 6u);
  for (ShardId s = 0; s < 4; ++s) EXPECT_GE(p.shard_size(s), 1u);
}

TEST(Partition, DeterministicAcrossRepeatedRuns) {
  Rng rng(2007);
  RandomInstanceParams params;
  params.servers = 60;
  params.commodities = 4;
  const auto net = maxutil::gen::random_instance(params, rng);
  const ExtendedGraph xg(net);
  const std::vector<double> w = commodity_weights(xg);

  const Partition a = maxutil::graph::partition_bfs_grow(xg.graph(), 4, w);
  const Partition b = maxutil::graph::partition_bfs_grow(xg.graph(), 4, w);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
  EXPECT_EQ(a.weighted_cut, b.weighted_cut);

  // A different seed is allowed to differ, but must still be valid.
  PartitionOptions other;
  other.seed = 99;
  const Partition c =
      maxutil::graph::partition_bfs_grow(xg.graph(), 4, w, other);
  expect_valid(c, xg.node_count(), 4);
}

TEST(Partition, BeatsContiguousOnSeededRandomInstances) {
  for (std::uint64_t seed : {1u, 7u, 42u, 2007u}) {
    Rng rng(seed);
    RandomInstanceParams params;
    params.servers = 80;
    params.commodities = 4;
    params.stages = 6;
    const auto net = maxutil::gen::random_instance(params, rng);
    const ExtendedGraph xg(net);
    const std::vector<double> w = commodity_weights(xg);

    for (std::size_t shards : {2u, 4u, 8u}) {
      const Partition grown =
          maxutil::graph::partition_bfs_grow(xg.graph(), shards, w);
      const Partition base = maxutil::graph::partition_contiguous(
          xg.node_count(), shards);
      const double base_cut =
          maxutil::graph::weighted_edge_cut(xg.graph(), base.shard_of, w);
      expect_valid(grown, xg.node_count(), shards);
      EXPECT_LE(grown.weighted_cut, base_cut)
          << "seed=" << seed << " shards=" << shards;
      // Cross-check the cached cut against the standalone helpers.
      EXPECT_EQ(grown.edge_cut,
                maxutil::graph::edge_cut(xg.graph(), grown.shard_of));
      EXPECT_DOUBLE_EQ(grown.weighted_cut,
                       maxutil::graph::weighted_edge_cut(
                           xg.graph(), grown.shard_of, w));
    }
  }
}

TEST(Partition, BalanceWithinSlack) {
  Rng rng(5);
  RandomInstanceParams params;
  params.servers = 100;
  params.commodities = 3;
  const auto net = maxutil::gen::random_instance(params, rng);
  const ExtendedGraph xg(net);

  PartitionOptions options;
  options.balance_slack = 0.10;
  for (std::size_t shards : {2u, 4u, 8u}) {
    const Partition p =
        maxutil::graph::partition_bfs_grow(xg.graph(), shards, {}, options);
    const std::size_t n = xg.node_count();
    const std::size_t target = (n + shards - 1) / shards;
    const auto ceiling = static_cast<std::size_t>(
        std::ceil(static_cast<double>(target) * (1.0 + options.balance_slack)));
    for (ShardId s = 0; s < shards; ++s) {
      EXPECT_GE(p.shard_size(s), 1u) << "shards=" << shards;
      EXPECT_LE(p.shard_size(s), ceiling) << "shards=" << shards;
    }
  }
}

TEST(Partition, WeightsSteerTheCut) {
  // Two 4-cliques joined by a single light bridge: with edge weights the
  // partitioner must cut only the bridge, never a heavy clique edge.
  Digraph g(8);
  std::vector<double> w;
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) {
      g.add_edge(a, b);
      w.push_back(10.0);
      g.add_edge(a + 4, b + 4);
      w.push_back(10.0);
    }
  }
  g.add_edge(3, 4);
  w.push_back(1.0);

  const Partition p = maxutil::graph::partition_bfs_grow(g, 2, w);
  expect_valid(p, 8, 2);
  EXPECT_EQ(p.edge_cut, 1u);
  EXPECT_EQ(p.weighted_cut, 1.0);
  // The two cliques land in different shards, intact.
  for (NodeId v = 1; v < 4; ++v) EXPECT_EQ(p.shard_of[v], p.shard_of[0]);
  for (NodeId v = 5; v < 8; ++v) EXPECT_EQ(p.shard_of[v], p.shard_of[4]);
  EXPECT_NE(p.shard_of[0], p.shard_of[4]);
}

}  // namespace
