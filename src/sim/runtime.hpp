#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace maxutil::sim {

/// Identifier of an actor within a Runtime (dense, assigned in add order;
/// the distributed-gradient system keeps these equal to extended-graph node
/// ids).
using ActorId = std::size_t;

/// A message between actors. `tag` discriminates protocol phases;
/// `commodity` scopes per-stream protocols; `payload` carries the numeric
/// content (marginal costs, blocking flags, forecast flows, ...).
struct Message {
  ActorId from = 0;
  ActorId to = 0;
  int tag = 0;
  std::size_t commodity = 0;
  std::vector<double> payload;
};

class Runtime;

/// Send-side interface handed to an actor during its turn.
class Outbox {
 public:
  Outbox(Runtime& runtime, ActorId self) : runtime_(&runtime), self_(self) {}

  /// Queues `message` for delivery at the start of the next round.
  void send(ActorId to, int tag, std::size_t commodity,
            std::vector<double> payload);

 private:
  Runtime* runtime_;
  ActorId self_;
};

/// A node in the simulated distributed system. Actors communicate only
/// through messages; the runtime invokes them once per round with the
/// messages addressed to them.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Handles this round's inbox. May send messages via `out`; they arrive
  /// next round (unit link delay, synchronous rounds).
  virtual void on_round(Outbox& out, std::span<const Message> inbox) = 0;
};

/// Synchronous-round message-passing runtime with delivery counters and
/// fail-stop node crashes — the paper's execution model (iterative rounds,
/// neighbor message exchange) made concrete and measurable. The message
/// counters back the Section-6 comparison of per-iteration message
/// complexity (O(L) marginal-cost waves vs O(1) buffer-level exchanges).
class Runtime {
 public:
  /// Registers an actor; returns its id (dense, in add order).
  ActorId add_actor(std::unique_ptr<Actor> actor);

  /// Installs a heterogeneous link-delay model: a message from `a` to `b`
  /// takes `delay(a, b)` rounds (values < 1 are clamped to 1). Default is a
  /// uniform one-round delay. The gradient protocol's waves wait for all
  /// inputs, so results are delay-insensitive — only round counts change
  /// (tested in sim_test.cpp).
  void set_delay_model(std::function<std::size_t(ActorId, ActorId)> delay);

  std::size_t actor_count() const { return actors_.size(); }

  /// Fail-stop crash: the actor stops executing; messages to or from it are
  /// silently dropped (and counted in dropped_messages()).
  void fail(ActorId id);
  bool is_failed(ActorId id) const;

  /// Delivers all queued messages, runs every live actor once, and queues
  /// their sends for the next round. Returns the number of messages
  /// delivered this round.
  std::size_t run_round();

  /// Runs rounds until no messages are in flight (quiescence) or
  /// `max_rounds` elapse; returns rounds executed.
  std::size_t run_until_quiet(std::size_t max_rounds = 100000);

  /// True when no messages await delivery.
  bool quiet() const { return pending_.empty(); }

  // --- Counters (cumulative) ---
  std::size_t rounds() const { return rounds_; }
  std::size_t delivered_messages() const { return delivered_messages_; }
  std::size_t dropped_messages() const { return dropped_messages_; }
  /// Total doubles carried in delivered payloads (a bandwidth proxy).
  std::size_t delivered_payload_doubles() const { return delivered_payload_; }

  /// Direct read access to an actor (observer-side instrumentation only —
  /// the protocol itself must go through messages).
  Actor& actor(ActorId id);
  const Actor& actor(ActorId id) const;

 private:
  friend class Outbox;
  void enqueue(Message message);

  struct Pending {
    std::size_t due;  // first round in which the message may be delivered
    Message message;
  };

  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<bool> failed_;
  std::vector<Pending> pending_;
  std::function<std::size_t(ActorId, ActorId)> delay_;
  std::size_t rounds_ = 0;
  std::size_t delivered_messages_ = 0;
  std::size_t dropped_messages_ = 0;
  std::size_t delivered_payload_ = 0;
};

}  // namespace maxutil::sim
