#include "solver/solver.hpp"

#include <stdexcept>

#include "stream/validate.hpp"
#include "util/check.hpp"

namespace maxutil::solver {

Problem::Problem(const stream::StreamNetwork& network,
                 xform::PenaltyConfig penalty)
    : network_(&network), xg_(network, penalty) {}

double SolveOptions::extra_number(const std::string& key,
                                  double fallback) const {
  const auto it = extra.find(key);
  if (it == extra.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw util::CheckError("SolveOptions: extra '" + key +
                           "' is not a number: '" + it->second + "'");
  }
}

std::string SolveOptions::extra_text(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = extra.find(key);
  return it == extra.end() ? fallback : it->second;
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kConverged: return "converged";
    case Status::kIterationLimit: return "iteration-limit";
    case Status::kRoundLimit: return "round-limit";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kFailed: return "failed";
  }
  return "unknown";
}

bool is_usable(Status status) {
  return status == Status::kConverged || status == Status::kIterationLimit ||
         status == Status::kRoundLimit;
}

double SolveResult::metric(const std::string& name, double fallback) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return fallback;
}

}  // namespace maxutil::solver
