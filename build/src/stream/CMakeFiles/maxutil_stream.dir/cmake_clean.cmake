file(REMOVE_RECURSE
  "CMakeFiles/maxutil_stream.dir/model.cpp.o"
  "CMakeFiles/maxutil_stream.dir/model.cpp.o.d"
  "CMakeFiles/maxutil_stream.dir/surgery.cpp.o"
  "CMakeFiles/maxutil_stream.dir/surgery.cpp.o.d"
  "CMakeFiles/maxutil_stream.dir/utility.cpp.o"
  "CMakeFiles/maxutil_stream.dir/utility.cpp.o.d"
  "CMakeFiles/maxutil_stream.dir/validate.cpp.o"
  "CMakeFiles/maxutil_stream.dir/validate.cpp.o.d"
  "libmaxutil_stream.a"
  "libmaxutil_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
