#include "sim/distributed_gradient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/flow.hpp"
#include "util/check.hpp"

namespace maxutil::sim {

using maxutil::util::ensure;

NodeActor::NodeActor(const xform::ExtendedGraph& xg, NodeId self,
                     core::GammaOptions gamma)
    : xg_(&xg), self_(self), gamma_(gamma),
      commodities_(xg.commodity_count()) {
  const auto& g = xg.graph();
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    const auto& nodes = xg.commodity_nodes(j);
    if (!std::binary_search(nodes.begin(), nodes.end(), self)) continue;
    PerCommodity s;
    s.is_sink = (self == xg.sink(j));
    if (self == xg.dummy_source(j)) s.input_rate = xg.lambda(j);
    for (const EdgeId e : g.out_edges(self)) {
      if (!xg.usable(j, e)) continue;
      s.out_edges.push_back(e);
      s.out_heads.push_back(g.head(e));
    }
    for (const EdgeId e : g.in_edges(self)) {
      if (!xg.usable(j, e)) continue;
      s.in_edges.push_back(e);
      s.in_tails.push_back(g.tail(e));
    }
    s.phi.assign(s.out_edges.size(), 0.0);
    s.f_edge.assign(s.out_edges.size(), 0.0);
    s.dr_head.assign(s.out_edges.size(), 0.0);
    s.kappa_head.assign(s.out_edges.size(), 0.0);
    s.head_tagged.assign(s.out_edges.size(), 0);
    s.head_received.assign(s.out_edges.size(), 0);
    s.inflow.assign(s.in_edges.size(), 0.0);
    s.inflow_received.assign(s.in_edges.size(), 0);
    commodities_[j] = std::move(s);
  }
}

NodeActor::PerCommodity& NodeActor::state(CommodityId j) {
  ensure(j < commodities_.size() && commodities_[j].has_value(),
         "NodeActor: node does not carry this commodity");
  return *commodities_[j];
}

const NodeActor::PerCommodity& NodeActor::state(CommodityId j) const {
  ensure(j < commodities_.size() && commodities_[j].has_value(),
         "NodeActor: node does not carry this commodity");
  return *commodities_[j];
}

double NodeActor::via(CommodityId j, const PerCommodity& s,
                      std::size_t idx) const {
  const EdgeId e = s.out_edges[idx];
  // All inputs are local: own usage f_node_, own per-edge usage, own cost
  // functions, and the downstream marginal received by message.
  const double dAi_dfe = xg_->edge_cost_derivative(e, s.f_edge[idx]) +
                         xg_->node_penalty_derivative(self_, f_node_);
  return dAi_dfe * xg_->cost_rate(j, e) +
         xg_->beta(j, e) * s.dr_head[idx];
}

double NodeActor::kappa_via(CommodityId j, const PerCommodity& s,
                            std::size_t idx) const {
  const EdgeId e = s.out_edges[idx];
  const double c = xg_->cost_rate(j, e);
  const double beta = xg_->beta(j, e);
  const double second =
      xg_->edge_cost_second_derivative(e, s.f_edge[idx]) +
      xg_->node_penalty_second_derivative(self_, f_node_);
  return c * c * second + beta * beta * s.kappa_head[idx];
}

void NodeActor::begin_marginal(Outbox& out) {
  for (CommodityId j = 0; j < commodities_.size(); ++j) {
    if (!commodities_[j].has_value()) continue;
    PerCommodity& s = *commodities_[j];
    std::fill(s.head_received.begin(), s.head_received.end(), 0);
    s.heads_received = 0;
    // Sinks (no usable out-edges) start the upstream wave immediately.
    if (s.out_edges.empty()) emit_marginal(out, j);
  }
}

void NodeActor::emit_marginal(Outbox& out, CommodityId j) {
  PerCommodity& s = *commodities_[j];
  if (s.out_edges.empty()) {
    s.dr_self = 0.0;  // dA/dr at the destination is 0 (paper's convention)
    s.kappa_self = 0.0;
    s.tagged_self = false;
  } else {
    double dr = 0.0;
    double kappa = 0.0;
    for (std::size_t i = 0; i < s.out_edges.size(); ++i) {
      if (s.phi[i] > 0.0) {
        dr += s.phi[i] * via(j, s, i);
        kappa += s.phi[i] * s.phi[i] * kappa_via(j, s, i);
      }
    }
    s.dr_self = dr;
    s.kappa_self = kappa;
    // Blocking tag (eq. 18, shrinkage-scaled; see core/gamma.cpp): the tag
    // is set if any loaded out-link is improper or its head is tagged.
    s.tagged_self = false;
    for (std::size_t i = 0; i < s.out_edges.size(); ++i) {
      if (s.phi[i] <= 0.0) continue;
      if (s.head_tagged[i] != 0) {
        s.tagged_self = true;
        break;
      }
      if (dr <= xg_->beta(j, s.out_edges[i]) * s.dr_head[i] &&
          s.phi[i] * s.t >= gamma_.eta * (via(j, s, i) - dr)) {
        s.tagged_self = true;
        break;
      }
    }
  }
  // Broadcast upstream along every usable in-edge (the curvature rides in
  // the same message, so the second-derivative step costs no extra rounds).
  for (std::size_t i = 0; i < s.in_edges.size(); ++i) {
    out.send(s.in_tails[i], kMarginalTag, j,
             {static_cast<double>(s.in_edges[i]), s.dr_self,
              s.tagged_self ? 1.0 : 0.0, s.kappa_self});
  }
}

void NodeActor::apply_update() {
  for (CommodityId j = 0; j < commodities_.size(); ++j) {
    if (!commodities_[j].has_value()) continue;
    PerCommodity& s = *commodities_[j];
    if (s.out_edges.empty()) continue;

    // Eligible = not in the blocked set B_i(j) (phi = 0 and head tagged).
    // The scratch vector is a member so steady-state iterations do not
    // re-allocate it (the runtime's zero-allocation budget extends here).
    std::vector<std::size_t>& eligible = eligible_scratch_;
    eligible.clear();
    for (std::size_t i = 0; i < s.out_edges.size(); ++i) {
      if (s.phi[i] == 0.0 && s.head_tagged[i] != 0) continue;
      eligible.push_back(i);
    }
    ensure(!eligible.empty(), "NodeActor: all out-edges blocked");

    std::size_t best = eligible.front();
    double best_via = std::numeric_limits<double>::infinity();
    for (const std::size_t i : eligible) {
      const double v = via(j, s, i);
      if (v < best_via) {
        best_via = v;
        best = i;
      }
    }

    double shifted = 0.0;
    if (s.t <= gamma_.traffic_floor) {
      for (const std::size_t i : eligible) {
        if (i == best || s.phi[i] == 0.0) continue;
        shifted += s.phi[i];
        s.phi[i] = 0.0;
      }
    } else {
      const bool newton =
          gamma_.step_mode == core::StepMode::kCurvatureScaled;
      const double best_kappa = newton ? kappa_via(j, s, best) : 0.0;
      for (const std::size_t i : eligible) {
        if (i == best || s.phi[i] == 0.0) continue;
        const double a = via(j, s, i) - best_via;
        double step;
        if (newton) {
          const double kappa = std::max(kappa_via(j, s, i) + best_kappa,
                                        gamma_.curvature_floor);
          step = gamma_.eta * a / (s.t * kappa);
        } else {
          step = gamma_.eta * a / s.t;
        }
        const double delta = std::min(s.phi[i], step);
        if (delta <= 0.0) continue;
        shifted += delta;
        s.phi[i] -= delta;
      }
    }
    s.phi[best] += shifted;
  }
}

void NodeActor::begin_forecast(Outbox& out) {
  f_node_pending_ = 0.0;
  for (CommodityId j = 0; j < commodities_.size(); ++j) {
    if (!commodities_[j].has_value()) continue;
    PerCommodity& s = *commodities_[j];
    std::fill(s.inflow_received.begin(), s.inflow_received.end(), 0);
    s.inflows_received = 0;
    // Roots of the wave: nodes with no usable in-edges (the dummy sources).
    if (s.in_edges.empty()) emit_forecast(out, j);
  }
}

void NodeActor::emit_forecast(Outbox& out, CommodityId j) {
  PerCommodity& s = *commodities_[j];
  double inflow_total = s.input_rate;
  for (const double x : s.inflow) inflow_total += x;
  s.t = inflow_total;
  for (std::size_t i = 0; i < s.out_edges.size(); ++i) {
    const EdgeId e = s.out_edges[i];
    const double y = s.t * s.phi[i];
    s.f_edge[i] = y * xg_->cost_rate(j, e);
    f_node_pending_ += s.f_edge[i];
    out.send(s.out_heads[i], kForecastTag, j,
             {static_cast<double>(e), y * xg_->beta(j, e)});
  }
  // Once every commodity has emitted, the pending usage is complete; commit
  // incrementally (marginal reads happen only after the wave is quiet).
  f_node_ = f_node_pending_;
}

void NodeActor::on_round(Outbox& out, std::span<const Message> inbox) {
  for (const Message& m : inbox) {
    ensure(m.payload.size() >= 2, "NodeActor: malformed message");
    const auto edge = static_cast<EdgeId>(m.payload[0]);
    PerCommodity& s = state(m.commodity);
    if (m.tag == kMarginalTag) {
      const auto it =
          std::find(s.out_edges.begin(), s.out_edges.end(), edge);
      ensure(it != s.out_edges.end(), "NodeActor: marginal for unknown edge");
      const auto idx = static_cast<std::size_t>(it - s.out_edges.begin());
      s.dr_head[idx] = m.payload[1];
      s.head_tagged[idx] = m.payload.size() > 2 && m.payload[2] != 0.0;
      s.kappa_head[idx] = m.payload.size() > 3 ? m.payload[3] : 0.0;
      if (s.head_received[idx] == 0) {
        s.head_received[idx] = 1;
        if (++s.heads_received == s.out_edges.size()) {
          emit_marginal(out, m.commodity);
        }
      }
    } else if (m.tag == kForecastTag) {
      const auto it = std::find(s.in_edges.begin(), s.in_edges.end(), edge);
      ensure(it != s.in_edges.end(), "NodeActor: forecast for unknown edge");
      const auto idx = static_cast<std::size_t>(it - s.in_edges.begin());
      s.inflow[idx] = m.payload[1];
      if (s.inflow_received[idx] == 0) {
        s.inflow_received[idx] = 1;
        if (++s.inflows_received == s.in_edges.size()) {
          emit_forecast(out, m.commodity);
        }
      }
    } else {
      ensure(false, "NodeActor: unknown message tag");
    }
  }
}

double NodeActor::phi(CommodityId j, EdgeId e) const {
  const PerCommodity& s = state(j);
  const auto it = std::find(s.out_edges.begin(), s.out_edges.end(), e);
  ensure(it != s.out_edges.end(), "NodeActor::phi: unknown edge");
  return s.phi[static_cast<std::size_t>(it - s.out_edges.begin())];
}

void NodeActor::set_phi(CommodityId j, EdgeId e, double value) {
  PerCommodity& s = state(j);
  const auto it = std::find(s.out_edges.begin(), s.out_edges.end(), e);
  ensure(it != s.out_edges.end(), "NodeActor::set_phi: unknown edge");
  ensure(value >= 0.0, "NodeActor::set_phi: negative fraction");
  s.phi[static_cast<std::size_t>(it - s.out_edges.begin())] = value;
}

double NodeActor::traffic(CommodityId j) const { return state(j).t; }

double NodeActor::marginal(CommodityId j) const { return state(j).dr_self; }

// --- DistributedGradientSystem ---

DistributedGradientSystem::DistributedGradientSystem(
    const xform::ExtendedGraph& xg, core::GammaOptions gamma,
    RuntimeOptions runtime_options)
    : xg_(&xg), gamma_(gamma), runtime_(runtime_options) {
  actors_.reserve(xg.node_count());
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    auto actor = std::make_unique<NodeActor>(xg, v, gamma);
    actors_.push_back(actor.get());
    const ActorId id = runtime_.add_actor(std::move(actor));
    ensure(id == v, "DistributedGradientSystem: actor/node id mismatch");
  }
  // Install the paper's initial routing and bootstrap t/f with one forecast
  // wave so the first marginal sweep has flows to differentiate.
  const core::RoutingState initial = core::RoutingState::initial(xg);
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    for (const NodeId v : xg.commodity_nodes(j)) {
      if (v == xg.sink(j)) continue;
      for (const EdgeId e : xg.graph().out_edges(v)) {
        if (xg.usable(j, e)) actors_[v]->set_phi(j, e, initial.phi(j, e));
      }
    }
  }
  forecast_wave();
}

void DistributedGradientSystem::forecast_wave() {
  runtime_.for_each_live_actor([](ActorId, Actor& actor, Outbox& out) {
    static_cast<NodeActor&>(actor).begin_forecast(out);
  });
  runtime_.run_until_quiet(kWaveRoundBudget, /*strict=*/false);
  last_converged_ = last_converged_ && runtime_.quiet();
}

std::size_t DistributedGradientSystem::iterate() {
  const std::size_t rounds_before = runtime_.rounds();
  const std::size_t messages_before = runtime_.delivered_messages();
  last_converged_ = true;

  // Phase 1: marginal-cost wave (upstream, O(L) rounds).
  runtime_.for_each_live_actor([](ActorId, Actor& actor, Outbox& out) {
    static_cast<NodeActor&>(actor).begin_marginal(out);
  });
  runtime_.run_until_quiet(kWaveRoundBudget, /*strict=*/false);
  last_converged_ = runtime_.quiet();

  // Phase 2: local Gamma updates (no messages, embarrassingly parallel).
  runtime_.for_each_live_actor([](ActorId, Actor& actor, Outbox&) {
    static_cast<NodeActor&>(actor).apply_update();
  });

  // Phase 3: forecast wave (downstream, O(L) rounds).
  forecast_wave();

  ++iterations_;
  last_rounds_ = runtime_.rounds() - rounds_before;
  last_messages_ = runtime_.delivered_messages() - messages_before;
  return last_rounds_;
}

void DistributedGradientSystem::run(std::size_t iterations) {
  for (std::size_t i = 0; i < iterations; ++i) iterate();
}

core::RoutingState DistributedGradientSystem::routing_snapshot() const {
  core::RoutingState snapshot(*xg_);
  for (CommodityId j = 0; j < xg_->commodity_count(); ++j) {
    for (const NodeId v : xg_->commodity_nodes(j)) {
      if (v == xg_->sink(j)) continue;
      for (const EdgeId e : xg_->graph().out_edges(v)) {
        if (xg_->usable(j, e)) snapshot.set_phi(j, e, actors_[v]->phi(j, e));
      }
    }
  }
  return snapshot;
}

double DistributedGradientSystem::utility() const {
  const auto flows = core::compute_flows(*xg_, routing_snapshot());
  return core::total_utility(*xg_, flows);
}

}  // namespace maxutil::sim
