#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace maxutil::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long benchmark runs; O(1) memory.
class RunningStats {
 public:
  /// Folds one observation into the accumulator.
  void add(double x);

  /// Number of observations folded in so far.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-reduction friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the p-th percentile (p in [0, 100]) of `values` using linear
/// interpolation between closest ranks. The input is copied and sorted.
double percentile(std::span<const double> values, double p);

/// Arithmetic mean of `values`; 0 for an empty span.
double mean_of(std::span<const double> values);

/// Maximum absolute difference between paired elements; spans must be the
/// same length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

}  // namespace maxutil::util
