#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace maxutil::obs {

/// One numeric argument attached to a trace event (Chrome "args" entry).
struct TraceArg {
  std::string key;
  double value = 0.0;
};

/// One recorded event. Phases follow the Chrome trace-event format:
/// 'X' = complete span (ts + dur), 'i' = instant, 'C' = counter sample.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  std::size_t track = 0;  // rendered as the Chrome "tid"
  double ts_us = 0.0;     // microseconds since the tracer's epoch
  double dur_us = 0.0;    // complete spans only
  std::vector<TraceArg> args;
};

/// Span-based tracer for the serial control path of a run (round loop, wave
/// boundaries, fault events). NOT thread-safe: every record call must come
/// from the thread driving the runtime — which is exactly where the
/// instrumented code sits (the round loop and the outbox merge are serial by
/// design; see docs/RUNTIME.md §2).
///
/// Spans are properly nested per track: begin_span pushes onto that track's
/// stack and end_span must close the innermost open span (enforced). Exports
/// are Chrome-tracing JSON (load via chrome://tracing or Perfetto) and a
/// flat CSV with one row per event.
///
/// Timestamps are wall-clock microseconds relative to construction. Tests
/// and golden files use the explicit-timestamp `complete()` overload so the
/// exported bytes are deterministic.
class Tracer {
 public:
  /// end_span token returned when the event buffer is full.
  static constexpr std::size_t kDroppedSpan = static_cast<std::size_t>(-1);

  Tracer();

  /// Names a track (Chrome thread_name metadata on export).
  void set_track_name(std::size_t track, std::string name);

  /// Caps the event buffer; events past the cap are counted in
  /// dropped_events() and discarded. Default 4M events.
  void set_capacity(std::size_t max_events) { max_events_ = max_events; }

  /// Opens a span at now(); returns a token for end_span. Spans on one track
  /// must close innermost-first (LIFO).
  std::size_t begin_span(std::string name, std::string category,
                         std::size_t track);
  void end_span(std::size_t token, std::vector<TraceArg> args = {});

  /// Records a complete span with explicit timestamps (deterministic-export
  /// path used by tests and by round-domain spans).
  void complete(std::string name, std::string category, std::size_t track,
                double ts_us, double dur_us, std::vector<TraceArg> args = {});

  void instant(std::string name, std::string category, std::size_t track,
               std::vector<TraceArg> args = {});

  /// Counter sample: each arg becomes one series on the track's counter
  /// graph in the Chrome UI.
  void counter(std::string name, std::size_t track, std::vector<TraceArg> args);

  /// Microseconds since construction (monotonic).
  double now_us() const;

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t dropped_events() const { return dropped_events_; }
  /// Spans currently open across all tracks.
  std::size_t open_spans() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}. Valid JSON by
  /// construction (strings escaped, no NaN/Inf emitted).
  void write_chrome_json(std::ostream& out) const;

  /// Flat CSV: "phase,track,ts_us,dur_us,category,name,args" with args
  /// rendered "key=value" and ';'-separated.
  void write_csv(std::ostream& out) const;

 private:
  bool has_room();
  TraceEvent* push(TraceEvent event);

  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::size_t, std::string>> track_names_;
  std::vector<std::vector<std::size_t>> open_;  // per-track stacks of indexes
  std::size_t open_count_ = 0;
  std::size_t max_events_ = std::size_t{1} << 22;
  std::size_t dropped_events_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace maxutil::obs
