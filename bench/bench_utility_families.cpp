// E10 — extension: general concave utilities. The paper's machinery (dummy
// difference links costed by the utility loss Y) works for any concave
// increasing U_j; the Section-6 experiment only exercises the linear case.
// This bench compares utility families on one contended instance: linear
// maximizes raw throughput (corner solutions), log/alpha-fair trade
// throughput for fairness.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "gen/random_instance.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E10: utility families (linear / log / sqrt / alpha=2)"
              " ===\n");
  std::printf("instance: 24 servers, 3 commodities, contended (lambda=100),"
              " eps=0.05, eta=0.05\n\n");

  struct Family {
    const char* name;
    stream::Utility utility;
  };
  const Family families[] = {
      {"linear", stream::Utility::linear()},
      {"log", stream::Utility::logarithmic()},
      {"sqrt", stream::Utility::square_root()},
      {"alpha-fair(2)", stream::Utility::alpha_fair(2.0)},
  };

  util::Table table({"family", "admitted (a0,a1,a2)", "total throughput",
                     "Jain fairness", "utility (gradient)", "utility (LP)"});
  double linear_throughput = 0.0;
  double linear_jain = 0.0;
  double log_jain = 0.0;
  bool gradient_tracks_lp = true;
  for (const Family& family : families) {
    util::Rng rng(1234);
    gen::RandomInstanceParams p;
    p.servers = 24;
    p.commodities = 3;
    p.stages = 3;
    p.utility_for = [&family](stream::CommodityId) { return family.utility; };
    const auto net = gen::random_instance(p, rng);
    xform::PenaltyConfig penalty;
    penalty.epsilon = 0.05;
    const xform::ExtendedGraph xg(net, penalty);

    xform::ReferenceOptions ropts;
    ropts.pwl_segments = 300;
    const auto reference = xform::solve_reference(xg, ropts);

    core::GradientOptions options;
    options.eta = 0.05;
    options.max_iterations = 15000;
    options.record_history = false;
    core::GradientOptimizer opt(xg, options);
    opt.run();

    const auto admitted = opt.admitted();
    double throughput = 0.0;
    for (const double a : admitted) throughput += a;
    const double jain = bench::jain_index(admitted);
    if (std::string(family.name) == "linear") {
      linear_throughput = throughput;
      linear_jain = jain;
    }
    if (std::string(family.name) == "log") log_jain = jain;
    gradient_tracks_lp = gradient_tracks_lp &&
                         opt.utility() >= 0.93 * reference.optimal_utility;

    char rates[64];
    std::snprintf(rates, sizeof(rates), "%.2f, %.2f, %.2f", admitted[0],
                  admitted[1], admitted[2]);
    table.add_row({family.name, rates, util::Table::cell(throughput),
                   util::Table::cell(jain, 4),
                   util::Table::cell(opt.utility()),
                   util::Table::cell(reference.optimal_utility)});
  }
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  ok &= bench::shape_check(
      "gradient reaches >= 93% of the (PWL-)LP optimum for every family",
      gradient_tracks_lp);
  ok &= bench::shape_check(
      "concave (log) allocation is fairer than linear (higher Jain index)",
      log_jain > linear_jain);
  ok &= bench::shape_check("linear achieves the highest raw throughput",
                           linear_throughput > 0.0);
  return ok ? 0 : 1;
}
