file(REMOVE_RECURSE
  "CMakeFiles/market_analytics.dir/market_analytics.cpp.o"
  "CMakeFiles/market_analytics.dir/market_analytics.cpp.o.d"
  "market_analytics"
  "market_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
