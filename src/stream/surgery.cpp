#include "stream/surgery.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/algorithms.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"

namespace maxutil::stream {

using maxutil::util::ensure;

SurgeryResult rebuild(const StreamNetwork& net, const RebuildSpec& spec) {
  // Expand the spec into per-entity masks and cumulative factors. Repeated
  // factor entries for one entity multiply, so a spec assembled from a
  // sequence of scale events composes the way the events did.
  std::vector<char> node_removed(net.node_count(), 0);
  for (const NodeId n : spec.removed_nodes) {
    ensure(n < net.node_count(), "rebuild: removed node out of range");
    ensure(!net.is_sink(n), "rebuild: sinks do not process; remove a server");
    node_removed[n] = 1;
  }
  std::vector<char> link_removed(net.link_count(), 0);
  for (const LinkId l : spec.removed_links) {
    ensure(l < net.link_count(), "rebuild: removed link out of range");
    link_removed[l] = 1;
  }
  std::vector<char> commodity_removed(net.commodity_count(), 0);
  for (const CommodityId j : spec.removed_commodities) {
    ensure(j < net.commodity_count(), "rebuild: removed commodity out of range");
    commodity_removed[j] = 1;
  }
  std::vector<double> cap_factor(net.node_count(), 1.0);
  for (const auto& [n, f] : spec.capacity_factors) {
    ensure(n < net.node_count(), "rebuild: capacity factor node out of range");
    ensure(!net.is_sink(n), "rebuild: sinks have no computing power to scale");
    ensure(std::isfinite(f) && f > 0,
           "rebuild: capacity factor must be positive and finite");
    cap_factor[n] *= f;
  }
  std::vector<double> bw_factor(net.link_count(), 1.0);
  for (const auto& [l, f] : spec.bandwidth_factors) {
    ensure(l < net.link_count(), "rebuild: bandwidth factor link out of range");
    ensure(std::isfinite(f) && f > 0,
           "rebuild: bandwidth factor must be positive and finite");
    bw_factor[l] *= f;
  }
  std::vector<double> lambda_factor(net.commodity_count(), 1.0);
  for (const auto& [j, f] : spec.lambda_factors) {
    ensure(j < net.commodity_count(), "rebuild: lambda factor commodity out of range");
    ensure(std::isfinite(f) && f > 0,
           "rebuild: lambda factor must be positive and finite");
    lambda_factor[j] *= f;
  }

  SurgeryResult result;
  auto& out = result.network;

  // Nodes, in id order so surviving entities keep their relative order.
  result.node_map.assign(net.node_count(), kRemovedEntity);
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (node_removed[n]) continue;
    result.node_map[n] =
        net.is_sink(n)
            ? out.add_sink(net.node_name(n))
            : out.add_server(net.node_name(n), net.capacity(n) * cap_factor[n]);
  }

  // Links between surviving nodes.
  const auto& g = net.graph();
  result.link_map.assign(net.link_count(), kRemovedEntity);
  for (LinkId l = 0; l < net.link_count(); ++l) {
    if (link_removed[l]) continue;
    const NodeId tail = g.tail(l);
    const NodeId head = g.head(l);
    if (node_removed[tail] || node_removed[head]) continue;
    result.link_map[l] =
        out.add_link(result.node_map[tail], result.node_map[head],
                     net.bandwidth(l) * bw_factor[l]);
  }

  // Commodities: prune each usable subgraph to links on a surviving
  // source -> sink path.
  result.commodity_map.assign(net.commodity_count(), kRemovedEntity);
  for (CommodityId j = 0; j < net.commodity_count(); ++j) {
    if (commodity_removed[j]) continue;
    if (node_removed[net.source(j)]) continue;  // source died with the server
    const auto survives = [&](maxutil::graph::EdgeId e) {
      return net.uses_link(j, e) && result.link_map[e] != kRemovedEntity;
    };
    const auto from_source = maxutil::graph::reachable_from(g, net.source(j),
                                                            survives);
    if (!from_source[net.sink(j)]) continue;  // disconnected: drop
    const auto to_sink = maxutil::graph::reaches(g, net.sink(j), survives);

    const CommodityId nj = out.add_commodity(
        net.commodity_name(j), result.node_map[net.source(j)],
        result.node_map[net.sink(j)], net.lambda(j) * lambda_factor[j],
        net.utility(j));
    result.commodity_map[j] = nj;
    for (NodeId n = 0; n < net.node_count(); ++n) {
      if (result.node_map[n] == kRemovedEntity) continue;
      out.set_potential(nj, result.node_map[n], net.potential(j, n));
    }
    for (LinkId l = 0; l < net.link_count(); ++l) {
      if (!survives(l)) continue;
      // Keep only links on some surviving source->sink path: both endpoints
      // must be downstream of the source and upstream of the sink.
      if (!from_source[g.tail(l)] || !to_sink[g.head(l)]) continue;
      out.enable_link(nj, result.link_map[l], net.consumption(j, l));
    }
  }

  validate_or_throw(out);
  return result;
}

SurgeryResult without_server(const StreamNetwork& net, NodeId failed) {
  ensure(failed < net.node_count(), "without_server: node out of range");
  ensure(!net.is_sink(failed), "without_server: sinks do not process; fail a server");
  RebuildSpec spec;
  spec.removed_nodes.push_back(failed);
  return rebuild(net, spec);
}

SurgeryResult without_link(const StreamNetwork& net, LinkId failed) {
  ensure(failed < net.link_count(), "without_link: link out of range");
  RebuildSpec spec;
  spec.removed_links.push_back(failed);
  return rebuild(net, spec);
}

SurgeryResult with_capacity_scaled(const StreamNetwork& net, NodeId node,
                                   double factor) {
  ensure(node < net.node_count(), "with_capacity_scaled: node out of range");
  ensure(!net.is_sink(node),
         "with_capacity_scaled: sinks have no computing power to scale");
  ensure(std::isfinite(factor) && factor > 0,
         "with_capacity_scaled: factor must be positive and finite");
  RebuildSpec spec;
  spec.capacity_factors.emplace_back(node, factor);
  return rebuild(net, spec);
}

SurgeryResult with_bandwidth_scaled(const StreamNetwork& net, LinkId link,
                                    double factor) {
  ensure(link < net.link_count(), "with_bandwidth_scaled: link out of range");
  ensure(std::isfinite(factor) && factor > 0,
         "with_bandwidth_scaled: factor must be positive and finite");
  RebuildSpec spec;
  spec.bandwidth_factors.emplace_back(link, factor);
  return rebuild(net, spec);
}

namespace {

// Inverts `to_old` (baseline -> A) and chains through `to_new`
// (baseline -> B), producing A -> B. Rebuild assigns new ids in baseline-id
// order, so A's entity count is max(to_old)+1.
std::vector<std::size_t> compose_one(const std::vector<std::size_t>& to_old,
                                     const std::vector<std::size_t>& to_new,
                                     const char* what) {
  ensure(to_old.size() == to_new.size(),
         std::string("compose_maps: ") + what + " maps disagree on baseline size");
  std::size_t old_count = 0;
  for (const std::size_t v : to_old) {
    if (v != kRemovedEntity) old_count = std::max(old_count, v + 1);
  }
  std::vector<std::size_t> out(old_count, kRemovedEntity);
  for (std::size_t base = 0; base < to_old.size(); ++base) {
    if (to_old[base] == kRemovedEntity) continue;
    ensure(to_old[base] < old_count, "compose_maps: malformed old map");
    out[to_old[base]] = to_new[base];
  }
  return out;
}

}  // namespace

EntityMaps compose_maps(const EntityMaps& to_old, const EntityMaps& to_new) {
  EntityMaps result;
  result.node_map = compose_one(to_old.node_map, to_new.node_map, "node");
  result.link_map = compose_one(to_old.link_map, to_new.link_map, "link");
  result.commodity_map =
      compose_one(to_old.commodity_map, to_new.commodity_map, "commodity");
  return result;
}

}  // namespace maxutil::stream
