# Empty compiler generated dependencies file for maxutil_core.
# This may be replaced when dependencies are built.
