#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxutil::la {

using maxutil::util::ensure;

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> entries)
    : rows_(rows), cols_(cols), row_starts_(rows + 1, 0) {
  for (const auto& t : entries) {
    ensure(t.row < rows_ && t.col < cols_, "CsrMatrix: entry out of range");
  }
  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  // Accumulate duplicates while streaming into CSR arrays.
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i + 1;
    double total = entries[i].value;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      total += entries[j].value;
      ++j;
    }
    col_index_.push_back(entries[i].col);
    values_.push_back(total);
    ++row_starts_[entries[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_starts_[r + 1] += row_starts_[r];
}

std::vector<double> CsrMatrix::multiply(std::span<const double> x) const {
  ensure(x.size() == cols_, "CsrMatrix::multiply: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double total = 0.0;
    for (std::size_t k = row_starts_[r]; k < row_starts_[r + 1]; ++k) {
      total += values_[k] * x[col_index_[k]];
    }
    y[r] = total;
  }
  return y;
}

std::vector<double> CsrMatrix::multiply_transposed(
    std::span<const double> x) const {
  ensure(x.size() == rows_, "CsrMatrix::multiply_transposed: dimension mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_starts_[r]; k < row_starts_[r + 1]; ++k) {
      y[col_index_[k]] += values_[k] * xr;
    }
  }
  return y;
}

std::vector<double> CsrMatrix::solve_fixed_point(std::span<const double> b,
                                                 double tol,
                                                 std::size_t max_iters) const {
  ensure(rows_ == cols_, "solve_fixed_point: matrix must be square");
  ensure(b.size() == rows_, "solve_fixed_point: dimension mismatch");
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t it = 0; it < max_iters; ++it) {
    std::vector<double> next = multiply(x);
    double delta = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      next[i] += b[i];
      delta = std::max(delta, std::abs(next[i] - x[i]));
    }
    x = std::move(next);
    if (delta <= tol) return x;
  }
  throw maxutil::util::CheckError(
      "solve_fixed_point: no convergence (spectral radius >= 1?)");
}

std::span<const std::size_t> CsrMatrix::row_columns(std::size_t r) const {
  ensure(r < rows_, "CsrMatrix::row_columns: out of range");
  return {col_index_.data() + row_starts_[r], row_starts_[r + 1] - row_starts_[r]};
}

std::span<const double> CsrMatrix::row_values(std::size_t r) const {
  ensure(r < rows_, "CsrMatrix::row_values: out of range");
  return {values_.data() + row_starts_[r], row_starts_[r + 1] - row_starts_[r]};
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<Triplet> entries;
  entries.reserve(values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_starts_[r]; k < row_starts_[r + 1]; ++k) {
      entries.push_back({col_index_[k], r, values_[k]});
    }
  }
  return CsrMatrix(cols_, rows_, std::move(entries));
}

std::vector<std::pair<std::size_t, double>> CsrMatrix::row_entries(
    std::size_t r) const {
  ensure(r < rows_, "CsrMatrix::row_entries: out of range");
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t k = row_starts_[r]; k < row_starts_[r + 1]; ++k) {
    out.emplace_back(col_index_[k], values_[k]);
  }
  return out;
}

}  // namespace maxutil::la
