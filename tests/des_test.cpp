#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "des/event_queue.hpp"
#include "des/packet_sim.hpp"
#include "gen/random_instance.hpp"
#include "stream/model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"

namespace {

using maxutil::core::GradientOptimizer;
using maxutil::core::GradientOptions;
using maxutil::des::EventQueue;
using maxutil::des::PacketSimOptions;
using maxutil::des::PacketSimulator;
using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_until(10.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 10.0);  // advanced to the horizon once drained
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, HandlersScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) q.schedule_in(1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, HorizonStopsEarly) {
  EventQueue q;
  int count = 0;
  q.schedule(1.0, [&] { ++count; });
  q.schedule(5.0, [&] { ++count; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_until(5.0);
  EXPECT_THROW(q.schedule(1.0, [] {}), CheckError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), CheckError);
}

// --- Packet-level simulation ---

/// Single server of capacity C with c = 1 and a direct sink: an M/M-ish/1
/// queue with deterministic service 1/C per unit-size packet (M/D/1).
StreamNetwork single_server(double capacity, double lambda) {
  StreamNetwork net;
  const NodeId a = net.add_server("s", capacity);
  const NodeId t = net.add_sink("t");
  const auto l = net.add_link(a, t, 1e9);  // bandwidth not binding
  const CommodityId j = net.add_commodity("c", a, t, lambda, Utility::linear());
  net.enable_link(j, l, 1.0);
  return net;
}

maxutil::core::RoutingState admit_all(const ExtendedGraph& xg) {
  auto routing = maxutil::core::RoutingState::initial(xg);
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    routing.set_phi(j, xg.dummy_difference_link(j), 0.0);
    routing.set_phi(j, xg.dummy_input_link(j), 1.0);
  }
  return routing;
}

TEST(PacketSim, DeliversAdmittedLoadWhenUnderloaded) {
  // rho = 5/10 = 0.5: everything admitted must be delivered.
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimulator sim(xg, admit_all(xg), {.horizon = 4000.0, .warmup = 400.0});
  sim.run();
  const auto stats = sim.commodity_stats(0);
  EXPECT_NEAR(stats.offered_rate, 5.0, 0.25);
  EXPECT_NEAR(stats.admitted_rate, stats.offered_rate, 1e-9);
  EXPECT_NEAR(stats.delivered_rate, stats.offered_rate, 0.05);
  EXPECT_EQ(stats.rejected_rate, 0.0);
  EXPECT_GT(stats.delivered_packets, 10000u);
}

TEST(PacketSim, UtilizationMatchesFluidPrediction) {
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimulator sim(xg, admit_all(xg), {.horizon = 4000.0, .warmup = 400.0});
  sim.run();
  // Server usage: 5 units/s x c=1 / C=10 -> rho = 0.5.
  EXPECT_NEAR(sim.node_stats(0).utilization, 0.5, 0.03);
}

TEST(PacketSim, MD1LatencyMatchesTheory) {
  // M/D/1: W_q = lambda s^2 / (2(1-rho)); s = 1/10, rho = 0.5 ->
  // W_q = 5 * 0.01 / 1 = 0.05, sojourn = s + W_q = 0.15 (the bandwidth hop
  // is effectively zero-delay at 1e9 capacity).
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimulator sim(xg, admit_all(xg),
                      {.horizon = 8000.0, .warmup = 800.0, .seed = 3});
  sim.run();
  const auto stats = sim.commodity_stats(0);
  EXPECT_NEAR(stats.mean_latency, 0.15, 0.01);
}

TEST(PacketSim, BernoulliAdmissionMatchesPhi) {
  const StreamNetwork net = single_server(100.0, 10.0);
  const ExtendedGraph xg(net);
  auto routing = maxutil::core::RoutingState::initial(xg);
  routing.set_phi(0, xg.dummy_difference_link(0), 0.7);
  routing.set_phi(0, xg.dummy_input_link(0), 0.3);
  PacketSimulator sim(xg, routing, {.horizon = 4000.0, .warmup = 400.0});
  sim.run();
  const auto stats = sim.commodity_stats(0);
  EXPECT_NEAR(stats.admitted_rate, 3.0, 0.2);
  EXPECT_NEAR(stats.rejected_rate, 7.0, 0.3);
}

TEST(PacketSim, ShrinkageReducesDownstreamWork) {
  // Two-hop chain with beta = 0.5 after the first stage: the second server
  // sees half the fluid load.
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 10.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 1e9);
  const auto bt = net.add_link(b, t, 1e9);
  const CommodityId j = net.add_commodity("c", a, t, 5.0, Utility::linear());
  net.enable_link(j, ab, 1.0);
  net.enable_link(j, bt, 1.0);
  net.set_potential(j, b, 0.5);
  net.set_potential(j, t, 0.5);
  const ExtendedGraph xg(net);
  PacketSimulator sim(xg, admit_all(xg), {.horizon = 4000.0, .warmup = 400.0});
  sim.run();
  EXPECT_NEAR(sim.node_stats(a).utilization, 0.5, 0.03);   // 5 * 1 / 10
  EXPECT_NEAR(sim.node_stats(b).utilization, 0.25, 0.03);  // 2.5 * 1 / 10
}

TEST(PacketSim, DeterministicForSeed) {
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimulator a(xg, admit_all(xg), {.horizon = 500.0, .seed = 9});
  PacketSimulator b(xg, admit_all(xg), {.horizon = 500.0, .seed = 9});
  a.run();
  b.run();
  EXPECT_EQ(a.commodity_stats(0).delivered_packets,
            b.commodity_stats(0).delivered_packets);
  EXPECT_DOUBLE_EQ(a.commodity_stats(0).mean_latency,
                   b.commodity_stats(0).mean_latency);
}

TEST(PacketSim, RejectsBadOptions) {
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimOptions bad;
  bad.horizon = 10.0;
  bad.warmup = 20.0;
  EXPECT_THROW(PacketSimulator(xg, admit_all(xg), bad), CheckError);
  PacketSimulator sim(xg, admit_all(xg));
  EXPECT_THROW(sim.commodity_stats(0), CheckError);  // run() first
}

// End-to-end: the fluid optimum of a contended random instance, executed at
// packet level, delivers (approximately) the promised rates with bounded
// queues — the fluid model's promises survive the queueing reality.
TEST(PacketSim, FluidOptimumDeliversPromisedRates) {
  Rng rng(2024);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 12;
  p.commodities = 2;
  p.stages = 3;
  p.lambda = 50.0;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  GradientOptions options;
  options.eta = 0.05;
  options.record_history = false;
  options.max_iterations = 6000;
  GradientOptimizer opt(xg, options);
  opt.run();
  const auto fluid = opt.admitted();

  PacketSimulator sim(xg, opt.routing(),
                      {.horizon = 3000.0, .warmup = 300.0, .packet_size = 0.25});
  sim.run();
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    const auto stats = sim.commodity_stats(j);
    EXPECT_NEAR(stats.admitted_rate, fluid[j], 0.12 * fluid[j] + 0.3) << j;
    EXPECT_NEAR(stats.delivered_rate, stats.admitted_rate,
                0.05 * stats.admitted_rate + 0.3)
        << j;
    EXPECT_GT(stats.mean_latency, 0.0);
    EXPECT_TRUE(std::isfinite(stats.p95_latency));
  }
  // Stability: utilization stays below 1 everywhere (barrier headroom).
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    if (!xg.has_finite_capacity(v)) continue;
    EXPECT_LT(sim.node_stats(v).utilization, 1.0);
  }
  EXPECT_LT(sim.in_flight(), 500u);
}


TEST(PacketSim, MeasuredNodeUsageMatchesFluid) {
  // Telemetry check: utilization * C at the server equals the fluid f.
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimulator sim(xg, admit_all(xg), {.horizon = 4000.0, .warmup = 400.0});
  sim.run();
  const auto usage = sim.measured_node_usage();
  EXPECT_NEAR(usage[0], 5.0, 0.3);  // f = 5 units/s * c=1
  const auto edges = sim.measured_edge_usage();
  // The server's single processing edge carries all of its work.
  EXPECT_NEAR(edges[xg.processing_edge(0)], 5.0, 0.3);
}

TEST(PacketSim, MeasuredTrafficMatchesRates) {
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  auto routing = maxutil::core::RoutingState::initial(xg);
  routing.set_phi(0, xg.dummy_difference_link(0), 0.4);
  routing.set_phi(0, xg.dummy_input_link(0), 0.6);
  PacketSimulator sim(xg, routing, {.horizon = 4000.0, .warmup = 400.0});
  sim.run();
  const auto traffic = sim.measured_traffic(0);
  EXPECT_NEAR(traffic[xg.dummy_source(0)], 5.0, 0.3);  // offered rate
  EXPECT_NEAR(traffic[0], 3.0, 0.3);                   // admitted 60%
  // The difference link's measured usage equals the rejected rate — the
  // signal Y' needs in the closed loop.
  const auto edges = sim.measured_edge_usage();
  EXPECT_NEAR(edges[xg.dummy_difference_link(0)], 2.0, 0.3);
}

TEST(PacketSim, MeanQueueMatchesMD1) {
  // M/D/1 at rho = 0.5: mean number *waiting* Lq = rho^2 / (2(1-rho)) = 0.25.
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimulator sim(xg, admit_all(xg),
                      {.horizon = 8000.0, .warmup = 800.0, .seed = 5});
  sim.run();
  EXPECT_NEAR(sim.node_stats(0).mean_queue, 0.25, 0.05);
}

TEST(PacketSim, QueuedPacketsProbe) {
  const StreamNetwork net = single_server(10.0, 5.0);
  const ExtendedGraph xg(net);
  PacketSimulator sim(xg, admit_all(xg), {.horizon = 500.0, .warmup = 50.0});
  sim.run();
  std::size_t total = 0;
  for (NodeId v = 0; v < xg.node_count(); ++v) total += sim.queued_packets(v);
  EXPECT_EQ(total, sim.in_flight());
}

}  // namespace
