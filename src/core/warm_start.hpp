#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/routing.hpp"
#include "stream/surgery.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// Transfers a converged routing decision from a network onto its
/// post-surgery survivor (stream::without_server), giving the optimizer a
/// warm start after a failure instead of restarting from all-rejected.
///
/// For every surviving commodity, the fraction of each surviving usable
/// extended edge is copied and the per-node fractions renormalized (mass
/// that pointed at the failed server is spread proportionally over the
/// remaining links; a node whose entire mass died falls back to uniform).
/// The result always satisfies the RoutingState invariants on `new_xg`.
///
/// Warm starts are one payoff of the paper's Section-3 observation that the
/// penalty barrier leaves spare capacity "for faster recovery in the case of
/// node or link failures": the surviving routing is feasible-with-headroom
/// and already near-optimal for the reduced network (bench_recovery
/// quantifies the saved iterations).
/// `capacity_guard` mirrors GradientOptions::capacity_guard: if concentrating
/// the surviving mass would overload a node past guard * C (the failed
/// server's load landing on one replica), the transferred routing is blended
/// toward the all-rejected initial state until it is strictly feasible, so
/// it is always a legal optimizer start.
RoutingState transfer_routing(const xform::ExtendedGraph& old_xg,
                              const RoutingState& old_routing,
                              const xform::ExtendedGraph& new_xg,
                              const stream::SurgeryResult& surgery,
                              double capacity_guard = 0.999);

/// Tolerant sibling of transfer_routing for the churn controller: remaps
/// `old_routing` across arbitrary surgery maps (old network -> new network,
/// e.g. from stream::compose_maps) where — unlike the shrink-only
/// without_server case — the new network may contain entities with *no*
/// pre-surgery counterpart (a restored server's links, a newly arrived
/// commodity).
///
/// * New commodities without an old counterpart start at the all-rejected
///   convention of RoutingState::initial (all mass on the dummy difference
///   link, uniform at interior nodes).
/// * New edges without an old counterpart contribute zero mass; nodes whose
///   entire mass landed on such edges fall back to uniform (all-rejected at
///   dummy sources).
/// * The result is repaired to strict capacity feasibility like
///   transfer_routing.
///
/// Returns nullopt instead of throwing when the maps are inconsistent with
/// the graphs — the controller's cue to fall back to a cold start rather
/// than abort the churn run.
///
/// With `repair = false` the remapped routing is returned as-is (valid, but
/// possibly violating the capacity guard) so the caller can apply its own
/// degradation policy — e.g. the churn controller's `priority` policy sheds
/// whole commodities instead of blending everyone proportionally.
std::optional<RoutingState> remap_routing(const xform::ExtendedGraph& old_xg,
                                          const RoutingState& old_routing,
                                          const xform::ExtendedGraph& new_xg,
                                          const stream::EntityMaps& maps,
                                          double capacity_guard = 0.999,
                                          bool repair = true);

/// Blends `routing` toward the all-rejected initial state until every
/// finite-capacity node is strictly inside guard * C (the `proportional`
/// degradation policy: every commodity sheds the same fraction). Returns the
/// initial state itself when 60 halvings do not suffice. This is the repair
/// pass transfer_routing/routing_from_flows/remap_routing run internally,
/// exported for callers that defer it (remap_routing with repair = false).
RoutingState repair_capacity_feasibility(const xform::ExtendedGraph& xg,
                                         RoutingState routing,
                                         double capacity_guard = 0.999);

/// Reconstructs a valid RoutingState from per-commodity extended-edge flows
/// (e.g. the LP reference vertex, whose ReferenceSolution::flows has exactly
/// this shape): phi at each non-sink commodity node is the node's outgoing
/// flow split, with a uniform fallback where the node carries no flow.
///
/// The second warm-start pipe alongside transfer_routing: a vertex of the
/// *original* constrained polytope typically saturates capacities exactly
/// (f = C), where the barrier cost is infinite, so the result is blended
/// toward the all-rejected initial state until every finite-capacity node is
/// strictly inside guard * C — always a legal optimizer start. Used by the
/// solver layer's lp -> gradient warm-start chaining (docs/SOLVERS.md).
RoutingState routing_from_flows(
    const xform::ExtendedGraph& xg,
    const std::vector<std::vector<std::pair<graph::EdgeId, double>>>& flows,
    double capacity_guard = 0.999);

}  // namespace maxutil::core
