// E1 — Figure 4: cumulative system utility vs number of iterations
// (log scale) for the gradient-based algorithm and the back-pressure
// algorithm, against the optimal total throughput from the LP solver.
//
// Paper setup (Section 6): synthetic random network of 40 nodes, 3
// source/sink pairs, utility = total throughput, capacities ~ U[1,100],
// g ~ U[1,10], c ~ U[1,5], eps = 0.2, eta = 0.04. Expected shape: both
// curves rise monotonically to the optimal line; the gradient algorithm
// needs orders of magnitude fewer iterations (paper: ~10^3 vs ~10^5 to
// reach 95%).
//
// All three solves dispatch through solver::SolverRegistry; the history
// traces come back in SolveResult::history (record_history + the
// backpressure adapter's history_stride passthrough).

#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "solver/registry.hpp"
#include "util/artifacts.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E1 / Figure 4: gradient vs back-pressure vs optimal ===\n");
  std::printf("instance: 40 nodes, 3 commodities, caps~U[1,100], g~U[1,10],"
              " c~U[1,5], lambda=100, eta=0.04, eps=0.1 (seed 2007)\n");
  std::printf("(paper uses eps=0.2; on this instance that leaves a 5%%"
              " barrier gap, so eps=0.1 keeps the asymptote above the 95%%"
              " line -- see bench_eps_sweep/E3 for the full trade-off)\n\n");

  const auto net = bench::paper_instance();
  xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const solver::Problem problem(net, penalty);
  const auto& registry = solver::SolverRegistry::instance();

  const auto reference = registry.solve("lp", problem, {});
  const double optimal = reference.utility;
  std::printf("optimal total throughput (simplex, %zu pivots): %.4f\n\n",
              reference.iterations, optimal);

  // Gradient-based algorithm.
  solver::SolveOptions gradient_options;
  gradient_options.eta = 0.04;
  gradient_options.max_iterations = 20000;
  gradient_options.record_history = true;
  const auto gradient = registry.solve("gradient", problem, gradient_options);

  // Back-pressure baseline.
  solver::SolveOptions bp_options;
  bp_options.max_iterations = 200000;
  bp_options.record_history = true;
  bp_options.extra["history_stride"] = "10";
  const auto backpressure = registry.solve("backpressure", problem, bp_options);

  // The figure's series at log-spaced iteration counts.
  util::Table table({"iteration", "gradient utility", "back-pressure utility",
                     "optimal"});
  const auto& git = gradient.history->column("iteration");
  const auto& gu = gradient.history->column("utility");
  const auto& bit = backpressure.history->column("iteration");
  const auto& bu = backpressure.history->column("utility");
  const auto value_at = [](const std::vector<double>& xs,
                           const std::vector<double>& ys, double x) {
    double best = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (xs[i] <= x) best = ys[i];
    }
    return best;
  };
  for (const double it : {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0,
                          10000.0, 30000.0, 100000.0, 200000.0}) {
    table.add_row({util::Table::cell(static_cast<long long>(it)),
                   util::Table::cell(value_at(git, gu, it)),
                   util::Table::cell(value_at(bit, bu, it)),
                   util::Table::cell(optimal)});
  }
  table.print(std::cout);

  const std::size_t g95 =
      bench::iterations_to_fraction(*gradient.history, "utility", optimal, 0.95);
  const std::size_t b95 = bench::iterations_to_fraction(*backpressure.history,
                                                        "utility", optimal, 0.95);
  // Raw series for external plotting (set MAXUTIL_RESULTS_DIR to enable).
  if (const auto p = util::save_series(
          gradient.history->log_downsample(200), "fig4_gradient")) {
    std::printf("wrote %s\n", p->c_str());
  }
  if (const auto p = util::save_series(
          backpressure.history->log_downsample(200), "fig4_backpressure")) {
    std::printf("wrote %s\n", p->c_str());
  }

  std::printf("\niterations to 95%% of optimal: gradient %zu,"
              " back-pressure %zu (ratio %.0fx)\n",
              g95, b95,
              static_cast<double>(b95) / static_cast<double>(g95 ? g95 : 1));
  std::printf("final utility: gradient %.4f (%.1f%%), back-pressure %.4f"
              " (%.1f%%)\n\n",
              gradient.utility, 100.0 * gradient.utility / optimal,
              backpressure.utility, 100.0 * backpressure.utility / optimal);

  std::printf("shape checks (paper's Figure-4 claims):\n");
  bool ok = true;
  ok &= bench::shape_check("both algorithms reach >= 93% of the optimal line",
                           gradient.utility >= 0.93 * optimal &&
                               backpressure.utility >= 0.93 * optimal);
  ok &= bench::shape_check(
      "gradient reaches 95% in O(10^2..10^3) iterations",
      g95 >= 10 && g95 <= 5000);
  ok &= bench::shape_check(
      "back-pressure needs orders of magnitude more iterations (>= 10x)",
      b95 != bench::kNeverReached && b95 >= 10 * g95);
  bool monotone = true;
  for (std::size_t i = 1; i < gu.size(); ++i) {
    monotone = monotone && gu[i] >= gu[i - 1] - 1e-6;
  }
  ok &= bench::shape_check("gradient utility rises monotonically", monotone);
  return ok ? 0 : 1;
}
