file(REMOVE_RECURSE
  "libmaxutil_sim.a"
)
