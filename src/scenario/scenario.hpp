#pragma once

#include <iosfwd>
#include <string>

#include "stream/model.hpp"

namespace maxutil::scenario {

/// Line-oriented text format for stream-processing scenarios, so networks
/// can be described in files, versioned, and fed to the CLI:
///
/// ```
/// # comment (also after '#' on any line)
/// server <name> <capacity>
/// sink <name>
/// link <from> <to> <bandwidth>
/// commodity <name> <source> <sink> <lambda> <utility>
/// use <commodity> <from> <to> <consumption>
/// potential <commodity> <node> <g>
/// ```
///
/// `<utility>` is one of `linear`, `log`, `sqrt` (each optionally `*<w>` for
/// a weight, e.g. `linear*2.5`) or `alpha<a>` / `alpha<a>*<w>` for the
/// alpha-fair family (e.g. `alpha2`, `alpha0.5*3`). Names must be unique and
/// contain no whitespace; `use`/`potential` reference earlier declarations.
///
/// Parse errors throw util::CheckError with the offending line number.
maxutil::stream::StreamNetwork parse(std::istream& in);

/// Parses a scenario from a string (convenience for tests).
maxutil::stream::StreamNetwork parse_string(const std::string& text);

/// Loads a scenario file; throws util::CheckError when unreadable.
maxutil::stream::StreamNetwork load_file(const std::string& path);

/// Writes `net` in the scenario format; `parse(write(net))` reconstructs an
/// equivalent network (same names, capacities, links, commodities, usable
/// links, and potentials).
void write(const maxutil::stream::StreamNetwork& net, std::ostream& out);

/// Serializes to a string (convenience for tests).
std::string write_string(const maxutil::stream::StreamNetwork& net);

/// Formats a Utility as the scenario token (`linear*2`, `alpha2`, ...).
std::string utility_token(const maxutil::stream::Utility& utility);

/// Parses a scenario utility token; throws on an unknown family.
maxutil::stream::Utility parse_utility(const std::string& token);

}  // namespace maxutil::scenario
