#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/gamma.hpp"
#include "core/routing.hpp"
#include "sim/runtime.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::sim {

using maxutil::graph::EdgeId;
using maxutil::graph::NodeId;
using maxutil::stream::CommodityId;

/// Message tags of the distributed gradient protocol. Every payload ends
/// with the wave sequence number, which makes the protocol safe under the
/// fault injector's drops, delays, duplicates, and crashes (docs/RUNTIME.md
/// has the full degradation model).
inline constexpr int kMarginalTag = 1;  // [edge, dA/dr, blocked?, K, seq]
inline constexpr int kForecastTag = 2;  // [edge, arriving flow, seq]

/// One extended-graph node running the three per-iteration protocols of
/// Section 5 with *only local knowledge*: its own capacity/cost functions,
/// its incident edges' parameters, its routing fractions, and whatever
/// arrives in messages. The runtime delivers messages with unit delay, so
/// the marginal-cost wave genuinely takes O(L) rounds (L = longest path), as
/// the paper's message-complexity discussion states.
///
/// Fault hardening (the stale-update variant of the synchronous protocol;
/// see docs/ALGORITHM.md §8): every input slot remembers the last value it
/// ever received with the wave sequence number it arrived under. A wave
/// normally emits once all inputs of the current sequence are in; when a
/// fault plan is active, a node that has waited `patience` rounds emits
/// anyway using the held-over values, and re-emits if a late arrival then
/// changes its outputs. apply_update() skips (holds phi) whenever any input
/// it depends on is older than `max_staleness` waves — the bounded-staleness
/// guard under which the gradient still converges to the fault-free fixed
/// point.
class NodeActor : public Actor {
 public:
  NodeActor(const xform::ExtendedGraph& xg, NodeId self,
            core::GammaOptions gamma);

  // --- Phase control (invoked by the system at iteration boundaries) ---

  /// Marginal-cost phase: sinks (and any node with no usable out-edges)
  /// immediately broadcast dA/dr = 0 upstream; everyone else waits for all
  /// downstream values (eq. 9's deadlock-free protocol). `seq` is the wave
  /// sequence number, strictly increasing across iterations.
  void begin_marginal(Outbox& out, std::size_t seq);

  /// Applies the Gamma update (eqs. 14-17) using the received downstream
  /// marginals and blocking tags. Purely local. Held (skipped) when inputs
  /// exceed the staleness bound.
  void apply_update();

  /// Forecast phase: dummy sources emit t = lambda immediately; every node
  /// forwards forecast flows once all upstream contributions arrived
  /// (the Section-5 resource-allocation protocol).
  void begin_forecast(Outbox& out, std::size_t seq);

  void on_round(Outbox& out, std::span<const Message> inbox) override;

  // --- Fault-tolerance knobs (set by the system once at construction) ---

  /// Rounds a node waits for current-sequence inputs before emitting with
  /// held-over values. kNoPatience (the default) disables the timeout: the
  /// node waits forever, which is the exact synchronous protocol.
  void set_patience(std::size_t rounds) { patience_ = rounds; }
  /// Maximum input age (in waves) apply_update() tolerates before holding.
  void set_max_staleness(std::size_t waves) { max_staleness_ = waves; }

  static constexpr std::size_t kNoPatience = static_cast<std::size_t>(-1);

  /// Sentinel for the wave-completion stamps below: the current wave has
  /// not completed on this node (yet).
  static constexpr std::size_t kWaveOpen = static_cast<std::size_t>(-1);

  /// True when every carried commodity has emitted in the current
  /// marginal/forecast wave — the system's wave-completion check.
  bool marginal_complete() const;
  bool forecast_complete() const;

  // --- Observer-side accessors (not part of the protocol) ---
  double phi(CommodityId j, EdgeId e) const;
  void set_phi(CommodityId j, EdgeId e, double value);
  double traffic(CommodityId j) const;
  double node_usage() const { return f_node_; }
  double marginal(CommodityId j) const;
  /// Gamma updates skipped by the staleness guard (cumulative).
  std::size_t held_updates() const { return held_updates_; }
  /// Sequence-number resyncs — times this node observed a wave newer than
  /// its own and fast-forwarded (it was crashed, or the kickoff was lost).
  std::size_t resyncs() const { return resyncs_; }
  /// Age (in waves) of this node's oldest input right now.
  std::size_t max_input_staleness() const;

  /// Runtime round in which the current marginal/forecast wave completed
  /// on this node (every carried commodity emitted), or kWaveOpen while it
  /// has not. Stamped in-protocol at emission time — O(1) per wave instead
  /// of an observer rescanning every node every round — and maintained
  /// unconditionally, so observed and unobserved runs execute identical
  /// code. The system turns these into the wave_node_latency_rounds
  /// histogram at wave end.
  std::size_t marginal_done_round() const { return marginal_done_round_; }
  std::size_t forecast_done_round() const { return forecast_done_round_; }

 private:
  struct PerCommodity {
    std::vector<EdgeId> out_edges;
    std::vector<NodeId> out_heads;
    std::vector<EdgeId> in_edges;
    std::vector<NodeId> in_tails;
    std::vector<double> phi;      // parallel to out_edges
    std::vector<double> f_edge;   // resource usage per out edge
    std::vector<double> dr_head;  // received downstream marginals
    std::vector<double> kappa_head;  // received downstream curvatures
    std::vector<char> head_tagged;
    std::vector<char> head_received;
    std::vector<std::size_t> head_seq;  // wave seq of each held marginal
    std::size_t heads_received = 0;
    std::vector<double> inflow;  // parallel to in_edges (arriving units)
    std::vector<char> inflow_received;
    std::vector<std::size_t> inflow_seq;  // wave seq of each held inflow
    std::size_t inflows_received = 0;
    double input_rate = 0.0;  // lambda at the dummy source, else 0
    double t = 0.0;           // traffic from the last forecast
    std::size_t t_seq = 0;    // wave seq at which t was last recomputed
    double f_comm = 0.0;      // this commodity's share of f_node_
    double dr_self = 0.0;
    double kappa_self = 0.0;
    bool tagged_self = false;
    bool is_sink = false;
    // Emission state of the current wave; the patience counters tick every
    // round a wave is open and the node has not emitted yet.
    bool marginal_emitted = true;
    bool forecast_emitted = true;
    std::size_t marginal_wait = 0;
    std::size_t forecast_wait = 0;
  };

  PerCommodity& state(CommodityId j);
  const PerCommodity& state(CommodityId j) const;
  /// Marginal through out-edge `idx`: (Y' + D') c + beta * dr_head.
  double via(CommodityId j, const PerCommodity& s, std::size_t idx) const;
  /// Curvature through out-edge `idx`: c^2 (Y'' + D'') + beta^2 kappa_head.
  double kappa_via(CommodityId j, const PerCommodity& s,
                   std::size_t idx) const;
  void emit_marginal(Outbox& out, CommodityId j);
  void emit_forecast(Outbox& out, CommodityId j);
  /// Patience timeouts: emits overdue waves with held-over values.
  void tick_patience(Outbox& out);
  /// Fast-forwards wave state after observing a newer sequence number than
  /// our own (we missed the kickoff — crashed, or the kickoff was lost).
  void resync_marginal(std::size_t seq);
  void resync_forecast(std::size_t seq);
  /// Recomputes f_node_ as the commodity-index-order sum of f_comm, so the
  /// total is well-defined even when a faulted wave updates only some
  /// commodities.
  void refresh_node_usage();

  const xform::ExtendedGraph* xg_;
  NodeId self_;
  core::GammaOptions gamma_;
  std::vector<std::optional<PerCommodity>> commodities_;
  std::vector<std::size_t> eligible_scratch_;  // apply_update working set
  double f_node_ = 0.0;  // total usage from the last forecast
  std::size_t cur_mseq_ = 0;  // current marginal-wave sequence
  std::size_t cur_fseq_ = 0;  // current forecast-wave sequence
  std::size_t patience_ = kNoPatience;
  std::size_t max_staleness_ = 8;
  std::size_t held_updates_ = 0;
  std::size_t resyncs_ = 0;
  // Wave-completion stamps (see marginal_done_round()); reset by the wave
  // kickoffs and by sequence resyncs.
  std::size_t marginal_done_round_ = kWaveOpen;
  std::size_t forecast_done_round_ = kWaveOpen;
};

/// The full distributed system: one NodeActor per extended node on a
/// synchronous message-passing Runtime. Each iterate() performs the
/// marginal-cost wave, the local Gamma updates, and the forecast wave, and
/// reports how many message rounds the iteration took — the quantity behind
/// the paper's O(L)-vs-O(1) comparison with back-pressure (bench E4).
///
/// This runs the *pure* Section-5 algorithm (no global capacity safeguard —
/// a node only knows local state); with the paper's small eta values the
/// iterates stay strictly feasible, and the equivalence test against the
/// centralized GradientOptimizer pins both implementations together.
///
/// When `runtime_options.faults` is an active plan, waves run the hardened
/// stale-update protocol: nodes get a patience timeout of
/// (max wave depth + 2 * delay_max + 2) rounds, waves end when every live
/// node has emitted (not merely when the network is quiet — dropped
/// messages make early quiet rounds normal), and the staleness guard holds
/// Gamma updates whose inputs are older than `max_staleness` waves.
class DistributedGradientSystem {
 public:
  /// `runtime_options` selects the execution engine (thread count,
  /// deterministic merge, pooled delivery) and the fault plan; the computed
  /// iterates are bit-identical for every thread count — see
  /// tests/runtime_parallel_test.cpp and tests/fault_test.cpp.
  explicit DistributedGradientSystem(const xform::ExtendedGraph& xg,
                                     core::GammaOptions gamma = {},
                                     RuntimeOptions runtime_options = {},
                                     std::size_t max_staleness = 8);

  /// Starts the actors from a caller-provided routing (e.g. the centralized
  /// fixed point, or an LP vertex repaired by core::routing_from_flows)
  /// instead of the paper's all-rejected initial state — the solver layer's
  /// gradient -> distributed warm-start path. The routing must satisfy the
  /// RoutingState invariants on `xg`; the bootstrap forecast wave then
  /// derives consistent traffic/usage state before the first iteration.
  DistributedGradientSystem(const xform::ExtendedGraph& xg,
                            const core::RoutingState& initial_routing,
                            core::GammaOptions gamma = {},
                            RuntimeOptions runtime_options = {},
                            std::size_t max_staleness = 8);

  /// One full algorithm iteration; returns message rounds consumed.
  std::size_t iterate();

  void run(std::size_t iterations);

  std::size_t iterations() const { return iterations_; }
  std::size_t last_iteration_rounds() const { return last_rounds_; }
  std::size_t last_iteration_messages() const { return last_messages_; }
  /// False when a wave of the last iteration exhausted its round budget
  /// without completing (possible under fail-stop crashes or pathological
  /// delay models) — observable non-convergence instead of an abort.
  bool last_iteration_converged() const { return last_converged_; }
  const Runtime& runtime() const { return runtime_; }

  /// Installs heterogeneous link delays (see Runtime::set_delay_model).
  /// The wave protocols wait for all inputs, so the computed iterates are
  /// identical to the uniform-delay execution — only rounds per iteration
  /// grow to the longest-delay path.
  void set_delay_model(std::function<std::size_t(ActorId, ActorId)> delay) {
    runtime_.set_delay_model(std::move(delay));
  }

  /// Gathers the actors' routing fractions (observer-side).
  core::RoutingState routing_snapshot() const;

  /// Utility of the current routing, evaluated observer-side via the shared
  /// flow solver.
  double utility() const;

  // --- Fault telemetry (observer-side, summed over live actors) ---
  /// Gamma updates held by the staleness guard so far.
  std::size_t held_updates() const;
  /// Sequence-number resyncs across all nodes so far.
  std::size_t resync_events() const;
  /// Oldest input age (in waves) across all nodes right now.
  std::size_t max_input_staleness() const;

 private:
  /// Round budget per wave; generous — a healthy wave needs O(longest
  /// path) rounds, and exhaustion marks the iteration non-converged.
  static constexpr std::size_t kWaveRoundBudget = 100000;

  /// Installs a commodity-DAG-aware shard partition of the extended graph
  /// into the runtime (one shard per worker thread, edges weighted by the
  /// number of commodities that can route over them — a proxy for messages
  /// per wave). No-op when the options rule sharding out (single thread,
  /// chunked mode, legacy delivery, link faults); results are identical
  /// either way.
  void install_partition();
  void marginal_wave();
  void forecast_wave();
  /// Runs rounds until the wave completes on every live actor (fault-free
  /// this coincides with quiescence; under drops, quiet rounds before the
  /// patience timeouts fire are normal and the loop keeps stepping).
  /// Observation is read-only and does not change the round sequence, so
  /// runs are bit-identical with it on or off.
  void drive_wave(bool marginal);
  bool wave_complete(bool marginal) const;

  // --- Observability (active only while runtime_.observing()) ---
  void obs_register_metrics();
  /// Records every live node's wave latency from its completion-round
  /// stamp (NodeActor::marginal_done_round) — one scan at wave end, not
  /// one per round, so observing adds O(n) per wave instead of
  /// O(n * rounds * commodities). Latencies are tallied locally and flushed
  /// as one observe_n per distinct value. Returns true when every live node
  /// carries a fresh stamp, which is exactly wave_complete().
  bool obs_record_wave_latencies(bool marginal, std::size_t wave_start);
  void obs_finish_wave(bool marginal, std::size_t wave_start,
                       std::size_t span);

  const xform::ExtendedGraph* xg_;
  core::GammaOptions gamma_;
  Runtime runtime_;
  std::vector<NodeActor*> actors_;  // owned by runtime_, indexed by node id
  std::size_t iterations_ = 0;
  std::size_t marginal_seq_ = 0;
  std::size_t forecast_seq_ = 0;
  std::size_t last_rounds_ = 0;
  std::size_t last_messages_ = 0;
  bool last_converged_ = true;

  /// Metric handles, valid only while runtime_.observing().
  struct ObsIds {
    obs::MetricId waves, wave_rounds, node_latency, resyncs, iterations,
        held_updates, staleness;
  } obs_ids_{};
  std::size_t obs_synced_resyncs_ = 0;
  /// Scratch for obs_record_wave_latencies (index = latency in rounds);
  /// a member so per-wave harvests reuse its high-water capacity.
  std::vector<std::uint64_t> obs_latency_tally_;
};

}  // namespace maxutil::sim
