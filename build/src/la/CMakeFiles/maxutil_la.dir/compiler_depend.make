# Empty compiler generated dependencies file for maxutil_la.
# This may be replaced when dependencies are built.
