#pragma once

#include <cstdint>
#include <vector>

#include "core/routing.hpp"
#include "des/event_queue.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::des {

using maxutil::graph::EdgeId;
using maxutil::graph::NodeId;
using maxutil::stream::CommodityId;

/// Options for a packet-level run.
struct PacketSimOptions {
  /// Simulated seconds.
  SimTime horizon = 2000.0;
  /// Statistics ignore everything before this time (transient warm-up).
  SimTime warmup = 200.0;
  /// Fluid units per packet: arrivals are Poisson with rate
  /// lambda_j / packet_size packets per second.
  double packet_size = 1.0;
  std::uint64_t seed = 1;
};

/// Per-commodity results, in fluid (source) units per second.
struct CommodityStats {
  double offered_rate = 0.0;    // measured Poisson arrivals
  double admitted_rate = 0.0;   // past the dummy admission split
  double delivered_rate = 0.0;  // arrived at the sink (source units)
  double rejected_rate = 0.0;
  double mean_latency = 0.0;    // admission -> sink sojourn, seconds
  double p95_latency = 0.0;
  std::size_t delivered_packets = 0;
};

/// Per-extended-node results.
struct NodeStats {
  double utilization = 0.0;  // busy fraction after warm-up
  double mean_queue = 0.0;   // time-average packets queued (excl. in service)
};

/// Packet-level discrete-event validation of a fluid solution.
///
/// The paper's model (and both optimizers) are *fluid*: rates, not packets.
/// This simulator turns a converged routing decision into an operating
/// policy — Poisson packet arrivals at each dummy source, Bernoulli
/// admission/rejection by the dummy fractions, probabilistic per-packet
/// routing by phi, FIFO service at every extended node at its resource rate
/// (a packet of fluid size s crossing edge e occupies its tail for
/// s * c_e(j) / C_v seconds, then shrinks by beta_e) — and measures whether
/// the promised rates and stability actually materialize in a queueing
/// system. The fluid capacity headroom left by the barrier (Section 3)
/// shows up here as finite queues and bounded latency; bench_packet_level
/// quantifies the eps -> latency trade-off.
class PacketSimulator {
 public:
  /// `routing` must be a valid RoutingState on `xg` (typically a converged
  /// optimizer iterate). The referenced objects must outlive the simulator.
  PacketSimulator(const xform::ExtendedGraph& xg,
                  const core::RoutingState& routing,
                  PacketSimOptions options = {});

  /// Runs the full horizon (idempotent; returns total events executed).
  std::size_t run();

  CommodityStats commodity_stats(CommodityId j) const;
  NodeStats node_stats(NodeId v) const;

  /// Total packets still queued or in service when the horizon ended — a
  /// stability probe (bounded for utilization < 1).
  std::size_t in_flight() const;

  // --- Measured rates (post-warm-up), the telemetry a real deployment
  // would feed back into the optimizer (des::MeasurementDrivenOptimizer) ---

  /// Resource-consumption rate per extended edge: work started on the edge
  /// divided by the measurement window (the packet estimate of f_ik).
  std::vector<double> measured_edge_usage() const;

  /// Resource-consumption rate per node (estimate of f_i).
  std::vector<double> measured_node_usage() const;

  /// Commodity-j fluid arrival rate per node (estimate of t_i(j)); the
  /// dummy source reports its offered rate.
  std::vector<double> measured_traffic(CommodityId j) const;

  /// Packets queued (including in service) at node v when the horizon
  /// ended — the congestion signal a closed-loop controller watches: a
  /// backlog means the node is effectively saturated even if a short
  /// window's utilization reads below 1.
  std::size_t queued_packets(NodeId v) const;

 private:
  struct Packet {
    CommodityId commodity;
    double size;           // current fluid size (shrinks/expands per edge)
    SimTime admitted_at;
  };
  struct NodeState {
    std::vector<Packet> queue;  // FIFO; front is in service
    bool busy = false;
    SimTime busy_since = 0.0;
    double busy_time = 0.0;        // after warm-up
    double queue_integral = 0.0;   // time-weighted queued count after warm-up
    SimTime last_change = 0.0;
  };
  struct Choice {
    EdgeId edge;
    double cumulative;  // cumulative phi for sampling
  };

  void generate_arrival(CommodityId j);
  void arrive(NodeId v, Packet packet);
  void start_service(NodeId v);
  EdgeId sample_edge(NodeId v, CommodityId j);
  void touch_queue(NodeId v);
  double measured_window() const;

  const xform::ExtendedGraph* xg_;
  PacketSimOptions options_;
  maxutil::util::Rng rng_;
  EventQueue events_;
  std::vector<NodeState> nodes_;
  std::vector<std::vector<Choice>> choices_;  // [commodity * V + node]
  // Per-commodity counters (post-warm-up).
  std::vector<std::size_t> offered_, admitted_, rejected_, delivered_;
  std::vector<std::vector<double>> sojourns_;
  // Telemetry accumulators (post-warm-up): fluid work per edge, fluid
  // arrivals per (commodity, node).
  std::vector<double> edge_work_;
  std::vector<std::vector<double>> node_arrivals_;  // [commodity][node]
  bool ran_ = false;
};

}  // namespace maxutil::des
