// maxutil command-line interface: validate, solve, visualize, and generate
// stream-processing scenarios in the text format of src/scenario.
//
//   maxutil_cli validate <file>
//   maxutil_cli solve <file> [--algo NAME[,NAME...]|help] [--compare]
//                            [--eta X] [--eps X] [--iters N] [--tol X]
//   maxutil_cli churn <file> --plan SPEC [--algo NAME[,...]] [--policy P]
//                            [--budget N] [--report] [--trace FILE]
//                            [--metrics FILE]
//   maxutil_cli serve <file> [--input FILE|-|--listen SOCKET] [--window W]
//                            [--admit-share X] [--deny-share X] [...solver
//                            flags...] [--decisions FILE] [--json FILE]
//   maxutil_cli dot <file> [--extended]
//   maxutil_cli generate [--servers N] [--commodities J] [--stages K]
//                        [--lambda X] [--seed S]
//   maxutil_cli help | --help
//
// `serve` runs the online admission-serving loop (docs/SERVE.md): a stream
// of admit=/query= requests and topology events, coalesced into batches of
// at most one warm-started re-solve (plus one revert solve for denials),
// answered admit/deny/degrade from the updated plan. Deterministic replay:
// the decision log depends only on the input stream.
//
// `churn` replays a scripted topology-churn plan (docs/CONTROLLER.md) through
// ctrl::Controller, re-optimizing after every event with warm-started
// re-solves, and reports per-event recovery SLOs. Exit 1 when any event's
// re-solve failed.
//
// `solve` dispatches every algorithm through solver::SolverRegistry —
// `--algo help` prints the live backend list (gradient, distributed,
// backpressure, lp, fw, plus anything registered later), a comma-separated
// spec runs a warm-start solver::Pipeline, and `--compare` races every
// registered backend on the same scenario.
//
// Exit code 0 on success; 1 on a usage error, parse failure, failed solve,
// or (for `validate`) validation errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/churn_plan.hpp"
#include "ctrl/controller.hpp"
#include "serve/acceptor.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/wal.hpp"
#include "gen/random_instance.hpp"
#include "scenario/scenario.hpp"
#include "solver/pipeline.hpp"
#include "solver/registry.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"

namespace {

using namespace maxutil;

int usage_to(std::FILE* out) {
  std::fprintf(
      out,
      "usage: maxutil_cli validate <file>\n"
      "       maxutil_cli solve <file> [--algo NAME[,NAME...]|help]"
      " [--compare] [--compare-json FILE]\n"
      "                            [--eta X] [--eps X] [--iters N] [--tol X]"
      " [--threads T] [--partition shard|chunked]\n"
      "                            [--faults SPEC] [--newton] [--report]"
      " [--metrics FILE] [--trace FILE]"
      " [--metrics-report]\n"
      "         (--algo: a registered solver — one of %s —\n"
      "          or a comma-separated warm-start pipeline such as"
      " 'lp,gradient'; 'help' lists the registry)\n"
      "         (--compare: run every registered solver on the scenario and"
      " tabulate utility/iterations/wall time;\n"
      "          --compare-json FILE additionally writes the table as JSON)\n"
      "         (--threads: actor-runtime workers for solvers with a"
      " parallel engine; 0 = all hardware threads)\n"
      "         (--partition: how parallel rounds split actors — 'shard'"
      " (graph-aware shards, default) or 'chunked'\n"
      "          (contiguous id chunks, the A/B reference); results are"
      " bit-identical either way)\n"
      "         (--faults: inject message faults into the distributed"
      " runtime; SPEC is a comma list of drop=P, delay=A-B,\n"
      "          dup=P, seed=S, crash=NODE@BEGIN-END, link=FROM-TO@P)\n"
      "         (--metrics: write the metric registry as CSV; --trace:"
      " write a chrome://tracing JSON (or CSV if FILE ends\n"
      "          in .csv); --metrics-report: print the metric catalog —"
      " all three imply observation)\n"
      "         (--lp-backend dense|sparse: simplex implementation for the"
      " lp/lp-sparse stages — 'sparse' is the\n"
      "          revised simplex that scales to large instances and supports"
      " warm-started re-solves)\n"
      "       maxutil_cli churn <file> --plan SPEC [--algo NAME[,...]]"
      " [--policy proportional|priority|freeze]\n"
      "                            [--eps X] [--eta X] [--iters N] [--tol X]"
      " [--threads T] [--budget N] [--report]\n"
      "                            [--trace FILE] [--metrics FILE]\n"
      "         (--plan: comma list of crash=NODE@T, restore=NODE@T,"
      " cap=NODE*F@T, bw=FROM-TO*F@T,\n"
      "          arrive=COMMODITY[*F]@T, depart=COMMODITY@T — scripted"
      " topology churn replayed in time order\n"
      "          with a warm-started re-solve per event; --budget caps"
      " iterations per re-solve; --policy picks the\n"
      "          admission-degradation transient; see docs/CONTROLLER.md)\n"
      "       maxutil_cli serve <file> [--input FILE|-] [--listen SOCKET]"
      " [--window W]\n"
      "                            [--algo NAME[,...]] [--policy P] [--eps X]"
      " [--eta X] [--iters N] [--tol X]\n"
      "                            [--threads T] [--partition shard|chunked]"
      " [--budget N]\n"
      "                            [--admit-share X] [--deny-share X]"
      " [--max-pending N] [--decisions FILE]\n"
      "                            [--json FILE] [--report] [--metrics FILE]"
      " [--trace FILE]\n"
      "                            [--wal DIR|--recover DIR]"
      " [--snapshot-every N] [--flush-ms MS] [--stamp]\n"
      "         (online admission serving, docs/SERVE.md: reads one request"
      " per line — admit=COMMODITY[*F]@T,\n"
      "          query=COMMODITY@T, or any churn event — from --input"
      " (default '-' = stdin) or a Unix-domain\n"
      "          socket via --listen (multi-client, poll-driven; ends when"
      " the last client leaves); coalesces\n"
      "          requests within --window virtual time units into one"
      " re-solve; answers admit/degrade/deny at\n"
      "          thresholds --admit-share/--deny-share on the admitted share;"
      " --max-pending denies arrivals\n"
      "          beyond N pending with a retryable overload error;"
      " --decisions writes the deterministic decision\n"
      "          log ('-' = stdout), --json a machine-readable summary with"
      " p50/p99 decision latency and\n"
      "          decisions/sec)\n"
      "         (--wal DIR: durable serving — every request is write-ahead"
      " logged under DIR before it enters a\n"
      "          batch, with periodic snapshots every --snapshot-every"
      " flushes; restarting over the same DIR\n"
      "          recovers snapshot + WAL tail bit-identically and bumps the"
      " fencing epoch; --recover DIR is the\n"
      "          same but fails when DIR holds no prior state; see"
      " docs/SERVE.md §8)\n"
      "         (--flush-ms: wall-clock deadline for socket mode — an open"
      " batch flushes at most MS milliseconds\n"
      "          after it opens even if no request arrives; --stamp replaces"
      " client timestamps with boundary\n"
      "          arrival ordinals, the multi-client total order of"
      " docs/SERVE.md §9)\n"
      "       maxutil_cli dot <file> [--extended]\n"
      "       maxutil_cli generate [--servers N] [--commodities J]"
      " [--stages K] [--lambda X] [--seed S]\n"
      "       maxutil_cli help   (this text; also --help)\n",
      solver::SolverRegistry::instance().names_joined().c_str());
  return out == stdout ? 0 : 1;
}

int usage() { return usage_to(stderr); }

/// Parses "--key value" pairs after the subcommand/file arguments.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw util::CheckError("unexpected argument '" + key + "'");
    }
    key = key.substr(2);
    if (key == "extended" || key == "report" || key == "newton" ||
        key == "metrics-report" || key == "compare" || key == "stamp") {
      flags[key] = "1";
    } else {
      if (i + 1 >= argc) {
        throw util::CheckError("flag --" + key + " needs a value");
      }
      flags[key] = argv[++i];
    }
  }
  return flags;
}

double flag_number(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

int cmd_validate(const std::string& path) {
  const auto net = scenario::load_file(path);
  const auto report = stream::validate(net);
  std::fputs(report.to_string().c_str(), stdout);
  std::printf("%zu nodes, %zu links, %zu commodities: %s\n", net.node_count(),
              net.link_count(), net.commodity_count(),
              report.ok() ? "OK" : "INVALID");
  return report.ok() ? 0 : 1;
}

/// `--algo help`: the live registry, with capabilities and defaults.
int print_solver_help() {
  const auto& registry = solver::SolverRegistry::instance();
  util::Table table({"solver", "default iters", "capabilities", "description"});
  for (const solver::SolverInfo& info : registry.solvers()) {
    std::string caps;
    const auto tag = [&caps](bool on, const char* name) {
      if (!on) return;
      if (!caps.empty()) caps += " ";
      caps += name;
    };
    tag(info.supports_warm_start, "warm-start");
    tag(info.supports_threads, "threads");
    tag(info.supports_observation, "observe");
    tag(info.emits_routing, "routing");
    table.add_row({info.name,
                   info.default_iterations == 0
                       ? std::string("-")
                       : util::Table::cell(static_cast<long long>(
                             info.default_iterations)),
                   caps.empty() ? "-" : caps, info.description});
  }
  table.print(std::cout);
  std::printf(
      "\npipelines: --algo A,B,... chains solvers left to right, warm-"
      "starting each stage\nfrom the previous stage's routing when supported"
      " (e.g. --algo lp,gradient).\nSee docs/SOLVERS.md for the contract.\n");
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// `--compare`: every registered solver on the same Problem; console table
/// plus optional machine-readable JSON.
int run_compare(const solver::Problem& problem,
                const solver::SolveOptions& options, const std::string& path,
                const std::map<std::string, std::string>& flags) {
  const auto& registry = solver::SolverRegistry::instance();
  util::Table table({"solver", "status", "utility", "iterations", "wall s"});
  std::vector<std::pair<std::string, solver::SolveResult>> results;
  for (const solver::SolverInfo& info : registry.solvers()) {
    auto result = registry.solve(info.name, problem, options);
    table.add_row(
        {info.name, solver::to_string(result.status),
         util::Table::cell(result.utility, 6),
         util::Table::cell(static_cast<long long>(result.iterations)),
         util::Table::cell(result.wall_seconds, 4)});
    results.emplace_back(info.name, std::move(result));
  }
  table.print(std::cout);

  if (flags.count("compare-json") != 0) {
    const std::string& file = flags.at("compare-json");
    std::ofstream out(file);
    util::ensure(out.good(), "cannot open --compare-json file " + file);
    char buf[64];
    out << "{\n  \"scenario\": \"" << json_escape(path) << "\",\n"
        << "  \"epsilon\": "
        << (std::snprintf(buf, sizeof(buf), "%.10g",
                          problem.extended().penalty_config().epsilon),
            buf)
        << ",\n  \"solvers\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [name, r] = results[i];
      out << "    {\"name\": \"" << name << "\", \"status\": \""
          << solver::to_string(r.status) << "\", ";
      std::snprintf(buf, sizeof(buf), "%.10g", r.utility);
      out << "\"utility\": " << buf << ", \"iterations\": " << r.iterations
          << ", ";
      std::snprintf(buf, sizeof(buf), "%.6g", r.wall_seconds);
      out << "\"wall_seconds\": " << buf << ", \"admitted\": [";
      for (std::size_t j = 0; j < r.admitted.size(); ++j) {
        std::snprintf(buf, sizeof(buf), "%.10g", r.admitted[j]);
        out << (j == 0 ? "" : ", ") << buf;
      }
      out << "], \"metrics\": {";
      for (std::size_t j = 0; j < r.metrics.size(); ++j) {
        std::snprintf(buf, sizeof(buf), "%.10g", r.metrics[j].second);
        out << (j == 0 ? "" : ", ") << "\"" << json_escape(r.metrics[j].first)
            << "\": " << buf;
      }
      out << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    util::ensure(out.good(), "write to --compare-json file failed: " + file);
    std::fprintf(stderr, "wrote solver comparison JSON to %s\n", file.c_str());
  }
  return 0;
}

int cmd_solve(const std::string& path,
              const std::map<std::string, std::string>& flags) {
  const std::string algo =
      flags.count("algo") != 0 ? flags.at("algo") : "gradient";
  if (algo == "help") return print_solver_help();

  const auto net = scenario::load_file(path);
  stream::validate_or_throw(net);
  xform::PenaltyConfig penalty;
  penalty.epsilon = flag_number(flags, "eps", 0.1);
  const solver::Problem problem(net, penalty);

  const bool want_obs = flags.count("metrics") != 0 ||
                        flags.count("trace") != 0 ||
                        flags.count("metrics-report") != 0;
  solver::SolveOptions options;
  options.eta =
      flag_number(flags, "eta", flags.count("newton") != 0 ? 1.0 : 0.05);
  options.max_iterations =
      static_cast<std::size_t>(flag_number(flags, "iters", 0));
  options.tolerance = flag_number(flags, "tol", 0.0);
  options.curvature_scaled = flags.count("newton") != 0;
  const double threads = flag_number(flags, "threads", 1);
  options.threads =
      threads <= 0 ? 0 : static_cast<std::size_t>(threads);
  if (flags.count("partition") != 0) {
    options.partition = flags.at("partition");
  }
  options.report = flags.count("report") != 0;
  options.observe = want_obs;
  if (flags.count("faults") != 0) options.extra["faults"] = flags.at("faults");
  // --lp-backend dense|sparse: which simplex implementation the lp/lp-sparse
  // stages use (extra passthrough; other stages ignore it).
  if (flags.count("lp-backend") != 0) {
    const std::string& backend = flags.at("lp-backend");
    util::ensure(backend == "dense" || backend == "sparse",
                 "--lp-backend must be 'dense' or 'sparse'");
    options.extra["lp_backend"] = backend;
  }

  if (flags.count("compare") != 0 || flags.count("compare-json") != 0) {
    return run_compare(problem, options, path, flags);
  }

  const auto pipeline = solver::Pipeline::parse(algo);
  if (want_obs &&
      !pipeline.any_stage(&solver::SolverInfo::supports_observation)) {
    std::fprintf(stderr,
                 "warning: --metrics/--trace/--metrics-report instrument the "
                 "actor runtime and require a solver with the observe "
                 "capability (see --algo help); ignored\n");
  }
  const auto result = pipeline.run(problem, options);

  for (const std::string& warning : result.warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }
  if (!solver::is_usable(result.status)) {
    std::fprintf(stderr, "%s\n",
                 result.message.empty() ? "solve failed" : result.message.c_str());
    return 1;
  }

  if (!result.report.empty()) {
    std::fputs(result.report.c_str(), stdout);
    std::printf("\n");
  }

  if (result.obs.has_value()) {
    const solver::ObsSnapshot& obs = *result.obs;
    if (flags.count("metrics") != 0) {
      const std::string& file = flags.at("metrics");
      std::ofstream out(file);
      util::ensure(out.good(), "cannot open --metrics file " + file);
      out << obs.metrics_csv;
      std::fprintf(stderr, "wrote metrics CSV to %s\n", file.c_str());
    }
    if (flags.count("trace") != 0) {
      const std::string& file = flags.at("trace");
      std::ofstream out(file);
      util::ensure(out.good(), "cannot open --trace file " + file);
      const bool csv =
          file.size() >= 4 && file.compare(file.size() - 4, 4, ".csv") == 0;
      out << (csv ? obs.trace_csv : obs.trace_chrome_json);
      std::fprintf(stderr, "wrote %s trace (%zu events) to %s\n",
                   csv ? "CSV" : "chrome://tracing", obs.trace_events,
                   file.c_str());
    }
    if (flags.count("metrics-report") != 0) {
      std::printf("metric catalog:\n%s\n", obs.metrics_report.c_str());
    }
  }

  for (const std::string& note : result.notes) {
    std::printf("%s\n", note.c_str());
  }

  if (result.stages.size() > 1) {
    std::printf("pipeline stages:\n");
    util::Table stages({"stage", "status", "utility", "iterations", "wall s"});
    for (const solver::StageSummary& stage : result.stages) {
      stages.add_row(
          {stage.solver, solver::to_string(stage.status),
           util::Table::cell(stage.utility, 6),
           util::Table::cell(static_cast<long long>(stage.iterations)),
           util::Table::cell(stage.wall_seconds, 4)});
    }
    stages.print(std::cout);
    std::printf("\n");
  }

  util::Table table({"commodity", "offered", "admitted", "share"});
  for (stream::CommodityId j = 0; j < net.commodity_count(); ++j) {
    table.add_row({net.commodity_name(j), util::Table::cell(net.lambda(j)),
                   util::Table::cell(result.admitted[j]),
                   util::Table::cell(100.0 * result.admitted[j] / net.lambda(j),
                                     1) +
                       "%"});
  }
  table.print(std::cout);
  std::printf("total utility (%s): %.6f\n", pipeline.spec().c_str(),
              result.utility);
  return 0;
}

int cmd_churn(const std::string& path,
              const std::map<std::string, std::string>& flags) {
  util::ensure(flags.count("plan") != 0,
               "churn needs --plan SPEC (see docs/CONTROLLER.md)");
  const ctrl::ChurnPlan plan = ctrl::parse_churn_plan(flags.at("plan"));
  const auto net = scenario::load_file(path);
  stream::validate_or_throw(net);

  ctrl::ControllerOptions options;
  options.pipeline = flags.count("algo") != 0 ? flags.at("algo") : "gradient";
  if (flags.count("policy") != 0) {
    options.policy = ctrl::parse_policy(flags.at("policy"));
  }
  options.penalty.epsilon = flag_number(flags, "eps", 0.1);
  options.solve.eta = flag_number(flags, "eta", 0.0);
  options.solve.max_iterations =
      static_cast<std::size_t>(flag_number(flags, "iters", 0));
  options.solve.tolerance = flag_number(flags, "tol", 0.0);
  const double threads = flag_number(flags, "threads", 1);
  options.solve.threads = threads <= 0 ? 0 : static_cast<std::size_t>(threads);
  if (flags.count("partition") != 0) {
    options.solve.partition = flags.at("partition");
  }
  options.watchdog_iterations =
      static_cast<std::size_t>(flag_number(flags, "budget", 4000));
  options.record_trace = flags.count("trace") != 0;

  ctrl::Controller controller(net, options);
  const ctrl::ChurnReport report = controller.run(plan);

  for (const ctrl::EventOutcome& outcome : report.events) {
    if (!solver::is_usable(outcome.status)) {
      std::fprintf(stderr, "warning: event '%s' failed: %s\n",
                   outcome.event.describe().c_str(),
                   outcome.message.empty() ? solver::to_string(outcome.status)
                                           : outcome.message.c_str());
    }
  }
  if (flags.count("report") != 0) {
    std::fputs(report.summary().c_str(), stdout);
  } else {
    std::printf("%zu events: %zu warm, %zu cold, %zu exact restores, "
                "%zu retries, %zu failures\n",
                report.events.size(), report.warm_starts, report.cold_starts,
                report.exact_restores, report.watchdog_retries,
                report.failures);
    std::printf("utility %.6f -> %.6f\n", report.initial_utility,
                report.final_utility);
  }
  if (flags.count("metrics") != 0) {
    const std::string& file = flags.at("metrics");
    std::ofstream out(file);
    util::ensure(out.good(), "cannot open --metrics file " + file);
    controller.metrics().write_csv(out);
    std::fprintf(stderr, "wrote churn metrics CSV to %s\n", file.c_str());
  }
  if (flags.count("trace") != 0) {
    const std::string& file = flags.at("trace");
    std::ofstream out(file);
    util::ensure(out.good(), "cannot open --trace file " + file);
    const bool csv =
        file.size() >= 4 && file.compare(file.size() - 4, 4, ".csv") == 0;
    if (csv) {
      controller.tracer().write_csv(out);
    } else {
      controller.tracer().write_chrome_json(out);
    }
    std::fprintf(stderr, "wrote churn %s trace (%zu events) to %s\n",
                 csv ? "CSV" : "chrome://tracing",
                 controller.tracer().events().size(), file.c_str());
  }
  return report.failures > 0 ? 1 : 0;
}

int cmd_serve(const std::string& path,
              const std::map<std::string, std::string>& flags) {
  const auto net = scenario::load_file(path);
  stream::validate_or_throw(net);

  serve::ServeOptions options;
  options.controller.pipeline =
      flags.count("algo") != 0 ? flags.at("algo") : "gradient";
  if (flags.count("policy") != 0) {
    options.controller.policy = ctrl::parse_policy(flags.at("policy"));
  }
  options.controller.penalty.epsilon = flag_number(flags, "eps", 0.1);
  options.controller.solve.eta = flag_number(flags, "eta", 0.0);
  options.controller.solve.max_iterations =
      static_cast<std::size_t>(flag_number(flags, "iters", 0));
  options.controller.solve.tolerance = flag_number(flags, "tol", 0.0);
  const double threads = flag_number(flags, "threads", 1);
  options.controller.solve.threads =
      threads <= 0 ? 0 : static_cast<std::size_t>(threads);
  if (flags.count("partition") != 0) {
    options.controller.solve.partition = flags.at("partition");
  }
  options.controller.watchdog_iterations =
      static_cast<std::size_t>(flag_number(flags, "budget", 4000));
  options.window = static_cast<std::size_t>(flag_number(flags, "window", 0));
  options.admit_share = flag_number(flags, "admit-share", 0.95);
  options.deny_share = flag_number(flags, "deny-share", 0.05);
  options.max_pending =
      static_cast<std::size_t>(flag_number(flags, "max-pending", 0));
  options.record_trace = flags.count("trace") != 0;

  serve::Daemon daemon(net, options);

  // Durability: --wal DIR serves with a write-ahead log rooted at DIR
  // (recovering automatically when the directory holds prior state);
  // --recover DIR is the same but fails fast when there is nothing to
  // recover — the restart path of docs/SERVE.md §8.
  util::ensure(flags.count("wal") == 0 || flags.count("recover") == 0,
               "--wal and --recover name the same directory role; pass one");
  std::string wal_dir;
  if (flags.count("wal") != 0) wal_dir = flags.at("wal");
  if (flags.count("recover") != 0) wal_dir = flags.at("recover");
  std::unique_ptr<serve::Durable> durable;
  if (!wal_dir.empty()) {
    serve::DurableOptions durable_options;
    durable_options.dir = wal_dir;
    durable_options.snapshot_every =
        static_cast<std::size_t>(flag_number(flags, "snapshot-every", 8));
    durable = std::make_unique<serve::Durable>(daemon, durable_options);
    util::ensure(flags.count("recover") == 0 || durable->recovered(),
                 "--recover " + wal_dir + ": no prior state to recover");
    if (durable->recovered()) {
      std::fprintf(stderr, "recovered epoch %llu: replayed %llu records\n",
                   static_cast<unsigned long long>(durable->epoch()),
                   static_cast<unsigned long long>(durable->replayed()));
    }
  }
  serve::DaemonSink plain(daemon);
  serve::ServeSink& sink =
      durable ? static_cast<serve::ServeSink&>(*durable) : plain;

  if (flags.count("listen") != 0) {
    serve::AcceptorOptions acceptor_options;
    acceptor_options.flush_ms =
        static_cast<std::size_t>(flag_number(flags, "flush-ms", 0));
    acceptor_options.stamp_arrival = flags.count("stamp") != 0;
    serve::Acceptor acceptor(sink, acceptor_options);
    acceptor.run(flags.at("listen"));
  } else {
    const std::string input =
        flags.count("input") != 0 ? flags.at("input") : "-";
    // Stream request by request, not parse-to-EOF-then-replay: a pipe or
    // FIFO source is served live, and under --wal each request hits the
    // write-ahead log as it arrives — a kill mid-stream loses nothing
    // already read (docs/SERVE.md §7).
    const auto feed = [&sink](serve::Request&& request) {
      sink.submit(request);
    };
    if (input == "-") {
      serve::for_each_request(std::cin, feed);
    } else {
      std::ifstream in(input);
      util::ensure(in.good(), "cannot open --input file " + input);
      serve::for_each_request(in, feed);
    }
  }
  const serve::ServeReport& report =
      durable ? durable->finish() : daemon.finish();
  const std::string decision_log =
      durable ? durable->full_decision_log() : report.decision_log();

  if (flags.count("decisions") != 0 && flags.at("decisions") != "-") {
    const std::string& file = flags.at("decisions");
    std::ofstream out(file);
    util::ensure(out.good(), "cannot open --decisions file " + file);
    out << decision_log;
    std::fprintf(stderr, "wrote decision log to %s\n", file.c_str());
  } else {
    std::fputs(decision_log.c_str(), stdout);
  }
  if (flags.count("report") != 0) {
    std::fputs(report.summary().c_str(), stdout);
  } else {
    std::printf("%zu decisions, %zu batches, utility %.6f -> %.6f\n",
                report.decisions.size(), report.batches,
                report.initial_utility, report.final_utility);
  }
  if (flags.count("json") != 0) {
    const std::string& file = flags.at("json");
    std::ofstream out(file);
    util::ensure(out.good(), "cannot open --json file " + file);
    report.write_json(out);
    std::fprintf(stderr, "wrote serve summary JSON to %s\n", file.c_str());
  }
  if (flags.count("metrics") != 0) {
    const std::string& file = flags.at("metrics");
    std::ofstream out(file);
    util::ensure(out.good(), "cannot open --metrics file " + file);
    daemon.controller().metrics().write_csv(out);
    std::fprintf(stderr, "wrote serve metrics CSV to %s\n", file.c_str());
  }
  if (flags.count("trace") != 0) {
    const std::string& file = flags.at("trace");
    std::ofstream out(file);
    util::ensure(out.good(), "cannot open --trace file " + file);
    const bool csv =
        file.size() >= 4 && file.compare(file.size() - 4, 4, ".csv") == 0;
    if (csv) {
      daemon.controller().tracer().write_csv(out);
    } else {
      daemon.controller().tracer().write_chrome_json(out);
    }
    std::fprintf(stderr, "wrote serve %s trace (%zu events) to %s\n",
                 csv ? "CSV" : "chrome://tracing",
                 daemon.controller().tracer().events().size(), file.c_str());
  }
  for (const serve::DecisionRecord& record : report.decisions) {
    if (record.reason.rfind("re-solve failed", 0) == 0) return 1;
  }
  return 0;
}

int cmd_dot(const std::string& path,
            const std::map<std::string, std::string>& flags) {
  const auto net = scenario::load_file(path);
  if (flags.count("extended") != 0) {
    const xform::ExtendedGraph xg(net);
    std::vector<std::string> labels;
    labels.reserve(xg.node_count());
    for (stream::NodeId v = 0; v < xg.node_count(); ++v) {
      labels.push_back(xg.node_label(v));
    }
    std::fputs(xg.graph().to_dot(labels).c_str(), stdout);
  } else {
    std::vector<std::string> labels;
    labels.reserve(net.node_count());
    for (stream::NodeId n = 0; n < net.node_count(); ++n) {
      labels.push_back(net.node_name(n));
    }
    std::fputs(net.graph().to_dot(labels).c_str(), stdout);
  }
  return 0;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  gen::RandomInstanceParams p;
  p.servers = static_cast<std::size_t>(flag_number(flags, "servers", 40));
  p.commodities =
      static_cast<std::size_t>(flag_number(flags, "commodities", 3));
  p.stages = static_cast<std::size_t>(flag_number(flags, "stages", 5));
  p.lambda = flag_number(flags, "lambda", 100.0);
  util::Rng rng(static_cast<std::uint64_t>(flag_number(flags, "seed", 2007)));
  const auto net = gen::random_instance(p, rng);
  scenario::write(net, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "validate" && argc >= 3) {
      return cmd_validate(argv[2]);
    }
    if (command == "solve" && argc >= 3) {
      return cmd_solve(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "churn" && argc >= 3) {
      return cmd_churn(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "serve" && argc >= 3) {
      return cmd_serve(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "help" || command == "--help") {
      return usage_to(stdout);
    }
    if (command == "dot" && argc >= 3) {
      return cmd_dot(argv[2], parse_flags(argc, argv, 3));
    }
    if (command == "generate") {
      return cmd_generate(parse_flags(argc, argv, 2));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
