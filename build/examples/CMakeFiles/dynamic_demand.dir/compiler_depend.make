# Empty compiler generated dependencies file for dynamic_demand.
# This may be replaced when dependencies are built.
