#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/check.hpp"

namespace maxutil::graph {
namespace {

double weight_of(std::span<const double> edge_weight, EdgeId e) {
  return edge_weight.empty() ? 1.0 : edge_weight[e];
}

/// Splitmix64 step — the only randomness source in the partitioner. Used to
/// perturb seed selection so distinct PartitionOptions::seed values explore
/// different grow orders while staying fully reproducible.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void finalize_cut(const Digraph& g, std::span<const double> edge_weight,
                  Partition& p) {
  p.edge_cut = 0;
  p.weighted_cut = 0.0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (p.shard_of[g.tail(e)] != p.shard_of[g.head(e)]) {
      ++p.edge_cut;
      p.weighted_cut += weight_of(edge_weight, e);
    }
  }
}

}  // namespace

std::size_t Partition::shard_size(ShardId s) const {
  return static_cast<std::size_t>(
      std::count(shard_of.begin(), shard_of.end(), s));
}

std::size_t edge_cut(const Digraph& g, std::span<const ShardId> shard_of) {
  util::ensure(shard_of.size() == g.node_count(),
               "edge_cut: shard_of size must match node count");
  std::size_t cut = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (shard_of[g.tail(e)] != shard_of[g.head(e)]) ++cut;
  }
  return cut;
}

double weighted_edge_cut(const Digraph& g, std::span<const ShardId> shard_of,
                         std::span<const double> edge_weight) {
  util::ensure(shard_of.size() == g.node_count(),
               "weighted_edge_cut: shard_of size must match node count");
  util::ensure(edge_weight.empty() || edge_weight.size() == g.edge_count(),
               "weighted_edge_cut: edge_weight must be empty or per-edge");
  double cut = 0.0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (shard_of[g.tail(e)] != shard_of[g.head(e)]) {
      cut += weight_of(edge_weight, e);
    }
  }
  return cut;
}

Partition partition_contiguous(std::size_t nodes, std::size_t shards) {
  util::ensure(shards >= 1, "partition_contiguous: shards must be >= 1");
  Partition p;
  p.shards = shards;
  p.shard_of.resize(nodes);
  if (nodes == 0) return p;
  const std::size_t chunk = (nodes + shards - 1) / shards;
  for (std::size_t v = 0; v < nodes; ++v) {
    p.shard_of[v] = static_cast<ShardId>(std::min(v / chunk, shards - 1));
  }
  return p;
}

Partition partition_bfs_grow(const Digraph& g, std::size_t shards,
                             std::span<const double> edge_weight,
                             const PartitionOptions& options) {
  util::ensure(shards >= 1, "partition_bfs_grow: shards must be >= 1");
  util::ensure(edge_weight.empty() || edge_weight.size() == g.edge_count(),
               "partition_bfs_grow: edge_weight must be empty or per-edge");
  const std::size_t n = g.node_count();

  Partition p;
  p.shards = shards;
  p.shard_of.assign(n, 0);
  if (n == 0 || shards == 1) {
    finalize_cut(g, edge_weight, p);
    return p;
  }
  if (shards >= n) {
    // Degenerate split: one node per shard, extra shards empty. No cut to
    // optimize — every edge is cross-shard regardless of labeling.
    for (NodeId v = 0; v < n; ++v) p.shard_of[v] = static_cast<ShardId>(v);
    finalize_cut(g, edge_weight, p);
    return p;
  }

  constexpr ShardId kUnassigned = std::numeric_limits<ShardId>::max();
  std::vector<ShardId> shard_of(n, kUnassigned);
  const std::size_t target = (n + shards - 1) / shards;

  // Seed priority: weighted degree perturbed by the seed. High-degree nodes
  // make good BFS roots (their neighborhoods fill a shard with few cut
  // edges); the perturbation is < 1 ulp of separation between distinct
  // degrees only in pathological cases, so it mostly breaks exact ties.
  std::vector<double> seed_score(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double deg = 0.0;
    for (EdgeId e : g.out_edges(v)) deg += weight_of(edge_weight, e);
    for (EdgeId e : g.in_edges(v)) deg += weight_of(edge_weight, e);
    const std::uint64_t h = mix(options.seed ^ (0x51ed2701ull * (v + 1)));
    seed_score[v] = deg + static_cast<double>(h % 1024) / 4096.0;
  }
  auto pick_seed = [&]() -> NodeId {
    NodeId best = kNoNode;
    for (NodeId v = 0; v < n; ++v) {
      if (shard_of[v] != kUnassigned) continue;
      if (best == kNoNode || seed_score[v] > seed_score[best]) best = v;
    }
    return best;
  };

  std::size_t assigned = 0;
  std::deque<NodeId> frontier;
  for (ShardId s = 0; s < shards && assigned < n; ++s) {
    // Last shard absorbs the remainder so every node lands somewhere even
    // when earlier frontiers ran dry.
    const std::size_t want =
        (s + 1 == shards) ? (n - assigned) : std::min(target, n - assigned);
    std::size_t got = 0;
    frontier.clear();
    while (got < want) {
      if (frontier.empty()) {
        const NodeId seed = pick_seed();
        shard_of[seed] = s;
        frontier.push_back(seed);
        ++got;
        ++assigned;
        continue;
      }
      const NodeId v = frontier.front();
      frontier.pop_front();
      // Undirected view: absorb both out- and in-neighbors, in edge-id
      // order, so the traversal is a pure function of the graph.
      for (EdgeId e : g.out_edges(v)) {
        const NodeId w = g.head(e);
        if (got < want && shard_of[w] == kUnassigned) {
          shard_of[w] = s;
          frontier.push_back(w);
          ++got;
          ++assigned;
        }
      }
      for (EdgeId e : g.in_edges(v)) {
        const NodeId w = g.tail(e);
        if (got < want && shard_of[w] == kUnassigned) {
          shard_of[w] = s;
          frontier.push_back(w);
          ++got;
          ++assigned;
        }
      }
    }
  }

  // Greedy refinement: move a node to the adjacent shard with the largest
  // weighted-cut gain, bounded by the slack ceiling and a non-empty floor.
  std::vector<std::size_t> size(shards, 0);
  for (NodeId v = 0; v < n; ++v) ++size[shard_of[v]];
  const std::size_t ceiling = std::max<std::size_t>(
      target,
      static_cast<std::size_t>(std::ceil(static_cast<double>(target) *
                                         (1.0 + options.balance_slack))));
  std::vector<double> affinity(shards, 0.0);
  std::vector<ShardId> touched;
  for (std::size_t pass = 0; pass < options.refinement_passes; ++pass) {
    bool moved = false;
    for (NodeId v = 0; v < n; ++v) {
      const ShardId home = shard_of[v];
      if (size[home] <= 1) continue;
      touched.clear();
      auto note = [&](ShardId s, double w) {
        if (affinity[s] == 0.0) touched.push_back(s);
        affinity[s] += w;
      };
      for (EdgeId e : g.out_edges(v)) {
        note(shard_of[g.head(e)], weight_of(edge_weight, e));
      }
      for (EdgeId e : g.in_edges(v)) {
        note(shard_of[g.tail(e)], weight_of(edge_weight, e));
      }
      ShardId best = home;
      double best_gain = 0.0;
      for (ShardId s : touched) {
        if (s == home || size[s] >= ceiling) continue;
        const double gain = affinity[s] - affinity[home];
        // Strict improvement plus lowest-shard-id tie-break keeps the sweep
        // deterministic and guarantees termination (cut strictly decreases).
        if (gain > best_gain || (gain == best_gain && gain > 0.0 && s < best)) {
          best = s;
          best_gain = gain;
        }
      }
      for (ShardId s : touched) affinity[s] = 0.0;
      if (best != home) {
        shard_of[v] = best;
        --size[home];
        ++size[best];
        moved = true;
      }
    }
    if (!moved) break;
  }

  p.shard_of = std::move(shard_of);
  finalize_cut(g, edge_weight, p);
  return p;
}

}  // namespace maxutil::graph
