#include "core/routing.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxutil::core {

using maxutil::util::ensure;

RoutingState::RoutingState(const ExtendedGraph& xg)
    : phi_(xg.commodity_count(),
           std::vector<double>(xg.edge_count(), 0.0)) {}

RoutingState RoutingState::initial(const ExtendedGraph& xg) {
  RoutingState state(xg);
  const auto& g = xg.graph();
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    for (const NodeId v : xg.commodity_nodes(j)) {
      if (v == xg.sink(j)) continue;
      if (v == xg.dummy_source(j)) {
        state.phi_[j][xg.dummy_difference_link(j)] = 1.0;
        continue;
      }
      std::vector<EdgeId> usable;
      for (const EdgeId e : g.out_edges(v)) {
        if (xg.usable(j, e)) usable.push_back(e);
      }
      ensure(!usable.empty(),
             "RoutingState::initial: commodity node without usable out-edge");
      const double share = 1.0 / static_cast<double>(usable.size());
      for (const EdgeId e : usable) state.phi_[j][e] = share;
    }
  }
  return state;
}

void RoutingState::set_phi(CommodityId j, EdgeId e, double value) {
  ensure(j < phi_.size() && e < phi_[j].size(),
         "RoutingState::set_phi: out of range");
  // Values above 1 are tolerated so callers (finite-difference tests,
  // sensitivity analyses) may treat phi entries as free variables; the
  // per-node sum-to-1 invariant is what `is_valid` enforces.
  ensure(value >= -1e-12, "RoutingState::set_phi: negative fraction");
  phi_[j][e] = std::max(value, 0.0);
}

double RoutingState::max_invariant_violation(const ExtendedGraph& xg) const {
  const auto& g = xg.graph();
  double worst = 0.0;
  for (CommodityId j = 0; j < commodity_count(); ++j) {
    for (EdgeId e = 0; e < edge_count(); ++e) {
      if (phi_[j][e] < 0.0) worst = std::max(worst, -phi_[j][e]);
      if (!xg.usable(j, e)) worst = std::max(worst, std::abs(phi_[j][e]));
    }
    for (const NodeId v : xg.commodity_nodes(j)) {
      if (v == xg.sink(j)) continue;
      double total = 0.0;
      for (const EdgeId e : g.out_edges(v)) {
        if (xg.usable(j, e)) total += phi_[j][e];
      }
      worst = std::max(worst, std::abs(total - 1.0));
    }
  }
  return worst;
}

bool RoutingState::is_valid(const ExtendedGraph& xg, double tol) const {
  return max_invariant_violation(xg) <= tol;
}

double RoutingState::max_difference(const RoutingState& other) const {
  ensure(commodity_count() == other.commodity_count() &&
             edge_count() == other.edge_count(),
         "RoutingState::max_difference: shape mismatch");
  double worst = 0.0;
  for (std::size_t j = 0; j < phi_.size(); ++j) {
    for (std::size_t e = 0; e < phi_[j].size(); ++e) {
      worst = std::max(worst, std::abs(phi_[j][e] - other.phi_[j][e]));
    }
  }
  return worst;
}

void RoutingState::blend_toward(const RoutingState& target, double alpha) {
  ensure(alpha >= 0.0 && alpha <= 1.0, "RoutingState::blend_toward: bad alpha");
  for (std::size_t j = 0; j < phi_.size(); ++j) {
    for (std::size_t e = 0; e < phi_[j].size(); ++e) {
      phi_[j][e] += alpha * (target.phi_[j][e] - phi_[j][e]);
    }
  }
}

}  // namespace maxutil::core
