#include "ctrl/churn_plan.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace maxutil::ctrl {

using maxutil::util::ensure;

const char* to_string(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kCrash: return "crash";
    case ChurnEventKind::kRestore: return "restore";
    case ChurnEventKind::kCapScale: return "cap";
    case ChurnEventKind::kBwScale: return "bw";
    case ChurnEventKind::kArrive: return "arrive";
    case ChurnEventKind::kDepart: return "depart";
  }
  return "?";
}

std::string ChurnEvent::describe() const {
  std::ostringstream out;
  out << to_string(kind) << "=";
  switch (kind) {
    case ChurnEventKind::kCrash:
    case ChurnEventKind::kRestore:
      out << node;
      break;
    case ChurnEventKind::kCapScale:
      out << node << "*" << factor;
      break;
    case ChurnEventKind::kBwScale:
      out << from << "-" << to << "*" << factor;
      break;
    case ChurnEventKind::kArrive:
      out << commodity;
      if (factor != 1.0) out << "*" << factor;
      break;
    case ChurnEventKind::kDepart:
      out << commodity;
      break;
  }
  out << "@" << time;
  return out.str();
}

void ChurnPlan::validate() const {
  for (const ChurnEvent& event : events) {
    std::ostringstream what;
    what << "churn plan: event '" << event.describe() << "' ";
    switch (event.kind) {
      case ChurnEventKind::kCrash:
      case ChurnEventKind::kRestore:
        ensure(!event.node.empty(), what.str() + "has an empty node");
        break;
      case ChurnEventKind::kCapScale:
        ensure(!event.node.empty(), what.str() + "has an empty node");
        ensure(std::isfinite(event.factor) && event.factor > 0,
               what.str() + "needs a positive finite factor");
        break;
      case ChurnEventKind::kBwScale:
        ensure(!event.from.empty() && !event.to.empty(),
               what.str() + "has an empty endpoint");
        ensure(std::isfinite(event.factor) && event.factor > 0,
               what.str() + "needs a positive finite factor");
        break;
      case ChurnEventKind::kArrive:
        ensure(!event.commodity.empty(), what.str() + "has an empty commodity");
        ensure(std::isfinite(event.factor) && event.factor > 0,
               what.str() + "needs a positive finite factor");
        break;
      case ChurnEventKind::kDepart:
        ensure(!event.commodity.empty(), what.str() + "has an empty commodity");
        break;
    }
  }
}

std::string ChurnPlan::describe() const {
  std::string out;
  for (const ChurnEvent& event : events) {
    if (!out.empty()) out += ",";
    out += event.describe();
  }
  return out;
}

namespace {

double parse_factor(const std::string& text, const std::string& entry) {
  std::size_t used = 0;
  double value = -1.0;
  try {
    value = std::stod(text, &used);
  } catch (...) {
    ensure(false, "churn plan: bad factor in '" + entry + "'");
  }
  ensure(used == text.size(),
         "churn plan: trailing junk after factor in '" + entry + "'");
  return value;
}

std::size_t parse_time(const std::string& text, const std::string& entry) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  ensure(ec == std::errc{} && ptr == text.data() + text.size(),
         "churn plan: bad time in '" + entry + "' (want @<non-negative int>)");
  return value;
}

/// Splits "NAME*F" into (NAME, F); factor defaults to 1 when `require` is
/// false and no '*' is present.
std::pair<std::string, double> split_factor(const std::string& text,
                                            const std::string& entry,
                                            bool require) {
  const std::size_t star = text.rfind('*');
  if (star == std::string::npos) {
    ensure(!require, "churn plan: '" + entry + "' needs a *FACTOR");
    return {text, 1.0};
  }
  return {text.substr(0, star), parse_factor(text.substr(star + 1), entry)};
}

}  // namespace

ChurnPlan parse_churn_plan(const std::string& spec) {
  ChurnPlan plan;
  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    // Trim surrounding spaces so "crash=a@1, restore=a@3" parses.
    while (!entry.empty() && entry.front() == ' ') entry.erase(entry.begin());
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    ensure(eq != std::string::npos,
           "churn plan: entry '" + entry + "' is not key=value@T");
    const std::string key = entry.substr(0, eq);
    std::string value = entry.substr(eq + 1);

    const std::size_t at = value.rfind('@');
    ensure(at != std::string::npos,
           "churn plan: entry '" + entry + "' is missing its @T time");
    ChurnEvent event;
    event.time = parse_time(value.substr(at + 1), entry);
    value = value.substr(0, at);
    ensure(!value.empty(), "churn plan: entry '" + entry + "' has no entity");

    if (key == "crash" || key == "restore") {
      event.kind = key == "crash" ? ChurnEventKind::kCrash
                                  : ChurnEventKind::kRestore;
      event.node = value;
    } else if (key == "cap") {
      event.kind = ChurnEventKind::kCapScale;
      const auto [name, factor] = split_factor(value, entry, /*require=*/true);
      ensure(!name.empty(), "churn plan: entry '" + entry + "' has no node");
      event.node = name;
      event.factor = factor;
    } else if (key == "bw") {
      event.kind = ChurnEventKind::kBwScale;
      const auto [pair, factor] = split_factor(value, entry, /*require=*/true);
      const std::size_t dash = pair.find('-');
      ensure(dash != std::string::npos,
             "churn plan: entry '" + entry + "' needs FROM-TO endpoints");
      event.from = pair.substr(0, dash);
      event.to = pair.substr(dash + 1);
      ensure(!event.from.empty() && !event.to.empty(),
             "churn plan: entry '" + entry + "' has an empty endpoint");
      event.factor = factor;
    } else if (key == "arrive") {
      event.kind = ChurnEventKind::kArrive;
      const auto [name, factor] = split_factor(value, entry, /*require=*/false);
      ensure(!name.empty(),
             "churn plan: entry '" + entry + "' has no commodity");
      event.commodity = name;
      event.factor = factor;
    } else if (key == "depart") {
      event.kind = ChurnEventKind::kDepart;
      event.commodity = value;
    } else {
      ensure(false, "churn plan: unknown key '" + key + "' in '" + entry +
                        "' (want crash/restore/cap/bw/arrive/depart)");
    }
    plan.events.push_back(std::move(event));
  }
  // Stable by-time order: same-time events keep their spec order.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.time < b.time;
                   });
  plan.validate();
  return plan;
}

}  // namespace maxutil::ctrl
