#pragma once

#include <limits>

namespace maxutil::xform {

/// Convex increasing barrier penalties D_i(z) for per-node resource usage,
/// with D(z) -> +inf as z -> C (Section 3). The paper's example is the
/// reciprocal barrier D(z) = 1/(C - z); the log barrier is the classic
/// interior-point alternative evaluated in the safeguard/barrier ablation
/// bench.
enum class BarrierKind { kReciprocal, kLog };

/// Configuration of the penalty term eps * sum_i D_i(f_i) added to the
/// utility-loss objective (the paper's tunable epsilon, Section 3; the
/// evaluation uses eps = 0.2).
struct PenaltyConfig {
  BarrierKind barrier = BarrierKind::kReciprocal;
  double epsilon = 0.2;
};

/// eps * D(z) for capacity c; +inf when z >= c. Infinite-capacity nodes
/// (dummy nodes, sinks) always cost 0, matching the paper's D_i = 0 there.
double penalty_value(const PenaltyConfig& config, double capacity, double z);

/// eps * D'(z); +inf when z >= c, 0 for infinite-capacity nodes.
double penalty_derivative(const PenaltyConfig& config, double capacity,
                          double z);

/// eps * D''(z); +inf when z >= c, 0 for infinite-capacity nodes. Strictly
/// positive on the feasible region (both barriers are strictly convex) —
/// the curvature behind the second-derivative step variant.
double penalty_second_derivative(const PenaltyConfig& config, double capacity,
                                 double z);

}  // namespace maxutil::xform
