file(REMOVE_RECURSE
  "../bench/bench_utility_families"
  "../bench/bench_utility_families.pdb"
  "CMakeFiles/bench_utility_families.dir/bench_utility_families.cpp.o"
  "CMakeFiles/bench_utility_families.dir/bench_utility_families.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_utility_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
