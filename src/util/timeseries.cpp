#include "util/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>

#include "util/check.hpp"

namespace maxutil::util {

TimeSeries::TimeSeries(std::vector<std::string> column_names)
    : names_(std::move(column_names)), columns_(names_.size()) {
  ensure(!names_.empty(), "TimeSeries: at least one column required");
  std::set<std::string> unique(names_.begin(), names_.end());
  ensure(unique.size() == names_.size(), "TimeSeries: duplicate column names");
}

void TimeSeries::append(const std::vector<double>& row) {
  ensure(row.size() == names_.size(), "TimeSeries::append: row width mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) columns_[c].push_back(row[c]);
}

std::size_t TimeSeries::rows() const { return columns_.front().size(); }

const std::vector<double>& TimeSeries::column(const std::string& name) const {
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return columns_[c];
  }
  throw CheckError("TimeSeries::column: unknown column '" + name + "'");
}

double TimeSeries::at(std::size_t row, std::size_t col) const {
  ensure(col < cols() && row < rows(), "TimeSeries::at: out of range");
  return columns_[col][row];
}

void TimeSeries::write_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < names_.size(); ++c) {
    out << (c ? "," : "") << names_[c];
  }
  out << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) {
      out << (c ? "," : "") << columns_[c][r];
    }
    out << '\n';
  }
}

TimeSeries TimeSeries::log_downsample(std::size_t max_rows) const {
  TimeSeries result(names_);
  const std::size_t n = rows();
  if (n == 0) return result;
  std::set<std::size_t> keep;
  keep.insert(0);
  keep.insert(n - 1);
  if (max_rows > 2 && n > 2) {
    const double lo = std::log(1.0);
    const double hi = std::log(static_cast<double>(n));
    for (std::size_t i = 0; i < max_rows; ++i) {
      const double frac =
          static_cast<double>(i) / static_cast<double>(max_rows - 1);
      const auto idx = static_cast<std::size_t>(
          std::exp(lo + frac * (hi - lo))) - 1;
      keep.insert(std::min(idx, n - 1));
    }
  }
  std::vector<double> row(cols());
  for (const std::size_t r : keep) {
    for (std::size_t c = 0; c < cols(); ++c) row[c] = columns_[c][r];
    result.append(row);
  }
  return result;
}

}  // namespace maxutil::util
