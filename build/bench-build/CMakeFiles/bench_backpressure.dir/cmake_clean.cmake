file(REMOVE_RECURSE
  "../bench/bench_backpressure"
  "../bench/bench_backpressure.pdb"
  "CMakeFiles/bench_backpressure.dir/bench_backpressure.cpp.o"
  "CMakeFiles/bench_backpressure.dir/bench_backpressure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
