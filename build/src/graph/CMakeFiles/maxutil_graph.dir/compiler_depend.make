# Empty compiler generated dependencies file for maxutil_graph.
# This may be replaced when dependencies are built.
