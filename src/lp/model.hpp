#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace maxutil::lp {

/// Index of a decision variable within an LpProblem.
using VarId = std::size_t;

/// Relation of a linear constraint row to its right-hand side.
enum class Relation { kLessEq, kEq, kGreaterEq };

/// Optimization direction.
enum class Sense { kMinimize, kMaximize };

/// Shorthand for an unbounded-above variable limit.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A linear program in natural (modeler-facing) form:
///
///   optimize   sum_j objective_j * x_j        (Sense)
///   subject to sum_j a_ij x_j  (rel_i)  b_i   for each constraint i
///              lower_j <= x_j <= upper_j      for each variable j
///
/// The simplex solver (simplex.hpp) converts this to standard form
/// internally; callers never deal with slacks or artificials. Variables
/// default to [0, +inf) with zero objective coefficient.
class LpProblem {
 public:
  /// Adds a variable and returns its id. `name` is used in diagnostics only.
  VarId add_variable(std::string name, double lower = 0.0,
                     double upper = kInfinity, double objective = 0.0);

  /// Adds the constraint `sum terms (rel) rhs`. Terms hold (variable, coeff)
  /// pairs; duplicate variables are summed. Throws on unknown variables.
  void add_constraint(std::vector<std::pair<VarId, double>> terms, Relation rel,
                      double rhs);

  /// Sets the optimization direction (default: minimize).
  void set_sense(Sense sense) { sense_ = sense; }

  Sense sense() const { return sense_; }
  std::size_t variable_count() const { return names_.size(); }
  std::size_t constraint_count() const { return rows_.size(); }

  const std::string& variable_name(VarId v) const;
  double lower(VarId v) const;
  double upper(VarId v) const;
  double objective_coefficient(VarId v) const;

  /// Overwrites the objective coefficient of `v`.
  void set_objective_coefficient(VarId v, double coeff);

  struct Row {
    std::vector<std::pair<VarId, double>> terms;
    Relation rel;
    double rhs;
  };
  const Row& row(std::size_t i) const;

  /// Evaluates the objective at `x` (natural form).
  double objective_value(const std::vector<double>& x) const;

  /// Largest constraint/bound violation of `x`; 0 means feasible.
  double max_violation(const std::vector<double>& x) const;

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<std::string> names_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace maxutil::lp
