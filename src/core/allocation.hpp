#pragma once

#include <vector>

#include "core/flow.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// A solution expressed back in physical-network terms — what an operator
/// deploys: admission rates, per-server computing usage, per-link bandwidth
/// usage, and per-commodity flow on each physical link.
struct PhysicalAllocation {
  std::vector<double> admitted;   // a_j per commodity
  std::vector<double> delivered;  // rate arriving at sink = a_j * gain_j
  std::vector<double> server_usage;  // computing usage per physical node
  std::vector<double> link_usage;    // bandwidth usage per physical link
  /// Commodity-j flow entering physical link l, in tail-node (pre-
  /// processing) units.
  std::vector<std::vector<double>> link_flow;  // [commodity][link]
  double utility = 0.0;  // sum_j U_j(a_j)

  /// Largest capacity/bandwidth overshoot (0 when feasible).
  double max_capacity_violation(const xform::ExtendedGraph& xg) const;
};

/// Projects extended-graph flows back onto the physical network: server
/// usage is the extended server node's f_i, link usage the bandwidth node's
/// f_i, and admission the dummy input link's flow.
PhysicalAllocation map_to_physical(const xform::ExtendedGraph& xg,
                                   const FlowState& flows);

}  // namespace maxutil::core
