// E5 — the paper's Figure-1 example (8 servers, 2 streams) as a
// correctness vignette: model construction, Property-1 shrinkage, the
// extended-graph transformation's size formula, and agreement of the
// distributed algorithms with the LP optimum on the exact paper topology.
// All solves go through solver::SolverRegistry — the same dispatch the CLI
// uses — and a warm-start Pipeline ("lp,gradient") is checked to converge
// in fewer iterations than the cold-started gradient.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "gen/figure1.hpp"
#include "solver/pipeline.hpp"
#include "solver/registry.hpp"
#include "stream/validate.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E5 / Figure 1: 8 servers, 2 streams (A,B,C,D / G,E,F,H)"
              " ===\n\n");
  gen::Figure1Params params;
  params.lambda = 30.0;
  params.server_capacity = 40.0;
  params.link_bandwidth = 25.0;
  params.stage_shrinkage = 0.8;
  gen::Figure1Ids ids;
  const auto net = gen::figure1_example(params, &ids);
  const solver::Problem problem(net);
  const xform::ExtendedGraph& xg = problem.extended();

  std::printf("physical: %zu nodes, %zu links, %zu streams\n",
              net.node_count(), net.link_count(), net.commodity_count());
  std::printf("extended: %zu nodes (= N+M+J = %zu), %zu edges (= 2M+2J = %zu)\n\n",
              xg.node_count(),
              net.node_count() + net.link_count() + net.commodity_count(),
              xg.edge_count(), 2 * net.link_count() + 2 * net.commodity_count());

  const auto& registry = solver::SolverRegistry::instance();

  const auto reference = registry.solve("lp", problem, {});

  solver::SolveOptions gradient_options;
  gradient_options.eta = 0.1;
  gradient_options.max_iterations = 6000;
  const auto gradient = registry.solve("gradient", problem, gradient_options);

  solver::SolveOptions bp_options;
  bp_options.max_iterations = 60000;
  const auto backpressure = registry.solve("backpressure", problem, bp_options);

  // Warm-start pipeline vs the cold start at the same tolerance: the LP
  // vertex (guard-repaired) should land the gradient near the fixed point.
  solver::SolveOptions tol_options = gradient_options;
  tol_options.tolerance = 1e-4;
  const auto cold = registry.solve("gradient", problem, tol_options);
  const auto warm =
      solver::Pipeline::parse("lp,gradient").run(problem, tol_options);

  util::Table table({"solver", "S1 admitted", "S2 admitted", "utility"});
  table.add_row({"LP (simplex)", util::Table::cell(reference.admitted[ids.s1]),
                 util::Table::cell(reference.admitted[ids.s2]),
                 util::Table::cell(reference.utility)});
  table.add_row({"gradient", util::Table::cell(gradient.admitted[ids.s1]),
                 util::Table::cell(gradient.admitted[ids.s2]),
                 util::Table::cell(gradient.utility)});
  table.add_row({"back-pressure", util::Table::cell(backpressure.admitted[ids.s1]),
                 util::Table::cell(backpressure.admitted[ids.s2]),
                 util::Table::cell(backpressure.utility)});
  table.print(std::cout);
  std::printf("\nwarm start: cold gradient %zu iterations, lp,gradient"
              " pipeline %zu\n", cold.iterations, warm.iterations);

  std::printf("\nshape checks:\n");
  bool ok = true;
  ok &= bench::shape_check("model validates and Property 1 holds on S1 and S2",
                           stream::validate(net).ok() &&
                               stream::verify_path_independence(net, ids.s1) &&
                               stream::verify_path_independence(net, ids.s2));
  ok &= bench::shape_check(
      "extended graph matches the paper's N+M+J / 2M+2J formula",
      xg.node_count() ==
              net.node_count() + net.link_count() + net.commodity_count() &&
          xg.edge_count() ==
              2 * net.link_count() + 2 * net.commodity_count());
  ok &= bench::shape_check("gradient within 95% of the LP optimum",
                           gradient.utility >= 0.95 * reference.utility);
  ok &= bench::shape_check("back-pressure within 93% of the LP optimum",
                           backpressure.utility >= 0.93 * reference.utility);
  ok &= bench::shape_check(
      "Theorem-2 sufficient condition approximately satisfied at convergence",
      gradient.optimality.has_value() &&
          gradient.optimality->sufficient_violation < 0.05);
  ok &= bench::shape_check(
      "lp,gradient pipeline converges in fewer iterations than cold start",
      solver::is_usable(warm.status) && warm.iterations < cold.iterations);
  return ok ? 0 : 1;
}
