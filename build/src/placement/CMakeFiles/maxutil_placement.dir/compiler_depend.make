# Empty compiler generated dependencies file for maxutil_placement.
# This may be replaced when dependencies are built.
