#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "graph/algorithms.hpp"
#include "lp/simplex.hpp"
#include "stream/model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"
#include "xform/penalty.hpp"

namespace {

using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;
using maxutil::xform::BarrierKind;
using maxutil::xform::ExtendedGraph;
using maxutil::xform::LinkKind;
using maxutil::xform::NodeKind;
using maxutil::xform::PenaltyConfig;

// a --(bw 5, c=2)--> b --(bw 6, c=1)--> t, one linear commodity.
StreamNetwork chain_network(double lambda = 3.0) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 20.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 5.0);
  const auto bt = net.add_link(b, t, 6.0);
  const CommodityId j = net.add_commodity("c0", a, t, lambda, Utility::linear());
  net.enable_link(j, ab, 2.0);
  net.enable_link(j, bt, 1.0);
  return net;
}

TEST(Penalty, ReciprocalBarrier) {
  const PenaltyConfig cfg{BarrierKind::kReciprocal, 0.2};
  EXPECT_DOUBLE_EQ(maxutil::xform::penalty_value(cfg, 10.0, 0.0), 0.02);
  EXPECT_DOUBLE_EQ(maxutil::xform::penalty_value(cfg, 10.0, 8.0), 0.1);
  EXPECT_TRUE(std::isinf(maxutil::xform::penalty_value(cfg, 10.0, 10.0)));
  EXPECT_DOUBLE_EQ(maxutil::xform::penalty_derivative(cfg, 10.0, 8.0),
                   0.2 / 4.0);
}

TEST(Penalty, LogBarrier) {
  const PenaltyConfig cfg{BarrierKind::kLog, 1.0};
  EXPECT_DOUBLE_EQ(maxutil::xform::penalty_value(cfg, 10.0, 0.0), 0.0);
  EXPECT_NEAR(maxutil::xform::penalty_value(cfg, 10.0, 5.0), std::log(2.0),
              1e-12);
  EXPECT_TRUE(std::isinf(maxutil::xform::penalty_value(cfg, 10.0, 10.0)));
  EXPECT_DOUBLE_EQ(maxutil::xform::penalty_derivative(cfg, 10.0, 5.0), 0.2);
}

TEST(Penalty, InfiniteCapacityIsFree) {
  const PenaltyConfig cfg{BarrierKind::kReciprocal, 0.2};
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(maxutil::xform::penalty_value(cfg, inf, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(maxutil::xform::penalty_derivative(cfg, inf, 1e9), 0.0);
}

TEST(Penalty, DerivativeMatchesFiniteDifference) {
  for (const auto kind : {BarrierKind::kReciprocal, BarrierKind::kLog}) {
    const PenaltyConfig cfg{kind, 0.3};
    const double h = 1e-7;
    for (const double z : {0.5, 3.0, 7.0, 9.0}) {
      const double fd = (maxutil::xform::penalty_value(cfg, 10.0, z + h) -
                         maxutil::xform::penalty_value(cfg, 10.0, z - h)) /
                        (2.0 * h);
      EXPECT_NEAR(maxutil::xform::penalty_derivative(cfg, 10.0, z), fd,
                  1e-4 * (1.0 + std::abs(fd)));
    }
  }
}

TEST(ExtendedGraph, NodeAndEdgeCountsMatchPaperFormula) {
  // Paper, Section 3: N nodes, M edges, J commodities become
  // N + M + J nodes and 2M + 2J edges.
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  const std::size_t n = net.node_count();
  const std::size_t m = net.link_count();
  const std::size_t j = net.commodity_count();
  EXPECT_EQ(xg.node_count(), n + m + j);
  EXPECT_EQ(xg.edge_count(), 2 * m + 2 * j);
}

TEST(ExtendedGraph, NodeKindsAndCapacities) {
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  EXPECT_EQ(xg.node_kind(0), NodeKind::kServer);
  EXPECT_DOUBLE_EQ(xg.capacity(0), 10.0);
  EXPECT_EQ(xg.node_kind(2), NodeKind::kSink);
  EXPECT_FALSE(xg.has_finite_capacity(2));

  const NodeId bw_ab = xg.bandwidth_node(0);
  EXPECT_EQ(xg.node_kind(bw_ab), NodeKind::kBandwidth);
  EXPECT_DOUBLE_EQ(xg.capacity(bw_ab), 5.0);
  EXPECT_EQ(xg.physical_link_of_bandwidth_node(bw_ab), 0u);

  const NodeId dummy = xg.dummy_source(0);
  EXPECT_EQ(xg.node_kind(dummy), NodeKind::kDummySource);
  EXPECT_FALSE(xg.has_finite_capacity(dummy));
}

TEST(ExtendedGraph, SplicedTopology) {
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  const auto& g = xg.graph();
  const NodeId bw = xg.bandwidth_node(0);
  // a -> bw(a->b) -> b replaces a -> b.
  EXPECT_TRUE(g.has_edge(0, bw));
  EXPECT_TRUE(g.has_edge(bw, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  // Dummy wiring: s-bar -> source and s-bar -> sink.
  const NodeId dummy = xg.dummy_source(0);
  EXPECT_EQ(g.tail(xg.dummy_input_link(0)), dummy);
  EXPECT_EQ(g.head(xg.dummy_input_link(0)), 0u);
  EXPECT_EQ(g.tail(xg.dummy_difference_link(0)), dummy);
  EXPECT_EQ(g.head(xg.dummy_difference_link(0)), 2u);
}

TEST(ExtendedGraph, LinkKindsBetaAndCost) {
  StreamNetwork net = chain_network();
  net.set_potential(0, 1, 0.5);  // shrink a->b by half
  const ExtendedGraph xg(net);
  const auto& g = xg.graph();
  const NodeId bw = xg.bandwidth_node(0);
  const auto processing = g.find_edge(0, bw);
  const auto transfer = g.find_edge(bw, 1);
  EXPECT_EQ(xg.link_kind(processing), LinkKind::kProcessing);
  EXPECT_EQ(xg.link_kind(transfer), LinkKind::kTransfer);
  // Processing carries the physical consumption and shrinkage; the transfer
  // hop is 1:1 with unit bandwidth spend.
  EXPECT_DOUBLE_EQ(xg.cost_rate(0, processing), 2.0);
  EXPECT_DOUBLE_EQ(xg.beta(0, processing), 0.5);
  EXPECT_DOUBLE_EQ(xg.cost_rate(0, transfer), 1.0);
  EXPECT_DOUBLE_EQ(xg.beta(0, transfer), 1.0);
  EXPECT_EQ(xg.link_kind(xg.dummy_input_link(0)), LinkKind::kDummyInput);
  EXPECT_EQ(xg.link_kind(xg.dummy_difference_link(0)),
            LinkKind::kDummyDifference);
  EXPECT_DOUBLE_EQ(xg.beta(0, xg.dummy_input_link(0)), 1.0);
}

TEST(ExtendedGraph, UsabilityRespectsCommodities) {
  Rng rng(5);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 12;
  p.commodities = 2;
  p.stages = 3;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  const ExtendedGraph xg(net);
  // Dummy links belong to exactly one commodity.
  EXPECT_TRUE(xg.usable(0, xg.dummy_input_link(0)));
  EXPECT_FALSE(xg.usable(1, xg.dummy_input_link(0)));
  EXPECT_TRUE(xg.usable(1, xg.dummy_difference_link(1)));
  EXPECT_FALSE(xg.usable(0, xg.dummy_difference_link(1)));
  // Every usable extended edge of a commodity lies in its node set.
  for (CommodityId j = 0; j < 2; ++j) {
    const auto& nodes = xg.commodity_nodes(j);
    for (maxutil::graph::EdgeId e = 0; e < xg.edge_count(); ++e) {
      if (!xg.usable(j, e)) continue;
      EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(),
                                     xg.graph().tail(e)));
      EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(),
                                     xg.graph().head(e)));
    }
  }
}

TEST(ExtendedGraph, CommoditySubgraphIsDagWithDummies) {
  Rng rng(11);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  const ExtendedGraph xg(net);
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    EXPECT_TRUE(maxutil::graph::is_dag(xg.graph(), xg.commodity_filter(j)));
  }
}

TEST(ExtendedGraph, DummyDifferenceCostIsUtilityLoss) {
  const StreamNetwork net = chain_network(/*lambda=*/3.0);
  const ExtendedGraph xg(net);
  const auto diff = xg.dummy_difference_link(0);
  // Linear utility U(a) = a: Y(x) = U(3) - U(3 - x) = x.
  EXPECT_DOUBLE_EQ(xg.edge_cost(diff, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(xg.edge_cost(diff, 1.25), 1.25);
  EXPECT_DOUBLE_EQ(xg.edge_cost_derivative(diff, 2.0), 1.0);
  // All other links carry zero Y-cost.
  EXPECT_DOUBLE_EQ(xg.edge_cost(xg.dummy_input_link(0), 2.0), 0.0);
  EXPECT_DOUBLE_EQ(xg.edge_cost_derivative(0, 2.0), 0.0);
}

TEST(ExtendedGraph, DummyDifferenceCostConcaveUtility) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId t = net.add_sink("t");
  const auto at = net.add_link(a, t, 10.0);
  const CommodityId j =
      net.add_commodity("c", a, t, 4.0, Utility::logarithmic());
  net.enable_link(j, at, 1.0);
  const ExtendedGraph xg(net);
  const auto diff = xg.dummy_difference_link(j);
  // Y(x) = log(5) - log(5 - x); Y'(x) = 1/(5 - x).
  EXPECT_NEAR(xg.edge_cost(diff, 2.0), std::log(5.0) - std::log(3.0), 1e-12);
  EXPECT_NEAR(xg.edge_cost_derivative(diff, 2.0), 1.0 / 3.0, 1e-12);
}

TEST(ExtendedGraph, PenaltyDelegatesToBarrier) {
  const StreamNetwork net = chain_network();
  PenaltyConfig cfg;
  cfg.epsilon = 0.5;
  const ExtendedGraph xg(net, cfg);
  EXPECT_DOUBLE_EQ(xg.node_penalty(0, 8.0), 0.5 / 2.0);
  EXPECT_DOUBLE_EQ(xg.node_penalty_derivative(0, 8.0), 0.5 / 4.0);
  EXPECT_DOUBLE_EQ(xg.node_penalty(xg.dummy_source(0), 100.0), 0.0);
}

TEST(ExtendedGraph, LabelsAreInformative) {
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  EXPECT_EQ(xg.node_label(0), "a");
  EXPECT_NE(xg.node_label(xg.bandwidth_node(0)).find("bw("), std::string::npos);
  EXPECT_NE(xg.node_label(xg.dummy_source(0)).find("dummy"), std::string::npos);
}

// --- LP reference ---

TEST(LpReference, ChainBottleneckIsLambda) {
  // lambda = 3 is below every network limit: admit all.
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  EXPECT_NEAR(ref.optimal_utility, 3.0, 1e-7);
  EXPECT_NEAR(ref.admitted[0], 3.0, 1e-7);
}

TEST(LpReference, ChainBottleneckIsBandwidth) {
  // lambda = 100: binding limit is the a->b bandwidth (5) and node a
  // capacity 10 with c=2 (also 5): admit 5.
  const StreamNetwork net = chain_network(100.0);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  EXPECT_NEAR(ref.optimal_utility, 5.0, 1e-7);
}

TEST(LpReference, ShrinkageChangesBottleneck) {
  // With g_b = 0.5, g_t = 1.5: bandwidth ab carries 0.5x <= 5 -> x <= 10;
  // node a: 2x <= 10 -> x <= 5; node b: 0.5x <= 20; bw bt: 1.5x <= 6 ->
  // x <= 4. Optimal admitted = 4.
  StreamNetwork net = chain_network(100.0);
  net.set_potential(0, 1, 0.5);
  net.set_potential(0, 2, 1.5);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  EXPECT_NEAR(ref.admitted[0], 4.0, 1e-7);
}

TEST(LpReference, NodeUsageRespectsCapacities) {
  Rng rng(31);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    if (xg.has_finite_capacity(v)) {
      EXPECT_LE(ref.node_usage[v], xg.capacity(v) + 1e-6);
    }
  }
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    EXPECT_GE(ref.admitted[j], -1e-9);
    EXPECT_LE(ref.admitted[j], xg.lambda(j) + 1e-9);
  }
}

TEST(LpReference, WeightedLinearPrefersHeavyCommodity) {
  // Two commodities compete for one unit-cost relay of capacity 10; the
  // weight-2 commodity takes everything.
  StreamNetwork net;
  const NodeId a1 = net.add_server("a1", 100.0);
  const NodeId a2 = net.add_server("a2", 100.0);
  const NodeId m = net.add_server("m", 10.0);
  const NodeId t1 = net.add_sink("t1");
  const NodeId t2 = net.add_sink("t2");
  const auto a1m = net.add_link(a1, m, 1000.0);
  const auto a2m = net.add_link(a2, m, 1000.0);
  const auto mt1 = net.add_link(m, t1, 1000.0);
  const auto mt2 = net.add_link(m, t2, 1000.0);
  const CommodityId c1 =
      net.add_commodity("c1", a1, t1, 20.0, Utility::linear(1.0));
  const CommodityId c2 =
      net.add_commodity("c2", a2, t2, 20.0, Utility::linear(2.0));
  net.enable_link(c1, a1m, 1.0);
  net.enable_link(c1, mt1, 1.0);
  net.enable_link(c2, a2m, 1.0);
  net.enable_link(c2, mt2, 1.0);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  // m spends 1 per unit on each: x1 + x2 <= 10, maximize x1 + 2*x2.
  EXPECT_NEAR(ref.admitted[c2], 10.0, 1e-6);
  EXPECT_NEAR(ref.admitted[c1], 0.0, 1e-6);
  EXPECT_NEAR(ref.optimal_utility, 20.0, 1e-6);
}

TEST(LpReference, LogUtilitySplitsBottleneckEvenly) {
  StreamNetwork net;
  const NodeId a1 = net.add_server("a1", 100.0);
  const NodeId a2 = net.add_server("a2", 100.0);
  const NodeId m = net.add_server("m", 10.0);
  const NodeId t1 = net.add_sink("t1");
  const NodeId t2 = net.add_sink("t2");
  const auto a1m = net.add_link(a1, m, 1000.0);
  const auto a2m = net.add_link(a2, m, 1000.0);
  const auto mt1 = net.add_link(m, t1, 1000.0);
  const auto mt2 = net.add_link(m, t2, 1000.0);
  const CommodityId c1 =
      net.add_commodity("c1", a1, t1, 20.0, Utility::logarithmic());
  const CommodityId c2 =
      net.add_commodity("c2", a2, t2, 20.0, Utility::logarithmic());
  net.enable_link(c1, a1m, 1.0);
  net.enable_link(c1, mt1, 1.0);
  net.enable_link(c2, a2m, 1.0);
  net.enable_link(c2, mt2, 1.0);
  const ExtendedGraph xg(net);
  maxutil::xform::ReferenceOptions opts;
  opts.pwl_segments = 400;
  const auto ref = maxutil::xform::solve_reference(xg, opts);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  EXPECT_NEAR(ref.admitted[c1], 5.0, 0.1);
  EXPECT_NEAR(ref.admitted[c2], 5.0, 0.1);
  EXPECT_NEAR(ref.optimal_utility, 2.0 * std::log(6.0), 1e-2);
}

TEST(LpReference, FlowsSatisfyShrinkageBalance) {
  Rng rng(77);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 15;
  p.commodities = 2;
  p.stages = 3;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  const auto& g = xg.graph();
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    std::vector<double> in(xg.node_count(), 0.0), out(xg.node_count(), 0.0);
    for (const auto& [e, y] : ref.flows[j]) {
      out[g.tail(e)] += y;
      in[g.head(e)] += xg.beta(j, e) * y;
    }
    for (const NodeId v : xg.commodity_nodes(j)) {
      if (v == xg.sink(j)) continue;
      const double r = (v == xg.dummy_source(j)) ? xg.lambda(j) : 0.0;
      EXPECT_NEAR(out[v], in[v] + r, 1e-6) << "node " << v;
    }
  }
}

TEST(LpReference, Figure1InstanceSolves) {
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  // lambda = 10 per stream and ample capacity: everything admitted.
  EXPECT_NEAR(ref.admitted[0], 10.0, 1e-6);
  EXPECT_NEAR(ref.admitted[1], 10.0, 1e-6);
}

}  // namespace
