file(REMOVE_RECURSE
  "CMakeFiles/maxutil_util.dir/artifacts.cpp.o"
  "CMakeFiles/maxutil_util.dir/artifacts.cpp.o.d"
  "CMakeFiles/maxutil_util.dir/rng.cpp.o"
  "CMakeFiles/maxutil_util.dir/rng.cpp.o.d"
  "CMakeFiles/maxutil_util.dir/stats.cpp.o"
  "CMakeFiles/maxutil_util.dir/stats.cpp.o.d"
  "CMakeFiles/maxutil_util.dir/table.cpp.o"
  "CMakeFiles/maxutil_util.dir/table.cpp.o.d"
  "CMakeFiles/maxutil_util.dir/timeseries.cpp.o"
  "CMakeFiles/maxutil_util.dir/timeseries.cpp.o.d"
  "libmaxutil_util.a"
  "libmaxutil_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
