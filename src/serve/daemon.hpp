#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ctrl/controller.hpp"
#include "serve/protocol.hpp"

namespace maxutil::serve {

/// What the daemon answered for one request (docs/SERVE.md §3).
enum class Outcome {
  kAdmit,     // admit request: admitted share >= admit_share
  kDegrade,   // admit request: between deny_share and admit_share
  kDeny,      // admit request: share below deny_share (or batch solve failed);
              // the commodity is reverted out of the plan
  kApplied,   // topology event folded into the batch and applied
  kRejected,  // request failed validation; state untouched
  kReport,    // query answered from the post-batch standing plan
};

const char* to_string(Outcome outcome);

/// One decided request. `decided_at` and `virtual_latency` come from the
/// virtual clock (decided_at = batch open time + window), so the record —
/// and the whole decision log — is a pure function of the input stream.
/// `wall_seconds` is the real re-solve time of the request's batch and is
/// reported only through the latency metrics, never in the log.
struct DecisionRecord {
  Request request;
  Outcome outcome = Outcome::kRejected;
  std::size_t batch = 0;        // 0-based batch ordinal
  std::size_t decided_at = 0;   // virtual decision timestamp
  double requested = 0.0;       // admit/query: the asked-for source rate
  double admitted = 0.0;        // admit/query: rate the plan carries
  double share = 0.0;           // admitted / requested (0 when requested 0)
  double utility = 0.0;         // total utility after the batch settled
  double wall_seconds = 0.0;    // the batch's re-solve wall time
  std::string reason;           // rejection / denial cause

  /// Canonical deterministic log line, e.g.
  /// "t=12 batch=3 admit=video@12 -> admit share=1 utility=34.5".
  std::string line() const;
};

struct ServeOptions {
  ctrl::ControllerOptions controller;

  /// Coalescing window in virtual time units: a batch opened by the first
  /// pending request at time T flushes when a request arrives at or past
  /// T + window (or when the stream ends). 0 = flush every request
  /// individually (lowest latency, most re-solves).
  std::size_t window = 0;

  /// Admission thresholds on admitted/requested share.
  double admit_share = 0.95;
  double deny_share = 0.05;

  /// Overload bound: when the open batch already holds this many pending
  /// requests, further arrivals are denied *immediately* (outcome kDeny,
  /// reason "overloaded ... (retryable)") without joining the batch, so a
  /// re-solve backlog can never grow the next solve without bound. The
  /// denial is a pure function of the input stream — replay-deterministic.
  /// 0 = unbounded (the default).
  std::size_t max_pending = 0;

  /// Record one Chrome trace span per batch (deterministic timestamps).
  bool record_trace = false;
};

/// Aggregate over a serve run (docs/SERVE.md §5).
struct ServeReport {
  std::vector<DecisionRecord> decisions;
  std::size_t batches = 0;
  std::size_t solves = 0;  // apply_batch calls (re-solves + revert solves)
  std::size_t admits = 0;
  std::size_t degrades = 0;
  std::size_t denies = 0;
  std::size_t applied = 0;
  std::size_t rejected = 0;
  std::size_t queries = 0;
  /// Batches flushed by a timer or end-of-stream rather than an arrival at
  /// or past T + window (the serve_batch_forced_flush counter).
  std::size_t forced_flushes = 0;
  /// Requests denied immediately by the max_pending overload bound.
  std::size_t overload_denied = 0;
  double initial_utility = 0.0;
  double final_utility = 0.0;
  double solve_wall_seconds = 0.0;  // total wall spent inside re-solves

  // Virtual decision latency (decided_at - request time, time units) and
  // wall decision latency (the deciding batch's solve wall time, seconds).
  double virtual_p50 = 0.0;
  double virtual_p99 = 0.0;
  double wall_p50 = 0.0;
  double wall_p99 = 0.0;

  /// Decisions per wall-second of solve time (0 when no solve ran).
  double decisions_per_second() const;

  /// The deterministic replay artifact: every DecisionRecord::line(),
  /// newline-terminated. Bit-identical across thread counts.
  std::string decision_log() const;

  /// Human-readable aggregate (CLI --report).
  std::string summary() const;

  /// Machine-readable summary (CLI --json): counts, latency percentiles,
  /// throughput, and the final utility. Valid JSON by construction.
  void write_json(std::ostream& out) const;
};

/// The admission-serving event loop (ISSUE 7 tentpole, docs/SERVE.md).
/// Wraps a ctrl::Controller: requests stream in via submit() in timestamp
/// order, coalesce into batches under `window`, and each flush applies the
/// batch's topology events plus staged admit arrivals through
/// Controller::apply_batch — one rebuild, one warm-started re-solve —
/// then answers every pending request from the updated plan. Denied
/// admissions are reverted with a second (depart) batch, so a flush costs
/// at most two solves regardless of batch size.
///
/// Deterministic by construction: decisions depend only on the request
/// stream and the solver (bit-identical across thread counts with the
/// distributed backend); wall time feeds metrics only.
class Daemon {
 public:
  Daemon(const stream::StreamNetwork& baseline, ServeOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Feeds one request. Throws util::CheckError if its timestamp precedes
  /// an already-submitted one; any other validation failure becomes a
  /// kRejected decision, not an exception — a live daemon must survive bad
  /// input. May flush the pending batch first (window expiry).
  void submit(const Request& request);

  /// Advances the virtual clock to `time` without submitting anything:
  /// flushes the open batch iff `time >= open time + window`, exactly as an
  /// arrival at `time` would. The durable wrapper (serve/wal.hpp) calls this
  /// *before* appending a request's WAL record, so every flush-point
  /// snapshot is taken with an empty pending set and covers precisely the
  /// records appended so far. Idempotent; does not move the ordering bound.
  void advance_to(std::size_t time);

  /// Flushes the pending batch (no-op when nothing is pending). A flush
  /// from here — the wall-clock timer and end-of-stream path — counts as
  /// *forced* (serve_batch_forced_flush), unlike the arrival-driven flushes
  /// inside submit()/advance_to().
  void flush();

  /// Flushes and returns the final report. submit() after finish() throws.
  /// Asserts the trailing-batch contract: after finish() nothing is pending
  /// — a batch left open by the stream's end has been force-flushed.
  const ServeReport& finish();

  /// Replays a whole script: submit every request, then finish().
  const ServeReport& run(const Script& script);

  const ServeReport& report() const { return report_; }
  const ServeOptions& options() const { return options_; }
  const ctrl::Controller& controller() const { return *controller_; }
  ctrl::Controller& controller() { return *controller_; }

  bool batch_open() const { return batch_open_; }
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t last_time() const { return last_time_; }

  /// Serializes everything a restarted daemon needs to continue the run
  /// bit-identically — batch ordinal, ordering bound, outcome counters, and
  /// the controller's full state (hexfloat-exact) — as a text blob. Only
  /// legal at a settled point (no open batch, nothing pending): the durable
  /// wrapper snapshots at flush boundaries. Decided records themselves are
  /// not serialized; the WAL's decisions.log carries those.
  void export_snapshot(std::ostream& out) const;

  /// Restores an export_snapshot blob into a freshly constructed daemon.
  /// After import the daemon continues numbering batches and enforcing
  /// time-ordering where the exporter stopped; report().decisions restarts
  /// empty (recovery re-derives the tail from the WAL). Wall-clock latency
  /// stats and process-local metric counters restart at zero.
  void import_snapshot(std::istream& in);

 private:
  struct Pending {
    Request request;
    bool staged = false;          // accepted into the batch's event list
    std::string reject_reason;    // non-empty => decided kRejected
  };

  void open_batch(std::size_t time);
  void decide_batch(bool forced);
  DecisionRecord decide_admit(const Pending& pending,
                              const ctrl::BatchOutcome& outcome,
                              std::vector<ctrl::ChurnEvent>& reverts);
  void finalize_record(DecisionRecord record);
  void register_metrics();

  ServeOptions options_;
  std::unique_ptr<ctrl::Controller> controller_;
  ServeReport report_;
  std::vector<Pending> pending_;
  std::vector<double> virtual_latencies_;
  std::vector<double> wall_latencies_;
  std::size_t open_time_ = 0;
  std::size_t last_time_ = 0;
  bool batch_open_ = false;
  bool finished_ = false;
  /// Set by import_snapshot: the time-ordering bound applies from the very
  /// first post-restore submit even though report().decisions is empty.
  bool restored_ = false;

  obs::MetricId m_requests_ = 0;
  obs::MetricId m_admits_ = 0;
  obs::MetricId m_degrades_ = 0;
  obs::MetricId m_denies_ = 0;
  obs::MetricId m_applied_ = 0;
  obs::MetricId m_rejected_ = 0;
  obs::MetricId m_queries_ = 0;
  obs::MetricId m_batches_ = 0;
  obs::MetricId m_solves_ = 0;
  obs::MetricId m_forced_flush_ = 0;
  obs::MetricId m_overload_ = 0;
  obs::MetricId m_batch_size_ = 0;
  obs::MetricId m_virtual_latency_ = 0;
  obs::MetricId m_wall_latency_us_ = 0;
  obs::MetricId m_utility_ = 0;
};

/// What the acceptor (serve/acceptor.hpp) pushes ordered requests into —
/// either a bare Daemon (DaemonSink) or the durable WAL wrapper
/// (serve/wal.hpp's Durable), which persists each request before it enters
/// a batch. The acceptor never talks to the Daemon directly, so durability
/// is a composition choice, not a code path.
class ServeSink {
 public:
  virtual ~ServeSink() = default;

  /// Accepts the next request in boundary total order. Throws
  /// util::CheckError on an out-of-order timestamp (the caller answers the
  /// client with an error line and drops the request).
  virtual void submit(const Request& request) = 0;

  /// Forces the open batch to flush now (wall-clock timer, end-of-stream).
  virtual void force_flush() = 0;

  virtual Daemon& daemon() = 0;

  /// The fencing epoch clients must match; 0 when the sink is not durable
  /// (no persisted epoch — fencing is vacuous).
  virtual std::uint64_t epoch() const = 0;

  /// Requests ever accepted into the sink — across restarts for a durable
  /// sink (the WAL sequence number). The acceptor seeds its --stamp arrival
  /// ordinal from this so the stamped virtual clock continues monotonically
  /// after a recovery instead of restarting at 0 (docs/SERVE.md §9).
  virtual std::uint64_t accepted() const = 0;
};

/// The non-durable sink: forwards straight to a Daemon.
class DaemonSink final : public ServeSink {
 public:
  explicit DaemonSink(Daemon& daemon) : daemon_(&daemon) {}

  void submit(const Request& request) override { daemon_->submit(request); }
  void force_flush() override { daemon_->flush(); }
  Daemon& daemon() override { return *daemon_; }
  std::uint64_t epoch() const override { return 0; }
  std::uint64_t accepted() const override {
    return daemon_->report().decisions.size() + daemon_->pending_count();
  }

 private:
  Daemon* daemon_;
};

}  // namespace maxutil::serve
