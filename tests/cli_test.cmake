# CTest script driving the maxutil_cli binary end-to-end:
# generate -> validate -> solve (lp and gradient agree) -> dot.
# Invoked as: cmake -DCLI=<path-to-maxutil_cli> -DWORK=<dir> -P cli_test.cmake

function(run_cli out_var)
  execute_process(COMMAND ${CLI} ${ARGN}
                  OUTPUT_VARIABLE output
                  ERROR_VARIABLE error
                  RESULT_VARIABLE result)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "maxutil_cli ${ARGN} failed (${result}): ${error}")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

set(scenario_file ${WORK}/cli_test_scenario.txt)

run_cli(generated generate --servers 12 --commodities 2 --stages 3 --seed 7)
file(WRITE ${scenario_file} "${generated}")

run_cli(validated validate ${scenario_file})
if(NOT validated MATCHES "OK")
  message(FATAL_ERROR "validate did not report OK: ${validated}")
endif()

run_cli(lp_out solve ${scenario_file} --algo lp)
if(NOT lp_out MATCHES "total utility \\(lp\\): ([0-9.]+)")
  message(FATAL_ERROR "lp solve output unparseable: ${lp_out}")
endif()
set(lp_value ${CMAKE_MATCH_1})

run_cli(grad_out solve ${scenario_file} --algo gradient --iters 6000 --eps 0.05)
if(NOT grad_out MATCHES "total utility \\(gradient\\): ([0-9.]+)")
  message(FATAL_ERROR "gradient solve output unparseable: ${grad_out}")
endif()
set(grad_value ${CMAKE_MATCH_1})

# Gradient within 10% of the LP optimum.
math(EXPR dummy "0")  # noop to keep CMake happy with math contexts
if(grad_value LESS 0)
  message(FATAL_ERROR "negative utility")
endif()
# CMake's math() is integer-only; compare via floating arithmetic in CMake 3.19+
# string comparison fallback: compute ratio with execute_process(awk)-free trick:
# use if(LESS) on scaled integers.
string(REPLACE "." "" _ignore "${grad_value}")  # ensure numeric-ish
math(EXPR grad_milli "0")
# Use CMake's native float comparison (3.7+ supports VERSION_LESS misuse is
# fragile); do a computed check instead:
execute_process(COMMAND ${CMAKE_COMMAND} -E echo "check"
                OUTPUT_QUIET)
# Simple threshold: grad >= 0.9 * lp  <=>  10*grad >= 9*lp.
# Parse into integer micro-units.
macro(to_micro var value)
  string(FIND "${value}" "." dot_pos)
  if(dot_pos EQUAL -1)
    set(int_part "${value}")
    set(frac_part "000000")
  else()
    string(SUBSTRING "${value}" 0 ${dot_pos} int_part)
    math(EXPR frac_start "${dot_pos} + 1")
    string(SUBSTRING "${value}" ${frac_start} -1 frac_part)
    set(frac_part "${frac_part}000000")
    string(SUBSTRING "${frac_part}" 0 6 frac_part)
  endif()
  math(EXPR ${var} "${int_part} * 1000000 + ${frac_part}")
endmacro()
to_micro(grad_micro "${grad_value}")
to_micro(lp_micro "${lp_value}")
math(EXPR lhs "10 * ${grad_micro}")
math(EXPR rhs "9 * ${lp_micro}")
if(lhs LESS rhs)
  message(FATAL_ERROR "gradient ${grad_value} below 90% of LP ${lp_value}")
endif()

run_cli(dot_out dot ${scenario_file})
if(NOT dot_out MATCHES "digraph G")
  message(FATAL_ERROR "dot output malformed")
endif()
run_cli(dot_ext dot ${scenario_file} --extended)
if(NOT dot_ext MATCHES "dummy")
  message(FATAL_ERROR "extended dot output lacks dummy nodes")
endif()

message(STATUS "cli_test: all checks passed (lp=${lp_value}, gradient=${grad_value})")
