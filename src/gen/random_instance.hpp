#pragma once

#include <cstddef>
#include <functional>

#include "stream/model.hpp"
#include "util/rng.hpp"

namespace maxutil::gen {

/// Parameters of the Section-6 synthetic workload. Defaults reproduce the
/// paper's published distributions: 40 servers, 3 commodities, node and link
/// capacities ~ U[1,100], potentials g ~ U[1,10] (so shrinkage
/// beta_ik = g_k/g_i per Property 1), resource consumption c ~ U[1,5].
struct RandomInstanceParams {
  std::size_t servers = 40;
  std::size_t commodities = 3;

  /// Number of processing stages (tasks) per commodity, source included.
  /// The commodity DAG has `stages` server layers followed by the sink, so
  /// its depth is stages hops of processing plus the final delivery hop.
  std::size_t stages = 5;

  /// Servers assigned per interior task (layer width), sampled uniformly in
  /// [min_width, max_width]; the source stage always has width 1.
  std::size_t min_width = 1;
  std::size_t max_width = 3;

  /// Probability of each possible layer-(l) -> layer-(l+1) edge beyond the
  /// connectivity patching that guarantees no dead ends.
  double edge_probability = 0.5;

  double min_capacity = 1.0;
  double max_capacity = 100.0;
  double min_bandwidth = 1.0;
  double max_bandwidth = 100.0;
  double min_potential = 1.0;
  double max_potential = 10.0;
  double min_consumption = 1.0;
  double max_consumption = 5.0;

  /// Maximum source rate lambda_j. Section 6 maximizes total throughput, so
  /// the default saturates the network and admission control binds.
  double lambda = 100.0;

  /// Utility family per commodity; defaults to the paper's linear
  /// "total throughput" objective.
  std::function<maxutil::stream::Utility(maxutil::stream::CommodityId)>
      utility_for;
};

/// Generates a random layered stream-processing instance.
///
/// Each commodity gets a dedicated source server and sink; interior stages
/// draw (possibly overlapping across commodities) server sets from the
/// shared pool, so commodities contend for both computing power and link
/// bandwidth, as in the paper's 40-node 3-commodity experiment. Per
/// commodity, stage layers are connected by random bipartite edges patched
/// so that every layer node has at least one incoming and one outgoing
/// usable link (no dead ends); physical links are shared across commodities
/// when both use the same (tail, head) server pair. The result always passes
/// stream::validate.
maxutil::stream::StreamNetwork random_instance(const RandomInstanceParams& params,
                                               maxutil::util::Rng& rng);

}  // namespace maxutil::gen
