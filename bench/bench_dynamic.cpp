// E11 — extension: dynamic demand. The paper motivates bursty, unpredictable
// stream rates and notes (Section 3) that the penalty barrier's spare
// capacity helps "better accommodate changing demands". Here commodity 0 of
// the Section-6 instance follows demand traces (step / on-off bursts) while
// the gradient optimizer keeps running; the admission controller re-tracks
// the moving optimum without ever violating a capacity.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "gen/trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E11: demand tracking under bursty traces ===\n");
  std::printf("Section-6 instance (seed 2007); commodity 0's lambda follows"
              " a trace, re-sampled every epoch of 100 iterations\n\n");

  auto net = bench::paper_instance();
  xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const xform::ExtendedGraph xg(net, penalty);

  // LP optimum per distinct lambda level (cached).
  std::map<double, double> optimum_cache;
  const auto optimum_for = [&](double lambda) {
    const auto it = optimum_cache.find(lambda);
    if (it != optimum_cache.end()) return it->second;
    net.set_lambda(0, lambda);
    const double value = xform::solve_reference(xg).optimal_utility;
    optimum_cache[lambda] = value;
    return value;
  };

  struct TraceCase {
    const char* name;
    gen::DemandTrace trace;
  };
  const std::vector<TraceCase> cases{
      {"step 100 -> 10 at epoch 30", gen::DemandTrace::step(100.0, 10.0, 30)},
      {"on/off burst 100/5, period 20", gen::DemandTrace::on_off(100.0, 5.0, 20, 10)},
  };

  bool all_ok = true;
  for (const TraceCase& c : cases) {
    std::printf("--- trace: %s ---\n", c.name);
    core::GradientOptions options;
    options.eta = 0.08;
    options.record_history = false;
    options.max_iterations = static_cast<std::size_t>(-1);
    // Fresh optimizer per trace; demand starts at the trace's first level.
    net.set_lambda(0, c.trace.at(0));
    core::GradientOptimizer opt(xg, options);

    const std::size_t epochs = 60;
    const std::size_t iters_per_epoch = 100;
    double worst_violation = 0.0;
    util::RunningStats tracking;  // achieved/optimal in the settled half of epochs
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
      const double lambda = c.trace.at(epoch);
      net.set_lambda(0, lambda);
      opt.refresh_flows();
      for (std::size_t i = 0; i < iters_per_epoch; ++i) opt.step();
      const double optimal = optimum_for(lambda);
      worst_violation = std::max(
          worst_violation, opt.allocation().max_capacity_violation(xg));
      if (epoch >= 10) tracking.add(opt.utility() / optimal);
    }
    std::printf("tracking ratio (epochs 10+): mean %.3f, min %.3f;"
                " worst capacity violation %.2e\n",
                tracking.mean(), tracking.min(), worst_violation);
    all_ok &= bench::shape_check("tracks >= 85% of the moving optimum",
                                 tracking.min() >= 0.85);
    all_ok &= bench::shape_check("capacities never violated during swings",
                                 worst_violation < 1e-9);
    std::printf("\n");
  }

  std::printf("shape checks: %s\n", all_ok ? "all passed" : "FAILURES");
  return all_ok ? 0 : 1;
}
