#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/daemon.hpp"

namespace maxutil::serve {

/// FNV-1a 64-bit over `bytes` — the WAL/snapshot checksum. Chosen for being
/// dependency-free and byte-order independent; this guards against torn
/// writes and bit rot, not adversaries.
std::uint64_t fnv1a64(const std::string& bytes);

/// One durable request: the boundary total-order sequence number, the
/// incarnation epoch that accepted it, and the request's canonical protocol
/// line (Request::describe(), so replay re-parses the exact grammar clients
/// speak).
struct WalRecord {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
  std::string payload;
};

/// Append-only record log. Each append issues one write() syscall of a
/// fully formed line — `r <seq> <epoch> <fnv64hex> <payload>\n`, checksum
/// over "<seq> <epoch> <payload>" — so a SIGKILL can never lose a record
/// that append() returned for. fsync is batched: Durable calls sync() at
/// batch-flush points, which is the power-loss durability boundary
/// (docs/SERVE.md §8).
class Wal {
 public:
  /// Opens (creates) the log for appending. Throws util::CheckError on I/O
  /// failure.
  explicit Wal(const std::string& path);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  void append(const WalRecord& record);
  void sync();

  std::uint64_t last_seq() const { return last_seq_; }
  void set_last_seq(std::uint64_t seq) { last_seq_ = seq; }

  /// Reads every valid record from `path` (missing file => empty). A torn
  /// tail — a final line without '\n', a malformed line, or a checksum
  /// mismatch — is truncated off the file in place; `truncated_bytes`
  /// (optional) reports how many bytes were cut. Records after the first
  /// bad byte are unreachable by construction (append is sequential), so
  /// truncation never discards a fsynced record.
  static std::vector<WalRecord> read_and_repair(
      const std::string& path, std::size_t* truncated_bytes = nullptr);

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t last_seq_ = 0;
};

struct DurableOptions {
  /// Directory holding wal.log, decisions.log, epoch, meta, and
  /// snapshot-<seq>.snap files. Created if absent.
  std::string dir;

  /// Take a snapshot every N batch flushes (0 = never; recovery then
  /// replays the whole WAL). Snapshots bound replay time, nothing else —
  /// correctness never depends on them.
  std::size_t snapshot_every = 8;
};

/// The durable ServeSink (tentpole pillar 1, docs/SERVE.md §8): write-ahead
/// logs every request before it reaches the Daemon, persists settled
/// decisions, snapshots the controller at flush points, and recovers a
/// previous incarnation's state on construction — bit-identical to an
/// uninterrupted run, because the decision log is a pure function of the
/// request stream and the WAL preserves that stream exactly.
///
/// Epoch fencing: every construction reads the persisted epoch, bumps it,
/// and persists the new value before serving, so a fenced-off predecessor
/// can never be mistaken for the live incarnation (the mongodb repl
/// topology coordinator's term pattern).
class Durable final : public ServeSink {
 public:
  /// Wraps `daemon` (which must be freshly constructed) with durability
  /// rooted at options.dir. If the directory holds a previous incarnation's
  /// WAL, recovery runs here: newest valid snapshot imported, decisions.log
  /// truncated to the snapshot's coverage, WAL tail replayed through the
  /// daemon. Throws util::CheckError if the directory belongs to a run with
  /// different serve options (the `meta` fingerprint).
  Durable(Daemon& daemon, DurableOptions options);
  ~Durable() override;

  void submit(const Request& request) override;
  void force_flush() override;
  Daemon& daemon() override { return *daemon_; }
  std::uint64_t epoch() const override { return epoch_; }
  std::uint64_t accepted() const override { return wal_->last_seq(); }

  /// How many WAL records recovery replayed (0 on a fresh directory).
  std::uint64_t replayed() const { return replayed_; }

  /// True when construction found and recovered prior state.
  bool recovered() const { return recovered_; }

  /// The complete decision log: the persisted prefix covered by the
  /// recovery snapshot plus every decision this incarnation made. For an
  /// uninterrupted run this equals report().decision_log(); after recovery
  /// it is the bit-identical continuation of the whole history.
  std::string full_decision_log() const;

  /// Flushes the trailing batch, persists everything, and fsyncs both
  /// logs. Returns the daemon's final report.
  const ServeReport& finish();

 private:
  void register_metrics();
  void load_or_init_meta() const;
  std::uint64_t bump_epoch() const;
  void recover();
  /// Appends newly settled decisions to decisions.log; when a flush
  /// happened (new decisions appeared), fsyncs the WAL + decisions.log and
  /// possibly snapshots. Safe to call any time the daemon has no open
  /// batch-internal work in flight.
  void persist_settled();
  void write_snapshot();

  Daemon* daemon_;
  DurableOptions options_;
  std::unique_ptr<Wal> wal_;
  int decisions_fd_ = -1;
  std::uint64_t epoch_ = 0;
  std::uint64_t replayed_ = 0;
  bool recovered_ = false;
  bool replaying_ = false;

  /// decisions.log lines written by earlier incarnations and covered by the
  /// imported snapshot (the live daemon's report starts after these).
  std::string prefix_;
  std::size_t prefix_lines_ = 0;
  /// How many of the live daemon's decisions are already in decisions.log.
  std::size_t persisted_live_ = 0;
  std::size_t flushes_since_snapshot_ = 0;
  /// Seq of the last record handed to the daemon — the only legal snapshot
  /// coverage point (during replay the WAL file is ahead of the daemon).
  std::uint64_t submitted_seq_ = 0;
  std::uint64_t last_snapshot_seq_ = 0;

  obs::MetricId m_records_ = 0;
  obs::MetricId m_replayed_ = 0;
  obs::MetricId m_snapshots_ = 0;
  obs::MetricId m_truncated_ = 0;
  obs::MetricId m_epoch_ = 0;
};

}  // namespace maxutil::serve
