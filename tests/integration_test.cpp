// End-to-end integration: whole-pipeline flows across modules, the way a
// user composes them — scenario text -> model -> transform -> (all four
// solvers) -> physical allocation -> packet-level execution; placement ->
// optimization; failure -> surgery -> warm restart -> re-validation.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "bp/backpressure.hpp"
#include "core/optimizer.hpp"
#include "core/warm_start.hpp"
#include "des/packet_sim.hpp"
#include "gen/random_instance.hpp"
#include "placement/greedy_placer.hpp"
#include "scenario/scenario.hpp"
#include "sim/distributed_gradient.hpp"
#include "stream/surgery.hpp"
#include "stream/validate.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

// Pipeline A: text -> model -> every solver agrees on the economics.
TEST(Integration, ScenarioToAllSolvers) {
  const char* text = R"(
    server ingestA 40
    server ingestB 40
    server relay 25
    sink outA
    sink outB
    link ingestA relay 100
    link ingestB relay 100
    link relay outA 100
    link relay outB 100
    commodity alpha ingestA outA 30 log
    commodity beta  ingestB outB 30 log
    use alpha ingestA relay 1
    use alpha relay outA 1
    use beta ingestB relay 1
    use beta relay outB 1
  )";
  const StreamNetwork net = maxutil::scenario::parse_string(text);
  ASSERT_TRUE(maxutil::stream::validate(net).ok());
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const ExtendedGraph xg(net, penalty);

  // Centralized references: PWL-LP and Frank-Wolfe.
  maxutil::xform::ReferenceOptions ropts;
  ropts.pwl_segments = 300;
  const auto lp = maxutil::xform::solve_reference(xg, ropts);
  ASSERT_EQ(lp.status, maxutil::lp::LpStatus::kOptimal);
  const auto fw = maxutil::xform::solve_reference_frank_wolfe(xg, 500);
  ASSERT_EQ(fw.status, maxutil::lp::LpStatus::kOptimal);
  EXPECT_NEAR(fw.utility, lp.optimal_utility, 0.02);

  // Distributed gradient (centralized sweeps and true message passing).
  maxutil::core::GradientOptions gopt;
  gopt.eta = 0.1;
  gopt.record_history = false;
  gopt.max_iterations = 6000;
  maxutil::core::GradientOptimizer gradient(xg, gopt);
  gradient.run();
  EXPECT_GT(gradient.utility(), 0.95 * lp.optimal_utility);

  maxutil::sim::DistributedGradientSystem actors(xg, {.eta = 0.1});
  actors.run(6000);
  EXPECT_NEAR(actors.utility(), gradient.utility(), 1e-6);

  // Back-pressure baseline lands in the same place (log utilities weight the
  // greedy ordering only, so allow a loose band).
  maxutil::bp::BackPressureOptions bopt;
  bopt.record_history = false;
  maxutil::bp::BackPressureOptimizer bp(xg, bopt);
  bp.run(40000);
  EXPECT_GT(bp.utility(), 0.85 * lp.optimal_utility);

  // The symmetric instance must split the relay evenly under log utility.
  const auto admitted = gradient.admitted();
  EXPECT_NEAR(admitted[0], admitted[1], 0.5);
}

// Pipeline B: placement -> optimize -> execute at packet level.
TEST(Integration, PlacementToPacketLevel) {
  StreamNetwork net;
  std::vector<NodeId> pool;
  for (int i = 0; i < 10; ++i) {
    pool.push_back(net.add_server("srv" + std::to_string(i), 40.0));
  }
  maxutil::placement::GreedyPlacer placer(net, pool, 60.0);
  maxutil::placement::PlacementRequest request;
  request.name = "q0";
  request.source = pool[0];
  request.stages = 2;
  request.replicas_per_stage = 2;
  request.lambda = 25.0;
  request.stage_gain = 0.8;
  const CommodityId j = placer.place(request);
  ASSERT_TRUE(maxutil::stream::validate(net).ok());

  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  maxutil::core::GradientOptions gopt;
  gopt.eta = 0.1;
  gopt.record_history = false;
  gopt.max_iterations = 5000;
  maxutil::core::GradientOptimizer opt(xg, gopt);
  opt.run();
  const double fluid = opt.admitted()[j];
  EXPECT_GT(fluid, 15.0);

  maxutil::des::PacketSimOptions sopts;
  sopts.horizon = 2000.0;
  sopts.warmup = 200.0;
  sopts.packet_size = 0.5;
  maxutil::des::PacketSimulator sim(xg, opt.routing(), sopts);
  sim.run();
  const auto stats = sim.commodity_stats(j);
  EXPECT_NEAR(stats.admitted_rate, fluid, 0.1 * fluid + 0.3);
  EXPECT_NEAR(stats.delivered_rate, stats.admitted_rate,
              0.05 * stats.admitted_rate + 0.3);
}

// Pipeline C: converge -> fail -> surgery -> warm restart -> re-validate,
// with the serialized scenario surviving the round trip at every stage.
TEST(Integration, FailureSurgeryWarmRestartRoundTrip) {
  Rng rng(314);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 14;
  p.commodities = 2;
  p.stages = 3;
  p.lambda = 40.0;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const ExtendedGraph xg(net, penalty);
  maxutil::core::GradientOptions gopt;
  gopt.eta = 0.08;
  gopt.record_history = false;
  gopt.max_iterations = 6000;
  maxutil::core::GradientOptimizer before(xg, gopt);
  before.run();

  // Fail the busiest interior server.
  NodeId victim = maxutil::stream::kRemovedEntity;
  double load = -1.0;
  const auto alloc = before.allocation();
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (net.is_sink(n) || net.source(0) == n || net.source(1) == n) continue;
    if (alloc.server_usage[n] > load) {
      load = alloc.server_usage[n];
      victim = n;
    }
  }
  ASSERT_NE(victim, maxutil::stream::kRemovedEntity);
  const auto surgery = maxutil::stream::without_server(net, victim);
  ASSERT_TRUE(maxutil::stream::validate(surgery.network).ok());

  // The survivor serializes and parses back identically.
  const std::string text = maxutil::scenario::write_string(surgery.network);
  const StreamNetwork reparsed = maxutil::scenario::parse_string(text);
  EXPECT_EQ(reparsed.node_count(), surgery.network.node_count());
  EXPECT_EQ(reparsed.commodity_count(), surgery.network.commodity_count());

  if (surgery.network.commodity_count() == 0) return;  // nothing to restart
  const ExtendedGraph new_xg(surgery.network, penalty);
  const auto warm =
      maxutil::core::transfer_routing(xg, before.routing(), new_xg, surgery);
  maxutil::core::GradientOptimizer after(new_xg, gopt, warm);
  after.run();
  const auto reference = maxutil::xform::solve_reference(new_xg);
  ASSERT_EQ(reference.status, maxutil::lp::LpStatus::kOptimal);
  EXPECT_GT(after.utility(), 0.93 * reference.optimal_utility);
  EXPECT_NEAR(after.allocation().max_capacity_violation(new_xg), 0.0, 1e-9);
}

// The distributed actor system keeps functioning for the surviving
// commodity when a node carrying only the *other* commodity fails: the
// failed commodity's waves stall (messages drop) but the runtime stays
// quiet-terminating and snapshots remain valid for the survivor.
TEST(Integration, ActorSystemSurvivesIrrelevantFailure) {
  const char* text = R"(
    server s0 30
    server m0 30
    server s1 30
    server m1 30
    sink t0
    sink t1
    link s0 m0 50
    link m0 t0 50
    link s1 m1 50
    link m1 t1 50
    commodity c0 s0 t0 10 linear
    commodity c1 s1 t1 10 linear
    use c0 s0 m0 1
    use c0 m0 t0 1
    use c1 s1 m1 1
    use c1 m1 t1 1
  )";
  const StreamNetwork net = maxutil::scenario::parse_string(text);
  const ExtendedGraph xg(net);
  maxutil::sim::DistributedGradientSystem system(xg, {.eta = 0.1});
  system.run(200);
  const double u_both = system.utility();
  EXPECT_GT(u_both, 18.0);  // both streams admitted (~10 + ~10)

  // Kill commodity c1's relay m1 (extended node id 3 is the physical m1).
  // c0's marginal/forecast waves are untouched.
  const_cast<maxutil::sim::Runtime&>(system.runtime()).fail(3);
  system.run(50);  // must not hang or throw
  const auto snapshot = system.routing_snapshot();
  // c0's routing is still a valid distribution at every carrying node.
  const auto flows = maxutil::core::compute_flows(xg, snapshot);
  EXPECT_GT(maxutil::core::admitted_rate(xg, flows, 0), 8.0);
}

}  // namespace
