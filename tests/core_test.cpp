#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/allocation.hpp"
#include "core/flow.hpp"
#include "core/gamma.hpp"
#include "core/marginals.hpp"
#include "core/optimality.hpp"
#include "core/optimizer.hpp"
#include "core/routing.hpp"
#include "core/warm_start.hpp"
#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "stream/model.hpp"
#include "stream/surgery.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::core::FlowState;
using maxutil::core::GradientOptimizer;
using maxutil::core::GradientOptions;
using maxutil::core::MarginalCosts;
using maxutil::core::RoutingState;
using maxutil::graph::EdgeId;
using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

StreamNetwork chain_network(double lambda = 3.0) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 20.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 5.0);
  const auto bt = net.add_link(b, t, 6.0);
  const CommodityId j = net.add_commodity("c0", a, t, lambda, Utility::linear());
  net.enable_link(j, ab, 2.0);
  net.enable_link(j, bt, 1.0);
  return net;
}

StreamNetwork diamond_network(double lambda, double cheap_cost,
                              double pricey_cost) {
  // a -> {b, c} -> t with different consumptions on the two branches.
  StreamNetwork net;
  const NodeId a = net.add_server("a", 50.0);
  const NodeId b = net.add_server("b", 50.0);
  const NodeId c = net.add_server("c", 50.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 50.0);
  const auto ac = net.add_link(a, c, 50.0);
  const auto bt = net.add_link(b, t, 50.0);
  const auto ct = net.add_link(c, t, 50.0);
  const CommodityId j = net.add_commodity("d", a, t, lambda, Utility::linear());
  net.enable_link(j, ab, 1.0);
  net.enable_link(j, ac, 1.0);
  net.enable_link(j, bt, cheap_cost);
  net.enable_link(j, ct, pricey_cost);
  return net;
}

TEST(RoutingState, InitialSatisfiesInvariants) {
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  const RoutingState routing = RoutingState::initial(xg);
  EXPECT_TRUE(routing.is_valid(xg));
  // All offered load initially rejected.
  EXPECT_DOUBLE_EQ(routing.phi(0, xg.dummy_difference_link(0)), 1.0);
  EXPECT_DOUBLE_EQ(routing.phi(0, xg.dummy_input_link(0)), 0.0);
}

TEST(RoutingState, InvariantViolationDetected) {
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  RoutingState routing = RoutingState::initial(xg);
  routing.set_phi(0, xg.dummy_difference_link(0), 0.5);  // sums to 0.5 now
  EXPECT_FALSE(routing.is_valid(xg));
  EXPECT_NEAR(routing.max_invariant_violation(xg), 0.5, 1e-12);
}

TEST(RoutingState, BlendInterpolates) {
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  RoutingState a = RoutingState::initial(xg);
  RoutingState b = a;
  b.set_phi(0, xg.dummy_difference_link(0), 0.0);
  b.set_phi(0, xg.dummy_input_link(0), 1.0);
  a.blend_toward(b, 0.25);
  EXPECT_TRUE(a.is_valid(xg));
  EXPECT_DOUBLE_EQ(a.phi(0, xg.dummy_input_link(0)), 0.25);
  EXPECT_DOUBLE_EQ(a.max_difference(b), 0.75);
}

TEST(FlowState, ChainHandComputed) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  RoutingState routing = RoutingState::initial(xg);
  // Admit two thirds of lambda = 3 -> a = 2.
  routing.set_phi(0, xg.dummy_difference_link(0), 1.0 / 3.0);
  routing.set_phi(0, xg.dummy_input_link(0), 2.0 / 3.0);
  const FlowState flows = maxutil::core::compute_flows(xg, routing);

  EXPECT_NEAR(maxutil::core::admitted_rate(xg, flows, 0), 2.0, 1e-12);
  EXPECT_NEAR(maxutil::core::total_utility(xg, flows), 2.0, 1e-12);
  // Node a processes 2 units at c = 2 -> usage 4.
  EXPECT_NEAR(flows.f_node[0], 4.0, 1e-12);
  // Bandwidth node of a->b carries 2 (beta = 1), spending 2 of its 5.
  EXPECT_NEAR(flows.f_node[xg.bandwidth_node(0)], 2.0, 1e-12);
  // Node b processes 2 units at c = 1.
  EXPECT_NEAR(flows.f_node[1], 2.0, 1e-12);
  // Utility loss on the difference link: U(3) - U(3 - 1) = 1.
  EXPECT_NEAR(flows.utility_loss, 1.0, 1e-12);
  EXPECT_GT(flows.penalty, 0.0);
  EXPECT_NEAR(maxutil::core::max_balance_residual(xg, flows), 0.0, 1e-12);
}

TEST(FlowState, ShrinkageScalesDownstreamTraffic) {
  StreamNetwork net = chain_network(3.0);
  net.set_potential(0, 1, 0.5);
  net.set_potential(0, 2, 1.0);
  const ExtendedGraph xg(net);
  RoutingState routing = RoutingState::initial(xg);
  routing.set_phi(0, xg.dummy_difference_link(0), 0.0);
  routing.set_phi(0, xg.dummy_input_link(0), 1.0);
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  // t at b is 3 * beta(a->b) = 1.5; b's usage = 1.5 * c(1) = 1.5.
  EXPECT_NEAR(flows.t_at(0, 1), 1.5, 1e-12);
  EXPECT_NEAR(flows.f_node[1], 1.5, 1e-12);
  // Bandwidth node b->t carries 1.5 * beta(b->t) = 3.
  EXPECT_NEAR(flows.f_node[xg.bandwidth_node(1)], 3.0, 1e-12);
  EXPECT_NEAR(maxutil::core::max_balance_residual(xg, flows), 0.0, 1e-12);
}

// Central correctness check for Section 5's calculus: eq. (10) says
// dA/dphi_ik(j) = t_i(j) * [dA_i/df_ik c_ik + beta_ik dA/dr_k], so the
// analytic marginals must match finite differences of the cost computed by
// compute_flows when phi_ik is perturbed as a free variable.
TEST(Marginals, MatchFiniteDifferencesOnRandomInstance) {
  Rng rng(404);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 14;
  p.commodities = 2;
  p.stages = 3;
  p.lambda = 30.0;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  const ExtendedGraph xg(net);

  // A mildly admitted routing keeps every t_i positive along used paths
  // while staying far from the capacity barrier (so the finite differences
  // stay finite).
  RoutingState routing = RoutingState::initial(xg);
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    routing.set_phi(j, xg.dummy_difference_link(j), 0.9);
    routing.set_phi(j, xg.dummy_input_link(j), 0.1);
  }
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  ASSERT_TRUE(std::isfinite(flows.cost()));
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);

  const double h = 1e-6;
  std::size_t checked = 0;
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    for (EdgeId e = 0; e < xg.edge_count(); ++e) {
      if (!xg.usable(j, e)) continue;
      const NodeId tail = xg.graph().tail(e);
      if (flows.t_at(j, tail) <= 0.0) continue;
      if (routing.phi(j, e) < h) continue;  // one-sided at the boundary
      RoutingState up = routing;
      up.set_phi(j, e, routing.phi(j, e) + h);
      RoutingState down = routing;
      down.set_phi(j, e, routing.phi(j, e) - h);
      const double up_cost = maxutil::core::compute_flows(xg, up).cost();
      const double down_cost = maxutil::core::compute_flows(xg, down).cost();
      ASSERT_TRUE(std::isfinite(up_cost) && std::isfinite(down_cost));
      const double fd = (up_cost - down_cost) / (2.0 * h);
      const double analytic =
          flows.t_at(j, tail) *
          maxutil::core::marginal_via_edge(xg, flows, marginals, j, e);
      EXPECT_NEAR(analytic, fd, 1e-4 * (1.0 + std::abs(fd)))
          << "commodity " << j << " edge " << e;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(Marginals, SinkConventionIsZero) {
  const StreamNetwork net = chain_network();
  const ExtendedGraph xg(net);
  const RoutingState routing = RoutingState::initial(xg);
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  EXPECT_DOUBLE_EQ(marginals.dr_at(0, xg.sink(0)), 0.0);
}

TEST(Marginals, RejectedTrafficCostsUtilityDerivative) {
  // At the all-rejected initial state, the dummy source's marginal cost is
  // phi_diff * Y'(lambda) = U'(0) = 1 for linear utility.
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  const RoutingState routing = RoutingState::initial(xg);
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  EXPECT_NEAR(marginals.dr_at(0, xg.dummy_source(0)), 1.0, 1e-12);
}

TEST(Gamma, ShiftsTowardCheaperBranch) {
  // Diamond with pricey lower branch: Gamma must move fraction from the
  // expensive c-branch toward the cheap b-branch at node a.
  const StreamNetwork net = diamond_network(10.0, 1.0, 8.0);
  const ExtendedGraph xg(net);
  RoutingState routing = RoutingState::initial(xg);
  // Admit everything so interior traffic is positive.
  routing.set_phi(0, xg.dummy_difference_link(0), 0.0);
  routing.set_phi(0, xg.dummy_input_link(0), 1.0);
  const auto& g = xg.graph();
  const EdgeId to_b = g.find_edge(0, xg.bandwidth_node(0));  // a -> bw(a->b)
  const EdgeId to_c = g.find_edge(0, xg.bandwidth_node(1));  // a -> bw(a->c)
  const double before_b = routing.phi(0, to_b);

  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  maxutil::core::GammaOptions options;
  options.eta = 0.1;
  const auto stats =
      maxutil::core::apply_gamma(xg, flows, marginals, options, routing);

  EXPECT_GT(routing.phi(0, to_b), before_b);
  EXPECT_LT(routing.phi(0, to_c), 1.0 - before_b + 1e-12);
  EXPECT_GT(stats.max_phi_change, 0.0);
  EXPECT_TRUE(routing.is_valid(xg, 1e-9));
}

TEST(Gamma, StepDecreasesCost) {
  const StreamNetwork net = diamond_network(10.0, 1.0, 4.0);
  const ExtendedGraph xg(net);
  RoutingState routing = RoutingState::initial(xg);
  const double cost_before = maxutil::core::compute_flows(xg, routing).cost();
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  maxutil::core::GammaOptions options;
  options.eta = 0.02;
  maxutil::core::apply_gamma(xg, flows, marginals, options, routing);
  const double cost_after = maxutil::core::compute_flows(xg, routing).cost();
  EXPECT_LT(cost_after, cost_before);
}

TEST(Gamma, ZeroTrafficNodesSnapToBestLink) {
  const StreamNetwork net = diamond_network(10.0, 1.0, 8.0);
  const ExtendedGraph xg(net);
  RoutingState routing = RoutingState::initial(xg);  // a = 0: interior t = 0
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  maxutil::core::GammaOptions options;
  const auto stats =
      maxutil::core::apply_gamma(xg, flows, marginals, options, routing);
  EXPECT_GT(stats.snapped_nodes, 0u);
  // Node a now routes everything toward the cheap branch b.
  const EdgeId to_b = xg.graph().find_edge(0, xg.bandwidth_node(0));
  EXPECT_DOUBLE_EQ(routing.phi(0, to_b), 1.0);
  EXPECT_TRUE(routing.is_valid(xg, 1e-9));
}

TEST(Optimizer, ChainAdmitsUncongestedLoad) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.2;
  options.max_iterations = 3000;
  GradientOptimizer opt(xg, options);
  opt.run();
  // lambda = 3 is far below the bottleneck (5); nearly all is admitted, up
  // to the small barrier-induced backoff.
  EXPECT_GT(opt.utility(), 2.8);
  EXPECT_LE(opt.admitted()[0], 3.0 + 1e-9);
}

TEST(Optimizer, RespectsCapacitiesEveryIteration) {
  const StreamNetwork net = chain_network(100.0);  // heavily oversubscribed
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.3;  // aggressive step to provoke the safeguard
  options.max_iterations = 400;
  GradientOptimizer opt(xg, options);
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    opt.step();
    const auto alloc = opt.allocation();
    ASSERT_NEAR(alloc.max_capacity_violation(xg), 0.0, 1e-9) << "iter " << i;
  }
  // The LP bottleneck is 5; the barrier keeps us just below.
  EXPECT_GT(opt.utility(), 4.0);
  EXPECT_LT(opt.utility(), 5.0 + 1e-6);
}

TEST(Optimizer, DiamondConvergesToLpOptimum) {
  const StreamNetwork net = diamond_network(60.0, 1.0, 3.0);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);

  GradientOptions options;
  options.eta = 0.1;
  options.max_iterations = 4000;
  GradientOptimizer opt(xg, options);
  opt.run();
  EXPECT_GT(opt.utility(), 0.95 * ref.optimal_utility)
      << "gradient " << opt.utility() << " vs LP " << ref.optimal_utility;
}

TEST(Optimizer, Figure1ConvergesToLpOptimum) {
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);

  GradientOptions options;
  options.eta = 0.2;
  options.max_iterations = 4000;
  GradientOptimizer opt(xg, options);
  opt.run();
  EXPECT_GT(opt.utility(), 0.95 * ref.optimal_utility);
  // Theorem 2's sufficient condition holds approximately at convergence.
  EXPECT_LT(opt.optimality().sufficient_violation, 0.05);
}

TEST(Optimizer, PaperInstanceReaches95PercentOfOptimal) {
  // The Section-6 experiment: 40 nodes, 3 commodities, eta = 0.04. At
  // eps = 0.1 the barrier gap is small enough that the gradient crosses 95%
  // of the LP optimum well within the paper's ~1000-iteration budget.
  Rng rng(2007);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  ASSERT_GT(ref.optimal_utility, 0.0);

  GradientOptions options;
  options.eta = 0.04;
  options.max_iterations = 1000;
  GradientOptimizer opt(xg, options);
  opt.run();
  EXPECT_GT(opt.utility(), 0.95 * ref.optimal_utility)
      << "gradient " << opt.utility() << " vs LP " << ref.optimal_utility;
  EXPECT_LE(opt.utility(), ref.optimal_utility + 1e-6);
}

TEST(Optimizer, PenaltyGapShrinksWithEpsilon) {
  // Section 3's claim: the barrier makes the solution *nearly* optimal, with
  // the gap controlled by eps. Verify the achieved utility increases
  // monotonically toward the LP optimum as eps decreases.
  Rng rng(2007);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  double previous = 0.0;
  double lp_value = 0.0;
  for (const double eps : {0.4, 0.2, 0.05}) {
    maxutil::xform::PenaltyConfig penalty;
    penalty.epsilon = eps;
    const ExtendedGraph xg(net, penalty);
    if (lp_value == 0.0) {
      const auto ref = maxutil::xform::solve_reference(xg);
      ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
      lp_value = ref.optimal_utility;
    }
    GradientOptions options;
    options.eta = 0.04;
    options.max_iterations = 4000;
    options.record_history = false;
    GradientOptimizer opt(xg, options);
    opt.run();
    EXPECT_GT(opt.utility(), previous);
    EXPECT_LE(opt.utility(), lp_value + 1e-6);
    previous = opt.utility();
  }
  EXPECT_GT(previous, 0.97 * lp_value);
}

TEST(Optimizer, HistoryRecordsMonotoneCostTail) {
  const StreamNetwork net = diamond_network(30.0, 1.0, 2.0);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.05;
  options.max_iterations = 1500;
  GradientOptimizer opt(xg, options);
  opt.run();
  const auto& cost = opt.history().column("cost");
  ASSERT_GT(cost.size(), 100u);
  // The transformed cost decreases (allowing tiny numeric wiggle).
  for (std::size_t i = 1; i < cost.size(); ++i) {
    EXPECT_LE(cost[i], cost[i - 1] + 1e-6) << "iteration " << i;
  }
  EXPECT_LT(cost.back(), cost.front());
}

TEST(Optimizer, ConvergenceToleranceStopsEarly) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.2;
  options.max_iterations = 100000;
  options.convergence_tol = 1e-10;
  GradientOptimizer opt(xg, options);
  const std::size_t used = opt.run();
  EXPECT_LT(used, options.max_iterations);
}

TEST(Optimizer, AllocationMapsBackToPhysical) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.2;
  options.max_iterations = 2000;
  GradientOptimizer opt(xg, options);
  opt.run();
  const auto alloc = opt.allocation();
  EXPECT_NEAR(alloc.admitted[0], opt.admitted()[0], 1e-12);
  EXPECT_NEAR(alloc.delivered[0], alloc.admitted[0], 1e-12);  // gain = 1
  // Server a spends 2 per admitted unit; link a->b carries the flow 1:1.
  EXPECT_NEAR(alloc.server_usage[0], 2.0 * alloc.admitted[0], 1e-9);
  EXPECT_NEAR(alloc.link_usage[0], alloc.admitted[0], 1e-9);
  EXPECT_NEAR(alloc.link_flow[0][0], alloc.admitted[0], 1e-9);
  EXPECT_DOUBLE_EQ(alloc.max_capacity_violation(xg), 0.0);
}

TEST(Optimizer, LatchesDivergenceInsteadOfIteratingOnNaNs) {
  // A linear utility with weight 1e200 on an offered load of 1e200: the
  // first admitted trickle makes utility - cost = inf - inf = NaN. The
  // optimizer must detect the non-finite state, latch diverged(), and stop.
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId t = net.add_sink("t");
  const auto at = net.add_link(a, t, 10.0);
  const CommodityId j =
      net.add_commodity("hot", a, t, 1e200, Utility::linear(1e200));
  net.enable_link(j, at, 1.0);
  const ExtendedGraph xg(net);

  GradientOptions options;
  options.eta = 0.1;
  options.max_iterations = 100;
  GradientOptimizer opt(xg, options);
  const std::size_t steps = opt.run();

  EXPECT_TRUE(opt.diverged());
  EXPECT_LT(steps, options.max_iterations);  // stopped early, not at budget
  EXPECT_LE(opt.divergence_iteration(), steps + 1);
  // Once latched, step() refuses to iterate on the NaN state.
  EXPECT_EQ(opt.step(), 0.0);
  EXPECT_TRUE(opt.diverged());
}

// ------------------------------------------- warm-start remapping edges

// Max capacity overshoot past guard * C over all finite-capacity extended
// nodes; negative means strictly inside the guard everywhere.
double worst_guard_overshoot(const ExtendedGraph& xg, const FlowState& flows,
                             double guard = 0.999) {
  double worst = -std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    if (!xg.has_finite_capacity(v)) continue;
    worst = std::max(worst, flows.f_node[v] - guard * xg.capacity(v));
  }
  return worst;
}

TEST(RemapRouting, RemovedCommodityDropsAndSurvivorsStayFeasible) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.1;
  options.max_iterations = 400;
  GradientOptimizer opt(xg, options);
  opt.run();

  // Server 7 is S2's source: removing it kills S2 but leaves S1 whole.
  const auto surgery =
      maxutil::stream::without_server(net, ids.server[6]);
  ASSERT_EQ(surgery.commodity_map[ids.s2], maxutil::stream::kRemovedEntity);
  ASSERT_NE(surgery.commodity_map[ids.s1], maxutil::stream::kRemovedEntity);
  const ExtendedGraph new_xg(surgery.network);

  const auto warm =
      maxutil::core::remap_routing(xg, opt.routing(), new_xg, surgery);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->is_valid(new_xg));
  const FlowState flows = maxutil::core::compute_flows(new_xg, *warm);
  EXPECT_LT(worst_guard_overshoot(new_xg, flows), 0.0);
}

TEST(RemapRouting, NewCommodityStartsAtTheAllRejectedConvention) {
  // Compose baseline -> A (S2 departed) with baseline -> B (identity): the
  // A -> B maps contain a commodity of B with no pre-image in A — the
  // re-arrival case the shrink-only transfer_routing cannot express.
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  maxutil::stream::RebuildSpec depart;
  depart.removed_commodities.push_back(ids.s2);
  const auto a = maxutil::stream::rebuild(net, depart);
  const auto b = maxutil::stream::rebuild(net, {});
  const auto maps = maxutil::stream::compose_maps(a, b);

  const ExtendedGraph old_xg(a.network);
  const ExtendedGraph new_xg(b.network);
  GradientOptions options;
  options.eta = 0.1;
  options.max_iterations = 400;
  GradientOptimizer opt(old_xg, options);
  opt.run();

  const auto warm =
      maxutil::core::remap_routing(old_xg, opt.routing(), new_xg, maps);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->is_valid(new_xg));

  // The re-arrived commodity starts all-rejected: its rows equal the
  // initial convention and it admits nothing until the re-solve ramps it.
  const CommodityId s2 = b.commodity_map[ids.s2];
  ASSERT_NE(s2, maxutil::stream::kRemovedEntity);
  const RoutingState init = RoutingState::initial(new_xg);
  for (EdgeId e = 0; e < new_xg.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(warm->phi(s2, e), init.phi(s2, e));
  }
  const FlowState flows = maxutil::core::compute_flows(new_xg, *warm);
  EXPECT_NEAR(maxutil::core::admitted_rate(new_xg, flows, s2), 0.0, 1e-12);
}

TEST(RemapRouting, CapacityDownscaleIsRepairedToStrictFeasibility) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.1;
  options.max_iterations = 600;
  GradientOptimizer opt(xg, options);
  opt.run();

  // Shrink the shared Server 3 to 10% capacity: the converged point now
  // overloads it. repair = false must hand back the raw violating point
  // (the priority policy's input); the default repairs it inside the guard.
  const auto surgery =
      maxutil::stream::with_capacity_scaled(net, ids.server[2], 0.1);
  const ExtendedGraph new_xg(surgery.network);

  const auto raw = maxutil::core::remap_routing(xg, opt.routing(), new_xg,
                                                surgery, 0.999, false);
  ASSERT_TRUE(raw.has_value());
  EXPECT_TRUE(raw->is_valid(new_xg));
  const FlowState raw_flows = maxutil::core::compute_flows(new_xg, *raw);
  EXPECT_GT(worst_guard_overshoot(new_xg, raw_flows), 0.0);

  const auto repaired =
      maxutil::core::repair_capacity_feasibility(new_xg, *raw, 0.999);
  EXPECT_TRUE(repaired.is_valid(new_xg));
  const FlowState fixed = maxutil::core::compute_flows(new_xg, repaired);
  EXPECT_LT(worst_guard_overshoot(new_xg, fixed), 0.0);

  // And the one-call form agrees on feasibility.
  const auto warm =
      maxutil::core::remap_routing(xg, opt.routing(), new_xg, surgery);
  ASSERT_TRUE(warm.has_value());
  const FlowState warm_flows = maxutil::core::compute_flows(new_xg, *warm);
  EXPECT_LT(worst_guard_overshoot(new_xg, warm_flows), 0.0);
}

// Property sweep: across random instances, the converged state is feasible,
// admits within [0, lambda], keeps routing invariants, and (approximately)
// satisfies Theorem 2's sufficient optimality condition.
class OptimizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerProperty, ConvergedStateIsSoundAndNearOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 16;
  p.commodities = 2;
  p.stages = 3;
  p.lambda = 60.0;
  const maxutil::stream::StreamNetwork net =
      maxutil::gen::random_instance(p, rng);
  const ExtendedGraph xg(net);

  GradientOptions options;
  options.eta = 0.08;
  options.max_iterations = 3000;
  options.record_history = false;
  GradientOptimizer opt(xg, options);
  opt.run();

  EXPECT_TRUE(opt.routing().is_valid(xg, 1e-6));
  const auto alloc = opt.allocation();
  EXPECT_NEAR(alloc.max_capacity_violation(xg), 0.0, 1e-9);
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    EXPECT_GE(alloc.admitted[j], -1e-9);
    EXPECT_LE(alloc.admitted[j], xg.lambda(j) + 1e-9);
  }
  EXPECT_NEAR(maxutil::core::max_balance_residual(xg, opt.flows()), 0.0, 1e-8);

  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  EXPECT_GT(opt.utility(), 0.90 * ref.optimal_utility)
      << "gradient " << opt.utility() << " vs LP " << ref.optimal_utility;
  EXPECT_LE(opt.utility(), ref.optimal_utility + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty, ::testing::Range(0, 12));

}  // namespace
