#include "core/routing.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxutil::core {

using maxutil::util::ensure;
using maxutil::xform::CommodityIndex;

RoutingState::RoutingState(const ExtendedGraph& xg)
    : index_(xg.index_ptr()), phi_(index_->slot_count(), 0.0) {}

RoutingState RoutingState::initial(const ExtendedGraph& xg) {
  RoutingState state(xg);
  const CommodityIndex& idx = *state.index_;
  for (CommodityId j = 0; j < idx.commodity_count(); ++j) {
    for (std::size_t local = idx.node_begin(j); local < idx.node_end(j);
         ++local) {
      if (local == idx.sink_local(j)) continue;
      if (local == idx.dummy_source_local(j)) {
        state.phi_[idx.dummy_difference_slot(j)] = 1.0;
        continue;
      }
      const std::size_t begin = idx.out_begin(local);
      const std::size_t end = idx.out_end(local);
      ensure(begin < end,
             "RoutingState::initial: commodity node without usable out-edge");
      const double share = 1.0 / static_cast<double>(end - begin);
      for (std::size_t s = begin; s < end; ++s) state.phi_[s] = share;
    }
  }
  return state;
}

void RoutingState::set_phi(CommodityId j, EdgeId e, double value) {
  ensure(j < index_->commodity_count() && e < index_->global_edge_count(),
         "RoutingState::set_phi: out of range");
  // Values above 1 are tolerated so callers (finite-difference tests,
  // sensitivity analyses) may treat phi entries as free variables; the
  // per-node sum-to-1 invariant is what `is_valid` enforces.
  ensure(value >= -1e-12, "RoutingState::set_phi: negative fraction");
  const std::size_t slot = index_->slot_of(j, e);
  if (slot == CommodityIndex::kNoSlot) {
    // No storage outside the usable subgraph; writing 0 there is a no-op.
    ensure(value <= 1e-12,
           "RoutingState::set_phi: edge not usable by commodity");
    return;
  }
  phi_[slot] = std::max(value, 0.0);
}

void RoutingState::set_phi_slot(std::size_t slot, double value) {
  ensure(slot < phi_.size(), "RoutingState::set_phi_slot: out of range");
  ensure(value >= -1e-12, "RoutingState::set_phi_slot: negative fraction");
  phi_[slot] = std::max(value, 0.0);
}

void RoutingState::assign_commodity(CommodityId j, const RoutingState& src) {
  ensure(src.phi_.size() == phi_.size() &&
             src.index_->commodity_count() == index_->commodity_count(),
         "RoutingState::assign_commodity: shape mismatch");
  std::copy(src.phi_.begin() + index_->edge_begin(j),
            src.phi_.begin() + index_->edge_end(j),
            phi_.begin() + index_->edge_begin(j));
}

double RoutingState::max_invariant_violation(const ExtendedGraph& xg) const {
  const CommodityIndex& idx = xg.index();
  ensure(idx.slot_count() == phi_.size(),
         "RoutingState::max_invariant_violation: index shape mismatch");
  double worst = 0.0;
  for (const double value : phi_) {
    if (value < 0.0) worst = std::max(worst, -value);
  }
  for (CommodityId j = 0; j < idx.commodity_count(); ++j) {
    for (std::size_t local = idx.node_begin(j); local < idx.node_end(j);
         ++local) {
      if (local == idx.sink_local(j)) continue;
      double total = 0.0;
      for (std::size_t s = idx.out_begin(local); s < idx.out_end(local); ++s) {
        total += phi_[s];
      }
      worst = std::max(worst, std::abs(total - 1.0));
    }
  }
  return worst;
}

bool RoutingState::is_valid(const ExtendedGraph& xg, double tol) const {
  return max_invariant_violation(xg) <= tol;
}

double RoutingState::max_difference(const RoutingState& other) const {
  ensure(commodity_count() == other.commodity_count() &&
             phi_.size() == other.phi_.size(),
         "RoutingState::max_difference: shape mismatch");
  double worst = 0.0;
  for (std::size_t s = 0; s < phi_.size(); ++s) {
    worst = std::max(worst, std::abs(phi_[s] - other.phi_[s]));
  }
  return worst;
}

void RoutingState::blend_toward(const RoutingState& target, double alpha) {
  ensure(alpha >= 0.0 && alpha <= 1.0, "RoutingState::blend_toward: bad alpha");
  ensure(phi_.size() == target.phi_.size(),
         "RoutingState::blend_toward: shape mismatch");
  for (std::size_t s = 0; s < phi_.size(); ++s) {
    phi_[s] += alpha * (target.phi_[s] - phi_[s]);
  }
}

}  // namespace maxutil::core
