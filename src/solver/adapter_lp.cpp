// Registry adapters for the centralized LP reference
// (xform::solve_reference): the transformed problem solved exactly, with
// concave utilities encoded piecewise-linearly. Two backends share this
// translation unit and the solve path: "lp" (dense two-phase tableau) and
// "lp-sparse" (sparse revised simplex with warm-start basis reuse). Both
// emit a routing recovered from the optimal vertex
// (core::routing_from_flows) so pipelines can warm-start iterative stages
// from the LP optimum.

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "core/warm_start.hpp"
#include "solver/adapters.hpp"
#include "solver/registry.hpp"
#include "xform/lp_reference.hpp"

namespace maxutil::solver {

namespace {

Status map_status(lp::LpStatus status) {
  switch (status) {
    case lp::LpStatus::kOptimal: return Status::kConverged;
    case lp::LpStatus::kInfeasible: return Status::kInfeasible;
    case lp::LpStatus::kUnbounded: return Status::kUnbounded;
    case lp::LpStatus::kIterationLimit: return Status::kFailed;
  }
  return Status::kFailed;
}

/// Process-wide basis store for warm-started sparse re-solves: callers that
/// re-solve a drifting instance pass a stable extra["lp_warm_key"]; the
/// basis of the previous optimum under that key seeds the next solve.
/// Layout-mismatched bases are rejected inside solve_revised, so a key that
/// outlives a topology change degrades to a cold start, never to a wrong
/// answer.
lp::SimplexBasis* warm_basis_for(const std::string& key) {
  static std::mutex mutex;
  static std::map<std::string, lp::SimplexBasis> store;
  if (key.empty()) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex);
  return &store[key];
}

SolveResult solve_lp_common(const Problem& problem, const SolveOptions& options,
                            xform::LpBackend backend) {
  xform::ReferenceOptions ro;
  ro.pwl_segments = static_cast<std::size_t>(
      options.extra_number("pwl_segments", static_cast<double>(ro.pwl_segments)));
  // extra["lp_backend"] overrides the registered default, so any LP-routed
  // pipeline or CLI invocation can flip implementations without a new
  // registry name.
  const std::string requested = options.extra_text(
      "lp_backend", backend == xform::LpBackend::kSparse ? "sparse" : "dense");
  ro.backend = requested == "sparse" ? xform::LpBackend::kSparse
                                     : xform::LpBackend::kDense;
  if (ro.backend == xform::LpBackend::kSparse) {
    ro.revised.refactor_interval = static_cast<std::size_t>(
        options.extra_number("refactor_interval", 0.0));
    ro.warm_basis = warm_basis_for(options.extra_text("lp_warm_key", ""));
  }

  const auto reference = xform::solve_reference(problem.extended(), ro);
  SolveResult result;
  result.status = map_status(reference.status);
  result.iterations = reference.iterations;
  if (reference.status != lp::LpStatus::kOptimal) {
    result.message =
        std::string("LP solve failed: ") + lp::to_string(reference.status);
    return result;
  }
  result.admitted = reference.admitted;
  result.utility = reference.optimal_utility;
  result.node_usage = reference.node_usage;
  // The optimal vertex saturates capacities; routing_from_flows repairs it
  // to a strictly guard-feasible warm start (finite barrier cost).
  result.routing = core::routing_from_flows(
      problem.extended(), reference.flows,
      options.extra_number("capacity_guard", 0.999));
  double max_price = 0.0;
  for (const double p : reference.node_shadow_price) {
    max_price = std::max(max_price, p);
  }
  result.metrics = {{"max_shadow_price", max_price}};
  return result;
}

SolveResult solve_lp(const Problem& problem, const SolveOptions& options) {
  return solve_lp_common(problem, options, xform::LpBackend::kDense);
}

SolveResult solve_lp_sparse(const Problem& problem,
                            const SolveOptions& options) {
  return solve_lp_common(problem, options, xform::LpBackend::kSparse);
}

}  // namespace

void register_lp_solver(SolverRegistry& registry) {
  SolverInfo info;
  info.name = "lp";
  info.description =
      "centralized LP reference: two-phase simplex on the transformed "
      "problem (PWL-encoded concave utilities)";
  info.emits_routing = true;
  info.solve = solve_lp;
  registry.add(std::move(info));
}

void register_lp_sparse_solver(SolverRegistry& registry) {
  SolverInfo info;
  info.name = "lp-sparse";
  info.description =
      "centralized LP reference on the sparse revised simplex: LU-factored "
      "basis with eta updates, warm-startable via extra[\"lp_warm_key\"]";
  info.emits_routing = true;
  info.supports_warm_start = true;
  info.solve = solve_lp_sparse;
  registry.add(std::move(info));
}

}  // namespace maxutil::solver
