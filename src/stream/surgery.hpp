#pragma once

#include <cstddef>
#include <vector>

#include "stream/model.hpp"

namespace maxutil::stream {

/// Sentinel in SurgeryResult maps: the entity did not survive the surgery.
inline constexpr std::size_t kRemovedEntity = static_cast<std::size_t>(-1);

/// Result of rebuilding a network without a failed server.
struct SurgeryResult {
  StreamNetwork network;
  /// Old node id -> new node id (kRemovedEntity for the failed server).
  std::vector<NodeId> node_map;
  /// Old link id -> new link id (kRemovedEntity when an endpoint died).
  std::vector<LinkId> link_map;
  /// Old commodity id -> new commodity id (kRemovedEntity when the failure
  /// disconnected its source from its sink).
  std::vector<CommodityId> commodity_map;
};

/// Rebuilds `net` as if `failed` crashed fail-stop: the server and its
/// incident links disappear; each commodity's usable subgraph is pruned to
/// the links still on some source->sink path (so the result always passes
/// validate()); commodities whose sink became unreachable are dropped.
///
/// This is the recovery path of the paper's Section-3 remark that spare
/// penalty-induced headroom helps "faster recovery in the case of node or
/// link failures": after surgery one simply re-runs the optimizer on the
/// surviving network (see examples/failure_recovery.cpp).
SurgeryResult without_server(const StreamNetwork& net, NodeId failed);

}  // namespace maxutil::stream
