#include "gen/trace.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "util/check.hpp"

namespace maxutil::gen {

using maxutil::util::ensure;

namespace {
constexpr double kFloor = 1e-3;
}

DemandTrace::DemandTrace(std::function<double(std::size_t)> fn)
    : fn_(std::move(fn)) {}

double DemandTrace::at(std::size_t t) const {
  return std::max(fn_(t), kFloor);
}

DemandTrace DemandTrace::constant(double level) {
  ensure(level > 0.0, "DemandTrace::constant: level must be positive");
  return DemandTrace([level](std::size_t) { return level; });
}

DemandTrace DemandTrace::step(double before, double after, std::size_t at) {
  ensure(before > 0.0 && after > 0.0, "DemandTrace::step: rates must be positive");
  return DemandTrace(
      [before, after, at](std::size_t t) { return t < at ? before : after; });
}

DemandTrace DemandTrace::on_off(double high, double low, std::size_t period,
                                std::size_t duty) {
  ensure(high > 0.0 && low > 0.0, "DemandTrace::on_off: rates must be positive");
  ensure(period > 0 && duty <= period, "DemandTrace::on_off: bad period/duty");
  return DemandTrace([high, low, period, duty](std::size_t t) {
    return (t % period) < duty ? high : low;
  });
}

DemandTrace DemandTrace::sine(double base, double amplitude,
                              std::size_t period) {
  ensure(base > amplitude && amplitude >= 0.0,
         "DemandTrace::sine: base must exceed amplitude");
  ensure(period > 0, "DemandTrace::sine: period must be positive");
  return DemandTrace([base, amplitude, period](std::size_t t) {
    return base + amplitude * std::sin(2.0 * std::numbers::pi *
                                       static_cast<double>(t) /
                                       static_cast<double>(period));
  });
}

DemandTrace DemandTrace::random_walk(double base, double sigma,
                                     std::uint64_t seed) {
  ensure(base > 0.0 && sigma >= 0.0, "DemandTrace::random_walk: bad params");
  // Materialize lazily but deterministically: extend the path on demand so
  // at(t) is a pure function of (seed, t).
  auto state = std::make_shared<std::vector<double>>(1, base);
  auto rng = std::make_shared<maxutil::util::Rng>(seed);
  return DemandTrace([base, sigma, state, rng](std::size_t t) {
    while (state->size() <= t) {
      const double previous = state->back();
      // Mean-reverting multiplicative step.
      const double pulled = 0.9 * previous + 0.1 * base;
      state->push_back(pulled * std::exp(sigma * rng->normal()));
    }
    return (*state)[t];
  });
}

}  // namespace maxutil::gen
