#pragma once

#include <cstddef>

#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "obs/trace.hpp"

namespace maxutil::obs {

/// Bundle handed to an instrumented component: one metrics registry, one
/// set of per-thread staging rings for parallel-region events (drained
/// into the registry at serial merge points — see ring.hpp), and one
/// tracer (serial control path only). sim::Runtime owns an Observability
/// when RuntimeOptions::observe is set; other layers
/// (DistributedGradientSystem, CLI, benches) borrow it via Runtime.
struct Observability {
  explicit Observability(std::size_t shards = 1)
      : metrics(shards), rings(shards) {}

  MetricsRegistry metrics;
  MetricRingSet rings;
  Tracer tracer;
};

}  // namespace maxutil::obs
