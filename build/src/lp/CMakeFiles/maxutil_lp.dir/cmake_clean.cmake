file(REMOVE_RECURSE
  "CMakeFiles/maxutil_lp.dir/frank_wolfe.cpp.o"
  "CMakeFiles/maxutil_lp.dir/frank_wolfe.cpp.o.d"
  "CMakeFiles/maxutil_lp.dir/model.cpp.o"
  "CMakeFiles/maxutil_lp.dir/model.cpp.o.d"
  "CMakeFiles/maxutil_lp.dir/pwl.cpp.o"
  "CMakeFiles/maxutil_lp.dir/pwl.cpp.o.d"
  "CMakeFiles/maxutil_lp.dir/simplex.cpp.o"
  "CMakeFiles/maxutil_lp.dir/simplex.cpp.o.d"
  "libmaxutil_lp.a"
  "libmaxutil_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
