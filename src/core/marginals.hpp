#pragma once

#include <vector>

#include "core/flow.hpp"
#include "core/routing.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// Marginal costs of Section 5: dA/dr_i(j), computed by the paper's
/// deadlock-free upstream protocol — every node waits for the value from all
/// of its downstream neighbors, then broadcasts its own (eq. 9). Here the
/// wave is realized as a reverse topological sweep of each commodity's
/// usable DAG; the sim module re-implements it with real messages and is
/// tested to agree.
struct MarginalCosts {
  /// dA/dr_i(j): marginal cost of one extra unit of commodity-j traffic at
  /// node i. 0 at the commodity sink by convention.
  std::vector<std::vector<double>> d_cost_d_input;  // [commodity][node]

  /// Diagonal curvature estimate K_i(j) ~ d2A/dr_i(j)^2, computed by the
  /// same downstream-to-upstream telescoping as eq. (9) with second
  /// derivatives (K_i = sum_k phi^2 [c^2 (Y'' + eps D'') + beta^2 K_head]).
  /// Powers the curvature-scaled (Newton-like) step variant that Gallager's
  /// paper sketches as the "second derivative algorithm"; an approximation
  /// (cross terms between sibling edges are dropped), which only affects
  /// step *size*, never the descent property.
  std::vector<std::vector<double>> curvature;  // [commodity][node]
};

/// The per-edge marginal of eq. (10)'s bracket (and eq. 15's a-term base):
///   dA_i/df_e * c_e(j) + beta_e(j) * dA/dr_head(j)
/// where dA_i/df_e = Y'_e(f_e) + eps*D'_i(f_i) (eq. 11 with the paper's
/// epsilon folded into D).
double marginal_via_edge(const ExtendedGraph& xg, const FlowState& flows,
                         const MarginalCosts& marginals, CommodityId j,
                         EdgeId e);

/// Per-edge curvature kappa_e(j) = c^2 (Y'' + eps D'') + beta^2 K_head: the
/// second-derivative analogue of `marginal_via_edge`.
double curvature_via_edge(const ExtendedGraph& xg, const FlowState& flows,
                          const MarginalCosts& marginals, CommodityId j,
                          EdgeId e);

/// Runs the upstream sweep (eq. 9) for every commodity.
MarginalCosts compute_marginals(const ExtendedGraph& xg,
                                const RoutingState& routing,
                                const FlowState& flows);

}  // namespace maxutil::core
