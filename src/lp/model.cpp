#include "lp/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxutil::lp {

using maxutil::util::ensure;

VarId LpProblem::add_variable(std::string name, double lower, double upper,
                              double objective) {
  ensure(lower <= upper, "LpProblem: variable bounds inverted");
  ensure(!std::isnan(lower) && !std::isnan(upper) && !std::isnan(objective),
         "LpProblem: NaN in variable definition");
  names_.push_back(std::move(name));
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  return names_.size() - 1;
}

void LpProblem::add_constraint(std::vector<std::pair<VarId, double>> terms,
                               Relation rel, double rhs) {
  for (const auto& [v, coeff] : terms) {
    ensure(v < variable_count(), "LpProblem: constraint references unknown variable");
    ensure(!std::isnan(coeff), "LpProblem: NaN coefficient");
  }
  ensure(!std::isnan(rhs), "LpProblem: NaN rhs");
  rows_.push_back({std::move(terms), rel, rhs});
}

const std::string& LpProblem::variable_name(VarId v) const {
  ensure(v < variable_count(), "LpProblem: variable out of range");
  return names_[v];
}

double LpProblem::lower(VarId v) const {
  ensure(v < variable_count(), "LpProblem: variable out of range");
  return lower_[v];
}

double LpProblem::upper(VarId v) const {
  ensure(v < variable_count(), "LpProblem: variable out of range");
  return upper_[v];
}

double LpProblem::objective_coefficient(VarId v) const {
  ensure(v < variable_count(), "LpProblem: variable out of range");
  return objective_[v];
}

void LpProblem::set_objective_coefficient(VarId v, double coeff) {
  ensure(v < variable_count(), "LpProblem: variable out of range");
  objective_[v] = coeff;
}

const LpProblem::Row& LpProblem::row(std::size_t i) const {
  ensure(i < constraint_count(), "LpProblem: row out of range");
  return rows_[i];
}

double LpProblem::objective_value(const std::vector<double>& x) const {
  ensure(x.size() == variable_count(), "LpProblem: solution size mismatch");
  double total = 0.0;
  for (VarId v = 0; v < x.size(); ++v) total += objective_[v] * x[v];
  return total;
}

double LpProblem::max_violation(const std::vector<double>& x) const {
  ensure(x.size() == variable_count(), "LpProblem: solution size mismatch");
  double worst = 0.0;
  for (VarId v = 0; v < x.size(); ++v) {
    worst = std::max(worst, lower_[v] - x[v]);
    worst = std::max(worst, x[v] - upper_[v]);
  }
  for (const Row& r : rows_) {
    double lhs = 0.0;
    for (const auto& [v, coeff] : r.terms) lhs += coeff * x[v];
    switch (r.rel) {
      case Relation::kLessEq:
        worst = std::max(worst, lhs - r.rhs);
        break;
      case Relation::kGreaterEq:
        worst = std::max(worst, r.rhs - lhs);
        break;
      case Relation::kEq:
        worst = std::max(worst, std::abs(lhs - r.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace maxutil::lp
