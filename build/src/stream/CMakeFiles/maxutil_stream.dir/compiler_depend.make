# Empty compiler generated dependencies file for maxutil_stream.
# This may be replaced when dependencies are built.
