#include "xform/penalty.hpp"

#include <cmath>

#include "util/check.hpp"

namespace maxutil::xform {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double penalty_value(const PenaltyConfig& config, double capacity, double z) {
  maxutil::util::ensure(z >= 0.0, "penalty_value: negative usage");
  if (std::isinf(capacity)) return 0.0;
  if (z >= capacity) return kInf;
  switch (config.barrier) {
    case BarrierKind::kReciprocal:
      return config.epsilon / (capacity - z);
    case BarrierKind::kLog:
      return -config.epsilon * std::log((capacity - z) / capacity);
  }
  return 0.0;
}

double penalty_derivative(const PenaltyConfig& config, double capacity,
                          double z) {
  maxutil::util::ensure(z >= 0.0, "penalty_derivative: negative usage");
  if (std::isinf(capacity)) return 0.0;
  if (z >= capacity) return kInf;
  const double slack = capacity - z;
  switch (config.barrier) {
    case BarrierKind::kReciprocal:
      return config.epsilon / (slack * slack);
    case BarrierKind::kLog:
      return config.epsilon / slack;
  }
  return 0.0;
}

double penalty_second_derivative(const PenaltyConfig& config, double capacity,
                                 double z) {
  maxutil::util::ensure(z >= 0.0, "penalty_second_derivative: negative usage");
  if (std::isinf(capacity)) return 0.0;
  if (z >= capacity) return kInf;
  const double slack = capacity - z;
  switch (config.barrier) {
    case BarrierKind::kReciprocal:
      return 2.0 * config.epsilon / (slack * slack * slack);
    case BarrierKind::kLog:
      return config.epsilon / (slack * slack);
  }
  return 0.0;
}

}  // namespace maxutil::xform
