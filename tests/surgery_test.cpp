#include <gtest/gtest.h>

#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "stream/surgery.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::stream::kRemovedEntity;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;

TEST(Surgery, RemovesReplicaAndKeepsBothStreams) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const auto result = maxutil::stream::without_server(net, ids.server[1]);
  EXPECT_EQ(result.network.node_count(), net.node_count() - 1);
  EXPECT_EQ(result.network.commodity_count(), 2u);  // both streams survive
  EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
  EXPECT_EQ(result.node_map[ids.server[1]], kRemovedEntity);
  // Links incident to server 2 died: 1->2, 2->4, 2->5.
  std::size_t dead_links = 0;
  for (const auto l : result.link_map) dead_links += (l == kRemovedEntity);
  EXPECT_EQ(dead_links, 3u);
}

TEST(Surgery, DropsCommodityWhenPathSevered) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  // Server 6 hosts S1's only task D: removing it severs S1 but not S2.
  const auto result = maxutil::stream::without_server(net, ids.server[5]);
  EXPECT_EQ(result.network.commodity_count(), 1u);
  EXPECT_EQ(result.commodity_map[ids.s1], kRemovedEntity);
  EXPECT_EQ(result.commodity_map[ids.s2], 0u);
  EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
}

TEST(Surgery, DropsCommodityWhoseSourceDied) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const auto result = maxutil::stream::without_server(net, ids.server[6]);  // 7 = S2 source
  EXPECT_EQ(result.commodity_map[ids.s2], kRemovedEntity);
  EXPECT_EQ(result.network.commodity_count(), 1u);
}

TEST(Surgery, RejectsSinkRemoval) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  EXPECT_THROW(maxutil::stream::without_server(net, ids.sink1), CheckError);
  EXPECT_THROW(maxutil::stream::without_server(net, 999), CheckError);
}

TEST(Surgery, PreservesParametersOfSurvivors) {
  maxutil::gen::Figure1Ids ids;
  maxutil::gen::Figure1Params params;
  params.stage_shrinkage = 0.7;
  const StreamNetwork net = maxutil::gen::figure1_example(params, &ids);
  const auto result = maxutil::stream::without_server(net, ids.server[1]);
  const auto& out = result.network;
  // Capacity, lambda, and delivery gain carry over.
  EXPECT_DOUBLE_EQ(out.capacity(result.node_map[ids.server[0]]),
                   net.capacity(ids.server[0]));
  const auto s1 = result.commodity_map[ids.s1];
  ASSERT_NE(s1, kRemovedEntity);
  EXPECT_DOUBLE_EQ(out.lambda(s1), net.lambda(ids.s1));
  EXPECT_NEAR(out.delivery_gain(s1), net.delivery_gain(ids.s1), 1e-12);
}

TEST(Surgery, RandomInstancesStayValidAndSolvable) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 100);
    maxutil::gen::RandomInstanceParams p;
    p.servers = 14;
    p.commodities = 2;
    p.stages = 3;
    const StreamNetwork net = maxutil::gen::random_instance(p, rng);
    // Fail an interior server used by some commodity (never a source).
    NodeId victim = kRemovedEntity;
    for (NodeId n = 0; n < net.node_count() && victim == kRemovedEntity; ++n) {
      if (net.is_sink(n)) continue;
      bool is_source = false;
      for (std::size_t j = 0; j < net.commodity_count(); ++j) {
        is_source = is_source || net.source(j) == n;
      }
      if (is_source) continue;
      for (std::size_t l = 0; l < net.link_count(); ++l) {
        if (net.graph().tail(l) == n &&
            (net.uses_link(0, l) || net.uses_link(1, l))) {
          victim = n;
          break;
        }
      }
    }
    ASSERT_NE(victim, kRemovedEntity);
    const auto result = maxutil::stream::without_server(net, victim);
    EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
    if (result.network.commodity_count() > 0) {
      const maxutil::xform::ExtendedGraph xg(result.network);
      const auto ref = maxutil::xform::solve_reference(xg);
      EXPECT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
    }
  }
}

}  // namespace
