#pragma once

#include <array>

#include "stream/model.hpp"

namespace maxutil::gen {

/// Node/commodity handles into the Figure-1 network, for tests and examples
/// that need to address specific servers.
struct Figure1Ids {
  std::array<maxutil::stream::NodeId, 8> server{};  // server[i] = "Server i+1"
  maxutil::stream::NodeId sink1 = 0;
  maxutil::stream::NodeId sink2 = 0;
  maxutil::stream::CommodityId s1 = 0;
  maxutil::stream::CommodityId s2 = 0;
};

/// Tunable parameters for the Figure-1 instance. Defaults give a mildly
/// loaded system where both streams compete for Server 3, Server 5, and the
/// 3->5 link — the contention the paper's example is built to illustrate.
struct Figure1Params {
  double server_capacity = 50.0;
  double link_bandwidth = 40.0;
  double lambda = 10.0;
  double consumption = 1.0;
  /// Per-task shrinkage applied between consecutive stages (flow shrinks by
  /// this factor at each hop); 1.0 disables shrinkage.
  double stage_shrinkage = 0.8;
};

/// Builds the paper's Figure-1 example: 8 servers, 2 sinks, 2 streams.
///
/// Stream S1 runs tasks A,B,C,D placed as T1={A}, T2={B}, T3={B,E}, T4={C},
/// T5={C,F}, T6={D}; its solid subgraph is 1->{2,3}->{4,5}->6->Sink1.
/// Stream S2 runs tasks G,E,F,H placed as T7={G}, T3={E}, T5={F}, T8={H};
/// its dashed subgraph is 7->3->5->8->Sink2. Both per-stream subgraphs are
/// DAGs; the union shares Server 3, Server 5, and the 3->5 link.
maxutil::stream::StreamNetwork figure1_example(
    const Figure1Params& params = {}, Figure1Ids* ids = nullptr);

}  // namespace maxutil::gen
