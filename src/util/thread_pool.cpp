#include "util/thread_pool.hpp"

namespace maxutil::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::drain(std::size_t worker_index) {
  const ChunkFn& fn = *job_;
  const std::size_t chunks = job_chunks_;
  for (;;) {
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= chunks) return;
    try {
      fn(worker_index, chunk);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
      // Cancel the chunks not yet claimed; in-flight ones finish normally.
      next_chunk_.store(chunks, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_main(std::size_t worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    drain(worker_index);
    busy_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::run_chunks(std::size_t chunks, const ChunkFn& fn) {
  if (chunks == 0) return;
  if (workers_.empty() || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) fn(0, c);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_chunks_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    busy_.store(workers_.size(), std::memory_order_relaxed);
    ++epoch_;
  }
  wake_.notify_all();
  drain(0);
  // Every worker must finish (or skip) the job before the caller may reuse
  // the job slot or the sharded buffers the chunks wrote into. Jobs are
  // round-sized (microseconds), so a yield loop beats sleeping here — and
  // on oversubscribed machines yield lets the workers actually run.
  while (busy_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace maxutil::util
