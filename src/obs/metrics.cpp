#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace maxutil::obs {

using maxutil::util::ensure;

namespace {

/// CSV/report rendering of a double: plain fixed notation for integers
/// (bucket bounds like 1, 10), shortest round-trip otherwise.
std::string render(double value) {
  std::ostringstream out;
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    out << static_cast<long long>(value);
  } else {
    out.precision(17);
    out << value;
  }
  return out.str();
}

}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t shards) {
  ensure(shards >= 1, "MetricsRegistry: shard count must be >= 1");
  shards_.resize(shards);
}

MetricId MetricsRegistry::counter(std::string name, std::string help) {
  ensure(!find(name).has_value(),
         "MetricsRegistry: duplicate metric name '" + name + "'");
  Metric metric;
  metric.name = std::move(name);
  metric.help = std::move(help);
  metric.kind = MetricKind::kCounter;
  metric.slot = shards_.front().counters.size();
  for (Shard& shard : shards_) shard.counters.push_back(0);
  metrics_.push_back(std::move(metric));
  return metrics_.size() - 1;
}

MetricId MetricsRegistry::gauge(std::string name, std::string help) {
  ensure(!find(name).has_value(),
         "MetricsRegistry: duplicate metric name '" + name + "'");
  Metric metric;
  metric.name = std::move(name);
  metric.help = std::move(help);
  metric.kind = MetricKind::kGauge;
  metric.slot = gauges_.size();
  gauges_.push_back(0.0);
  metrics_.push_back(std::move(metric));
  return metrics_.size() - 1;
}

MetricId MetricsRegistry::histogram(std::string name,
                                    std::vector<double> upper_bounds,
                                    std::string help) {
  ensure(!find(name).has_value(),
         "MetricsRegistry: duplicate metric name '" + name + "'");
  ensure(!upper_bounds.empty(),
         "MetricsRegistry: histogram needs at least one bucket bound");
  ensure(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
             std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) ==
                 upper_bounds.end(),
         "MetricsRegistry: histogram bounds must be strictly increasing");
  Metric metric;
  metric.name = std::move(name);
  metric.help = std::move(help);
  metric.kind = MetricKind::kHistogram;
  metric.slot = shards_.front().histograms.size();
  metric.upper_bounds = std::move(upper_bounds);
  for (Shard& shard : shards_) {
    HistogramState state;
    state.buckets.assign(metric.upper_bounds.size() + 1, 0);
    shard.histograms.push_back(std::move(state));
  }
  metrics_.push_back(std::move(metric));
  return metrics_.size() - 1;
}

const MetricsRegistry::Metric& MetricsRegistry::checked(MetricId id,
                                                        MetricKind kind) const {
  // Literal messages only: this guard runs on every add/observe, and a
  // composed std::string would put a heap allocation on the hot path.
  ensure(id < metrics_.size(), "MetricsRegistry: unknown metric id");
  ensure(metrics_[id].kind == kind, "MetricsRegistry: wrong kind for metric");
  return metrics_[id];
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta, std::size_t shard) {
  const Metric& metric = checked(id, MetricKind::kCounter);
  ensure(shard < shards_.size(), "MetricsRegistry: shard out of range");
  shards_[shard].counters[metric.slot] += delta;
}

void MetricsRegistry::set(MetricId id, double value) {
  const Metric& metric = checked(id, MetricKind::kGauge);
  gauges_[metric.slot] = value;
}

std::size_t MetricsRegistry::bucket_of(const Metric& metric,
                                       double value) const {
  const auto it = std::lower_bound(metric.upper_bounds.begin(),
                                   metric.upper_bounds.end(), value);
  return static_cast<std::size_t>(it - metric.upper_bounds.begin());
}

void MetricsRegistry::observe(MetricId id, double value, std::size_t shard) {
  const Metric& metric = checked(id, MetricKind::kHistogram);
  ensure(shard < shards_.size(), "MetricsRegistry: shard out of range");
  HistogramState& state = shards_[shard].histograms[metric.slot];
  ++state.buckets[bucket_of(metric, value)];
  ++state.count;
  state.sum += value;
  state.min = std::min(state.min, value);
  state.max = std::max(state.max, value);
}

void MetricsRegistry::observe_n(MetricId id, double value, std::uint64_t count,
                                std::size_t shard) {
  if (count == 0) return;
  const Metric& metric = checked(id, MetricKind::kHistogram);
  ensure(shard < shards_.size(), "MetricsRegistry: shard out of range");
  HistogramState& state = shards_[shard].histograms[metric.slot];
  state.buckets[bucket_of(metric, value)] += count;
  state.count += count;
  state.sum += value * static_cast<double>(count);
  state.min = std::min(state.min, value);
  state.max = std::max(state.max, value);
}

void MetricsRegistry::merge_shards() {
  Shard& base = shards_.front();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    for (std::size_t i = 0; i < shard.counters.size(); ++i) {
      base.counters[i] += shard.counters[i];
      shard.counters[i] = 0;
    }
    for (std::size_t i = 0; i < shard.histograms.size(); ++i) {
      HistogramState& from = shard.histograms[i];
      HistogramState& to = base.histograms[i];
      for (std::size_t b = 0; b < from.buckets.size(); ++b) {
        to.buckets[b] += from.buckets[b];
        from.buckets[b] = 0;
      }
      to.count += from.count;
      to.sum += from.sum;
      to.min = std::min(to.min, from.min);
      to.max = std::max(to.max, from.max);
      from.count = 0;
      from.sum = 0.0;
      from.min = std::numeric_limits<double>::infinity();
      from.max = -std::numeric_limits<double>::infinity();
    }
  }
}

std::uint64_t MetricsRegistry::counter_value(MetricId id) const {
  const Metric& metric = checked(id, MetricKind::kCounter);
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.counters[metric.slot];
  return total;
}

double MetricsRegistry::gauge_value(MetricId id) const {
  return gauges_[checked(id, MetricKind::kGauge).slot];
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(MetricId id) const {
  const Metric& metric = checked(id, MetricKind::kHistogram);
  HistogramSnapshot snapshot;
  snapshot.upper_bounds = metric.upper_bounds;
  snapshot.buckets.assign(metric.upper_bounds.size() + 1, 0);
  for (const Shard& shard : shards_) {
    const HistogramState& state = shard.histograms[metric.slot];
    for (std::size_t b = 0; b < state.buckets.size(); ++b) {
      snapshot.buckets[b] += state.buckets[b];
    }
    snapshot.count += state.count;
    snapshot.sum += state.sum;
    snapshot.min = std::min(snapshot.min, state.min);
    snapshot.max = std::max(snapshot.max, state.max);
  }
  return snapshot;
}

std::optional<MetricId> MetricsRegistry::find(std::string_view name) const {
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    if (metrics_[id].name == name) return id;
  }
  return std::nullopt;
}

MetricKind MetricsRegistry::kind(MetricId id) const {
  ensure(id < metrics_.size(), "MetricsRegistry: unknown metric id");
  return metrics_[id].kind;
}

const std::string& MetricsRegistry::name(MetricId id) const {
  ensure(id < metrics_.size(), "MetricsRegistry: unknown metric id");
  return metrics_[id].name;
}

const std::string& MetricsRegistry::help(MetricId id) const {
  ensure(id < metrics_.size(), "MetricsRegistry: unknown metric id");
  return metrics_[id].help;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "kind,name,field,value\n";
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    const Metric& metric = metrics_[id];
    switch (metric.kind) {
      case MetricKind::kCounter:
        out << "counter," << metric.name << ",value," << counter_value(id)
            << "\n";
        break;
      case MetricKind::kGauge:
        out << "gauge," << metric.name << ",value," << render(gauge_value(id))
            << "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot snapshot = histogram_snapshot(id);
        out << "histogram," << metric.name << ",count," << snapshot.count
            << "\n";
        out << "histogram," << metric.name << ",sum," << render(snapshot.sum)
            << "\n";
        if (snapshot.count > 0) {
          out << "histogram," << metric.name << ",min,"
              << render(snapshot.min) << "\n";
          out << "histogram," << metric.name << ",max,"
              << render(snapshot.max) << "\n";
        }
        for (std::size_t b = 0; b < snapshot.upper_bounds.size(); ++b) {
          out << "histogram," << metric.name << ",le_"
              << render(snapshot.upper_bounds[b]) << ","
              << snapshot.buckets[b] << "\n";
        }
        out << "histogram," << metric.name << ",le_inf,"
            << snapshot.buckets.back() << "\n";
        break;
      }
    }
  }
}

std::string MetricsRegistry::report() const {
  std::ostringstream out;
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    const Metric& metric = metrics_[id];
    out << "  " << metric.name << " = ";
    switch (metric.kind) {
      case MetricKind::kCounter:
        out << counter_value(id);
        break;
      case MetricKind::kGauge:
        out << render(gauge_value(id));
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot snapshot = histogram_snapshot(id);
        out << "count " << snapshot.count << ", sum " << render(snapshot.sum);
        if (snapshot.count > 0) {
          out << ", mean " << render(snapshot.mean()) << ", min "
              << render(snapshot.min) << ", max " << render(snapshot.max);
        }
        break;
      }
    }
    if (!metric.help.empty()) out << "  (" << metric.help << ")";
    out << "\n";
  }
  return out.str();
}

}  // namespace maxutil::obs
