// The unified solver layer (src/solver): registry dispatch, adapter
// bit-identity against driving each optimizer directly, cross-solver
// utility parity against the LP reference, warm-start pipelines, and the
// LP-vertex -> RoutingState recovery (core::routing_from_flows).

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "bp/backpressure.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "core/warm_start.hpp"
#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "sim/distributed_gradient.hpp"
#include "solver/pipeline.hpp"
#include "solver/registry.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using namespace maxutil;
using maxutil::util::CheckError;

stream::StreamNetwork figure1() {
  gen::Figure1Params params;
  params.lambda = 30.0;
  params.server_capacity = 40.0;
  params.link_bandwidth = 25.0;
  params.stage_shrinkage = 0.8;
  return gen::figure1_example(params);
}

// ---------------------------------------------------------------- registry

TEST(SolverRegistry, ListsTheSixBuiltinsInOrder) {
  const auto names = solver::SolverRegistry::instance().names();
  const std::vector<std::string> expected = {
      "gradient", "distributed", "backpressure", "lp", "fw", "lp-sparse"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(solver::SolverRegistry::instance().names_joined(),
            "gradient, distributed, backpressure, lp, fw, lp-sparse");
}

TEST(SolverRegistry, CapabilityFlagsMatchTheBackends) {
  const auto& registry = solver::SolverRegistry::instance();
  EXPECT_TRUE(registry.find("gradient")->supports_warm_start);
  EXPECT_TRUE(registry.find("gradient")->emits_routing);
  EXPECT_TRUE(registry.find("distributed")->supports_threads);
  EXPECT_TRUE(registry.find("distributed")->supports_observation);
  EXPECT_FALSE(registry.find("backpressure")->emits_routing);
  EXPECT_TRUE(registry.find("lp")->emits_routing);
  EXPECT_FALSE(registry.find("lp")->supports_warm_start);
  EXPECT_FALSE(registry.find("fw")->emits_routing);
  EXPECT_TRUE(registry.find("lp-sparse")->emits_routing);
  EXPECT_TRUE(registry.find("lp-sparse")->supports_warm_start);
}

TEST(SolverRegistry, UnknownSolverThrowsWithLiveNames) {
  const auto net = figure1();
  const solver::Problem problem(net);
  try {
    solver::SolverRegistry::instance().solve("simplex", problem, {});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown solver 'simplex'"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("gradient, distributed"),
              std::string::npos);
  }
}

TEST(SolverRegistry, RejectsDuplicatesAndMalformedEntries) {
  solver::SolverRegistry registry;
  solver::SolverInfo info;
  info.name = "stub";
  info.solve = [](const solver::Problem&, const solver::SolveOptions&) {
    return solver::SolveResult{};
  };
  registry.add(info);
  EXPECT_THROW(registry.add(info), CheckError);  // duplicate name
  solver::SolverInfo no_fn;
  no_fn.name = "empty";
  EXPECT_THROW(registry.add(no_fn), CheckError);  // no solve function
}

TEST(SolverStatus, NamesAndUsability) {
  EXPECT_STREQ(solver::to_string(solver::Status::kConverged), "converged");
  EXPECT_STREQ(solver::to_string(solver::Status::kIterationLimit),
               "iteration-limit");
  EXPECT_TRUE(solver::is_usable(solver::Status::kRoundLimit));
  EXPECT_FALSE(solver::is_usable(solver::Status::kInfeasible));
  EXPECT_FALSE(solver::is_usable(solver::Status::kFailed));
}

TEST(SolveOptions, ExtraNumberParsesAndRejects) {
  solver::SolveOptions options;
  options.extra["pwl_segments"] = "120";
  EXPECT_EQ(options.extra_number("pwl_segments", 7.0), 120.0);
  EXPECT_EQ(options.extra_number("absent", 7.0), 7.0);
  options.extra["bad"] = "not-a-number";
  EXPECT_THROW(options.extra_number("bad", 0.0), CheckError);
}

// ----------------------------------------------------- adapter bit-identity
//
// A registry solve must reproduce a direct optimizer run bit for bit: the
// adapters delegate without changing call sequences or defaults, so every
// double compares EXPECT_EQ-exact, not just within tolerance.

TEST(AdapterParity, GradientMatchesDirectRunExactly) {
  const auto net = figure1();
  const solver::Problem problem(net);

  core::GradientOptimizer direct(problem.extended(), {});
  direct.run();

  const auto result =
      solver::SolverRegistry::instance().solve("gradient", problem, {});
  ASSERT_EQ(result.admitted.size(), direct.admitted().size());
  EXPECT_EQ(result.admitted, direct.admitted());
  EXPECT_EQ(result.utility, direct.utility());
  EXPECT_EQ(result.iterations, direct.iterations());
  EXPECT_EQ(result.node_usage, direct.flows().f_node);
  EXPECT_EQ(result.metric("cost"), direct.cost());
}

TEST(AdapterParity, GradientHonorsSharedKnobs) {
  const auto net = figure1();
  const solver::Problem problem(net);

  core::GradientOptions g;
  g.eta = 0.1;
  g.max_iterations = 300;
  g.convergence_tol = 1e-5;
  core::GradientOptimizer direct(problem.extended(), g);
  direct.run();

  solver::SolveOptions options;
  options.eta = 0.1;
  options.max_iterations = 300;
  options.tolerance = 1e-5;
  const auto result =
      solver::SolverRegistry::instance().solve("gradient", problem, options);
  EXPECT_EQ(result.admitted, direct.admitted());
  EXPECT_EQ(result.utility, direct.utility());
  EXPECT_EQ(result.iterations, direct.iterations());
}

TEST(AdapterParity, DistributedMatchesDirectRunExactly) {
  const auto net = figure1();
  const solver::Problem problem(net);
  const xform::ExtendedGraph& xg = problem.extended();

  sim::DistributedGradientSystem direct(xg, {}, {});
  direct.run(60);
  const auto direct_flows = core::compute_flows(xg, direct.routing_snapshot());

  solver::SolveOptions options;
  options.max_iterations = 60;
  const auto result =
      solver::SolverRegistry::instance().solve("distributed", problem, options);
  ASSERT_EQ(result.admitted.size(), xg.commodity_count());
  for (stream::CommodityId j = 0; j < xg.commodity_count(); ++j) {
    EXPECT_EQ(result.admitted[j], core::admitted_rate(xg, direct_flows, j));
  }
  EXPECT_EQ(result.utility, core::total_utility(xg, direct_flows));
  EXPECT_EQ(result.iterations, direct.iterations());
}

TEST(AdapterParity, BackpressureMatchesDirectRunExactly) {
  const auto net = figure1();
  const solver::Problem problem(net);

  bp::BackPressureOptions b;
  b.record_history = false;
  bp::BackPressureOptimizer direct(problem.extended(), b);
  direct.run(2000);

  solver::SolveOptions options;
  options.max_iterations = 2000;
  const auto result = solver::SolverRegistry::instance().solve(
      "backpressure", problem, options);
  EXPECT_EQ(result.admitted, direct.admitted_rates());
  EXPECT_EQ(result.utility, direct.utility());
  EXPECT_EQ(result.metric("max_budget_violation"),
            direct.max_budget_violation());
}

TEST(AdapterParity, LpMatchesDirectSolveExactly) {
  const auto net = figure1();
  const solver::Problem problem(net);

  const auto direct = xform::solve_reference(problem.extended());
  ASSERT_EQ(direct.status, lp::LpStatus::kOptimal);

  const auto result =
      solver::SolverRegistry::instance().solve("lp", problem, {});
  EXPECT_EQ(result.status, solver::Status::kConverged);
  EXPECT_EQ(result.admitted, direct.admitted);
  EXPECT_EQ(result.utility, direct.optimal_utility);
  EXPECT_EQ(result.node_usage, direct.node_usage);
  EXPECT_EQ(result.iterations, direct.iterations);
}

TEST(AdapterParity, FrankWolfeMatchesDirectSolveExactly) {
  const auto net = figure1();
  const solver::Problem problem(net);

  const auto direct = xform::solve_reference_frank_wolfe(problem.extended(), 5000);
  ASSERT_EQ(direct.status, lp::LpStatus::kOptimal);

  const auto result =
      solver::SolverRegistry::instance().solve("fw", problem, {});
  EXPECT_EQ(result.admitted, direct.admitted);
  EXPECT_EQ(result.utility, direct.utility);
  EXPECT_EQ(result.iterations, direct.iterations);
  EXPECT_EQ(result.metric("duality_gap"), direct.duality_gap);
}

// -------------------------------------------------------- cross-solver parity
//
// Every backend lands within tolerance of the LP optimum on the same
// Problem — the iterative schemes from below (barrier gap + finite budget),
// fw from its duality-gap certificate.

void expect_parity(const stream::StreamNetwork& net, double min_fraction) {
  const solver::Problem problem(net);
  const auto& registry = solver::SolverRegistry::instance();
  const auto lp_result = registry.solve("lp", problem, {});
  ASSERT_EQ(lp_result.status, solver::Status::kConverged);
  ASSERT_GT(lp_result.utility, 0.0);
  for (const solver::SolverInfo& info : registry.solvers()) {
    solver::SolveOptions options;
    if (info.name == "distributed") options.max_iterations = 2000;
    const auto result = registry.solve(info.name, problem, options);
    EXPECT_TRUE(solver::is_usable(result.status)) << info.name;
    EXPECT_GE(result.utility, min_fraction * lp_result.utility) << info.name;
    EXPECT_LE(result.utility, lp_result.utility + 1e-6) << info.name;
    ASSERT_EQ(result.admitted.size(), net.commodity_count()) << info.name;
    for (std::size_t j = 0; j < result.admitted.size(); ++j) {
      EXPECT_GE(result.admitted[j], -1e-9) << info.name;
      EXPECT_LE(result.admitted[j], net.lambda(j) + 1e-6) << info.name;
    }
  }
}

TEST(CrossSolverParity, Figure1AllBackendsNearTheLpOptimum) {
  expect_parity(figure1(), 0.90);
}

TEST(CrossSolverParity, SeededRandomInstances) {
  for (const std::uint64_t seed : {11u, 29u}) {
    util::Rng rng(seed);
    gen::RandomInstanceParams p;
    p.servers = 12;
    p.commodities = 2;
    p.stages = 3;
    expect_parity(gen::random_instance(p, rng), 0.85);
  }
}

// ------------------------------------------------------------------ pipelines

TEST(Pipeline, ParseAcceptsSpacesAndSingleNames) {
  const auto single = solver::Pipeline::parse("lp");
  EXPECT_EQ(single.spec(), "lp");
  const auto chain = solver::Pipeline::parse("lp, gradient");
  EXPECT_EQ(chain.spec(), "lp,gradient");
  EXPECT_EQ(chain.stages().size(), 2u);
  EXPECT_TRUE(chain.any_stage(&solver::SolverInfo::supports_warm_start));
  EXPECT_FALSE(chain.any_stage(&solver::SolverInfo::supports_observation));
}

TEST(Pipeline, ParseRejectsUnknownAndEmptyStages) {
  EXPECT_THROW(solver::Pipeline::parse(""), CheckError);
  EXPECT_THROW(solver::Pipeline::parse("lp,,gradient"), CheckError);
  EXPECT_THROW(solver::Pipeline::parse("lp,simplex"), CheckError);
  try {
    solver::Pipeline::parse("nope");
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("gradient, distributed"),
              std::string::npos);
  }
}

TEST(Pipeline, LpWarmStartConvergesInFewerIterationsThanColdStart) {
  const auto net = figure1();
  const solver::Problem problem(net);
  solver::SolveOptions options;
  options.eta = 0.1;
  options.tolerance = 1e-4;

  const auto cold =
      solver::SolverRegistry::instance().solve("gradient", problem, options);
  const auto warm = solver::Pipeline::parse("lp,gradient").run(problem, options);

  ASSERT_TRUE(solver::is_usable(warm.status));
  ASSERT_EQ(warm.stages.size(), 2u);
  EXPECT_EQ(warm.stages[0].solver, "lp");
  EXPECT_EQ(warm.stages[1].solver, "gradient");
  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_GE(warm.utility, 0.99 * cold.utility);
}

TEST(Pipeline, GradientSeedsTheDistributedRuntime) {
  const auto net = figure1();
  const solver::Problem problem(net);
  solver::SolveOptions options;
  options.eta = 0.1;
  options.max_iterations = 200;

  const auto result =
      solver::Pipeline::parse("gradient,distributed").run(problem, options);
  ASSERT_TRUE(solver::is_usable(result.status));
  ASSERT_EQ(result.stages.size(), 2u);
  // The distributed stage starts at the gradient iterate instead of the
  // all-rejected cold start, so it stays near that utility.
  EXPECT_GE(result.utility, 0.95 * result.stages[0].utility);
}

TEST(Pipeline, SingleStageResultMatchesDirectRegistrySolve) {
  const auto net = figure1();
  const solver::Problem problem(net);
  const auto direct =
      solver::SolverRegistry::instance().solve("lp", problem, {});
  const auto piped = solver::Pipeline::parse("lp").run(problem, {});
  EXPECT_EQ(piped.admitted, direct.admitted);
  EXPECT_EQ(piped.utility, direct.utility);
  EXPECT_EQ(piped.stages.size(), 1u);
}

// ------------------------------------------------- LP vertex -> RoutingState

TEST(RoutingFromFlows, RecoversAValidStrictlyFeasibleRouting) {
  const auto net = figure1();
  const solver::Problem problem(net);
  const xform::ExtendedGraph& xg = problem.extended();

  const auto reference = xform::solve_reference(xg);
  ASSERT_EQ(reference.status, lp::LpStatus::kOptimal);
  const auto routing = core::routing_from_flows(xg, reference.flows);
  ASSERT_TRUE(routing.is_valid(xg));

  // The LP vertex saturates capacities where the barrier is infinite; the
  // repaired routing must sit strictly inside every capacity.
  const auto flows = core::compute_flows(xg, routing);
  for (stream::NodeId v = 0; v < xg.node_count(); ++v) {
    if (!xg.has_finite_capacity(v)) continue;
    EXPECT_LT(flows.f_node[v], xg.capacity(v));
  }
}

TEST(RoutingFromFlows, WarmStartedGradientAcceptsTheRouting) {
  const auto net = figure1();
  const solver::Problem problem(net);
  const xform::ExtendedGraph& xg = problem.extended();

  const auto reference = xform::solve_reference(xg);
  ASSERT_EQ(reference.status, lp::LpStatus::kOptimal);
  const auto routing = core::routing_from_flows(xg, reference.flows);

  core::GradientOptions g;
  g.eta = 0.1;
  g.max_iterations = 50;
  core::GradientOptimizer opt(xg, g, routing);
  opt.run();
  // Starting near the optimum, a short run already sits close to the LP
  // utility (cold starts need hundreds of iterations to get here).
  EXPECT_GE(opt.utility(), 0.9 * reference.optimal_utility);
}

TEST(RoutingFromFlows, ZeroFlowCommoditiesFallBackToTheUniformSplit) {
  const auto net = gen::figure1_example();  // lightly loaded defaults
  const solver::Problem problem(net);
  const xform::ExtendedGraph& xg = problem.extended();

  // An empty flow list per commodity — the vertex of an all-zero objective.
  // Every non-sink node then carries no flow and must take the documented
  // uniform fallback over its usable out-edges.
  const std::vector<std::vector<std::pair<graph::EdgeId, double>>> zero(
      xg.commodity_count());
  const auto routing = core::routing_from_flows(xg, zero);
  ASSERT_TRUE(routing.is_valid(xg));

  for (stream::CommodityId j = 0; j < xg.commodity_count(); ++j) {
    // The dummy source has exactly two usable out-edges (input and
    // difference), so uniform means a 50/50 admit/reject split.
    EXPECT_DOUBLE_EQ(routing.phi(j, xg.dummy_input_link(j)), 0.5);
    EXPECT_DOUBLE_EQ(routing.phi(j, xg.dummy_difference_link(j)), 0.5);
    for (const stream::NodeId v : xg.commodity_nodes(j)) {
      if (v == xg.sink(j) || v == xg.dummy_source(j)) continue;
      std::size_t usable = 0;
      for (const graph::EdgeId e : xg.graph().out_edges(v)) {
        if (xg.usable(j, e)) ++usable;
      }
      ASSERT_GT(usable, 0u);
      for (const graph::EdgeId e : xg.graph().out_edges(v)) {
        if (!xg.usable(j, e)) continue;
        EXPECT_DOUBLE_EQ(routing.phi(j, e),
                         1.0 / static_cast<double>(usable));
      }
    }
  }
}

// ---------------------------------------------------- failure boundaries

// A commodity that can reach server b but never its sink: stream::validate
// rejects the network, and any solve over it trips a CheckError deep inside
// the optimizer (a commodity node without a usable out-edge).
stream::StreamNetwork stranded_commodity_network() {
  stream::StreamNetwork net;
  const auto a = net.add_server("a", 10.0);
  const auto b = net.add_server("b", 10.0);
  const auto sink = net.add_sink("t");
  const auto ab = net.add_link(a, b, 10.0);
  net.add_link(b, sink, 10.0);
  const auto j =
      net.add_commodity("stranded", a, sink, 5.0, stream::Utility::linear());
  net.enable_link(j, ab, 1.0);  // b -> t stays unusable: the sink is cut off
  return net;
}

TEST(SolverBoundary, UnreachableSinkIsAFailedResultNotAThrow) {
  const auto net = stranded_commodity_network();
  ASSERT_FALSE(stream::validate(net).ok());

  // The registry boundary converts the CheckError into a failed *result* so
  // callers that drive many solves (the churn controller, the CLI) can
  // inspect and continue instead of unwinding.
  const solver::Problem problem(net);
  solver::SolveResult result;
  ASSERT_NO_THROW(result = solver::SolverRegistry::instance().solve(
                      "gradient", problem, {}));
  EXPECT_EQ(result.status, solver::Status::kFailed);
  EXPECT_FALSE(solver::is_usable(result.status));
  EXPECT_FALSE(result.message.empty());
  ASSERT_FALSE(result.warnings.empty());
  EXPECT_EQ(result.warnings.front(), result.message);
}

TEST(SolverBoundary, PipelineSurvivesAFailingStage) {
  const auto net = stranded_commodity_network();
  const solver::Problem problem(net);
  solver::SolveResult result;
  ASSERT_NO_THROW(result =
                      solver::Pipeline::parse("gradient").run(problem, {}));
  EXPECT_EQ(result.status, solver::Status::kFailed);
}

// An unbounded-in-practice instance: a linear utility with weight 1e200 on
// an offered load of 1e200 makes the first admitted trickle evaluate
// utility - cost = inf - inf = NaN.
stream::StreamNetwork overflow_network() {
  stream::StreamNetwork net;
  const auto a = net.add_server("a", 10.0);
  const auto sink = net.add_sink("t");
  const auto l = net.add_link(a, sink, 10.0);
  const auto j = net.add_commodity("hot", a, sink, 1e200,
                                   stream::Utility::linear(1e200));
  net.enable_link(j, l, 1.0);
  return net;
}

TEST(SolverBoundary, DivergenceSurfacesAsFailedWithTheIterationNote) {
  const auto net = overflow_network();
  const solver::Problem problem(net);
  solver::SolveOptions options;
  options.eta = 0.1;
  options.max_iterations = 50;
  const auto result =
      solver::SolverRegistry::instance().solve("gradient", problem, options);
  EXPECT_EQ(result.status, solver::Status::kFailed);
  EXPECT_NE(result.message.find("gradient diverged"), std::string::npos)
      << result.message;
  bool noted = false;
  for (const auto& note : result.notes) {
    noted = noted || note.rfind("divergence_iteration=", 0) == 0;
  }
  EXPECT_TRUE(noted);
}

}  // namespace
