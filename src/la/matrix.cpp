#include "la/matrix.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace maxutil::la {

using maxutil::util::ensure;

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init)
    : rows_(init.size()), cols_(init.size() ? init.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    ensure(row.size() == cols_, "Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  ensure(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  ensure(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  ensure(r < rows_, "Matrix::row: out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  ensure(r < rows_, "Matrix::row: out of range");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  ensure(x.size() == cols_, "Matrix::multiply: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double total = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) total += row_ptr[c] * x[c];
    y[r] = total;
  }
  return y;
}

std::vector<double> Matrix::multiply_transposed(
    std::span<const double> y) const {
  ensure(y.size() == rows_, "Matrix::multiply_transposed: dimension mismatch");
  std::vector<double> x(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double yr = y[r];
    if (yr == 0.0) continue;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) x[c] += yr * row_ptr[c];
  }
  return x;
}

Matrix Matrix::multiply(const Matrix& other) const {
  ensure(cols_ == other.rows_, "Matrix::multiply: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + r * other.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = data_[r * cols_ + c];
  }
  return out;
}

void Matrix::swap_rows(std::size_t a, std::size_t b) {
  ensure(a < rows_ && b < rows_, "Matrix::swap_rows: out of range");
  if (a == b) return;
  std::swap_ranges(data_.begin() + static_cast<std::ptrdiff_t>(a * cols_),
                   data_.begin() + static_cast<std::ptrdiff_t>((a + 1) * cols_),
                   data_.begin() + static_cast<std::ptrdiff_t>(b * cols_));
}

}  // namespace maxutil::la
