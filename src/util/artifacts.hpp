#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/timeseries.hpp"

namespace maxutil::util {

/// Directory for bench result artifacts, taken from the MAXUTIL_RESULTS_DIR
/// environment variable; std::nullopt when unset or empty. Benches that
/// regenerate figures write their raw series there so the plots can be
/// reproduced outside the console tables.
std::optional<std::string> results_dir();

/// Writes `series` as "<results_dir>/<name>.csv" when MAXUTIL_RESULTS_DIR is
/// set; returns the written path, or std::nullopt when exporting is off.
/// Throws util::CheckError when the directory is set but unwritable.
std::optional<std::string> save_series(const TimeSeries& series,
                                       const std::string& name);

/// One named measurement row of a bench run: a label plus numeric metrics
/// (e.g. {"servers=400/threads=4", {{"seconds", 1.23}, {"speedup", 2.4}}})
/// and optional boolean flags emitted as JSON booleans (e.g.
/// {"oversubscribed", true} on records where threads exceed host cores).
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, bool>> flags;
};

/// One "meta" entry of a bench artifact. `raw` emits the value verbatim as
/// a JSON literal (number/boolean) instead of a quoted string — e.g.
/// {"hardware_concurrency", "4", true} records an integer a consumer can
/// compare against the per-record thread counts without parsing strings.
struct BenchMeta {
  std::string key;
  std::string value;
  bool raw = false;
};

/// Writes the machine-readable perf artifact "BENCH_<bench>.json" — the
/// repository's perf trajectory files — and returns the written path.
/// Unlike save_series this always writes: into MAXUTIL_RESULTS_DIR when set,
/// else the current working directory (benches are run from the repo root to
/// refresh the tracked BENCH_*.json files). `meta` holds free-form context
/// (host cores, instance shape, ...). Throws util::CheckError on write
/// failure.
std::string write_bench_json(const std::string& bench,
                             const std::vector<BenchRecord>& records,
                             const std::vector<BenchMeta>& meta = {});

}  // namespace maxutil::util
