// E7 — back-pressure in isolation: the paper's Figure-4 curve needs
// ~10^5 iterations to approach the optimum. This bench characterizes the
// baseline's convergence and its one tuning knob, the dummy-buffer cap
// (the Awerbuch-Leighton accuracy-vs-speed trade-off documented in
// DESIGN.md).

#include <cstdio>
#include <iostream>

#include "bp/backpressure.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E7: back-pressure convergence & buffer-cap ablation ===\n");
  std::printf("instance: Section-6 defaults (seed 2007), 200k iterations\n\n");

  const auto net = bench::paper_instance();
  const xform::ExtendedGraph xg(net);
  const double optimal = xform::solve_reference(xg).optimal_utility;
  std::printf("LP optimal utility: %.4f\n\n", optimal);

  util::Table table({"buffer cap (x lambda)", "iters to 90%", "iters to 95%",
                     "final utility", "% of optimal"});
  std::vector<std::size_t> to95;
  std::vector<double> finals;
  for (const double cap : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    bp::BackPressureOptions options;
    options.buffer_cap_multiplier = cap;
    options.history_stride = 50;
    bp::BackPressureOptimizer opt(xg, options);
    opt.run(200000);
    const std::size_t h90 =
        bench::iterations_to_fraction(opt.history(), "utility", optimal, 0.90);
    const std::size_t h95 =
        bench::iterations_to_fraction(opt.history(), "utility", optimal, 0.95);
    to95.push_back(h95);
    finals.push_back(opt.utility());
    const auto cell = [](std::size_t v) {
      return v == bench::kNeverReached
                 ? std::string("never")
                 : util::Table::cell(static_cast<long long>(v));
    };
    table.add_row({util::Table::cell(cap, 1), cell(h90), cell(h95),
                   util::Table::cell(opt.utility()),
                   util::Table::cell(100.0 * opt.utility() / optimal, 1)});
  }
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  ok &= bench::shape_check(
      "back-pressure approaches the optimum (>= 95% for some cap)",
      *std::max_element(finals.begin(), finals.end()) >= 0.95 * optimal);
  ok &= bench::shape_check(
      "convergence takes 10^3..10^5 iterations (vs gradient's 10^2..10^3)",
      to95[2] != bench::kNeverReached && to95[2] >= 1000);
  ok &= bench::shape_check(
      "larger buffers converge more slowly (AL trade-off)",
      to95.back() == bench::kNeverReached || to95.back() >= to95[1]);
  return ok ? 0 : 1;
}
