#include <gtest/gtest.h>

#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "stream/surgery.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::stream::kRemovedEntity;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;

TEST(Surgery, RemovesReplicaAndKeepsBothStreams) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const auto result = maxutil::stream::without_server(net, ids.server[1]);
  EXPECT_EQ(result.network.node_count(), net.node_count() - 1);
  EXPECT_EQ(result.network.commodity_count(), 2u);  // both streams survive
  EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
  EXPECT_EQ(result.node_map[ids.server[1]], kRemovedEntity);
  // Links incident to server 2 died: 1->2, 2->4, 2->5.
  std::size_t dead_links = 0;
  for (const auto l : result.link_map) dead_links += (l == kRemovedEntity);
  EXPECT_EQ(dead_links, 3u);
}

TEST(Surgery, DropsCommodityWhenPathSevered) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  // Server 6 hosts S1's only task D: removing it severs S1 but not S2.
  const auto result = maxutil::stream::without_server(net, ids.server[5]);
  EXPECT_EQ(result.network.commodity_count(), 1u);
  EXPECT_EQ(result.commodity_map[ids.s1], kRemovedEntity);
  EXPECT_EQ(result.commodity_map[ids.s2], 0u);
  EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
}

TEST(Surgery, DropsCommodityWhoseSourceDied) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const auto result = maxutil::stream::without_server(net, ids.server[6]);  // 7 = S2 source
  EXPECT_EQ(result.commodity_map[ids.s2], kRemovedEntity);
  EXPECT_EQ(result.network.commodity_count(), 1u);
}

TEST(Surgery, RejectsSinkRemoval) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  EXPECT_THROW(maxutil::stream::without_server(net, ids.sink1), CheckError);
  EXPECT_THROW(maxutil::stream::without_server(net, 999), CheckError);
}

TEST(Surgery, PreservesParametersOfSurvivors) {
  maxutil::gen::Figure1Ids ids;
  maxutil::gen::Figure1Params params;
  params.stage_shrinkage = 0.7;
  const StreamNetwork net = maxutil::gen::figure1_example(params, &ids);
  const auto result = maxutil::stream::without_server(net, ids.server[1]);
  const auto& out = result.network;
  // Capacity, lambda, and delivery gain carry over.
  EXPECT_DOUBLE_EQ(out.capacity(result.node_map[ids.server[0]]),
                   net.capacity(ids.server[0]));
  const auto s1 = result.commodity_map[ids.s1];
  ASSERT_NE(s1, kRemovedEntity);
  EXPECT_DOUBLE_EQ(out.lambda(s1), net.lambda(ids.s1));
  EXPECT_NEAR(out.delivery_gain(s1), net.delivery_gain(ids.s1), 1e-12);
}

TEST(Surgery, EmptyRebuildIsTheIdentity) {
  // The churn controller's restore path depends on this: rebuilding the
  // pristine baseline under an empty edit set must reproduce it exactly.
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const auto result = maxutil::stream::rebuild(net, {});
  EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
  ASSERT_EQ(result.network.node_count(), net.node_count());
  ASSERT_EQ(result.network.link_count(), net.link_count());
  ASSERT_EQ(result.network.commodity_count(), net.commodity_count());
  for (NodeId n = 0; n < net.node_count(); ++n) {
    EXPECT_EQ(result.node_map[n], n);
    if (!net.is_sink(n)) {
      EXPECT_DOUBLE_EQ(result.network.capacity(n), net.capacity(n));
    }
  }
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    EXPECT_EQ(result.link_map[l], l);
    EXPECT_DOUBLE_EQ(result.network.bandwidth(l), net.bandwidth(l));
  }
  for (std::size_t j = 0; j < net.commodity_count(); ++j) {
    EXPECT_EQ(result.commodity_map[j], j);
    EXPECT_DOUBLE_EQ(result.network.lambda(j), net.lambda(j));
  }
}

TEST(Surgery, SeveredLinkDropsOnlyTheStrandedStream) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  // The 3->5 link carries all of S2 (7->3->5->8); S1 detours via 2->4.
  const auto link = net.graph().find_edge(ids.server[2], ids.server[4]);
  const auto result = maxutil::stream::without_link(net, link);
  EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
  EXPECT_EQ(result.network.commodity_count(), 1u);
  EXPECT_EQ(result.commodity_map[ids.s2], kRemovedEntity);
  ASSERT_NE(result.commodity_map[ids.s1], kRemovedEntity);
  EXPECT_EQ(result.link_map[link], kRemovedEntity);
  // Unlike a crash, both endpoints stay up.
  EXPECT_NE(result.node_map[ids.server[2]], kRemovedEntity);
  EXPECT_NE(result.node_map[ids.server[4]], kRemovedEntity);
}

TEST(Surgery, ScalingKeepsIdentityMapsAndScalesOnlyTheTarget) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);

  const auto capped =
      maxutil::stream::with_capacity_scaled(net, ids.server[2], 0.5);
  EXPECT_TRUE(maxutil::stream::validate(capped.network).ok());
  for (NodeId n = 0; n < net.node_count(); ++n) {
    EXPECT_EQ(capped.node_map[n], n);
    if (net.is_sink(n)) continue;
    const double expect =
        n == ids.server[2] ? 0.5 * net.capacity(n) : net.capacity(n);
    EXPECT_DOUBLE_EQ(capped.network.capacity(n), expect);
  }
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    EXPECT_EQ(capped.link_map[l], l);
  }
  for (std::size_t j = 0; j < net.commodity_count(); ++j) {
    EXPECT_EQ(capped.commodity_map[j], j);
  }

  const auto link = net.graph().find_edge(ids.server[2], ids.server[4]);
  const auto widened = maxutil::stream::with_bandwidth_scaled(net, link, 1.5);
  EXPECT_TRUE(maxutil::stream::validate(widened.network).ok());
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    EXPECT_EQ(widened.link_map[l], l);
    const double expect =
        l == link ? 1.5 * net.bandwidth(l) : net.bandwidth(l);
    EXPECT_DOUBLE_EQ(widened.network.bandwidth(l), expect);
  }

  EXPECT_THROW(maxutil::stream::with_capacity_scaled(net, ids.server[0], 0.0),
               CheckError);
  EXPECT_THROW(maxutil::stream::with_bandwidth_scaled(net, link, -1.0),
               CheckError);
}

TEST(Surgery, ComposeMapsThreadsThroughTheSharedBaseline) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  // A: server 2 crashed (both streams survive). B: identity structure.
  const auto a = maxutil::stream::without_server(net, ids.server[1]);
  const auto b =
      maxutil::stream::with_capacity_scaled(net, ids.server[3], 0.5);

  const auto ab = maxutil::stream::compose_maps(a, b);
  ASSERT_EQ(ab.node_map.size(), a.network.node_count());
  ASSERT_EQ(ab.link_map.size(), a.network.link_count());
  ASSERT_EQ(ab.commodity_map.size(), a.network.commodity_count());
  // Every survivor of A maps to its baseline id, since B is the identity.
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (a.node_map[n] == kRemovedEntity) continue;
    EXPECT_EQ(ab.node_map[a.node_map[n]], n);
  }
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    if (a.link_map[l] == kRemovedEntity) continue;
    EXPECT_EQ(ab.link_map[a.link_map[l]], l);
  }
  for (std::size_t j = 0; j < net.commodity_count(); ++j) {
    if (a.commodity_map[j] == kRemovedEntity) continue;
    EXPECT_EQ(ab.commodity_map[a.commodity_map[j]], j);
  }
  // The reverse composition maps the crashed server to kRemovedEntity —
  // how the controller learns a warm start cannot carry flow through it.
  const auto ba = maxutil::stream::compose_maps(b, a);
  EXPECT_EQ(ba.node_map[ids.server[1]], kRemovedEntity);
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (n == ids.server[1]) continue;
    EXPECT_EQ(ba.node_map[n], a.node_map[n]);
  }
}

TEST(Surgery, RandomInstancesStayValidAndSolvable) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 100);
    maxutil::gen::RandomInstanceParams p;
    p.servers = 14;
    p.commodities = 2;
    p.stages = 3;
    const StreamNetwork net = maxutil::gen::random_instance(p, rng);
    // Fail an interior server used by some commodity (never a source).
    NodeId victim = kRemovedEntity;
    for (NodeId n = 0; n < net.node_count() && victim == kRemovedEntity; ++n) {
      if (net.is_sink(n)) continue;
      bool is_source = false;
      for (std::size_t j = 0; j < net.commodity_count(); ++j) {
        is_source = is_source || net.source(j) == n;
      }
      if (is_source) continue;
      for (std::size_t l = 0; l < net.link_count(); ++l) {
        if (net.graph().tail(l) == n &&
            (net.uses_link(0, l) || net.uses_link(1, l))) {
          victim = n;
          break;
        }
      }
    }
    ASSERT_NE(victim, kRemovedEntity);
    const auto result = maxutil::stream::without_server(net, victim);
    EXPECT_TRUE(maxutil::stream::validate(result.network).ok());
    if (result.network.commodity_count() > 0) {
      const maxutil::xform::ExtendedGraph xg(result.network);
      const auto ref = maxutil::xform::solve_reference(xg);
      EXPECT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
    }
  }
}

}  // namespace
