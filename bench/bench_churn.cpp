// E17 — online churn controller (extension): warm-started re-optimization
// under scripted topology churn. Per seeded random instance we script one
// churn plan (capacity down/up scales on the busiest interior server, crash
// + restore of it, bandwidth down/up scales, commodity departure +
// re-arrival) and replay it through two ctrl::Controller arms that differ
// only in
// ControllerOptions::use_warm_start. Measures per-event re-solve iterations,
// the recovery SLOs (iterations back into the utility band, utility-deficit
// integral), and the crash->restore round trip. Writes BENCH_churn.json.
//
// Shape checks (the acceptance criteria):
//   * warm recovery (iterations until utility re-enters the band around the
//     post-event optimum) strictly beats cold on >= 80% of re-solved events,
//   * a crash->restore round trip restores utility within 1e-9 (the restore
//     is served exactly from the crash snapshot, 0 iterations),
//   * start-kind conservation: warm + cold + exact == events on every run,
//   * a distributed-backend churn run is bit-identical across 1/2/8 threads,
//   * no re-solve failures anywhere.
//
// `--smoke` runs 2 seeds instead of 5 (the CI leg).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "ctrl/churn_plan.hpp"
#include "ctrl/controller.hpp"
#include "gen/random_instance.hpp"
#include "stream/surgery.hpp"
#include "util/artifacts.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"

namespace {

using namespace maxutil;

/// The busiest interior server at a quickly converged solution, skipping
/// sinks, sources, and any server whose removal would kill every commodity
/// (the controller survives that, but the plan's later depart/arrive events
/// assume the instance stays alive).
stream::NodeId pick_victim(const stream::StreamNetwork& net,
                           const xform::PenaltyConfig& penalty) {
  const xform::ExtendedGraph xg(net, penalty);
  core::GradientOptions options;
  options.eta = 0.1;
  options.max_iterations = 600;
  core::GradientOptimizer probe(xg, options);
  probe.run();
  const core::PhysicalAllocation alloc = probe.allocation();

  std::vector<stream::NodeId> order;
  for (stream::NodeId n = 0; n < net.node_count(); ++n) {
    if (net.is_sink(n)) continue;
    bool is_source = false;
    for (std::size_t j = 0; j < net.commodity_count(); ++j) {
      is_source = is_source || net.source(j) == n;
    }
    if (!is_source) order.push_back(n);
  }
  std::sort(order.begin(), order.end(),
            [&](stream::NodeId a, stream::NodeId b) {
              if (alloc.server_usage[a] != alloc.server_usage[b]) {
                return alloc.server_usage[a] > alloc.server_usage[b];
              }
              return a < b;
            });
  for (const stream::NodeId n : order) {
    if (stream::without_server(net, n).network.commodity_count() > 0) return n;
  }
  return stream::kRemovedEntity;
}

/// The scripted per-instance plan, built against baseline names (all
/// hyphen-free, so the bw=FROM-TO grammar is unambiguous). Indices matter
/// downstream: the restore at [3] must round-trip against [1], and the
/// re-arrival at [7] against [5] (both served exactly from snapshots).
ctrl::ChurnPlan scripted_plan(const stream::StreamNetwork& net,
                              stream::NodeId victim) {
  const auto& g = net.graph();
  const std::string v = net.node_name(victim);
  const std::string from = net.node_name(g.tail(0));
  const std::string to = net.node_name(g.head(0));
  const std::string j = net.commodity_name(net.commodity_count() - 1);
  return ctrl::parse_churn_plan(
      "cap=" + v + "*0.5@1,cap=" + v + "*1.2@2,crash=" + v + "@3,restore=" +
      v + "@4,bw=" + from + "-" + to + "*0.5@5,bw=" + from + "-" + to +
      "*1.6@6,depart=" + j + "@7,arrive=" + j + "@8");
}

ctrl::ControllerOptions arm_options(bool warm) {
  ctrl::ControllerOptions options;
  options.pipeline = "gradient";
  options.use_warm_start = warm;
  options.solve.eta = 0.1;
  options.solve.tolerance = 1e-6;
  options.watchdog_iterations = 8000;
  options.penalty.epsilon = 0.05;
  // Wide enough to clear the eps=0.05 barrier's standing gap against the LP
  // optimum, so "recovered" measures re-convergence, not the barrier.
  options.recovery_band = 0.10;
  return options;
}

struct ArmResult {
  ctrl::ChurnReport report;
  std::size_t total_iterations = 0;
  double deficit_total = 0.0;
  std::size_t recovered = 0;

  explicit ArmResult(ctrl::ChurnReport r) : report(std::move(r)) {
    for (const ctrl::EventOutcome& o : report.events) {
      total_iterations += o.iterations;
      deficit_total += o.utility_deficit;
      if (o.recovery_iterations != ctrl::kNotRecovered) recovered += 1;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  const std::size_t seeds = smoke ? 2 : 5;

  std::printf("=== E17: online churn controller (warm vs cold recovery) ===\n");
  std::printf("random instances (12 servers, 2 commodities, stages 3), "
              "8-event scripted plan per seed, eps=0.05, eta=0.1%s\n\n",
              smoke ? " [smoke]" : "");

  gen::RandomInstanceParams params;
  params.servers = 12;
  params.commodities = 2;
  params.stages = 3;
  params.lambda = 60.0;

  util::Table table({"seed", "event", "warm iters", "cold iters",
                     "warm recov", "cold recov", "warm util", "optimum"});
  std::vector<util::BenchRecord> records;

  std::size_t wins = 0, comparisons = 0, failures = 0;
  bool roundtrip_exact = true;
  bool conservation = true;
  double worst_roundtrip_gap = 0.0;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    util::Rng rng(seed * 7919);
    const auto net = gen::random_instance(params, rng);
    const auto victim = pick_victim(net, arm_options(true).penalty);
    if (victim == stream::kRemovedEntity) continue;
    const ctrl::ChurnPlan plan = scripted_plan(net, victim);

    ctrl::Controller warm_ctrl(net, arm_options(true));
    ctrl::Controller cold_ctrl(net, arm_options(false));
    const ArmResult warm(warm_ctrl.run(plan));
    const ArmResult cold(cold_ctrl.run(plan));
    failures += warm.report.failures + cold.report.failures;

    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      const ctrl::EventOutcome& w = warm.report.events[i];
      const ctrl::EventOutcome& c = cold.report.events[i];
      // Exact restores run no re-solve in either arm (both controllers
      // snapshot identically), so there is no recovery to compare. The win
      // metric is the recovery SLO — iterations until utility re-enters the
      // band — not iterations-to-tolerance: a warm start that lands next to
      // the optimum can still circle the barrier for thousands of damped
      // steps before the phi tolerance trips, while serving full utility
      // the whole time.
      if (!w.exact_restore || !c.exact_restore) {
        comparisons += 1;
        if (w.recovery_iterations < c.recovery_iterations) wins += 1;
      }
      table.add_row(
          {std::to_string(seed), w.event.describe(),
           std::to_string(w.iterations), std::to_string(c.iterations),
           w.recovery_iterations == ctrl::kNotRecovered
               ? "never"
               : std::to_string(w.recovery_iterations),
           c.recovery_iterations == ctrl::kNotRecovered
               ? "never"
               : std::to_string(c.recovery_iterations),
           util::Table::cell(w.utility_after, 4),
           util::Table::cell(w.optimum, 4)});
    }

    // Round trips: the restore at [3] must reproduce the state after [1]
    // (pre-crash snapshot) and the re-arrival at [7] the state after [5]
    // (pre-departure snapshot), both exactly and without a solve.
    double seed_gap = 0.0;
    for (const auto [back, fwd] : {std::pair<std::size_t, std::size_t>{3, 1},
                                   {7, 5}}) {
      const double gap = std::abs(warm.report.events[back].utility_after -
                                  warm.report.events[fwd].utility_after);
      seed_gap = std::max(seed_gap, gap);
      roundtrip_exact = roundtrip_exact && gap <= 1e-9 &&
                        warm.report.events[back].exact_restore &&
                        warm.report.events[back].iterations == 0 &&
                        cold.report.events[back].exact_restore;
    }
    worst_roundtrip_gap = std::max(worst_roundtrip_gap, seed_gap);

    for (const ArmResult* arm : {&warm, &cold}) {
      conservation = conservation &&
                     arm->report.warm_starts + arm->report.cold_starts +
                             arm->report.exact_restores ==
                         arm->report.events.size();
    }

    records.push_back(
        {"seed=" + std::to_string(seed),
         {{"victim", static_cast<double>(victim)},
          {"events", static_cast<double>(plan.events.size())},
          {"warm_total_iterations", static_cast<double>(warm.total_iterations)},
          {"cold_total_iterations", static_cast<double>(cold.total_iterations)},
          {"iteration_savings",
           cold.total_iterations == 0
               ? 0.0
               : 1.0 - static_cast<double>(warm.total_iterations) /
                           static_cast<double>(cold.total_iterations)},
          {"warm_recovered_events", static_cast<double>(warm.recovered)},
          {"cold_recovered_events", static_cast<double>(cold.recovered)},
          {"warm_deficit_total", warm.deficit_total},
          {"cold_deficit_total", cold.deficit_total},
          {"roundtrip_utility_gap", seed_gap},
          {"warm_final_utility", warm.report.final_utility},
          {"cold_final_utility", cold.report.final_utility},
          {"warm_failures", static_cast<double>(warm.report.failures)},
          {"cold_failures", static_cast<double>(cold.report.failures)}}});
  }
  table.print(std::cout);

  // Determinism: the same plan through the distributed backend must be
  // bit-identical across thread counts (the controller adds no wall-clock
  // or thread-dependent decisions on top of the deterministic runtime).
  bool identical = true;
  std::size_t det_events = 0;
  {
    util::Rng rng(7919);
    const auto net = gen::random_instance(params, rng);
    const auto victim = pick_victim(net, arm_options(true).penalty);
    const ctrl::ChurnPlan plan = scripted_plan(net, victim);
    std::vector<ctrl::ChurnReport> reports;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      ctrl::ControllerOptions options = arm_options(true);
      options.pipeline = "distributed";
      options.watchdog_iterations = 200;
      options.solve.threads = threads;
      ctrl::Controller controller(net, options);
      reports.push_back(controller.run(plan));
      if (reports.size() == 1) {
        det_events = reports[0].events.size();
      } else {
        const ctrl::ChurnReport& a = reports[0];
        const ctrl::ChurnReport& b = reports.back();
        identical = identical && a.final_utility == b.final_utility &&
                    a.events.size() == b.events.size();
        for (std::size_t i = 0; identical && i < a.events.size(); ++i) {
          identical = identical &&
                      a.events[i].iterations == b.events[i].iterations &&
                      a.events[i].utility_after == b.events[i].utility_after;
        }
      }
    }
    std::printf("\ndeterminism: distributed pipeline, %zu events, threads "
                "{1,2,8} -> %s\n",
                det_events, identical ? "bit-identical" : "DIVERGED");
  }

  const double win_rate =
      comparisons == 0 ? 0.0
                       : static_cast<double>(wins) /
                             static_cast<double>(comparisons);
  std::printf("warm recovers sooner on %zu/%zu re-solved events (%.0f%%; "
              "exact restores excluded), worst round-trip gap %.3g\n",
              wins, comparisons, 100.0 * win_rate, worst_roundtrip_gap);

  records.push_back({"aggregate",
                     {{"wins", static_cast<double>(wins)},
                      {"comparisons", static_cast<double>(comparisons)},
                      {"win_rate", win_rate},
                      {"worst_roundtrip_gap", worst_roundtrip_gap},
                      {"failures", static_cast<double>(failures)},
                      {"distributed_bit_identical", identical ? 1.0 : 0.0}}});
  const std::string path = util::write_bench_json(
      "churn", records,
      {{"instance", "gen::random_instance (12 servers, 2 commodities, "
                    "3 stages, lambda 60)"},
       {"plan", "cap*0.5 -> cap*1.2 -> crash -> restore -> bw*0.5 -> "
                "bw*1.6 -> depart -> arrive"},
       {"seeds", std::to_string(seeds)},
       {"mode", smoke ? "smoke" : "full"}});
  std::printf("wrote %s\n\n", path.c_str());

  std::printf("shape checks:\n");
  bool ok = true;
  ok &= bench::shape_check(
      "warm recovers strictly sooner than cold on >= 80% of re-solved events",
      win_rate >= 0.8);
  ok &= bench::shape_check(
      "crash->restore and depart->arrive round trips exact (gap <= 1e-9)",
      roundtrip_exact);
  ok &= bench::shape_check("warm + cold + exact == events on every run",
                           conservation);
  ok &= bench::shape_check(
      "distributed churn bit-identical across 1/2/8 threads", identical);
  ok &= bench::shape_check("no re-solve failures", failures == 0);
  return ok ? 0 : 1;
}
