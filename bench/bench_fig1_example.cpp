// E5 — the paper's Figure-1 example (8 servers, 2 streams) as a
// correctness vignette: model construction, Property-1 shrinkage, the
// extended-graph transformation's size formula, and agreement of the
// distributed algorithms with the LP optimum on the exact paper topology.

#include <cstdio>
#include <iostream>

#include "bp/backpressure.hpp"
#include "common.hpp"
#include "core/optimizer.hpp"
#include "gen/figure1.hpp"
#include "stream/validate.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E5 / Figure 1: 8 servers, 2 streams (A,B,C,D / G,E,F,H)"
              " ===\n\n");
  gen::Figure1Params params;
  params.lambda = 30.0;
  params.server_capacity = 40.0;
  params.link_bandwidth = 25.0;
  params.stage_shrinkage = 0.8;
  gen::Figure1Ids ids;
  const auto net = gen::figure1_example(params, &ids);
  const xform::ExtendedGraph xg(net);

  std::printf("physical: %zu nodes, %zu links, %zu streams\n",
              net.node_count(), net.link_count(), net.commodity_count());
  std::printf("extended: %zu nodes (= N+M+J = %zu), %zu edges (= 2M+2J = %zu)\n\n",
              xg.node_count(),
              net.node_count() + net.link_count() + net.commodity_count(),
              xg.edge_count(), 2 * net.link_count() + 2 * net.commodity_count());

  const auto reference = xform::solve_reference(xg);

  core::GradientOptions gopt;
  gopt.eta = 0.1;
  gopt.max_iterations = 6000;
  core::GradientOptimizer gradient(xg, gopt);
  gradient.run();

  bp::BackPressureOptions bopt;
  bopt.record_history = false;
  bp::BackPressureOptimizer backpressure(xg, bopt);
  backpressure.run(60000);

  const auto galloc = gradient.allocation();
  const auto brates = backpressure.admitted_rates();
  util::Table table({"solver", "S1 admitted", "S2 admitted", "utility"});
  table.add_row({"LP (simplex)", util::Table::cell(reference.admitted[ids.s1]),
                 util::Table::cell(reference.admitted[ids.s2]),
                 util::Table::cell(reference.optimal_utility)});
  table.add_row({"gradient", util::Table::cell(galloc.admitted[ids.s1]),
                 util::Table::cell(galloc.admitted[ids.s2]),
                 util::Table::cell(gradient.utility())});
  table.add_row({"back-pressure", util::Table::cell(brates[ids.s1]),
                 util::Table::cell(brates[ids.s2]),
                 util::Table::cell(backpressure.utility())});
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  ok &= bench::shape_check("model validates and Property 1 holds on S1 and S2",
                           stream::validate(net).ok() &&
                               stream::verify_path_independence(net, ids.s1) &&
                               stream::verify_path_independence(net, ids.s2));
  ok &= bench::shape_check(
      "extended graph matches the paper's N+M+J / 2M+2J formula",
      xg.node_count() ==
              net.node_count() + net.link_count() + net.commodity_count() &&
          xg.edge_count() ==
              2 * net.link_count() + 2 * net.commodity_count());
  ok &= bench::shape_check("gradient within 95% of the LP optimum",
                           gradient.utility() >= 0.95 * reference.optimal_utility);
  ok &= bench::shape_check("back-pressure within 93% of the LP optimum",
                           backpressure.utility() >=
                               0.93 * reference.optimal_utility);
  ok &= bench::shape_check(
      "Theorem-2 sufficient condition approximately satisfied at convergence",
      gradient.optimality().sufficient_violation < 0.05);
  return ok ? 0 : 1;
}
