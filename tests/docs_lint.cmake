# docs_lint: checks that every relative markdown link in the repo's
# documentation points at a file that exists, that every `examples/...`
# or `docs/...` path cited in a src/ header comment still exists, and —
# when -DCLI=<path to maxutil_cli> is passed — that the README's CLI flag
# table and `maxutil_cli help` agree (every --flag in the help text appears
# in README.md and vice versa, so CLI docs cannot drift). Run as a ctest:
#
#   cmake -DREPO=<source dir> [-DCLI=<maxutil_cli>] -P docs_lint.cmake
#
# External links (http/https/mailto) and pure in-page anchors (#...) are
# skipped; fragments on relative links are stripped before the existence
# check. Exits non-zero (FATAL_ERROR) listing every broken link.

cmake_policy(SET CMP0057 NEW)  # IN_LIST (script mode has no project() defaults)

if(NOT DEFINED REPO)
  message(FATAL_ERROR "docs_lint: pass -DREPO=<repository root>")
endif()

set(doc_files
    ${REPO}/README.md
    ${REPO}/DESIGN.md
    ${REPO}/EXPERIMENTS.md
    ${REPO}/ROADMAP.md)
file(GLOB docs_dir_files ${REPO}/docs/*.md)
list(APPEND doc_files ${docs_dir_files})

set(broken "")
set(checked 0)

foreach(doc ${doc_files})
  if(NOT EXISTS ${doc})
    list(APPEND broken "${doc}: file listed for linting does not exist")
    continue()
  endif()
  file(READ ${doc} content)
  get_filename_component(doc_dir ${doc} DIRECTORY)

  # Inline markdown links: ](target). Reference-style definitions are rare
  # in this repo and intentionally out of scope. The "](" is rewritten to a
  # bracket-free marker first: a "]" inside a CMake list item suppresses the
  # ";" separators, which would collapse all matches into one item.
  string(REGEX REPLACE "\\]\\(" "\nLINKTO(" content "${content}")
  string(REGEX MATCHALL "LINKTO\\(([^)\n]+)\\)" links "${content}")
  foreach(link ${links})
    string(REGEX REPLACE "^LINKTO\\((.*)\\)$" "\\1" target "${link}")
    # Drop an optional "title" part: ](file.md "Title")
    string(REGEX REPLACE "[ \t]+\"[^\"]*\"$" "" target "${target}")
    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()
    endif()
    # Strip a #fragment from a relative link.
    string(REGEX REPLACE "#.*$" "" target "${target}")
    if(target STREQUAL "")
      continue()
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS ${doc_dir}/${target})
      file(RELATIVE_PATH rel ${REPO} ${doc})
      list(APPEND broken "${rel}: broken link '${target}'")
    endif()
  endforeach()
endforeach()

# Header comments cite walkthroughs and design notes by repo-relative path
# (e.g. "see examples/failure_recovery.cpp", "docs/CONTROLLER.md §4"). Those
# references rot silently when files move; check they all still resolve.
file(GLOB_RECURSE header_files ${REPO}/src/*.hpp)
set(refs_checked 0)
foreach(header ${header_files})
  file(READ ${header} content)
  string(REGEX MATCHALL "(examples|docs)/[A-Za-z0-9_.][A-Za-z0-9_./-]*"
         refs "${content}")
  list(REMOVE_DUPLICATES refs)
  foreach(ref ${refs})
    # Only paths with a file extension are citations; bare directory
    # mentions ("the docs/ tree") are prose.
    if(NOT ref MATCHES "\\.[A-Za-z]+$")
      continue()
    endif()
    math(EXPR refs_checked "${refs_checked} + 1")
    if(NOT EXISTS ${REPO}/${ref})
      file(RELATIVE_PATH rel ${REPO} ${header})
      list(APPEND broken "${rel}: cites missing file '${ref}'")
    endif()
  endforeach()
endforeach()

# CLI flag drift: the authoritative flag list is `maxutil_cli help`; the
# README documents the same flags in its "## CLI" section. Compare the two
# sets of "--flag" tokens in both directions. Only the CLI section of the
# README is scanned — build instructions legitimately mention cmake/ctest
# flags (--preset, --build, --test-dir) that maxutil_cli does not own.
set(flags_checked 0)
if(DEFINED CLI)
  execute_process(COMMAND ${CLI} help
                  OUTPUT_VARIABLE help_text
                  RESULT_VARIABLE help_status)
  if(NOT help_status EQUAL 0)
    list(APPEND broken "maxutil_cli help exited with status ${help_status}")
  endif()
  file(READ ${REPO}/README.md readme_text)
  string(FIND "${readme_text}" "\n## CLI" cli_begin)
  if(cli_begin EQUAL -1)
    list(APPEND broken "README.md: no '## CLI' section for the flag check")
    set(readme_text "")
  else()
    string(SUBSTRING "${readme_text}" ${cli_begin} -1 readme_text)
    string(SUBSTRING "${readme_text}" 1 -1 rest)  # past "\n## CLI" itself
    string(FIND "${rest}" "\n## " cli_end)
    if(NOT cli_end EQUAL -1)
      math(EXPR cli_end "${cli_end} + 1")
      string(SUBSTRING "${readme_text}" 0 ${cli_end} readme_text)
    endif()
  endif()

  string(REGEX MATCHALL "--[a-z][a-z0-9-]*" help_flags "${help_text}")
  list(REMOVE_DUPLICATES help_flags)
  string(REGEX MATCHALL "--[a-z][a-z0-9-]*" readme_flags "${readme_text}")
  list(REMOVE_DUPLICATES readme_flags)

  foreach(flag ${help_flags})
    math(EXPR flags_checked "${flags_checked} + 1")
    if(NOT flag IN_LIST readme_flags)
      list(APPEND broken
           "README.md: flag '${flag}' from 'maxutil_cli help' is undocumented")
    endif()
  endforeach()
  foreach(flag ${readme_flags})
    if(NOT flag IN_LIST help_flags)
      list(APPEND broken
           "README.md: documents flag '${flag}' that 'maxutil_cli help' "
           "does not mention")
    endif()
  endforeach()
endif()

if(NOT broken STREQUAL "")
  list(JOIN broken "\n  " report)
  message(FATAL_ERROR "docs_lint: broken relative links:\n  ${report}")
endif()
message(STATUS
        "docs_lint: ${checked} relative links OK, "
        "${refs_checked} header citations OK, "
        "${flags_checked} CLI flags in sync")
