#!/usr/bin/env bash
# CI entry point. Phase 1: default-preset build + the full ctest suite
# (unit + integration + cli_smoke + docs_lint). Phase 2: ThreadSanitizer
# pass over the two concurrency-sensitive binaries — the parallel runtime
# tests and the fault-injection tests (faulted runs exercise the
# deterministic merge path under threads). Phase 3: AddressSanitizer pass
# over the observability suites (metric shards + trace buffers are raw slot
# arrays; ASan guards the indexing) plus the LP differential harness (the
# sparse revised simplex indexes CSC/LU/eta arrays by hand; ASan guards
# every pivot). Phase 4: solver-parity leg — the
# unified solver layer's registry/adapter/pipeline suite re-run in
# isolation, so a parity break is named in the CI log even when earlier
# phases fail for unrelated reasons. Phase 5: churn-controller leg — the
# ctrl/churn suites re-run in isolation, plus a bench_churn smoke run whose
# JSON artifact must parse. Phase 6: perf-smoke leg — bench_runtime_scaling
# --smoke, whose shape checks gate the runtime's determinism and zero
# steady-state-allocation contracts at threads 1/2/4. Phase 7: the CLI's
# --trace and --compare-json exports must be valid JSON — checked with
# python's strict parser when available. Phase 8: serve leg — `maxutil_cli
# serve` replays the canned demo stream (its --json summary must parse as
# strict JSON), then bench_serve --smoke gates the serve determinism and
# batching shape checks. Phase 9: recovery leg — a durable serve is
# SIGKILLed mid-stream and recovered over the same WAL directory; the
# recovered decision log must be byte-identical to an uninterrupted replay
# and the fencing epoch must have advanced. Sanitizers exit non-zero on any
# report, which set -e turns into a CI failure.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default
cmake --build --preset default -j"${jobs}"
ctest --preset default

cmake --preset tsan
cmake --build --preset tsan -j"${jobs}" \
  --target runtime_parallel_test fault_test ctrl_test serve_test \
  partition_test
./build-tsan/tests/runtime_parallel_test
# Re-run the cross-thread determinism contract by name: the CommodityIndex-
# backed routing snapshots must stay bit-identical at 1/2/8 threads, and a
# race there should be called out in the CI log even if an unrelated
# runtime test breaks first.
./build-tsan/tests/runtime_parallel_test \
  --gtest_filter='ParallelRuntime.DeterministicAcrossThreadCountsAndSeeds'
./build-tsan/tests/fault_test
# The churn controller drives the threaded distributed pipeline per event.
./build-tsan/tests/ctrl_test
# The serve daemon batches requests into threaded re-solves.
./build-tsan/tests/serve_test
# The partitioner itself is serial, but its assignments gate every
# cross-shard handoff the runtime tests race-check above.
./build-tsan/tests/partition_test

cmake --preset asan
cmake --build --preset asan -j"${jobs}" --target obs_test property_test \
  lp_diff_test index_test
./build-asan/tests/obs_test
./build-asan/tests/property_test
# The sparse LP backend under ASan: differential vs dense on ~300 cases.
./build-asan/tests/lp_diff_test
# The CommodityIndex CSR/transpose/hash arrays are hand-indexed slot math;
# ASan guards every lookup while the differential + golden parity tests run.
./build-asan/tests/index_test

# Solver parity: every registry adapter bit-identical to its optimizer,
# every backend within tolerance of the LP optimum (tests/solver_test.cpp).
ctest --preset default -R "AdapterParity|CrossSolverParity|Pipeline"

# LP-parity leg: the dense-vs-sparse differential harness and duality/
# warm-start property suites in isolation (a simplex regression is named in
# the CI log even when earlier phases fail for unrelated reasons), then the
# E19 scaling bench in smoke mode — its shape checks gate backend agreement
# on every rung and its JSON artifact must parse.
ctest --preset default -R "LpDiff|LpDuality|LpWarmStart"
cmake --build --preset default -j"${jobs}" --target bench_lp_scaling
lp_dir=$(mktemp -d /tmp/maxutil_lp.XXXXXX)
MAXUTIL_RESULTS_DIR="${lp_dir}" ./build/bench/bench_lp_scaling --smoke
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${lp_dir}/BENCH_lp_scaling.json" >/dev/null
  echo "ci.sh: BENCH_lp_scaling.json parses as strict JSON"
fi
rm -rf "${lp_dir}"

# Churn-controller leg: the plan/controller suites in isolation, then the
# E17 smoke bench — its shape checks fail the run and its JSON must parse.
ctest --preset default -R "ChurnPlan|Controller"
cmake --build --preset default -j"${jobs}" --target bench_churn
churn_dir=$(mktemp -d /tmp/maxutil_churn.XXXXXX)
MAXUTIL_RESULTS_DIR="${churn_dir}" ./build/bench/bench_churn --smoke
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${churn_dir}/BENCH_churn.json" >/dev/null
  echo "ci.sh: BENCH_churn.json parses as strict JSON"
fi
rm -rf "${churn_dir}"

# Perf-smoke leg: the E15 runtime-scaling bench in smoke mode. Its shape
# checks fail the run on any correctness regression (bit-identity across
# modes and thread counts, zero steady-state payload allocations, the shard
# path actually engaging); wall-clock checks are skipped in smoke mode so
# this stays green on loaded single-core CI hosts. The artifact must parse.
cmake --build --preset default -j"${jobs}" --target bench_runtime_scaling
scaling_dir=$(mktemp -d /tmp/maxutil_scaling.XXXXXX)
MAXUTIL_RESULTS_DIR="${scaling_dir}" ./build/bench/bench_runtime_scaling --smoke
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${scaling_dir}/BENCH_runtime_scaling.json" >/dev/null
  echo "ci.sh: BENCH_runtime_scaling.json parses as strict JSON"
fi
rm -rf "${scaling_dir}"

if command -v python3 >/dev/null 2>&1; then
  trace_file=$(mktemp /tmp/maxutil_trace.XXXXXX.json)
  ./build/tools/maxutil_cli solve examples/scenarios/fair_share.maxutil \
    --algo distributed --iters 20 --trace "${trace_file}" >/dev/null
  python3 -m json.tool "${trace_file}" >/dev/null
  rm -f "${trace_file}"
  echo "ci.sh: --trace export parses as strict JSON"

  compare_file=$(mktemp /tmp/maxutil_compare.XXXXXX.json)
  ./build/tools/maxutil_cli solve examples/scenarios/fair_share.maxutil \
    --compare-json "${compare_file}" --iters 200 >/dev/null
  python3 -m json.tool "${compare_file}" >/dev/null
  rm -f "${compare_file}"
  echo "ci.sh: --compare-json export parses as strict JSON"
else
  echo "ci.sh: python3 not found; skipping --trace/--compare-json JSON checks"
fi

# Serve leg: replay the canned demo stream through the admission-serving
# daemon (the decision log is deterministic; a failed re-solve exits
# non-zero), json.tool-check its --json metrics export, then the E18 smoke
# bench — its shape checks gate replay determinism across 1/2/8 threads.
serve_json=$(mktemp /tmp/maxutil_serve.XXXXXX.json)
./build/tools/maxutil_cli serve examples/scenarios/fair_share.maxutil \
  --input examples/serve_demo.events --window 2 --json "${serve_json}" \
  >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${serve_json}" >/dev/null
  echo "ci.sh: serve --json export parses as strict JSON"
fi
rm -f "${serve_json}"
cmake --build --preset default -j"${jobs}" --target bench_serve
serve_dir=$(mktemp -d /tmp/maxutil_serve.XXXXXX)
MAXUTIL_RESULTS_DIR="${serve_dir}" ./build/bench/bench_serve --smoke
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${serve_dir}/BENCH_serve.json" >/dev/null
  echo "ci.sh: BENCH_serve.json parses as strict JSON"
fi
rm -rf "${serve_dir}"

# Recovery leg: durable serving must survive SIGKILL. Feed the demo stream's
# first six requests to a --wal server through a FIFO, SIGKILL it mid-stream
# once the WAL holds every delivered record, then --recover over the same
# directory and feed the rest. The recovered server's full decision log must
# be byte-identical to an uninterrupted replay of the whole stream, and the
# fencing epoch must have advanced to 2 (one bump per start).
wal_dir=$(mktemp -d /tmp/maxutil_wal.XXXXXX)
ref_log=$(mktemp /tmp/maxutil_serveref.XXXXXX.log)
rec_log=$(mktemp /tmp/maxutil_serverec.XXXXXX.log)
clean_events=$(mktemp /tmp/maxutil_events.XXXXXX)
part1=$(mktemp /tmp/maxutil_part1.XXXXXX)
part2=$(mktemp /tmp/maxutil_part2.XXXXXX)
grep -v '^[[:space:]]*#' examples/serve_demo.events \
  | grep -v '^[[:space:]]*$' > "${clean_events}"
split_at=6
head -n "${split_at}" "${clean_events}" > "${part1}"
tail -n +"$((split_at + 1))" "${clean_events}" > "${part2}"
./build/tools/maxutil_cli serve examples/scenarios/fair_share.maxutil \
  --input "${clean_events}" --window 2 --decisions "${ref_log}" >/dev/null
fifo="${wal_dir}.fifo"
mkfifo "${fifo}"
./build/tools/maxutil_cli serve examples/scenarios/fair_share.maxutil \
  --input "${fifo}" --window 2 --wal "${wal_dir}" --snapshot-every 2 \
  --decisions /dev/null >/dev/null 2>&1 &
serve_pid=$!
exec 3>"${fifo}"
cat "${part1}" >&3
for _ in $(seq 1 100); do
  wal_count=$(grep -c '^r ' "${wal_dir}/wal.log" 2>/dev/null || true)
  [ "${wal_count:-0}" -eq "${split_at}" ] && break
  sleep 0.1
done
kill -9 "${serve_pid}" 2>/dev/null || true
wait "${serve_pid}" 2>/dev/null || true
exec 3>&-
rm -f "${fifo}"
./build/tools/maxutil_cli serve examples/scenarios/fair_share.maxutil \
  --input "${part2}" --window 2 --recover "${wal_dir}" --snapshot-every 2 \
  --decisions "${rec_log}" >/dev/null
cmp "${ref_log}" "${rec_log}"
echo "ci.sh: SIGKILL mid-stream recovery reproduced the decision log" \
  "byte-identically"
recovered_epoch=$(cat "${wal_dir}/epoch")
if [ "${recovered_epoch}" != "2" ]; then
  echo "ci.sh: expected fencing epoch 2 after one restart, got" \
    "${recovered_epoch}" >&2
  exit 1
fi
echo "ci.sh: fencing epoch advanced to ${recovered_epoch} across the restart"
rm -rf "${wal_dir}" "${ref_log}" "${rec_log}" "${clean_events}" \
  "${part1}" "${part2}"

echo "ci.sh: all checks passed"
