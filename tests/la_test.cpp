#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/sparse.hpp"
#include "la/vector_ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using maxutil::la::CsrMatrix;
using maxutil::la::LuFactorization;
using maxutil::la::Matrix;
using maxutil::la::Triplet;
using maxutil::util::CheckError;
using maxutil::util::Rng;

TEST(VectorOps, DotAxpyNorms) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(maxutil::la::dot(a, b), 32.0);
  std::vector<double> y = b;
  maxutil::la::axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(maxutil::la::norm_inf(a), 3.0);
  EXPECT_DOUBLE_EQ(maxutil::la::norm2(std::vector<double>{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(maxutil::la::sum(a), 6.0);
  const auto d = maxutil::la::subtract(b, a);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(maxutil::la::dot(a, b), CheckError);
  std::vector<double> y{1.0};
  EXPECT_THROW(maxutil::la::axpy(1.0, b, y), CheckError);
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_THROW(m(2, 0), CheckError);
  EXPECT_THROW(m(0, 3), CheckError);
}

TEST(Matrix, InitializerListAndRaggedRejected) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), CheckError);
}

TEST(Matrix, IdentityMultiply) {
  const Matrix eye = Matrix::identity(3);
  const std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(eye.multiply(x), x);
}

TEST(Matrix, MultiplyKnown) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const auto y = m.multiply(std::vector<double>{1.0, 1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);
  const auto xt = m.multiply_transposed(std::vector<double>{1.0, 0.0, 1.0});
  ASSERT_EQ(xt.size(), 2u);
  EXPECT_DOUBLE_EQ(xt[0], 6.0);
  EXPECT_DOUBLE_EQ(xt[1], 8.0);
}

TEST(Matrix, MatrixProductAndTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
  const Matrix at = a.transposed();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(at(1, 0), 2.0);
}

TEST(Matrix, SwapRows) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  m.swap_rows(0, 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
}

TEST(Lu, SolvesKnownSystem) {
  // x + 2y = 5; 3x + 4y = 11  ->  x = 1, y = 2.
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto x = maxutil::la::solve_dense(a, std::vector<double>{5.0, 11.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero top-left pivot forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = maxutil::la::solve_dense(a, std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuFactorization{a}, CheckError);
}

TEST(Lu, NonSquareThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, CheckError);
}

TEST(Lu, Determinant) {
  const Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuFactorization(a).determinant(), 6.0, 1e-12);
  const Matrix swapped{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuFactorization(swapped).determinant(), -1.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 12));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2.0, 2.0);
      a(r, r) += 4.0;  // diagonally dominant, hence invertible
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-10.0, 10.0);
    const auto b = a.multiply(x_true);
    const auto x = maxutil::la::solve_dense(a, b);
    EXPECT_LT(maxutil::util::max_abs_diff(x, x_true), 1e-8);
  }
}

TEST(Lu, TransposedSolveRoundTrip) {
  Rng rng(103);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 3.0;
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-5.0, 5.0);
  const auto b = a.multiply_transposed(x_true);  // b = A^T x
  const LuFactorization lu(a);
  const auto x = lu.solve_transposed(b);
  EXPECT_LT(maxutil::util::max_abs_diff(x, x_true), 1e-9);
}

TEST(Csr, AssemblyAccumulatesDuplicates) {
  CsrMatrix m(2, 2,
              {{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}});
  EXPECT_EQ(m.nonzeros(), 2u);
  const auto row0 = m.row_entries(0);
  ASSERT_EQ(row0.size(), 1u);
  EXPECT_EQ(row0[0].first, 1u);
  EXPECT_DOUBLE_EQ(row0[0].second, 5.0);
}

TEST(Csr, OutOfRangeEntryThrows) {
  EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), CheckError);
}

TEST(Csr, MultiplyMatchesDense) {
  Rng rng(107);
  const std::size_t n = 20;
  Matrix dense(n, n);
  std::vector<Triplet> entries;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (rng.chance(0.2)) {
        const double v = rng.uniform(-1.0, 1.0);
        dense(r, c) = v;
        entries.push_back({r, c, v});
      }
    }
  }
  const CsrMatrix sparse(n, n, entries);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-3.0, 3.0);
  EXPECT_LT(maxutil::util::max_abs_diff(sparse.multiply(x), dense.multiply(x)),
            1e-12);
  EXPECT_LT(maxutil::util::max_abs_diff(sparse.multiply_transposed(x),
                                        dense.multiply_transposed(x)),
            1e-12);
}

TEST(Csr, FixedPointSolvesTriangularSystem) {
  // x = b + A x with A strictly lower-triangular (loop-free routing shape).
  const CsrMatrix a(3, 3, {{1, 0, 0.5}, {2, 0, 0.25}, {2, 1, 0.5}});
  const std::vector<double> b{1.0, 0.0, 0.0};
  const auto x = a.solve_fixed_point(b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 0.5, 1e-10);
  EXPECT_NEAR(x[2], 0.5, 1e-10);
}

TEST(Csr, FixedPointContractiveCycleConverges) {
  // A has a cycle but spectral radius 0.25 < 1.
  const CsrMatrix a(2, 2, {{0, 1, 0.5}, {1, 0, 0.5}});
  const std::vector<double> b{1.0, 0.0};
  const auto x = a.solve_fixed_point(b);
  // x0 = 1 + 0.5 x1, x1 = 0.5 x0  ->  x0 = 4/3, x1 = 2/3.
  EXPECT_NEAR(x[0], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0 / 3.0, 1e-9);
}

TEST(Csr, FixedPointDivergesOnExpandingCycle) {
  const CsrMatrix a(2, 2, {{0, 1, 2.0}, {1, 0, 2.0}});
  const std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(a.solve_fixed_point(b, 1e-12, 200), CheckError);
}

}  // namespace
