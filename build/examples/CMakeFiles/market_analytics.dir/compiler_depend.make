# Empty compiler generated dependencies file for market_analytics.
# This may be replaced when dependencies are built.
