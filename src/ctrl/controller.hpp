#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/routing.hpp"
#include "ctrl/churn_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/pipeline.hpp"
#include "solver/solver.hpp"
#include "stream/model.hpp"
#include "stream/surgery.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::ctrl {

using maxutil::graph::NodeId;

/// recovery_iterations value when utility never re-entered the band.
inline constexpr std::size_t kNotRecovered = static_cast<std::size_t>(-1);

/// What the interim operating point sheds while a re-solve is in flight
/// (docs/CONTROLLER.md §3). The re-solve then redistributes optimally; the
/// policy only shapes the transient.
enum class DegradationPolicy {
  /// Blend every commodity toward all-rejected by the same fraction until
  /// the warm start is strictly feasible (fair transient shedding).
  kProportional,
  /// Shed whole commodities highest-id-first (later arrivals are lower
  /// priority) until feasible; earlier commodities keep their admission.
  kPriority,
  /// Shed nothing. If the carried-over point violates capacity, the warm
  /// start is unusable and the event cold-starts with a warning.
  kFreeze,
};

const char* to_string(DegradationPolicy policy);

/// Parses "proportional" / "priority" / "freeze"; throws on anything else.
DegradationPolicy parse_policy(const std::string& text);

struct ControllerOptions {
  /// Re-solve pipeline spec (solver registry grammar, e.g. "gradient" or
  /// "lp,gradient" or "distributed"). The last stage must emit a routing —
  /// the controller needs it to warm-start the next event.
  std::string pipeline = "gradient";

  DegradationPolicy policy = DegradationPolicy::kProportional;

  /// Per-event solve knobs (iteration budget, eta, threads, tolerance, ...).
  /// tolerance 0 is upgraded to 1e-7 so re-solves stop at convergence
  /// instead of burning the whole budget after every event.
  solver::SolveOptions solve;

  xform::PenaltyConfig penalty;

  /// Watchdog iteration budget per re-solve: caps (and defaults) the
  /// per-event max_iterations. 0 disables the cap.
  std::size_t watchdog_iterations = 4000;

  /// Watchdog wall budget per re-solve attempt in seconds; 0 disables.
  double watchdog_wall_seconds = 0.0;

  /// A tripped watchdog retries once with eta scaled by this factor (a
  /// safer, smaller step) before the event is declared failed.
  double retry_eta_factor = 0.25;

  /// Recovered when utility >= optimum - band * max(1, |optimum|).
  double recovery_band = 0.01;

  /// Remap the previous routing across the surgery maps as a warm start
  /// (false = always cold start; bench_churn's control arm).
  bool use_warm_start = true;

  /// Solve the post-event LP optimum for the recovery SLOs. Disable to
  /// skip the reference solve (outcomes then report optimum 0 and
  /// recovery_iterations relative to nothing — only the iteration and
  /// status fields remain meaningful).
  bool lp_reference = true;

  /// Record per-event Chrome trace spans (deterministic timestamps derived
  /// from event time and iteration counts, never the wall clock).
  bool record_trace = false;
};

/// Per-event record: what happened, how the re-solve went, and the
/// recovery SLOs (docs/CONTROLLER.md §4).
struct EventOutcome {
  ChurnEvent event;
  solver::Status status = solver::Status::kFailed;

  bool warm_started = false;   // remapped previous routing fed the solve
  bool cold_started = false;   // solve started from all-rejected
  bool exact_restore = false;  // snapshot restored, re-solve skipped
  bool watchdog_retry = false; // first attempt tripped the watchdog
  bool degraded_infeasible = false;  // freeze policy carried an infeasible point

  std::size_t iterations = 0;           // re-solve iterations actually spent
  std::size_t recovery_iterations = 0;  // to within the band; kNotRecovered
  double utility_before = 0.0;  // interim (degraded) utility after surgery
  double utility_after = 0.0;   // utility after the re-solve
  double optimum = 0.0;         // post-event LP optimum (lp_reference)
  double utility_deficit = 0.0; // sum over iterations of max(0, opt - u)
  double warm_start_violation = 0.0;  // capacity violation of the warm point
  double wall_seconds = 0.0;
  std::string message;  // failure cause when status is not usable
};

/// Outcome of a coalesced batch of events applied with a *single* re-solve
/// (Controller::apply_batch — the serve daemon's path, docs/SERVE.md §3).
/// Mirrors the solve-related fields of EventOutcome; the per-event recovery
/// SLOs (recovery_iterations, utility_deficit) are the per-event path's job
/// and are not computed here.
struct BatchOutcome {
  std::vector<ChurnEvent> events;
  solver::Status status = solver::Status::kFailed;

  bool warm_started = false;
  bool cold_started = false;
  bool exact_restore = false;   // singleton batch served from a snapshot
  bool watchdog_retry = false;
  bool degraded_infeasible = false;

  std::size_t iterations = 0;
  double utility_before = 0.0;  // interim (degraded) utility after surgery
  double utility_after = 0.0;
  double warm_start_violation = 0.0;
  double wall_seconds = 0.0;
  std::string message;
};

/// Whole-run aggregate returned by Controller::run.
struct ChurnReport {
  std::vector<EventOutcome> events;
  double initial_utility = 0.0;
  double final_utility = 0.0;
  std::size_t warm_starts = 0;
  std::size_t cold_starts = 0;
  std::size_t exact_restores = 0;
  std::size_t watchdog_retries = 0;
  std::size_t failures = 0;

  /// Human-readable per-event table + aggregate lines (CLI --report).
  std::string summary() const;
};

/// The online churn controller (ISSUE 5 tentpole): owns the solver Problem
/// for the current topology and drives it through a ChurnPlan. Per event it
/// 1. validates the event against the current topology configuration,
/// 2. rebuilds the network from the pristine baseline via stream::rebuild
///    (so a crash followed by a restore reproduces the pre-crash network
///    bit-for-bit, making crashes reversible),
/// 3. remaps the previous routing across the composed surgery maps as a
///    warm start (core::remap_routing; cold start when the remap fails),
///    shaped by the degradation policy while reconvergence is in flight,
/// 4. re-solves through solver::Pipeline under a watchdog (iteration/wall
///    budget, one retry at a safer step size before Status::kFailed),
/// 5. records recovery SLOs into the obs layer (metrics + trace spans).
///
/// A crash (or departure) snapshots the pre-event configuration and
/// routing; a restore (or re-arrival) that returns the configuration to
/// exactly the snapshot skips the re-solve entirely and reinstates the
/// snapshot (recovery in 0 iterations — the strongest form of the paper's
/// "faster recovery" remark).
///
/// Deterministic by construction: no wall-clock input affects decisions,
/// and with a deterministic backend (gradient, or distributed under the
/// deterministic runtime) a run is bit-identical across thread counts.
///
/// The baseline network is copied; the caller's network is not retained.
class Controller {
 public:
  explicit Controller(const stream::StreamNetwork& baseline,
                      ControllerOptions options = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Applies one event: surgery + degradation + watchdogged re-solve.
  /// Throws util::CheckError when the event is invalid against the current
  /// configuration (crashing a down node, restoring an up node, scaling a
  /// sink, departing an absent commodity, unknown names); solver failures
  /// are *recorded* in the outcome, never thrown.
  EventOutcome apply(const ChurnEvent& event);

  /// Applies a coalesced batch of events with ONE rebuild + ONE warm-started
  /// re-solve (the serve daemon's load-shedding path: many topology changes
  /// and admissions arriving inside a coalescing window cost one solve, not
  /// one per event). Events are validated in order against the staged
  /// configuration, exactly as if applied one by one; the whole batch throws
  /// util::CheckError before any state changes when one is invalid — use
  /// check_event to pre-screen a stream. A singleton batch delegates to
  /// apply() (keeping the exact-restore snapshot machinery); multi-event
  /// batches skip snapshots, so a restore cannot be served exactly across a
  /// batched crash. Batch outcomes are not appended to report().events.
  BatchOutcome apply_batch(const std::vector<ChurnEvent>& events);

  /// Validates `event` against the configuration reached from the current
  /// one by staging `staged` first (no state is modified). Returns the
  /// failure message — naming the offending entity and value, the same text
  /// apply() would throw — or an empty string when the event is applicable.
  std::string check_event(const ChurnEvent& event,
                          const std::vector<ChurnEvent>& staged = {}) const;

  /// Replays a whole plan (events already in time order) and returns the
  /// aggregate report, also kept in report().
  ChurnReport run(const ChurnPlan& plan);

  // --- Current state ---
  /// The pristine baseline every event's entity names resolve against.
  const stream::StreamNetwork& baseline() const { return baseline_; }
  const stream::StreamNetwork& network() const;
  const xform::ExtendedGraph& extended() const;
  const core::RoutingState& routing() const;
  const std::vector<double>& admitted() const { return admitted_; }
  double utility() const { return utility_; }
  const ChurnReport& report() const { return report_; }

  /// Serializes the controller's full decision-bearing state — the topology
  /// configuration, the standing routing, admitted rates, utility, the
  /// exact-restore snapshot table, and the applied-event count — as a
  /// line-oriented text blob. Doubles are rendered as C hexfloats, so a
  /// round trip through import_state is bit-exact and a restored controller
  /// continues a deterministic run with the same decisions the original
  /// would have made (the serve WAL's snapshot payload, docs/SERVE.md §8).
  /// Metrics, traces, and the per-event report are per-process observability
  /// and are NOT serialized.
  void export_state(std::ostream& out) const;

  /// Restores a state written by export_state against the same baseline
  /// network. Rebuilds the current topology from the pristine baseline (the
  /// same deterministic rebuild path every event uses), reinstates the
  /// routing slot-for-slot, and rebuilds every pending exact-restore
  /// snapshot. Throws util::CheckError on a malformed blob or a baseline
  /// shape mismatch.
  void import_state(std::istream& in);

  /// SLO metrics (counters/gauges/histograms; docs/CONTROLLER.md §4).
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Per-event spans (ControllerOptions::record_trace).
  const obs::Tracer& tracer() const { return tracer_; }
  obs::Tracer& tracer() { return tracer_; }

 private:
  /// Baseline-indexed topology configuration; the current network is always
  /// rebuild(baseline, spec_of(config)).
  struct Config {
    std::vector<char> node_down;
    std::vector<char> link_down;
    std::vector<char> commodity_absent;
    std::vector<double> cap_factor;
    std::vector<double> bw_factor;
    std::vector<double> lambda_factor;
    bool operator==(const Config&) const = default;
  };

  /// The rebuilt network, its baseline->current maps, and the Problem over
  /// it. Heap-held so the Problem's pointer into the network stays stable.
  struct State;

  struct Snapshot {
    Config config;
    core::RoutingState routing;
    std::vector<double> admitted;
    double utility = 0.0;
  };

  std::unique_ptr<State> build_state(const Config& config) const;
  /// Validates `event` against `config` and applies its delta (pure with
  /// respect to controller state — apply()/apply_batch record metrics and
  /// snapshots themselves). Returns the snapshot key a restore/arrive
  /// should be checked against, when applicable.
  std::optional<std::pair<char, std::size_t>> stage_event(
      const ChurnEvent& event, Config& config) const;
  /// Per-kind event counter for stage_event's metrics recording.
  obs::MetricId kind_metric(ChurnEventKind kind) const;
  NodeId resolve_node(const std::string& text, const char* what) const;
  stream::CommodityId resolve_commodity(const std::string& text,
                                        const char* what) const;
  solver::SolveResult watchdogged_solve(const solver::Problem& problem,
                                        std::optional<core::RoutingState> warm,
                                        EventOutcome& outcome);
  void register_metrics();

  ControllerOptions options_;
  solver::Pipeline pipeline_;
  stream::StreamNetwork baseline_;
  Config config_;
  std::unique_ptr<State> state_;
  std::optional<core::RoutingState> routing_;
  std::vector<double> admitted_;
  double utility_ = 0.0;
  /// Pre-event snapshots: crashes key on {'n', node}, departures on
  /// {'c', commodity}. A restore/arrive whose configuration returns exactly
  /// to the snapshot is served from it with no re-solve.
  std::map<std::pair<char, std::size_t>, Snapshot> snapshots_;
  ChurnReport report_;
  std::size_t events_applied_ = 0;

  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  // Metric handles (see register_metrics for the catalog).
  obs::MetricId m_events_, m_crashes_, m_restores_, m_cap_scales_,
      m_bw_scales_, m_arrivals_, m_departures_, m_warm_starts_,
      m_cold_starts_, m_exact_restores_, m_retries_, m_failures_,
      m_recovered_, m_utility_, m_commodities_, m_recovery_hist_,
      m_deficit_hist_;
};

}  // namespace maxutil::ctrl
