#include "serve/daemon.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace maxutil::serve {

using maxutil::util::ensure;

namespace {

/// Shortest round-trip-ish rendering used everywhere a decision value is
/// logged: %.9g never emits locale separators and keeps the log compact.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Bit-exact double rendering for snapshots (same convention as
/// Controller::export_state — istream's num_get cannot parse hexfloat, so
/// reading goes token-by-token through strtod).
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double snap_read_double(std::istream& in) {
  std::string token;
  in >> token;
  ensure(!token.empty(), "serve snapshot: truncated double");
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  ensure(end == token.c_str() + token.size(),
         "serve snapshot: bad double '" + token + "'");
  return v;
}

std::size_t snap_read_size(std::istream& in) {
  std::size_t v = 0;
  in >> v;
  ensure(static_cast<bool>(in), "serve snapshot: truncated integer");
  return v;
}

}  // namespace

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kAdmit: return "admit";
    case Outcome::kDegrade: return "degrade";
    case Outcome::kDeny: return "deny";
    case Outcome::kApplied: return "applied";
    case Outcome::kRejected: return "rejected";
    case Outcome::kReport: return "report";
  }
  return "?";
}

std::string DecisionRecord::line() const {
  std::ostringstream out;
  out << "t=" << decided_at << " batch=" << batch << " " << request.describe()
      << " -> " << to_string(outcome);
  const bool rate_bearing = outcome == Outcome::kAdmit ||
                            outcome == Outcome::kDegrade ||
                            outcome == Outcome::kDeny ||
                            outcome == Outcome::kReport;
  if (rate_bearing) {
    out << " requested=" << fmt(requested) << " admitted=" << fmt(admitted)
        << " share=" << fmt(share);
  }
  if (outcome != Outcome::kRejected) out << " utility=" << fmt(utility);
  if (!reason.empty()) out << " reason=\"" << reason << "\"";
  return out.str();
}

double ServeReport::decisions_per_second() const {
  if (solve_wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(decisions.size()) / solve_wall_seconds;
}

std::string ServeReport::decision_log() const {
  std::string out;
  for (const DecisionRecord& record : decisions) {
    out += record.line();
    out += "\n";
  }
  return out;
}

std::string ServeReport::summary() const {
  std::ostringstream out;
  out << "serve: " << decisions.size() << " decisions in " << batches
      << " batches (" << solves << " solves, " << forced_flushes
      << " forced flushes)\n"
      << "  admit=" << admits << " degrade=" << degrades << " deny=" << denies
      << " applied=" << applied << " rejected=" << rejected
      << " query=" << queries << " overload_denied=" << overload_denied
      << "\n"
      << "  utility " << fmt(initial_utility) << " -> " << fmt(final_utility)
      << "\n"
      << "  virtual latency p50=" << fmt(virtual_p50)
      << " p99=" << fmt(virtual_p99) << " (time units)\n"
      << "  wall latency p50=" << fmt(wall_p50 * 1e3)
      << "ms p99=" << fmt(wall_p99 * 1e3) << "ms, "
      << fmt(decisions_per_second()) << " decisions/sec\n";
  return out.str();
}

void ServeReport::write_json(std::ostream& out) const {
  out << "{\n"
      << "  \"decisions\": " << decisions.size() << ",\n"
      << "  \"batches\": " << batches << ",\n"
      << "  \"solves\": " << solves << ",\n"
      << "  \"admits\": " << admits << ",\n"
      << "  \"degrades\": " << degrades << ",\n"
      << "  \"denies\": " << denies << ",\n"
      << "  \"applied\": " << applied << ",\n"
      << "  \"rejected\": " << rejected << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"forced_flushes\": " << forced_flushes << ",\n"
      << "  \"overload_denied\": " << overload_denied << ",\n"
      << "  \"virtual_latency_p50\": " << fmt(virtual_p50) << ",\n"
      << "  \"virtual_latency_p99\": " << fmt(virtual_p99) << ",\n"
      << "  \"wall_latency_p50_seconds\": " << fmt(wall_p50) << ",\n"
      << "  \"wall_latency_p99_seconds\": " << fmt(wall_p99) << ",\n"
      << "  \"solve_wall_seconds\": " << fmt(solve_wall_seconds) << ",\n"
      << "  \"decisions_per_second\": " << fmt(decisions_per_second()) << ",\n"
      << "  \"initial_utility\": " << fmt(initial_utility) << ",\n"
      << "  \"final_utility\": " << fmt(final_utility) << "\n"
      << "}\n";
}

Daemon::Daemon(const stream::StreamNetwork& baseline, ServeOptions options)
    : options_(std::move(options)) {
  // The serve decision is share-threshold based; the controller's LP
  // reference solve would double every batch's cost for SLO fields serve
  // never reads.
  options_.controller.lp_reference = false;
  options_.controller.record_trace = false;  // serve records its own spans
  ensure(options_.deny_share <= options_.admit_share,
         "serve: deny_share " + fmt(options_.deny_share) +
             " exceeds admit_share " + fmt(options_.admit_share));
  controller_ =
      std::make_unique<ctrl::Controller>(baseline, options_.controller);
  report_.initial_utility = controller_->utility();
  report_.final_utility = report_.initial_utility;
  register_metrics();
}

Daemon::~Daemon() = default;

void Daemon::register_metrics() {
  obs::MetricsRegistry& m = controller_->metrics();
  m_requests_ = m.counter("serve_requests_total", "protocol lines accepted");
  m_admits_ = m.counter("serve_admitted_total", "admit answered admit");
  m_degrades_ = m.counter("serve_degraded_total", "admit answered degrade");
  m_denies_ = m.counter("serve_denied_total", "admit answered deny");
  m_applied_ = m.counter("serve_applied_total", "topology events applied");
  m_rejected_ = m.counter("serve_rejected_total", "requests failing validation");
  m_queries_ = m.counter("serve_queries_total", "query requests answered");
  m_batches_ = m.counter("serve_batches_total", "coalesced batches flushed");
  m_solves_ = m.counter("serve_solves_total", "apply_batch re-solves");
  m_forced_flush_ =
      m.counter("serve_batch_forced_flush",
                "batches flushed by a timer or end-of-stream, not an arrival");
  m_overload_ = m.counter("serve_overload_denied_total",
                          "requests denied by the max_pending overload bound");
  m_batch_size_ = m.histogram("serve_batch_size", {1, 2, 4, 8, 16, 32, 64},
                              "requests coalesced per batch");
  m_virtual_latency_ =
      m.histogram("serve_decision_latency", {0, 1, 2, 4, 8, 16, 32, 64},
                  "virtual decision latency (time units)");
  m_wall_latency_us_ = m.histogram(
      "serve_decision_wall_us", {100, 1e3, 1e4, 1e5, 1e6, 1e7},
      "wall decision latency (us; the deciding batch's solve time)");
  m_utility_ = m.gauge("serve_utility", "total utility after the last batch");
}

void Daemon::open_batch(std::size_t time) {
  open_time_ = time;
  batch_open_ = true;
}

void Daemon::submit(const Request& request) {
  ensure(!finished_, "serve: submit after finish");
  const bool first =
      !restored_ && report_.decisions.empty() && pending_.empty();
  ensure(first || request.time() >= last_time_,
         "serve: request '" + request.describe() + "' at @" +
             std::to_string(request.time()) + " precedes @" +
             std::to_string(last_time_) + "; streams must be time-ordered");
  if (batch_open_ && request.time() >= open_time_ + options_.window) {
    decide_batch(/*forced=*/false);
  }
  if (options_.max_pending != 0 && pending_.size() >= options_.max_pending) {
    // Overload: deny immediately without joining the batch. The decision is
    // a pure function of the stream (pending count at this arrival), so
    // replay reproduces it bit-identically.
    DecisionRecord record;
    record.request = request;
    record.outcome = Outcome::kDeny;
    record.batch = report_.batches;  // the batch it could not join
    record.decided_at = request.time();
    record.utility = controller_->utility();
    record.reason = "overloaded: " + std::to_string(pending_.size()) +
                    " requests pending (retryable)";
    ++report_.overload_denied;
    controller_->metrics().add(m_overload_);
    finalize_record(std::move(record));
    last_time_ = request.time();
    return;
  }
  if (!batch_open_) open_batch(request.time());
  last_time_ = request.time();

  Pending pending;
  pending.request = request;
  if (request.kind == RequestKind::kQuery) {
    // Queries are answered from the post-batch plan; the only validation
    // is that the commodity exists in the baseline universe.
    const stream::StreamNetwork& baseline = controller_->baseline();
    bool known = false;
    for (stream::CommodityId j = 0; j < baseline.commodity_count(); ++j) {
      if (baseline.commodity_name(j) == request.commodity()) known = true;
    }
    if (!known) {
      try {
        std::size_t used = 0;
        const unsigned long id = std::stoul(request.commodity(), &used);
        known = used == request.commodity().size() &&
                id < baseline.commodity_count();
      } catch (...) {
      }
    }
    if (!known) {
      pending.reject_reason = "serve query: unknown commodity '" +
                              request.commodity() +
                              "' (baseline names or ids)";
    }
  } else {
    std::vector<ctrl::ChurnEvent> staged;
    for (const Pending& p : pending_) {
      if (p.staged) staged.push_back(p.request.event);
    }
    const std::string reason = controller_->check_event(request.event, staged);
    if (reason.empty()) {
      pending.staged = true;
    } else {
      pending.reject_reason = reason;
    }
  }
  pending_.push_back(std::move(pending));
}

DecisionRecord Daemon::decide_admit(const Pending& pending,
                                    const ctrl::BatchOutcome& outcome,
                                    std::vector<ctrl::ChurnEvent>& reverts) {
  DecisionRecord record;
  record.request = pending.request;

  // Resolve the commodity in the post-batch network by its baseline name
  // (rebuilds renumber commodities, names survive).
  const stream::StreamNetwork& baseline = controller_->baseline();
  std::string name = pending.request.commodity();
  bool named = false;
  for (stream::CommodityId j = 0; j < baseline.commodity_count(); ++j) {
    if (baseline.commodity_name(j) == name) named = true;
  }
  if (!named) {
    const unsigned long id = std::stoul(name);  // check_event validated it
    name = baseline.commodity_name(static_cast<stream::CommodityId>(id));
  }
  const stream::StreamNetwork& net = controller_->network();
  bool present = false;
  for (stream::CommodityId j = 0; j < net.commodity_count(); ++j) {
    if (net.commodity_name(j) != name) continue;
    record.requested = net.lambda(j);
    record.admitted = controller_->admitted()[j];
    present = true;
    break;
  }
  record.share =
      record.requested > 0.0 ? record.admitted / record.requested : 0.0;

  if (!present) {
    // A later depart in the same batch removed the commodity again before
    // the decision point; there is nothing to admit and nothing to revert.
    record.outcome = Outcome::kDeny;
    record.reason = "departed again before the batch decision";
    return record;
  }

  ctrl::ChurnEvent depart;
  depart.kind = ctrl::ChurnEventKind::kDepart;
  depart.commodity = pending.request.commodity();
  depart.time = pending.request.time();

  if (outcome.status == solver::Status::kFailed) {
    record.outcome = Outcome::kDeny;
    record.reason = "re-solve failed: " + outcome.message;
    reverts.push_back(depart);
  } else if (record.share >= options_.admit_share) {
    record.outcome = Outcome::kAdmit;
  } else if (record.share >= options_.deny_share) {
    record.outcome = Outcome::kDegrade;
  } else {
    record.outcome = Outcome::kDeny;
    record.reason = "admitted share " + fmt(record.share) +
                    " below deny_share " + fmt(options_.deny_share);
    reverts.push_back(depart);
  }
  return record;
}

void Daemon::advance_to(std::size_t time) {
  ensure(!finished_, "serve: advance_to after finish");
  if (batch_open_ && time >= open_time_ + options_.window) {
    decide_batch(/*forced=*/false);
  }
}

void Daemon::decide_batch(bool forced) {
  if (pending_.empty()) {
    batch_open_ = false;
    return;
  }
  if (forced) {
    ++report_.forced_flushes;
    controller_->metrics().add(m_forced_flush_);
  }
  const std::size_t batch = report_.batches;
  const std::size_t decided_at = open_time_ + options_.window;

  std::vector<ctrl::ChurnEvent> staged;
  for (const Pending& p : pending_) {
    if (p.staged) staged.push_back(p.request.event);
  }

  ctrl::BatchOutcome outcome;
  outcome.status = solver::Status::kConverged;  // empty batch: nothing moved
  double wall = 0.0;
  if (!staged.empty()) {
    outcome = controller_->apply_batch(staged);
    ++report_.solves;
    controller_->metrics().add(m_solves_);
    wall += outcome.wall_seconds;
  }

  std::vector<DecisionRecord> records;
  std::vector<ctrl::ChurnEvent> reverts;
  records.reserve(pending_.size());
  for (const Pending& pending : pending_) {
    DecisionRecord record;
    if (!pending.reject_reason.empty()) {
      record.request = pending.request;
      record.outcome = Outcome::kRejected;
      record.reason = pending.reject_reason;
    } else {
      switch (pending.request.kind) {
        case RequestKind::kTopology:
          record.request = pending.request;
          record.outcome = Outcome::kApplied;
          if (outcome.status == solver::Status::kFailed) {
            record.reason = "re-solve failed: " + outcome.message;
          }
          break;
        case RequestKind::kAdmit:
          record = decide_admit(pending, outcome, reverts);
          break;
        case RequestKind::kQuery:
          record.request = pending.request;
          record.outcome = Outcome::kReport;  // filled after the revert pass
          break;
      }
    }
    records.push_back(std::move(record));
  }

  if (!reverts.empty()) {
    const ctrl::BatchOutcome undo = controller_->apply_batch(reverts);
    ++report_.solves;
    controller_->metrics().add(m_solves_);
    wall += undo.wall_seconds;
  }

  // Queries read the settled plan (denials already reverted out).
  const double utility = controller_->utility();
  const stream::StreamNetwork& net = controller_->network();
  for (DecisionRecord& record : records) {
    if (record.outcome == Outcome::kReport) {
      // Same baseline-name resolution as decide_admit.
      const stream::StreamNetwork& baseline = controller_->baseline();
      std::string name = record.request.commodity();
      bool named = false;
      for (stream::CommodityId j = 0; j < baseline.commodity_count(); ++j) {
        if (baseline.commodity_name(j) == name) named = true;
      }
      if (!named) {
        name = baseline.commodity_name(
            static_cast<stream::CommodityId>(std::stoul(name)));
      }
      bool present = false;
      for (stream::CommodityId j = 0; j < net.commodity_count(); ++j) {
        if (net.commodity_name(j) != name) continue;
        record.requested = net.lambda(j);
        record.admitted = controller_->admitted()[j];
        present = true;
        break;
      }
      if (!present) record.reason = "absent";
      record.share =
          record.requested > 0.0 ? record.admitted / record.requested : 0.0;
    }
    record.batch = batch;
    record.decided_at = decided_at;
    record.utility = utility;
    record.wall_seconds = wall;
    finalize_record(std::move(record));
  }

  obs::MetricsRegistry& m = controller_->metrics();
  m.add(m_batches_);
  m.observe(m_batch_size_, static_cast<double>(pending_.size()));
  m.set(m_utility_, utility);
  if (options_.record_trace) {
    // Deterministic timestamps: virtual decision time in "ms", iteration
    // count as the span width — same convention as the churn spans.
    controller_->tracer().complete(
        "batch[" + std::to_string(pending_.size()) + "]", "serve",
        /*track=*/1, 1000.0 * static_cast<double>(decided_at),
        static_cast<double>(outcome.iterations == 0 ? 1 : outcome.iterations),
        {{"batch", static_cast<double>(batch)},
         {"utility", utility}});
  }

  ++report_.batches;
  report_.final_utility = utility;
  pending_.clear();
  batch_open_ = false;
}

void Daemon::finalize_record(DecisionRecord record) {
  obs::MetricsRegistry& m = controller_->metrics();
  m.add(m_requests_);
  const double virtual_latency =
      static_cast<double>(record.decided_at - record.request.time());
  virtual_latencies_.push_back(virtual_latency);
  wall_latencies_.push_back(record.wall_seconds);
  m.observe(m_virtual_latency_, virtual_latency);
  m.observe(m_wall_latency_us_, record.wall_seconds * 1e6);
  switch (record.outcome) {
    case Outcome::kAdmit: ++report_.admits; m.add(m_admits_); break;
    case Outcome::kDegrade: ++report_.degrades; m.add(m_degrades_); break;
    case Outcome::kDeny: ++report_.denies; m.add(m_denies_); break;
    case Outcome::kApplied: ++report_.applied; m.add(m_applied_); break;
    case Outcome::kRejected: ++report_.rejected; m.add(m_rejected_); break;
    case Outcome::kReport: ++report_.queries; m.add(m_queries_); break;
  }
  report_.decisions.push_back(std::move(record));
}

void Daemon::flush() {
  if (batch_open_) decide_batch(/*forced=*/true);
}

const ServeReport& Daemon::finish() {
  if (!finished_) {
    flush();
    // Trailing-batch contract (docs/SERVE.md §2): a batch left open at
    // end-of-stream has been force-flushed; nothing is ever dropped.
    ensure(!batch_open_ && pending_.empty(),
           "serve: finish left a batch open; trailing flush is mandatory");
    finished_ = true;
    // Wall seconds were recorded per decision; the total is per batch, so
    // sum one contribution per batch via the unique (batch, wall) pairs.
    double total = 0.0;
    std::size_t seen = static_cast<std::size_t>(-1);
    for (const DecisionRecord& record : report_.decisions) {
      if (record.batch != seen) {
        total += record.wall_seconds;
        seen = record.batch;
      }
    }
    report_.solve_wall_seconds = total;
    if (!virtual_latencies_.empty()) {
      report_.virtual_p50 = util::percentile(virtual_latencies_, 50.0);
      report_.virtual_p99 = util::percentile(virtual_latencies_, 99.0);
      report_.wall_p50 = util::percentile(wall_latencies_, 50.0);
      report_.wall_p99 = util::percentile(wall_latencies_, 99.0);
    }
    report_.final_utility = controller_->utility();
  }
  return report_;
}

const ServeReport& Daemon::run(const Script& script) {
  for (const Request& request : script.requests) submit(request);
  return finish();
}

void Daemon::export_snapshot(std::ostream& out) const {
  ensure(!batch_open_ && pending_.empty(),
         "serve snapshot: export requires a settled daemon (no open batch)");
  out << "maxutil-serve-daemon 1\n";
  out << report_.batches << " " << report_.solves << " " << last_time_ << "\n";
  out << report_.admits << " " << report_.degrades << " " << report_.denies
      << " " << report_.applied << " " << report_.rejected << " "
      << report_.queries << " " << report_.forced_flushes << " "
      << report_.overload_denied << "\n";
  out << hex_double(report_.initial_utility) << "\n";
  controller_->export_state(out);
  out << "end-serve\n";
}

void Daemon::import_snapshot(std::istream& in) {
  ensure(report_.decisions.empty() && pending_.empty() && !batch_open_ &&
             !finished_,
         "serve snapshot: import requires a freshly constructed daemon");
  std::string magic;
  std::size_t version = 0;
  in >> magic >> version;
  ensure(magic == "maxutil-serve-daemon" && version == 1,
         "serve snapshot: bad header '" + magic + "'");
  const std::size_t batches = snap_read_size(in);
  const std::size_t solves = snap_read_size(in);
  const std::size_t last_time = snap_read_size(in);
  const std::size_t admits = snap_read_size(in);
  const std::size_t degrades = snap_read_size(in);
  const std::size_t denies = snap_read_size(in);
  const std::size_t applied = snap_read_size(in);
  const std::size_t rejected = snap_read_size(in);
  const std::size_t queries = snap_read_size(in);
  const std::size_t forced = snap_read_size(in);
  const std::size_t overloaded = snap_read_size(in);
  const double initial_utility = snap_read_double(in);
  controller_->import_state(in);
  std::string trailer;
  in >> trailer;
  ensure(trailer == "end-serve", "serve snapshot: missing end-serve trailer");

  report_.batches = batches;
  report_.solves = solves;
  report_.admits = admits;
  report_.degrades = degrades;
  report_.denies = denies;
  report_.applied = applied;
  report_.rejected = rejected;
  report_.queries = queries;
  report_.forced_flushes = forced;
  report_.overload_denied = overloaded;
  report_.initial_utility = initial_utility;
  report_.final_utility = controller_->utility();
  last_time_ = last_time;
  restored_ = true;
  controller_->metrics().set(m_utility_, report_.final_utility);
}

}  // namespace maxutil::serve
