file(REMOVE_RECURSE
  "libmaxutil_core.a"
)
