// Registry adapter for the Frank-Wolfe cross-check
// (xform::solve_reference_frank_wolfe): maximizes the true concave utility
// over the same flow polytope with exact line search — no PWL
// discretization — and certifies its distance to the optimum via the final
// duality gap (SolveResult metric "duality_gap").

#include <cstdio>
#include <string>
#include <utility>

#include "solver/adapters.hpp"
#include "solver/registry.hpp"
#include "xform/lp_reference.hpp"

namespace maxutil::solver {

namespace {

SolveResult solve_frank_wolfe(const Problem& problem,
                              const SolveOptions& options) {
  const auto reference = xform::solve_reference_frank_wolfe(
      problem.extended(),
      options.max_iterations != 0 ? options.max_iterations : 5000);

  SolveResult result;
  result.iterations = reference.iterations;
  if (reference.status != lp::LpStatus::kOptimal) {
    result.status = reference.status == lp::LpStatus::kInfeasible
                        ? Status::kInfeasible
                        : Status::kFailed;
    result.message = std::string("Frank-Wolfe solve failed: ") +
                     lp::to_string(reference.status);
    return result;
  }
  result.status = Status::kConverged;
  result.admitted = reference.admitted;
  result.utility = reference.utility;
  result.metrics = {{"duality_gap", reference.duality_gap}};
  char line[64];
  std::snprintf(line, sizeof(line), "duality gap: %.3g",
                reference.duality_gap);
  result.notes.push_back(line);
  return result;
}

}  // namespace

void register_frank_wolfe_solver(SolverRegistry& registry) {
  SolverInfo info;
  info.name = "fw";
  info.description =
      "Frank-Wolfe cross-check: exact line search over the flow polytope, "
      "duality-gap certificate, no PWL discretization";
  info.default_iterations = 5000;
  info.solve = solve_frank_wolfe;
  registry.add(std::move(info));
}

}  // namespace maxutil::solver
