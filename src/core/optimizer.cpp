#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxutil::core {

using maxutil::util::ensure;

namespace {

/// True when `flows` stays strictly inside the guarded capacity region.
bool within_guard(const xform::ExtendedGraph& xg, const FlowState& flows,
                  double guard) {
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    if (!xg.has_finite_capacity(v)) continue;
    if (flows.f_node[v] >= guard * xg.capacity(v)) return false;
  }
  return true;
}

/// True when utility/cost and every node's routed mass are finite. The
/// barrier keeps feasible states finite (within_guard implies z < C), so a
/// non-finite value here is genuine divergence — e.g. an unbounded utility
/// evaluating to inf - inf — not a barrier touch.
bool finite_flows(const FlowState& flows) {
  if (!std::isfinite(flows.cost())) return false;
  for (const double f : flows.f_node) {
    if (!std::isfinite(f)) return false;
  }
  return true;
}

}  // namespace

GradientOptimizer::GradientOptimizer(const xform::ExtendedGraph& xg,
                                     GradientOptions options)
    : GradientOptimizer(xg, options, RoutingState::initial(xg)) {}

GradientOptimizer::GradientOptimizer(const xform::ExtendedGraph& xg,
                                     GradientOptions options,
                                     RoutingState initial_routing)
    : xg_(&xg),
      options_(options),
      routing_(std::move(initial_routing)),
      flows_(compute_flows(xg, routing_)),
      history_({"iteration", "utility", "cost", "utility_loss", "penalty",
                "max_phi_delta", "damping_rounds"}) {
  working_eta_ = options_.eta;
  ensure(options_.eta > 0.0, "GradientOptimizer: eta must be positive");
  ensure(options_.capacity_guard > 0.0 && options_.capacity_guard <= 1.0,
         "GradientOptimizer: capacity_guard outside (0, 1]");
  ensure(routing_.is_valid(xg, 1e-6),
         "GradientOptimizer: initial routing violates invariants");
  ensure(within_guard(xg, flows_, options_.capacity_guard),
         "GradientOptimizer: initial state violates capacity guard");
  if (options_.record_history) record(0.0, 0);
}

void GradientOptimizer::refresh_flows() {
  flows_ = compute_flows(*xg_, routing_);
  // Emergency response to a demand surge: admission is proportional to
  // lambda (a = lambda * phi_input), so raising lambda can make the current
  // routing infeasible on the spot. Blend toward the all-rejected initial
  // state (cutting admission) until strictly inside the guard again; the
  // gradient then re-grows admission to the new optimum.
  if (within_guard(*xg_, flows_, options_.capacity_guard)) return;
  const RoutingState fallback = RoutingState::initial(*xg_);
  for (std::size_t round = 0; round < options_.max_damping_rounds; ++round) {
    routing_.blend_toward(fallback, 0.5);
    flows_ = compute_flows(*xg_, routing_);
    if (within_guard(*xg_, flows_, options_.capacity_guard)) return;
  }
  routing_ = fallback;
  flows_ = compute_flows(*xg_, routing_);
}

double GradientOptimizer::step() {
  if (diverged_) return 0.0;
  if (!finite_flows(flows_)) {
    // The current state is already non-finite (a warm start or the very
    // first flow computation produced inf - inf): refuse to iterate on NaNs.
    diverged_ = true;
    divergence_iteration_ = iterations_;
    return 0.0;
  }
  const MarginalCosts marginals = compute_marginals(*xg_, routing_, flows_);

  GammaOptions gamma_options;
  gamma_options.eta = working_eta_;
  gamma_options.traffic_floor = options_.traffic_floor;
  gamma_options.step_mode = options_.curvature_scaled
                                ? StepMode::kCurvatureScaled
                                : StepMode::kEtaOverTraffic;

  RoutingState target = routing_;
  apply_gamma(*xg_, flows_, marginals, gamma_options, target);

  // Forecast protocol + safeguard: accept the full step when its predicted
  // flows respect the guard *and* the transformed cost does not increase;
  // otherwise damp geometrically toward the current (feasible) routing.
  // Gamma's target is a descent direction (Gallager's lemma), so a small
  // enough blend always improves the cost — the monotonicity requirement
  // prevents the fixed-eta update from oscillating against the barrier's
  // exploding curvature near capacity (see DESIGN.md).
  const double current_cost = flows_.cost();
  RoutingState candidate = target;
  FlowState candidate_flows = compute_flows(*xg_, candidate);
  std::size_t damping = 0;
  double alpha = 1.0;
  // A non-finite candidate is damped like a guard violation (NaN compares
  // false everywhere, so without this clause it would slip through and
  // commit); if damping never recovers a finite step, the iteration is
  // rejected below like any other failed step.
  while (!finite_flows(candidate_flows) ||
         !within_guard(*xg_, candidate_flows, options_.capacity_guard) ||
         (options_.enforce_cost_decrease &&
          candidate_flows.cost() > current_cost + 1e-12)) {
    if (++damping > options_.max_damping_rounds) {
      // Reject the step entirely; the iteration becomes a no-op.
      if (options_.adaptive_eta) {
        working_eta_ = std::max(working_eta_ * 0.5, 1e-6);
        clean_steps_ = 0;
      }
      if (options_.record_history) record(0.0, damping);
      ++iterations_;
      return 0.0;
    }
    alpha *= 0.5;
    candidate = routing_;
    candidate.blend_toward(target, alpha);
    candidate_flows = compute_flows(*xg_, candidate);
  }

  const double max_delta = routing_.max_difference(candidate);
  routing_ = std::move(candidate);
  flows_ = std::move(candidate_flows);
  ++iterations_;
  if (options_.adaptive_eta) {
    if (damping > 0) {
      working_eta_ = std::max(working_eta_ * 0.5, 1e-6);
      clean_steps_ = 0;
    } else if (++clean_steps_ >= options_.adaptive_patience) {
      working_eta_ =
          std::min(working_eta_ * options_.adaptive_growth,
                   options_.adaptive_eta_max);
      clean_steps_ = 0;
    }
  }
  if (options_.record_history) record(max_delta, damping);
  return max_delta;
}

std::size_t GradientOptimizer::run() {
  std::size_t steps = 0;
  while (steps < options_.max_iterations) {
    const double delta = step();
    if (diverged_) break;
    ++steps;
    if (options_.convergence_tol > 0.0 && delta < options_.convergence_tol) {
      break;
    }
  }
  return steps;
}

double GradientOptimizer::utility() const {
  return total_utility(*xg_, flows_);
}

std::vector<double> GradientOptimizer::admitted() const {
  std::vector<double> out(xg_->commodity_count());
  for (CommodityId j = 0; j < out.size(); ++j) {
    out[j] = admitted_rate(*xg_, flows_, j);
  }
  return out;
}

OptimalityReport GradientOptimizer::optimality() const {
  const MarginalCosts marginals = compute_marginals(*xg_, routing_, flows_);
  return check_optimality(*xg_, routing_, flows_, marginals);
}

PhysicalAllocation GradientOptimizer::allocation() const {
  return map_to_physical(*xg_, flows_);
}

void GradientOptimizer::record(double max_delta, std::size_t damping_rounds) {
  history_.append({static_cast<double>(iterations_), utility(), flows_.cost(),
                   flows_.utility_loss, flows_.penalty, max_delta,
                   static_cast<double>(damping_rounds)});
}

}  // namespace maxutil::core
