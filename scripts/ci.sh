#!/usr/bin/env bash
# CI entry point. Phase 1: default-preset build + the full ctest suite
# (unit + integration + cli_smoke + docs_lint). Phase 2: ThreadSanitizer
# pass over the two concurrency-sensitive binaries — the parallel runtime
# tests and the fault-injection tests (faulted runs exercise the
# deterministic merge path under threads). Phase 3: AddressSanitizer pass
# over the observability suites (metric shards + trace buffers are raw slot
# arrays; ASan guards the indexing). Phase 4: the CLI's --trace export must
# be valid JSON — checked with python's strict parser when available.
# Sanitizers exit non-zero on any report, which set -e turns into a CI
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default
cmake --build --preset default -j"${jobs}"
ctest --preset default

cmake --preset tsan
cmake --build --preset tsan -j"${jobs}" \
  --target runtime_parallel_test fault_test
./build-tsan/tests/runtime_parallel_test
./build-tsan/tests/fault_test

cmake --preset asan
cmake --build --preset asan -j"${jobs}" --target obs_test property_test
./build-asan/tests/obs_test
./build-asan/tests/property_test

if command -v python3 >/dev/null 2>&1; then
  trace_file=$(mktemp /tmp/maxutil_trace.XXXXXX.json)
  ./build/tools/maxutil_cli solve examples/scenarios/fair_share.maxutil \
    --algo distributed --iters 20 --trace "${trace_file}" >/dev/null
  python3 -m json.tool "${trace_file}" >/dev/null
  rm -f "${trace_file}"
  echo "ci.sh: --trace export parses as strict JSON"
else
  echo "ci.sh: python3 not found; skipping --trace JSON check"
fi

echo "ci.sh: all checks passed"
