#!/usr/bin/env bash
# CI entry point. Phase 1: default-preset build + the full ctest suite
# (unit + integration + cli_smoke + docs_lint). Phase 2: ThreadSanitizer
# pass over the two concurrency-sensitive binaries — the parallel runtime
# tests and the fault-injection tests (faulted runs exercise the
# deterministic merge path under threads). TSan exits non-zero on any
# report, which set -e turns into a CI failure.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default
cmake --build --preset default -j"${jobs}"
ctest --preset default

cmake --preset tsan
cmake --build --preset tsan -j"${jobs}" \
  --target runtime_parallel_test fault_test
./build-tsan/tests/runtime_parallel_test
./build-tsan/tests/fault_test

echo "ci.sh: all checks passed"
