#pragma once

#include <cstddef>
#include <functional>

#include "util/rng.hpp"

namespace maxutil::gen {

/// A demand trace lambda(t): the offered rate of a stream over (discrete)
/// time, for the dynamic-workload experiments. The paper's introduction
/// motivates exactly this regime — "data rates can be bursty and
/// unpredictable, which can create a load that exceeds the system capacity
/// during times of stress" — and the dummy-node admission controller is the
/// mechanism that absorbs it.
///
/// Traces are strictly positive (values are clamped to a small floor, since
/// the model requires lambda > 0).
class DemandTrace {
 public:
  /// Constant offered rate.
  static DemandTrace constant(double level);

  /// Steps from `before` to `after` at time `at`.
  static DemandTrace step(double before, double after, std::size_t at);

  /// Bursty on/off (telecom-style): `high` for the first `duty` ticks of
  /// every `period`, `low` for the rest.
  static DemandTrace on_off(double high, double low, std::size_t period,
                            std::size_t duty);

  /// Smooth diurnal-style variation: base + amplitude * sin(2 pi t / period).
  static DemandTrace sine(double base, double amplitude, std::size_t period);

  /// Multiplicative random-walk burstiness around `base`: each tick the
  /// level is multiplied by exp(sigma * N(0,1)) and pulled back toward base
  /// (mean-reverting). Deterministic for a given seed.
  static DemandTrace random_walk(double base, double sigma, std::uint64_t seed);

  /// Offered rate at tick t (always >= the positivity floor).
  double at(std::size_t t) const;

 private:
  explicit DemandTrace(std::function<double(std::size_t)> fn);
  std::function<double(std::size_t)> fn_;
};

}  // namespace maxutil::gen
