// E9 — micro-benchmarks of the core primitives (google-benchmark): cost of
// one flow-balance solve, one marginal-cost sweep, one Gamma update, one
// full optimizer step, the extended-graph construction, the LP reference
// solve, and one back-pressure round, on Section-6-sized instances.

#include <benchmark/benchmark.h>

#include "bp/backpressure.hpp"
#include "common.hpp"
#include "core/flow.hpp"
#include "core/gamma.hpp"
#include "core/marginals.hpp"
#include "core/optimizer.hpp"
#include "sim/distributed_gradient.hpp"
#include "util/artifacts.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using namespace maxutil;

const stream::StreamNetwork& shared_net() {
  static const stream::StreamNetwork net = bench::paper_instance();
  return net;
}

const xform::ExtendedGraph& shared_xg() {
  static const xform::ExtendedGraph xg(shared_net());
  return xg;
}

/// A routing state some way into the optimization (more representative than
/// the all-rejected initial state).
const core::RoutingState& warm_routing() {
  static const core::RoutingState routing = [] {
    core::GradientOptions options;
    options.eta = 0.04;
    options.max_iterations = 200;
    options.record_history = false;
    core::GradientOptimizer opt(shared_xg());
    opt.run();
    return opt.routing();
  }();
  return routing;
}

void BM_ExtendedGraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    xform::ExtendedGraph xg(shared_net());
    benchmark::DoNotOptimize(xg.edge_count());
  }
}
BENCHMARK(BM_ExtendedGraphBuild);

void BM_ComputeFlows(benchmark::State& state) {
  const auto& xg = shared_xg();
  const auto& routing = warm_routing();
  for (auto _ : state) {
    const auto flows = core::compute_flows(xg, routing);
    benchmark::DoNotOptimize(flows.f_node.data());
  }
}
BENCHMARK(BM_ComputeFlows);

void BM_MarginalSweep(benchmark::State& state) {
  const auto& xg = shared_xg();
  const auto& routing = warm_routing();
  const auto flows = core::compute_flows(xg, routing);
  for (auto _ : state) {
    const auto marginals = core::compute_marginals(xg, routing, flows);
    benchmark::DoNotOptimize(marginals.d_cost_d_input.data());
  }
}
BENCHMARK(BM_MarginalSweep);

void BM_GammaUpdate(benchmark::State& state) {
  const auto& xg = shared_xg();
  const auto flows = core::compute_flows(xg, warm_routing());
  const auto marginals = core::compute_marginals(xg, warm_routing(), flows);
  for (auto _ : state) {
    core::RoutingState routing = warm_routing();
    core::apply_gamma(xg, flows, marginals, {}, routing);
    benchmark::DoNotOptimize(routing.phi(0, 0));
  }
}
BENCHMARK(BM_GammaUpdate);

void BM_OptimizerStep(benchmark::State& state) {
  const auto& xg = shared_xg();
  core::GradientOptions options;
  options.record_history = false;
  options.max_iterations = static_cast<std::size_t>(-1);
  core::GradientOptimizer opt(xg, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OptimizerStep);

void BM_BackPressureRound(benchmark::State& state) {
  const auto& xg = shared_xg();
  bp::BackPressureOptions options;
  options.record_history = false;
  bp::BackPressureOptimizer opt(xg, options);
  for (auto _ : state) {
    opt.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BackPressureRound);

/// One distributed-gradient iteration (two message waves) with the
/// observability layer compiled in but switched off — the baseline for the
/// "<2% overhead when disabled" budget of docs/OBSERVABILITY.md. The arg is
/// the runtime thread count (1 = serial sweep, >1 = shard-partitioned).
void BM_DistributedIterate(benchmark::State& state) {
  const auto& xg = shared_xg();
  sim::RuntimeOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  sim::DistributedGradientSystem system(xg, {}, options);
  for (auto _ : state) {
    system.iterate();
    benchmark::DoNotOptimize(system.utility());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DistributedIterate)->Arg(1)->Arg(2)->Arg(4);

/// Same iteration with RuntimeOptions::observe on: full metric counters,
/// per-round spans, and wave latency histograms — staged in per-thread
/// rings, drained at the serial merge point. Compare against the matching
/// BM_DistributedIterate arg for the observe-on cost at each thread count.
void BM_DistributedIterateObserved(benchmark::State& state) {
  const auto& xg = shared_xg();
  sim::RuntimeOptions options;
  options.observe = true;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  sim::DistributedGradientSystem system(xg, {}, options);
  for (auto _ : state) {
    system.iterate();
    benchmark::DoNotOptimize(system.utility());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DistributedIterateObserved)->Arg(1)->Arg(2)->Arg(4);

void BM_LpReferenceSolve(benchmark::State& state) {
  const auto& xg = shared_xg();
  for (auto _ : state) {
    const auto reference = xform::solve_reference(xg);
    benchmark::DoNotOptimize(reference.optimal_utility);
  }
}
BENCHMARK(BM_LpReferenceSolve)->Unit(benchmark::kMillisecond);

/// Console reporter that additionally captures every run for the
/// machine-readable BENCH_micro.json perf artifact.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double iters = static_cast<double>(run.iterations);
      records_.push_back(
          {run.benchmark_name(),
           {{"real_time_sec", run.real_accumulated_time / iters},
            {"cpu_time_sec", run.cpu_accumulated_time / iters},
            {"iterations", iters}}});
    }
  }

  const std::vector<maxutil::util::BenchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<maxutil::util::BenchRecord> records_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = maxutil::util::write_bench_json(
      "micro", reporter.records(),
      {{"unit", "seconds per iteration"},
       {"instance", "Section-6 paper instance, seed 2007"}});
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
