// Dynamic demand: the paper's introduction motivates bursty, unpredictable
// stream rates ("a load that exceeds the system capacity during times of
// stress"). Here one feed of a shared pipeline follows an on/off burst trace
// while the gradient optimizer keeps running: admission control sheds the
// excess during bursts, re-admits instantly when the burst ends, and no
// capacity is ever violated.

#include <cstdio>
#include <iostream>

#include "core/optimizer.hpp"
#include "gen/trace.hpp"
#include "stream/model.hpp"
#include "stream/validate.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"

int main() {
  using namespace maxutil;

  // Two feeds share one relay of capacity 30.
  stream::StreamNetwork net;
  const auto a1 = net.add_server("cam-ingest", 100.0);
  const auto a2 = net.add_server("log-ingest", 100.0);
  const auto relay = net.add_server("relay", 30.0);
  const auto t1 = net.add_sink("ops");
  const auto t2 = net.add_sink("archive");
  const auto l1 = net.add_link(a1, relay, 200.0);
  const auto l2 = net.add_link(a2, relay, 200.0);
  const auto l3 = net.add_link(relay, t1, 200.0);
  const auto l4 = net.add_link(relay, t2, 200.0);
  const auto cam =
      net.add_commodity("camera", a1, t1, 10.0, stream::Utility::linear(2.0));
  const auto logs =
      net.add_commodity("logs", a2, t2, 25.0, stream::Utility::linear(1.0));
  net.enable_link(cam, l1, 1.0);
  net.enable_link(cam, l3, 1.0);
  net.enable_link(logs, l2, 1.0);
  net.enable_link(logs, l4, 1.0);
  stream::validate_or_throw(net);

  xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const xform::ExtendedGraph xg(net, penalty);
  core::GradientOptions options;
  options.eta = 0.2;
  options.adaptive_eta = true;
  options.record_history = false;
  options.max_iterations = static_cast<std::size_t>(-1);
  core::GradientOptimizer opt(xg, options);

  // The camera feed bursts: 10 units/s normally, 60 during incidents.
  const auto trace = gen::DemandTrace::on_off(60.0, 10.0, 8, 2);

  std::printf("dynamic demand: camera (weight 2) bursts 10 -> 60 every 8"
              " epochs; logs (weight 1) offer a steady 25; relay fits 30.\n\n");
  util::Table table({"epoch", "camera offered", "camera admitted",
                     "logs admitted", "relay load / 30"});
  for (std::size_t epoch = 0; epoch < 16; ++epoch) {
    net.set_lambda(cam, trace.at(epoch));
    opt.refresh_flows();
    for (int i = 0; i < 400; ++i) opt.step();
    const auto alloc = opt.allocation();
    table.add_row({util::Table::cell(static_cast<long long>(epoch)),
                   util::Table::cell(trace.at(epoch), 1),
                   util::Table::cell(alloc.admitted[cam]),
                   util::Table::cell(alloc.admitted[logs]),
                   util::Table::cell(alloc.server_usage[relay])});
  }
  table.print(std::cout);

  std::printf("\nDuring bursts the weighted-utility optimum gives the relay"
              " to the camera feed (weight 2) and sheds logs; between bursts"
              " the logs re-fill the freed capacity. The emergency admission"
              " cut in refresh_flows() keeps the relay under its capacity at"
              " the instant a burst arrives.\n");
  return 0;
}
