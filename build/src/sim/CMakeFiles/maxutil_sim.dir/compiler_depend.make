# Empty compiler generated dependencies file for maxutil_sim.
# This may be replaced when dependencies are built.
