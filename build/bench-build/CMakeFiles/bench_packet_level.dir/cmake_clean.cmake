file(REMOVE_RECURSE
  "../bench/bench_packet_level"
  "../bench/bench_packet_level.pdb"
  "CMakeFiles/bench_packet_level.dir/bench_packet_level.cpp.o"
  "CMakeFiles/bench_packet_level.dir/bench_packet_level.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
