#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace maxutil::la {

/// One column of a sparse square matrix: (row, value) entries, any order,
/// no duplicates. The canonical input shape for SparseLu.
struct SparseColumnView {
  std::span<const std::uint32_t> rows;
  std::span<const double> values;
};

/// Sparse LU factorization with partial pivoting of a square matrix given
/// column-wise: P A Q = L U, where Q is a fill-reducing column pre-order
/// (ascending nonzero count, ties by column position — deterministic in the
/// input alone) and P comes from threshold-free partial pivoting.
///
/// Built for revised-simplex basis matrices: network-flow bases are close to
/// triangular, so the singleton-first column order keeps fill-in near zero
/// and factorization O(nnz)-ish. The left-looking (Gilbert–Peierls) kernel
/// computes each L/U column with a depth-first reach over the pattern, so
/// cost is proportional to arithmetic work, not to n.
///
/// Unlike la::LuFactorization this does not throw on singularity:
/// `singular()` reports it, because a simplex caller wants to repair the
/// basis, not unwind.
class SparseLu {
 public:
  /// Factorizes the n x n matrix whose j-th column is `columns[j]`.
  /// `pivot_tolerance` is the absolute magnitude below which a pivot is
  /// declared numerically zero (and the matrix singular).
  SparseLu(std::size_t n, const std::vector<SparseColumnView>& columns,
           double pivot_tolerance = 1e-11);

  bool singular() const { return singular_; }
  std::size_t size() const { return n_; }

  /// Stored non-zeros of L + U (diagnostics / refactorization heuristics).
  std::size_t fill() const { return l_rows_.size() + u_rows_.size(); }

  /// Solves A x = b in place (b.size() == n). Requires !singular().
  void solve_in_place(std::vector<double>& b) const;

  /// Solves A^T x = b in place (b.size() == n). Requires !singular().
  void solve_transposed_in_place(std::vector<double>& b) const;

 private:
  std::size_t n_ = 0;
  bool singular_ = false;

  // L (unit diagonal implicit) and U in pivot coordinates, column-wise:
  // column k of L holds entries with row > k, column k of U holds entries
  // with row < k plus the diagonal in u_diag_[k].
  std::vector<std::size_t> l_starts_;  // n+1
  std::vector<std::uint32_t> l_rows_;
  std::vector<double> l_values_;
  std::vector<std::size_t> u_starts_;  // n+1
  std::vector<std::uint32_t> u_rows_;
  std::vector<double> u_values_;
  std::vector<double> u_diag_;

  // Row permutation: perm_row_[k] = original row pivoted at position k.
  // Column pre-order: perm_col_[k] = original column factored at position k.
  std::vector<std::uint32_t> perm_row_;
  std::vector<std::uint32_t> perm_col_;
};

}  // namespace maxutil::la
