#pragma once

#include <cstddef>
#include <vector>

#include "util/timeseries.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::bp {

using maxutil::graph::EdgeId;
using maxutil::graph::NodeId;
using maxutil::stream::CommodityId;

/// Tuning of the back-pressure baseline.
struct BackPressureOptions {
  /// Dummy-source buffer cap Q: offered load beyond it is dropped
  /// (admission control by overflow, as in Awerbuch-Leighton). Larger Q
  /// approaches the optimum more closely but converges more slowly — this
  /// is the knob behind the ~10^5-iteration convergence the paper reports.
  double buffer_cap_multiplier = 8.0;  // Q = multiplier * lambda_j

  /// Fraction of the locally potential-optimal transfer executed per round.
  double step_scale = 1.0;

  /// Record a history row every `history_stride` iterations (row 0 always).
  std::size_t history_stride = 1;
  bool record_history = true;
};

/// The back-pressure baseline of Section 6 — a reconstruction of the
/// potential-function local-control algorithm of Broberg-Liu-Xia-Zhang
/// (SIGMETRICS'06, reference [6]), in the Awerbuch-Leighton tradition.
///
/// Each node keeps a buffer per commodity and, once per iteration, exchanges
/// buffer levels with its neighbors only (the O(1) message cost the paper
/// contrasts with the gradient algorithm's O(L) marginal-cost wave). It then
/// allocates its per-round resource budget greedily across (commodity,
/// out-edge) pairs in order of potential decrease per resource unit, where
/// the potential is sum q^2/2 and the pressure of a pair is
/// q_v - beta * q_head (shrinkage-aware). Admission control arises from
/// overflow at the capped dummy-source buffer; the dummy difference link is
/// never a transfer route (dropping *is* taking the difference link).
///
/// Reconstruction notes (documented in DESIGN.md): reference [6] targets
/// linear utilities with known input rates; utility weights enter only the
/// greedy ordering. The baseline is therefore run on the paper's own
/// linear-utility ("total throughput") experiments.
class BackPressureOptimizer {
 public:
  explicit BackPressureOptimizer(const xform::ExtendedGraph& xg,
                                 BackPressureOptions options = {});

  /// One synchronous round: inject lambda at dummies, transfer against the
  /// previous round's neighbor buffer levels, drain sinks, drop overflow.
  void step();

  /// Runs `iterations` rounds.
  void run(std::size_t iterations);

  std::size_t iterations() const { return iterations_; }

  /// Effective admitted rate per commodity: cumulative flow delivered at the
  /// sink, converted to source units via the delivery gain, divided by the
  /// number of rounds — what a long-run "stable algorithm delivers".
  std::vector<double> admitted_rates() const;

  /// Overall utility sum_j U_j(admitted_rate_j) of the long-run rates.
  double utility() const;

  /// Current buffer content q of commodity j at extended node v.
  double buffer(CommodityId j, NodeId v) const;

  /// Largest per-round resource overuse observed so far (0 = all budgets
  /// respected; tested invariant).
  double max_budget_violation() const { return max_budget_violation_; }

  /// Trace: iteration, utility, plus admitted rate per commodity.
  const util::TimeSeries& history() const { return history_; }

 private:
  double pressure_score(CommodityId j, EdgeId e,
                        const std::vector<std::vector<double>>& snapshot,
                        double q_local) const;

  const xform::ExtendedGraph* xg_;
  BackPressureOptions options_;
  std::vector<std::vector<double>> buffers_;    // [commodity][node]
  std::vector<double> delivered_;               // [commodity], sink units
  std::vector<double> dropped_;                 // [commodity], source units
  std::size_t iterations_ = 0;
  double max_budget_violation_ = 0.0;
  util::TimeSeries history_;
};

}  // namespace maxutil::bp
