// E19 — LP backend scaling ladder: the dense two-phase tableau (lp::solve)
// vs the sparse revised simplex (lp::solve_revised) on the max-throughput
// flow-polytope LP of growing gen::random_instance networks, topping out at
// ~50k servers / ~5k commodities. Per rung the polytope is built once
// (build time excluded from solve timings) and each backend is timed on the
// identical LpProblem; where both run, statuses must agree and objectives
// match within 1e-6 * (1 + |obj|).
//
// The dense backend is gated twice: a projected-tableau memory cap (its
// standard-form tableau is (rows+1) x (cols + 2*rows + 1) doubles — ~200 GB
// at the top rung) and a wall-clock budget carried from the previous rung.
// Gated rungs are recorded with "dense_skipped": true; the crossover where
// the dense solver drops out while the sparse one keeps completing rungs IS
// the result, visible in BENCH_lp_scaling.json.
//
// `--smoke` runs the small rungs only (CI leg in scripts/ci.sh): full
// differential parity, no large-instance wall-clock.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "gen/random_instance.hpp"
#include "lp/model.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "util/artifacts.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using namespace maxutil;

struct Rung {
  std::size_t servers;
  std::size_t commodities;
  std::size_t stages;
  std::size_t min_width;
  std::size_t max_width;
};

/// The max-throughput LP of one rung's random network (linear utilities,
/// weight 1: the paper's Section-6 objective).
lp::LpProblem rung_lp(const Rung& rung, std::size_t* nnz) {
  gen::RandomInstanceParams params;
  params.servers = rung.servers;
  params.commodities = rung.commodities;
  params.stages = rung.stages;
  params.min_width = rung.min_width;
  params.max_width = rung.max_width;
  util::Rng rng(2007);
  const auto net = gen::random_instance(params, rng);
  const xform::ExtendedGraph xg(net);
  xform::FlowPolytope polytope = xform::build_flow_polytope(xg);
  polytope.problem.set_sense(lp::Sense::kMaximize);
  for (std::size_t j = 0; j < net.commodity_count(); ++j) {
    polytope.problem.set_objective_coefficient(polytope.admitted_var[j], 1.0);
  }
  *nnz = 0;
  for (std::size_t i = 0; i < polytope.problem.constraint_count(); ++i) {
    *nnz += polytope.problem.row(i).terms.size();
  }
  return std::move(polytope.problem);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("=== E19: LP backend scaling ladder%s ===\n",
              smoke ? " (smoke)" : "");
  std::printf("dense tableau vs sparse revised simplex on flow-polytope LPs\n\n");

  // Interior widths shrink as the ladder climbs: scale comes from server
  // and commodity count (more, sparser, commodities), which is exactly the
  // regime where a dense tableau dies and a sparse basis stays almost
  // fill-free.
  const std::vector<Rung> rungs =
      smoke ? std::vector<Rung>{{40, 3, 3, 1, 3}, {120, 8, 3, 1, 3}}
            : std::vector<Rung>{{40, 3, 3, 1, 3},
                                {120, 8, 3, 1, 3},
                                {400, 16, 3, 1, 3},
                                {1200, 64, 3, 1, 2},
                                {4000, 400, 2, 1, 2},
                                {12000, 1200, 2, 1, 2},
                                {50000, 5000, 2, 1, 2}};

  // Dense gates: skip when the projected tableau exceeds the memory cap or
  // the previous dense solve blew the wall-clock budget (it only gets
  // slower further up the ladder).
  const double kDenseMemoryCapBytes = smoke ? 1e9 : 2e9;
  const double kDenseTimeBudgetSeconds = 30.0;

  std::vector<util::BenchRecord> records;
  util::Table table({"servers", "commodities", "rows", "cols", "nnz",
                     "dense s", "sparse s", "speedup", "parity"});

  bool all_sparse_optimal = true;
  bool parity = true;
  double top_rung_build_fraction = 0.0;
  bool dense_over_budget = false;
  std::size_t dense_completed = 0;
  std::size_t dense_skipped = 0;
  double top_rung_sparse_seconds = 0.0;
  bool top_rung_dense_skipped = false;

  for (const Rung& rung : rungs) {
    std::size_t nnz = 0;
    const auto build_start = std::chrono::steady_clock::now();
    const lp::LpProblem problem = rung_lp(rung, &nnz);
    const double build_seconds = seconds_since(build_start);
    const std::size_t rows = problem.constraint_count();
    const std::size_t cols = problem.variable_count();

    // --- Sparse backend: every rung. ---
    const auto sparse_start = std::chrono::steady_clock::now();
    const auto sparse = lp::solve_revised(problem);
    const double sparse_seconds = seconds_since(sparse_start);
    all_sparse_optimal =
        all_sparse_optimal && sparse.status == lp::LpStatus::kOptimal;

    // Polytope assembly must stay a small fraction of the end-to-end rung:
    // the CommodityIndex-backed builder is O(nnz), so if assembly ever rivals
    // the solve again, a full-scan regression crept back in. The shape check
    // reads the ladder's top rung only — that is where an asymptotic
    // regression shows, and the millisecond rungs below are timing noise.
    const double build_fraction =
        build_seconds / (build_seconds + sparse_seconds);
    top_rung_build_fraction = build_fraction;

    // --- Dense backend: gated by memory and carried time budget. ---
    const double tableau_bytes = 8.0 * static_cast<double>(rows + 1) *
                                 (static_cast<double>(cols) +
                                  2.0 * static_cast<double>(rows) + 1.0);
    const bool skip_dense =
        tableau_bytes > kDenseMemoryCapBytes || dense_over_budget;
    double dense_seconds = 0.0;
    bool rung_parity = true;
    if (!skip_dense) {
      const auto dense_start = std::chrono::steady_clock::now();
      const auto dense = lp::solve(problem);
      dense_seconds = seconds_since(dense_start);
      dense_over_budget = dense_seconds > kDenseTimeBudgetSeconds;
      ++dense_completed;
      rung_parity = dense.status == sparse.status &&
                    (dense.status != lp::LpStatus::kOptimal ||
                     std::abs(dense.objective - sparse.objective) <=
                         1e-6 * (1.0 + std::abs(dense.objective)));
      parity = parity && rung_parity;
    } else {
      ++dense_skipped;
    }
    if (&rung == &rungs.back()) {
      top_rung_sparse_seconds = sparse_seconds;
      top_rung_dense_skipped = skip_dense;
    }

    table.add_row(
        {util::Table::cell(static_cast<long long>(rung.servers)),
         util::Table::cell(static_cast<long long>(rung.commodities)),
         util::Table::cell(static_cast<long long>(rows)),
         util::Table::cell(static_cast<long long>(cols)),
         util::Table::cell(static_cast<long long>(nnz)),
         skip_dense ? "skipped" : util::Table::cell(dense_seconds, 3),
         util::Table::cell(sparse_seconds, 3),
         skip_dense ? "-"
                    : util::Table::cell(dense_seconds / sparse_seconds, 1) +
                          "x",
         skip_dense ? "-" : (rung_parity ? "ok" : "FAIL")});

    util::BenchRecord record{
        "servers=" + std::to_string(rung.servers),
        {{"servers", static_cast<double>(rung.servers)},
         {"commodities", static_cast<double>(rung.commodities)},
         {"rows", static_cast<double>(rows)},
         {"cols", static_cast<double>(cols)},
         {"nnz", static_cast<double>(nnz)},
         {"build_seconds", build_seconds},
         {"build_fraction", build_fraction},
         {"sparse_seconds", sparse_seconds},
         {"sparse_iterations", static_cast<double>(sparse.iterations)},
         {"sparse_objective", sparse.objective},
         {"projected_dense_tableau_bytes", tableau_bytes}},
        {{"sparse_optimal", sparse.status == lp::LpStatus::kOptimal},
         {"dense_skipped", skip_dense}}};
    if (!skip_dense) {
      record.metrics.push_back({"dense_seconds", dense_seconds});
      record.metrics.push_back(
          {"dense_speedup_sparse_over_dense", dense_seconds / sparse_seconds});
      record.flags.push_back({"parity", rung_parity});
    }
    records.push_back(std::move(record));
  }
  table.print(std::cout);

  if (!smoke) {
    std::printf("\ntop rung (%zu servers): sparse %.2fs, dense %s\n",
                rungs.back().servers, top_rung_sparse_seconds,
                top_rung_dense_skipped ? "skipped (over budget)" : "ran");
  }

  const std::string path = util::write_bench_json(
      "lp_scaling", records,
      {{"smoke", smoke ? "true" : "false", /*raw=*/true},
       {"dense_memory_cap_bytes", std::to_string(kDenseMemoryCapBytes)},
       {"dense_time_budget_seconds",
        std::to_string(kDenseTimeBudgetSeconds)},
       {"instance",
        "gen::random_instance ladder to 50k servers / 5k commodities, "
        "linear max-throughput objective, seed 2007"}});
  std::printf("wrote %s\n\n", path.c_str());

  std::printf("shape checks:\n");
  bool ok = true;
  ok &= bench::shape_check("sparse backend optimal on every rung",
                           all_sparse_optimal);
  ok &= bench::shape_check(
      "backends agree (status + objective) on every rung both ran", parity);
  ok &= bench::shape_check("dense backend ran on at least the small rungs",
                           dense_completed >= 2);
  ok &= bench::shape_check(
      "polytope build stays under half of build+sparse-solve on the top rung",
      top_rung_build_fraction < 0.5);
  if (!smoke) {
    ok &= bench::shape_check(
        "the dense backend dropped out before the ladder top (crossover)",
        dense_skipped >= 1 && top_rung_dense_skipped);
    ok &= bench::shape_check(
        "sparse backend completed the 50k-server rung the dense backend "
        "could not reach",
        all_sparse_optimal && top_rung_dense_skipped);
  }
  return ok ? 0 : 1;
}
