#include "stream/validate.hpp"

#include <cmath>
#include <sstream>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace maxutil::stream {

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const auto& e : errors) os << "error: " << e << '\n';
  for (const auto& w : warnings) os << "warning: " << w << '\n';
  return os.str();
}

ValidationReport validate(const StreamNetwork& network) {
  ValidationReport report;
  const auto& g = network.graph();

  if (!maxutil::graph::is_weakly_connected(g)) {
    report.warnings.push_back("physical graph is not weakly connected");
  }

  for (CommodityId j = 0; j < network.commodity_count(); ++j) {
    const std::string who = "commodity '" + network.commodity_name(j) + "'";
    const auto filter = network.commodity_filter(j);

    if (!maxutil::graph::is_dag(g, filter)) {
      report.errors.push_back(who + ": usable subgraph has a cycle");
      continue;  // downstream checks assume a DAG
    }

    const auto from_source =
        maxutil::graph::reachable_from(g, network.source(j), filter);
    if (!from_source[network.sink(j)]) {
      report.errors.push_back(who + ": sink unreachable from source");
    }

    const auto to_sink = maxutil::graph::reaches(g, network.sink(j), filter);
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (from_source[n] && !to_sink[n]) {
        report.errors.push_back(who + ": node '" + network.node_name(n) +
                                "' is a dead end (reachable from source, "
                                "cannot reach sink)");
      }
    }

    for (LinkId link = 0; link < network.link_count(); ++link) {
      if (!network.uses_link(j, link)) continue;
      const NodeId head = g.head(link);
      if (network.is_sink(head) && head != network.sink(j)) {
        report.errors.push_back(who + ": usable link enters foreign sink '" +
                                network.node_name(head) + "'");
      }
    }
  }
  return report;
}

void validate_or_throw(const StreamNetwork& network) {
  const ValidationReport report = validate(network);
  maxutil::util::ensure(report.ok(),
                        "StreamNetwork validation failed:\n" + report.to_string());
}

bool verify_path_independence(const StreamNetwork& network, CommodityId j,
                              double tolerance, std::size_t max_paths) {
  const auto& g = network.graph();
  const auto filter = network.commodity_filter(j);
  const auto paths = maxutil::graph::enumerate_paths(
      g, network.source(j), network.sink(j), filter, max_paths);
  const double expected = network.delivery_gain(j);
  for (const auto& path : paths) {
    double product = 1.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      // Pick a *usable* edge between consecutive path nodes (parallel edges
      // share potentials, hence shrinkage, so any usable one is fine).
      for (const auto link : g.out_edges(path[i])) {
        if (g.head(link) == path[i + 1] && network.uses_link(j, link)) {
          product *= network.shrinkage(j, link);
          break;
        }
      }
    }
    if (std::abs(product - expected) > tolerance * (1.0 + std::abs(expected))) {
      return false;
    }
  }
  return true;
}

}  // namespace maxutil::stream
