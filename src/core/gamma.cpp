#include "core/gamma.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace maxutil::core {

using maxutil::util::ensure;
using maxutil::xform::CommodityIndex;

std::vector<bool> compute_blocked_tags(const ExtendedGraph& xg,
                                       const RoutingState& routing,
                                       const FlowState& flows,
                                       const MarginalCosts& marginals,
                                       CommodityId j,
                                       const GammaOptions& options) {
  const CommodityIndex& idx = xg.index();
  std::vector<bool> tagged(xg.node_count(), false);
  // Reverse topological order: downstream tags are final before v looks at
  // its neighbors — the sweep form of the paper's tag-in-broadcast protocol.
  for (std::size_t local = idx.node_end(j); local-- > idx.node_begin(j);) {
    if (local == idx.sink_local(j)) continue;
    const NodeId v = idx.node(local);
    const double tv = flows.t[local];
    const double dr_v = marginals.d_cost_d_input[local];
    for (std::size_t s = idx.out_begin(local); s < idx.out_end(local); ++s) {
      const double phi = routing.phi_slot(s);
      if (phi <= 0.0) continue;
      const std::size_t head = idx.head_local(s);
      if (tagged[idx.node(head)]) {
        tagged[v] = true;
        break;
      }
      // Improper link test (eq. 18), with two adaptations:
      //  * the downstream marginal is shrinkage-scaled (dr_v vs beta * dr_m):
      //    eq. 18 is Gallager's beta = 1 form, and with shrinkage one unit
      //    at v legitimately becomes beta units at m, so the unscaled
      //    comparison would tag every normally-operating node (see
      //    DESIGN.md);
      //  * multiplied through by t_v so a zero-traffic node needs no special
      //    casing: phi * t_v >= eta * (marginal via e - dA/dr_v).
      if (dr_v <= idx.beta(s) * marginals.d_cost_d_input[head] &&
          phi * tv >= options.eta *
                          (marginal_via_slot(xg, flows, marginals, s) - dr_v)) {
        tagged[v] = true;
        break;
      }
    }
  }
  return tagged;
}

GammaStats apply_gamma(const ExtendedGraph& xg, const FlowState& flows,
                       const MarginalCosts& marginals,
                       const GammaOptions& options, RoutingState& routing) {
  ensure(options.eta > 0.0, "apply_gamma: eta must be positive");
  const CommodityIndex& idx = xg.index();
  GammaStats stats;
  std::vector<std::size_t> eligible;

  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    const auto tagged =
        compute_blocked_tags(xg, routing, flows, marginals, j, options);

    // Each node's update touches only its own out-slots, so iterating locals
    // in topological order gives the same result as any other node order.
    for (std::size_t local = idx.node_begin(j); local < idx.node_end(j);
         ++local) {
      if (local == idx.sink_local(j)) continue;

      // Candidate out-slots, with the blocked set B_i(j) removed: an edge is
      // blocked when phi = 0 and its head carries the tag (eq. 14).
      eligible.clear();
      for (std::size_t s = idx.out_begin(local); s < idx.out_end(local); ++s) {
        if (routing.phi_slot(s) == 0.0 && tagged[idx.node(idx.head_local(s))]) {
          ++stats.blocked_edges;
          continue;
        }
        eligible.push_back(s);
      }
      ensure(!eligible.empty(), "apply_gamma: all out-edges blocked");

      // Best (cheapest-marginal) eligible link k(i,j) of eq. 16/17.
      std::size_t best = eligible.front();
      double best_via = std::numeric_limits<double>::infinity();
      for (const std::size_t s : eligible) {
        const double via = marginal_via_slot(xg, flows, marginals, s);
        if (via < best_via) {
          best_via = via;
          best = s;
        }
      }

      const double tv = flows.t[local];
      double shifted = 0.0;
      if (tv <= options.traffic_floor) {
        // Gallager's t -> 0 limit: Delta = phi on every non-best link.
        ++stats.snapped_nodes;
        for (const std::size_t s : eligible) {
          if (s == best) continue;
          const double phi = routing.phi_slot(s);
          if (phi == 0.0) continue;
          shifted += phi;
          stats.max_phi_change = std::max(stats.max_phi_change, phi);
          routing.set_phi_slot(s, 0.0);
        }
      } else {
        const double best_curvature =
            options.step_mode == StepMode::kCurvatureScaled
                ? curvature_via_slot(xg, flows, marginals, best)
                : 0.0;
        for (const std::size_t s : eligible) {
          if (s == best) continue;
          const double phi = routing.phi_slot(s);
          if (phi == 0.0) continue;
          const double a =
              marginal_via_slot(xg, flows, marginals, s) - best_via;
          double step;
          if (options.step_mode == StepMode::kCurvatureScaled) {
            // Newton step for the 1-D move of mass from e to best:
            // A(delta) ~ -a t delta + 1/2 (kappa_e + kappa_best) t^2 delta^2.
            const double kappa =
                std::max(curvature_via_slot(xg, flows, marginals, s) +
                             best_curvature,
                         options.curvature_floor);
            step = options.eta * a / (tv * kappa);
          } else {
            step = options.eta * a / tv;
          }
          const double delta = std::min(phi, step);
          if (delta <= 0.0) continue;
          shifted += delta;
          stats.max_phi_change = std::max(stats.max_phi_change, delta);
          routing.set_phi_slot(s, phi - delta);
        }
      }
      if (shifted > 0.0) {
        routing.set_phi_slot(best, routing.phi_slot(best) + shifted);
      }
    }
  }
  return stats;
}

}  // namespace maxutil::core
