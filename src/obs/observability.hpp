#pragma once

#include <cstddef>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace maxutil::obs {

/// Bundle handed to an instrumented component: one metrics registry (sharded
/// by worker) plus one tracer (serial control path only). sim::Runtime owns
/// an Observability when RuntimeOptions::observe is set; other layers
/// (DistributedGradientSystem, CLI, benches) borrow it via Runtime.
struct Observability {
  explicit Observability(std::size_t shards = 1) : metrics(shards) {}

  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace maxutil::obs
