
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/maxutil_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/bottleneck.cpp" "src/core/CMakeFiles/maxutil_core.dir/bottleneck.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/bottleneck.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/maxutil_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/gamma.cpp" "src/core/CMakeFiles/maxutil_core.dir/gamma.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/gamma.cpp.o.d"
  "/root/repo/src/core/marginals.cpp" "src/core/CMakeFiles/maxutil_core.dir/marginals.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/marginals.cpp.o.d"
  "/root/repo/src/core/optimality.cpp" "src/core/CMakeFiles/maxutil_core.dir/optimality.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/optimality.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/maxutil_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/core/CMakeFiles/maxutil_core.dir/routing.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/routing.cpp.o.d"
  "/root/repo/src/core/warm_start.cpp" "src/core/CMakeFiles/maxutil_core.dir/warm_start.cpp.o" "gcc" "src/core/CMakeFiles/maxutil_core.dir/warm_start.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xform/CMakeFiles/maxutil_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/maxutil_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/maxutil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maxutil_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/maxutil_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/maxutil_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
