#pragma once

// Registration entry points of the built-in backend adapters (one per
// translation unit under src/solver/). SolverRegistry::instance() calls
// each exactly once; they are not part of the public API — user code reaches
// every backend through the registry by name.

namespace maxutil::solver {

class SolverRegistry;

void register_gradient_solver(SolverRegistry& registry);
void register_distributed_solver(SolverRegistry& registry);
void register_backpressure_solver(SolverRegistry& registry);
void register_lp_solver(SolverRegistry& registry);
void register_lp_sparse_solver(SolverRegistry& registry);
void register_frank_wolfe_solver(SolverRegistry& registry);

}  // namespace maxutil::solver
