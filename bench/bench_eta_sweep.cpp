// E2 — eta sensitivity (Section 6 prose): "With a small eta, the algorithm
// will eventually converge to the optimum but at a slow rate. In practice,
// it is possible to choose a eta much larger to expedite the convergence,
// e.g. in hundreds of iterations" — and too-large eta risks non-convergence.
//
// Expected shape: iterations-to-95% decreases as eta grows, until
// instability (oscillation / step damping) appears at large eta.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E2: convergence speed vs scale factor eta ===\n");
  std::printf("instance: Section-6 defaults (seed 2007), eps=0.1\n\n");

  const auto net = bench::paper_instance();
  xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const xform::ExtendedGraph xg(net, penalty);
  const auto reference = xform::solve_reference(xg);
  const double optimal = reference.optimal_utility;

  util::Table table({"eta", "iters to 95%", "final utility", "% of optimal",
                     "tail wobble", "damped steps"});
  std::vector<double> etas{0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64,
                           1.28};
  std::vector<std::size_t> to95;
  std::vector<double> wobble;
  std::vector<double> damped_counts;
  for (const double eta : etas) {
    core::GradientOptions options;
    options.eta = eta;
    options.max_iterations = 20000;
    core::GradientOptimizer opt(xg, options);
    opt.run();
    const std::size_t hit =
        bench::iterations_to_fraction(opt.history(), "utility", optimal, 0.95);
    // Tail wobble: stddev of the last 200 utility values — oscillation shows
    // up as a non-vanishing wobble.
    const auto& u = opt.history().column("utility");
    util::RunningStats tail;
    for (std::size_t i = u.size() - std::min<std::size_t>(200, u.size());
         i < u.size(); ++i) {
      tail.add(u[i]);
    }
    double damped = 0.0;
    for (const double d : opt.history().column("damping_rounds")) damped += d > 0;
    to95.push_back(hit);
    wobble.push_back(tail.stddev());
    damped_counts.push_back(damped);
    table.add_row({util::Table::cell(eta),
                   hit == bench::kNeverReached
                       ? std::string("never")
                       : util::Table::cell(static_cast<long long>(hit)),
                   util::Table::cell(opt.utility()),
                   util::Table::cell(100.0 * opt.utility() / optimal, 1),
                   util::Table::cell(tail.stddev(), 6),
                   util::Table::cell(static_cast<long long>(damped))});
  }
  // The adaptive mode (extension): start from a deliberately poor eta and
  // let the optimizer tune itself.
  {
    core::GradientOptions options;
    options.eta = 0.005;
    options.adaptive_eta = true;
    options.adaptive_patience = 10;
    options.max_iterations = 20000;
    core::GradientOptimizer opt(xg, options);
    opt.run();
    const std::size_t hit =
        bench::iterations_to_fraction(opt.history(), "utility", optimal, 0.95);
    table.add_row({"0.005+adaptive",
                   hit == bench::kNeverReached
                       ? std::string("never")
                       : util::Table::cell(static_cast<long long>(hit)),
                   util::Table::cell(opt.utility()),
                   util::Table::cell(100.0 * opt.utility() / optimal, 1),
                   util::Table::cell(0.0, 6),
                   util::Table::cell(static_cast<long long>(0))});
  }
  // Curvature-scaled (Newton-like) steps: parameter-free at eta = 1.
  {
    core::GradientOptions options;
    options.eta = 1.0;
    options.curvature_scaled = true;
    options.max_iterations = 20000;
    core::GradientOptimizer opt(xg, options);
    opt.run();
    const std::size_t hit =
        bench::iterations_to_fraction(opt.history(), "utility", optimal, 0.95);
    table.add_row({"curvature-scaled (eta=1)",
                   hit == bench::kNeverReached
                       ? std::string("never")
                       : util::Table::cell(static_cast<long long>(hit)),
                   util::Table::cell(opt.utility()),
                   util::Table::cell(100.0 * opt.utility() / optimal, 1),
                   util::Table::cell(0.0, 6),
                   util::Table::cell(static_cast<long long>(0))});
  }
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  // Small eta converges but slowly; mid eta converges in hundreds of
  // iterations; the speedup from the smallest to the paper's 0.04 is large.
  ok &= bench::shape_check("every eta below 0.1 reaches 95%",
                           to95[0] != bench::kNeverReached &&
                               to95[1] != bench::kNeverReached &&
                               to95[2] != bench::kNeverReached &&
                               to95[3] != bench::kNeverReached);
  ok &= bench::shape_check(
      "iterations-to-95% shrinks monotonically from eta=0.005 to eta=0.08",
      to95[0] > to95[1] && to95[1] > to95[2] && to95[2] > to95[3] &&
          to95[3] >= to95[4]);
  ok &= bench::shape_check(
      "a larger eta reaches 95% within hundreds of iterations",
      to95[4] <= 500);
  // The paper warns that too-large eta risks non-convergence; with the
  // monotone-descent safeguard active, that danger shows up as the safeguard
  // intervening on a large fraction of iterations rather than as divergence.
  ok &= bench::shape_check(
      "instability at large eta (safeguard damps >= 1000 iterations, or wobble)",
      damped_counts.back() >= 1000.0 ||
          wobble.back() > 10.0 * std::max(wobble[3], 1e-12) ||
          to95.back() == bench::kNeverReached);
  return ok ? 0 : 1;
}
