# Empty dependencies file for maxutil_scenario.
# This may be replaced when dependencies are built.
