#include "util/artifacts.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/check.hpp"

namespace maxutil::util {

std::optional<std::string> results_dir() {
  const char* dir = std::getenv("MAXUTIL_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir);
}

std::optional<std::string> save_series(const TimeSeries& series,
                                       const std::string& name) {
  const auto dir = results_dir();
  if (!dir.has_value()) return std::nullopt;
  ensure(name.find('/') == std::string::npos,
         "save_series: name must not contain path separators");
  const std::string path = *dir + "/" + name + ".csv";
  std::ofstream out(path);
  ensure(out.good(), "save_series: cannot write '" + path + "'");
  series.write_csv(out);
  ensure(out.good(), "save_series: write failed for '" + path + "'");
  return path;
}

namespace {

/// Minimal JSON string escape (quotes, backslashes, control characters) —
/// bench names and meta values are ASCII identifiers in practice.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trippable numeric literal; JSON has no NaN/Inf, map them to null.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

std::string write_bench_json(const std::string& bench,
                             const std::vector<BenchRecord>& records,
                             const std::vector<BenchMeta>& meta) {
  ensure(bench.find('/') == std::string::npos,
         "write_bench_json: bench name must not contain path separators");
  const std::string path =
      results_dir().value_or(".") + "/BENCH_" + bench + ".json";
  std::ofstream out(path);
  ensure(out.good(), "write_bench_json: cannot write '" + path + "'");

  out << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n";
  out << "  \"meta\": {";
  for (std::size_t i = 0; i < meta.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(meta[i].key)
        << "\": ";
    if (meta[i].raw) {
      out << meta[i].value;  // pre-validated JSON literal (number/boolean)
    } else {
      out << "\"" << json_escape(meta[i].value) << "\"";
    }
  }
  out << (meta.empty() ? "" : "\n  ") << "},\n";
  out << "  \"records\": [";
  for (std::size_t r = 0; r < records.size(); ++r) {
    out << (r == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << json_escape(records[r].name) << "\"";
    for (const auto& [key, value] : records[r].metrics) {
      out << ", \"" << json_escape(key) << "\": " << json_number(value);
    }
    for (const auto& [key, value] : records[r].flags) {
      out << ", \"" << json_escape(key) << "\": " << (value ? "true" : "false");
    }
    out << "}";
  }
  out << (records.empty() ? "" : "\n  ") << "]\n}\n";
  ensure(out.good(), "write_bench_json: write failed for '" + path + "'");
  return path;
}

}  // namespace maxutil::util
