
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sensor_fusion.cpp" "examples/CMakeFiles/sensor_fusion.dir/sensor_fusion.cpp.o" "gcc" "examples/CMakeFiles/sensor_fusion.dir/sensor_fusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/maxutil_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/maxutil_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/maxutil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/maxutil_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/maxutil_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/maxutil_des.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/maxutil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/maxutil_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/maxutil_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/maxutil_la.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/maxutil_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/maxutil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maxutil_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
