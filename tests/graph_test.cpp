#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "util/check.hpp"

namespace {

using maxutil::graph::Digraph;
using maxutil::graph::EdgeId;
using maxutil::graph::NodeId;
using maxutil::util::CheckError;

Digraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, NodesAndEdges) {
  Digraph g;
  EXPECT_EQ(g.node_count(), 0u);
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.tail(e), a);
  EXPECT_EQ(g.head(e), b);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_EQ(g.in_degree(a), 0u);
}

TEST(Digraph, RejectsBadEdges) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5), CheckError);
  EXPECT_THROW(g.add_edge(0, 0), CheckError);
  EXPECT_THROW(g.tail(0), CheckError);
}

TEST(Digraph, ParallelEdgesAllowed) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(Digraph, FindEdge) {
  const Digraph g = diamond();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.find_edge(3, 0), g.edge_count());
}

TEST(Digraph, DotContainsAllEdges) {
  const Digraph g = diamond();
  const std::string dot = g.to_dot({"s", "a", "b", "t"});
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"s\""), std::string::npos);
}

TEST(Topo, SortsDiamond) {
  const Digraph g = diamond();
  const auto order = maxutil::graph::topological_sort(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Topo, DetectsCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(maxutil::graph::topological_sort(g).has_value());
  EXPECT_FALSE(maxutil::graph::is_dag(g));
}

TEST(Topo, FilterBreaksCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const EdgeId back = g.add_edge(2, 0);
  const auto filter = [back](EdgeId e) { return e != back; };
  EXPECT_TRUE(maxutil::graph::is_dag(g, filter));
}

TEST(Reachability, ForwardAndBackward) {
  const Digraph g = diamond();
  const auto fwd = maxutil::graph::reachable_from(g, 1);
  EXPECT_TRUE(fwd[1]);
  EXPECT_TRUE(fwd[3]);
  EXPECT_FALSE(fwd[0]);
  EXPECT_FALSE(fwd[2]);
  const auto bwd = maxutil::graph::reaches(g, 1);
  EXPECT_TRUE(bwd[0]);
  EXPECT_TRUE(bwd[1]);
  EXPECT_FALSE(bwd[2]);
  EXPECT_FALSE(bwd[3]);
}

TEST(LongestPath, DiamondAndChain) {
  EXPECT_EQ(maxutil::graph::longest_path_length(diamond()), 2u);
  Digraph chain(5);
  for (NodeId i = 0; i + 1 < 5; ++i) chain.add_edge(i, i + 1);
  EXPECT_EQ(maxutil::graph::longest_path_length(chain), 4u);
}

TEST(LongestPath, CyclicThrows) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(maxutil::graph::longest_path_length(g), CheckError);
}

TEST(EnumeratePaths, Diamond) {
  const Digraph g = diamond();
  const auto paths = maxutil::graph::enumerate_paths(g, 0, 3);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 3u);
    EXPECT_EQ(p.size(), 3u);
  }
}

TEST(EnumeratePaths, RespectsLimit) {
  // A ladder with many paths; max_paths caps output.
  Digraph g(8);
  for (NodeId i = 0; i + 2 < 8; i += 2) {
    g.add_edge(i, i + 1);
    g.add_edge(i, i + 2);
    g.add_edge(i + 1, i + 2);
    g.add_edge(i + 1, i + 3);
  }
  const auto paths = maxutil::graph::enumerate_paths(g, 0, 6, {}, 3);
  EXPECT_LE(paths.size(), 3u);
  EXPECT_GE(paths.size(), 1u);
}

TEST(Connectivity, WeaklyConnected) {
  EXPECT_TRUE(maxutil::graph::is_weakly_connected(diamond()));
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(maxutil::graph::is_weakly_connected(g));
  EXPECT_TRUE(maxutil::graph::is_weakly_connected(Digraph(1)));
  EXPECT_TRUE(maxutil::graph::is_weakly_connected(Digraph(0)));
}

}  // namespace
