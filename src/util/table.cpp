#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace maxutil::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ensure(!headers_.empty(), "Table: at least one column required");
}

void Table::add_row(std::vector<std::string> row) {
  ensure(row.size() == headers_.size(), "Table::add_row: width mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
          << std::left << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w;
  out << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::cell(long long v) { return std::to_string(v); }

}  // namespace maxutil::util
