file(REMOVE_RECURSE
  "libmaxutil_placement.a"
)
