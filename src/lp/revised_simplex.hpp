#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace maxutil::lp {

/// State of one computational column (structural variables first, then one
/// slack per constraint row) in a revised-simplex basis.
enum class BasisStatus : std::uint8_t {
  kAtLower,  // nonbasic at its finite lower bound
  kAtUpper,  // nonbasic at its finite upper bound
  kBasic,    // in the basis; value determined by the basic solve
  kFree,     // nonbasic free variable, parked at 0
};

/// A reusable simplex basis: the per-column status vector of a solved
/// problem, sized variable_count() + constraint_count(). Passing the basis
/// of a previous solve back into solve_revised warm-starts the method: the
/// basis is refactorized once and pivoting resumes from it, so a re-solve
/// after a small model change (churn event, serve batch, rhs drift) costs a
/// handful of pivots instead of a full cold run. An empty basis means
/// "cold start".
struct SimplexBasis {
  std::vector<BasisStatus> status;
  bool empty() const { return status.empty(); }
};

/// Tuning knobs for the sparse revised simplex.
struct RevisedSimplexOptions {
  /// Optimality/ratio-test tolerance on reduced costs and pivot rates.
  double tolerance = 1e-9;
  /// Primal feasibility tolerance (phase-1 exit, infeasibility declaration).
  double feasibility_tolerance = 1e-7;
  /// Hard pivot cap; 0 selects 200*(rows+cols) + 10000 automatically.
  std::size_t max_iterations = 0;
  /// Force Bland's anti-cycling rule from the first pivot.
  bool always_bland = false;
  /// Pivots without objective progress before the automatic Dantzig->Bland
  /// switch; 0 selects 2*(rows+cols) + 100. Exposed so the anti-cycling
  /// regression tests can force the switch deterministically.
  std::size_t stall_pivot_limit = 0;
  /// Basis pivots between LU refactorizations. The eta file (product-form
  /// updates) grows one sparse column per pivot; refactorizing bounds both
  /// the FTRAN/BTRAN cost and the accumulated roundoff, and recomputes the
  /// basic values from scratch. Small values favor accuracy, large values
  /// speed. 0 selects 64.
  std::size_t refactor_interval = 0;
};

/// Solves `problem` with a bounded-variable sparse revised simplex: CSC
/// constraint storage, an la::SparseLu basis factorization plus an eta-file
/// (product-form) update per pivot with periodic refactorization, Dantzig
/// pricing with an automatic (or forced) Bland fallback, and a composite
/// phase 1 that needs no artificial variables. Free and bounded variables
/// are handled natively — no column splitting and no bound rows — so the
/// standard-form blow-up of the dense tableau solver never happens.
///
/// Results match lp::solve on status and objective (the differential
/// harness in tests/lp_diff_test.cpp pins this); `duals` follows the same
/// sign convention (d objective-in-declared-sense / d rhs).
///
/// `warm_basis`, when non-null and non-empty, seeds the solve with a
/// previous basis (see SimplexBasis); a stale or singular basis silently
/// falls back to the cold slack start. On an optimal exit the final basis
/// is written back through the same pointer.
LpSolution solve_revised(const LpProblem& problem,
                         const RevisedSimplexOptions& options = {},
                         SimplexBasis* warm_basis = nullptr);

}  // namespace maxutil::lp
