#include "placement/greedy_placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "stream/validate.hpp"
#include "util/check.hpp"

namespace maxutil::placement {

using maxutil::util::ensure;

GreedyPlacer::GreedyPlacer(maxutil::stream::StreamNetwork& net,
                           std::vector<NodeId> servers, double link_bandwidth)
    : net_(&net),
      pool_(std::move(servers)),
      projected_(pool_.size(), 0.0),
      link_bandwidth_(link_bandwidth) {
  ensure(!pool_.empty(), "GreedyPlacer: empty server pool");
  ensure(link_bandwidth > 0.0, "GreedyPlacer: bandwidth must be positive");
  std::set<NodeId> unique(pool_.begin(), pool_.end());
  ensure(unique.size() == pool_.size(), "GreedyPlacer: duplicate servers");
  for (const NodeId s : pool_) {
    ensure(!net.is_sink(s), "GreedyPlacer: pool contains a sink");
  }
}

CommodityId GreedyPlacer::place(const PlacementRequest& request) {
  ensure(request.stages >= 1, "GreedyPlacer: at least one stage");
  ensure(request.replicas_per_stage >= 1, "GreedyPlacer: at least one replica");
  ensure(request.lambda > 0.0 && request.consumption > 0.0 &&
             request.stage_gain > 0.0,
         "GreedyPlacer: non-positive parameters");
  const std::size_t needed = request.stages * request.replicas_per_stage;
  ensure(pool_.size() >= needed + 1,
         "GreedyPlacer: pool too small for requested chain");

  auto& net = *net_;
  const NodeId sink = net.add_sink(request.name + ".sink");
  const CommodityId j = net.add_commodity(request.name, request.source, sink,
                                          request.lambda, request.utility);

  // Per-chosen-server load contribution of this chain.
  const double bump = request.lambda * request.consumption /
                      static_cast<double>(request.replicas_per_stage);

  std::set<NodeId> used{request.source};
  std::vector<NodeId> previous{request.source};
  // Charge the source too: it processes the first operator.
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i] == request.source) projected_[i] += request.lambda *
                                                     request.consumption;
  }

  double gain = 1.0;
  net.set_potential(j, request.source, 1.0);
  for (std::size_t stage = 1; stage <= request.stages; ++stage) {
    // Pick the least-loaded unused servers for this stage.
    std::vector<std::size_t> order(pool_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return projected_[a] < projected_[b];
                     });
    std::vector<NodeId> layer;
    for (const std::size_t i : order) {
      if (layer.size() == request.replicas_per_stage) break;
      if (used.count(pool_[i]) != 0) continue;
      layer.push_back(pool_[i]);
      used.insert(pool_[i]);
      projected_[i] += bump;
    }
    ensure(layer.size() == request.replicas_per_stage,
           "GreedyPlacer: ran out of distinct servers");

    gain *= request.stage_gain;
    for (const NodeId v : layer) net.set_potential(j, v, gain);
    for (const NodeId u : previous) {
      for (const NodeId v : layer) {
        auto link = net.graph().find_edge(u, v);
        if (link == net.graph().edge_count()) {
          link = net.add_link(u, v, link_bandwidth_);
        }
        if (!net.uses_link(j, link)) {
          net.enable_link(j, link, request.consumption);
        }
      }
    }
    previous = std::move(layer);
  }

  // Delivery stage into the dedicated sink.
  net.set_potential(j, sink, gain * request.stage_gain);
  for (const NodeId u : previous) {
    const auto link = net.add_link(u, sink, link_bandwidth_);
    net.enable_link(j, link, request.consumption);
  }
  return j;
}

double GreedyPlacer::projected_load(NodeId server) const {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i] == server) return projected_[i];
  }
  throw maxutil::util::CheckError("GreedyPlacer: server not in pool");
}

}  // namespace maxutil::placement
