#pragma once

#include <cstddef>

#include "core/gamma.hpp"
#include "core/routing.hpp"
#include "des/packet_sim.hpp"
#include "util/timeseries.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::des {

/// Options for the measurement-driven (closed-loop) optimizer.
struct ClosedLoopOptions {
  /// Step rule for the Gamma update applied to measured state.
  core::GammaOptions gamma{.eta = 0.04};
  /// Per-epoch measurement window (the simulated observation period).
  PacketSimOptions sim{.horizon = 100.0, .warmup = 10.0, .packet_size = 0.5};
  /// Number of simulate-measure-update epochs for run().
  std::size_t epochs = 50;
  /// Measured usage is clamped below guard * C when fed to the barrier
  /// derivatives: capacities are hard known quantities, and a Poisson burst
  /// in a finite window must not produce infinite marginals.
  double capacity_guard = 0.999;
  /// Record a history row per epoch.
  bool record_history = true;

  /// Exponential smoothing factor for the telemetry (state_k =
  /// (1-rho) state_{k-1} + rho sample). Filtering the Poisson noise is what
  /// keeps the loop from chasing single-window fluctuations; 1 disables.
  double smoothing = 0.3;

  /// Robbins-Monro gain decay: the working eta of epoch k is
  /// eta / (1 + k / gain_decay_epochs); 0 keeps eta constant. Decreasing
  /// gains are the standard stochastic-approximation requirement for
  /// convergence (constant gains hover in a noise ball instead).
  double gain_decay_epochs = 30.0;
};

/// The gradient algorithm run the way a deployment runs it: against
/// *measured* telemetry rather than fluid predictions.
///
/// Each epoch executes the current routing at packet level for a finite
/// window, reconstructs the flow state (f_ik, f_i, t_i(j)) from the measured
/// rates — the paper's protocol already assumes "each node can estimate the
/// demand rate entering from i" — and applies the marginal-cost sweep and
/// Gamma update to the measurements. Finite windows and Poisson arrivals
/// make this stochastic approximation: the iterates converge to a
/// neighborhood of the fluid optimum whose radius shrinks with the window
/// length (tested in closed_loop_test.cpp).
class MeasurementDrivenOptimizer {
 public:
  MeasurementDrivenOptimizer(const xform::ExtendedGraph& xg,
                             ClosedLoopOptions options = {});

  /// One simulate-measure-update epoch; returns the epoch's measured
  /// delivered-rate utility.
  double epoch();

  /// Runs options.epochs epochs.
  void run();

  std::size_t epochs_run() const { return epochs_; }
  const core::RoutingState& routing() const { return routing_; }

  /// Utility of the *fluid* evaluation of the current routing (observer
  /// metric, not used by the loop).
  double fluid_utility() const;

  /// Trace: epoch, measured_utility, fluid_utility.
  const util::TimeSeries& history() const { return history_; }

 private:
  const xform::ExtendedGraph* xg_;
  ClosedLoopOptions options_;
  core::RoutingState routing_;
  core::FlowState smoothed_;  // EMA-filtered telemetry
  bool has_measurements_ = false;
  std::size_t epochs_ = 0;
  util::TimeSeries history_;
};

}  // namespace maxutil::des
