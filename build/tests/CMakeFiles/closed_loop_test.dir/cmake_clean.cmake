file(REMOVE_RECURSE
  "CMakeFiles/closed_loop_test.dir/closed_loop_test.cpp.o"
  "CMakeFiles/closed_loop_test.dir/closed_loop_test.cpp.o.d"
  "closed_loop_test"
  "closed_loop_test.pdb"
  "closed_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
