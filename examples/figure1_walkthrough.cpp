// Walkthrough of the paper's Figure-1 example: 8 servers, 2 streams
// (S1: tasks A,B,C,D; S2: tasks G,E,F,H) with replicated operators and a
// shared 3->5 link. Runs the gradient algorithm and the back-pressure
// baseline against the LP optimum — all through solver::SolverRegistry on
// one shared solver::Problem — and shows how S1 splits its traffic over
// the replicated B/C operators.

#include <cstdio>
#include <iostream>

#include "gen/figure1.hpp"
#include "solver/registry.hpp"
#include "util/table.hpp"

int main() {
  using namespace maxutil;

  gen::Figure1Params params;
  params.lambda = 30.0;          // oversubscribe so the streams compete
  params.server_capacity = 40.0;
  params.link_bandwidth = 25.0;
  params.stage_shrinkage = 0.8;  // each operator shrinks its stream by 20%
  gen::Figure1Ids ids;
  const auto net = gen::figure1_example(params, &ids);

  const solver::Problem problem(net);
  const auto& registry = solver::SolverRegistry::instance();

  const auto reference = registry.solve("lp", problem, {});

  solver::SolveOptions gopt;
  gopt.eta = 0.1;
  gopt.max_iterations = 4000;
  const auto gradient = registry.solve("gradient", problem, gopt);

  solver::SolveOptions bopt;
  bopt.max_iterations = 40000;
  const auto backpressure = registry.solve("backpressure", problem, bopt);

  std::printf("Figure-1 example: S1 = A,B,C,D over servers 1..6;"
              " S2 = G,E,F,H over servers 7,3,5,8; lambda = %.0f each\n\n",
              params.lambda);

  util::Table table({"metric", "S1", "S2", "total"});
  table.add_row({"LP-optimal admitted",
                 util::Table::cell(reference.admitted[ids.s1]),
                 util::Table::cell(reference.admitted[ids.s2]),
                 util::Table::cell(reference.utility)});
  table.add_row({"gradient admitted",
                 util::Table::cell(gradient.admitted[ids.s1]),
                 util::Table::cell(gradient.admitted[ids.s2]),
                 util::Table::cell(gradient.utility)});
  table.add_row({"back-pressure admitted",
                 util::Table::cell(backpressure.admitted[ids.s1]),
                 util::Table::cell(backpressure.admitted[ids.s2]),
                 util::Table::cell(backpressure.utility)});
  table.print(std::cout);

  // How S1 splits over the replicated operators (task B on servers 2 and 3,
  // task C on servers 4 and 5). The physical-network view lives in
  // SolveResult::allocation for backends that emit a routing.
  const core::PhysicalAllocation& galloc = *gradient.allocation;
  const auto& g = net.graph();
  const auto flow = [&](stream::NodeId a, stream::NodeId b) {
    const auto link = g.find_edge(a, b);
    return galloc.link_flow[ids.s1][link];
  };
  std::printf("\nS1 replica split at the gradient optimum (flow in source"
              " units):\n");
  util::Table split({"stage", "upper replica", "lower replica"});
  split.add_row({"task B (servers 2 / 3)",
                 util::Table::cell(flow(ids.server[0], ids.server[1])),
                 util::Table::cell(flow(ids.server[0], ids.server[2]))});
  split.add_row({"task C via server 2 (4 / 5)",
                 util::Table::cell(flow(ids.server[1], ids.server[3])),
                 util::Table::cell(flow(ids.server[1], ids.server[4]))});
  split.add_row({"task C via server 3 (4 / 5)",
                 util::Table::cell(flow(ids.server[2], ids.server[3])),
                 util::Table::cell(flow(ids.server[2], ids.server[4]))});
  split.print(std::cout);

  std::printf("\nServer 3 and server 5 host operators of BOTH streams; the"
              " optimizer steers S1 toward servers 2/4 so S2 (which has no"
              " alternative) can use 3/5 and the shared 3->5 link.\n");
  return 0;
}
