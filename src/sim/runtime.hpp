#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "obs/observability.hpp"
#include "sim/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace maxutil::sim {

/// Identifier of an actor within a Runtime (dense, assigned in add order;
/// the distributed-gradient system keeps these equal to extended-graph node
/// ids).
using ActorId = std::size_t;

/// A message between actors. `tag` discriminates protocol phases;
/// `commodity` scopes per-stream protocols; `payload` carries the numeric
/// content (marginal costs, blocking flags, forecast flows, ...). Payload
/// buffers are pooled by the runtime: a delivered message's vector is
/// recycled into the next round's sends, so steady-state rounds perform no
/// per-message heap allocation.
struct Message {
  ActorId from = 0;
  ActorId to = 0;
  int tag = 0;
  std::size_t commodity = 0;
  std::vector<double> payload;
};

/// Execution knobs for the runtime. The default is the fully serial,
/// pooled-delivery path; benches and large instances raise `num_threads`.
struct RuntimeOptions {
  /// Worker threads stepping actors within a round (the calling thread
  /// included). 1 = serial. Results are bit-identical for every value: actor
  /// steps are data-independent within a round and sends are merged in
  /// (actor id, send order) sequence regardless of scheduling.
  std::size_t num_threads = 1;

  /// When true (default), parallel rounds write sends into per-chunk
  /// outboxes merged in chunk order — reproducible across runs and thread
  /// counts. When false, sends are sharded per worker thread and merged in
  /// worker order, which saves a few outbox buffers but lets the dynamic
  /// chunk schedule leak into message order. Serial runs are always
  /// deterministic.
  bool deterministic = true;

  /// When false, uses the legacy delivery path of the original serial
  /// runtime: per-round `vector<vector<Message>>` inbox rebuild and a fresh
  /// heap payload per send. Kept as the A/B reference for
  /// bench_runtime_scaling and the equivalence tests; forces num_threads=1.
  bool pooled_delivery = true;

  /// Rounds delivering fewer messages than this are stepped serially even
  /// when a thread pool exists (identical results either way — this only
  /// skips dispatch overhead on near-empty wave-tail rounds).
  std::size_t serial_cutoff = 64;

  /// Seeded fault-injection plan (drop/delay/duplicate/crash — see
  /// sim/fault.hpp and docs/RUNTIME.md). Default-constructed = no faults;
  /// the runtime then takes its fault-free fast path untouched. Faults are
  /// drawn at the serial outbox-merge point, so an active plan with
  /// num_threads > 1 requires `deterministic` (enforced in the ctor) and
  /// stays bit-identical across thread counts.
  FaultPlan faults;

  /// When true (and the build did not define MAXUTIL_OBS_OFF), the runtime
  /// allocates an obs::Observability and records metrics (message/fault
  /// counters, queue depth, per-round delivery and wall-time histograms,
  /// per-worker actor-step shards) plus trace spans (one per round, fault
  /// instants for crash/restart). Observation is read-only: the computed
  /// messages and actor states are bit-identical with it on or off, for
  /// every thread count (tests/property_test.cpp pins this). Off (the
  /// default) costs one null-pointer branch per round and per merge.
  bool observe = false;
};

/// Why run_until_quiet stopped.
enum class QuietStatus {
  kQuiet,       // the network quiesced
  kRoundLimit,  // the round budget ran out with messages still in flight
};

/// Result of run_until_quiet: rounds executed plus a named status, so
/// callers no longer infer budget exhaustion from quiet()==false.
struct QuietResult {
  std::size_t rounds = 0;
  QuietStatus status = QuietStatus::kQuiet;

  bool quiet() const { return status == QuietStatus::kQuiet; }
};

class Runtime;

/// Send-side interface handed to an actor during its turn. Bound to the
/// executing worker's payload pool and to the outbox shard that keeps the
/// deterministic merge order.
class Outbox {
 public:
  /// Queues a message for delivery at the start of the next round (or later
  /// under a delay model). The payload is copied into a pooled buffer.
  void send(ActorId to, int tag, std::size_t commodity,
            std::span<const double> payload);

  void send(ActorId to, int tag, std::size_t commodity,
            std::initializer_list<double> payload) {
    send(to, tag, commodity,
         std::span<const double>(payload.begin(), payload.size()));
  }

 private:
  friend class Runtime;
  Outbox(Runtime& runtime, ActorId self, std::size_t slot, std::size_t worker)
      : runtime_(&runtime), self_(self), slot_(slot), worker_(worker) {}

  Runtime* runtime_;
  ActorId self_;
  std::size_t slot_;    // outbox shard index; kDirectSlot = straight to queue
  std::size_t worker_;  // payload-pool shard of the executing thread
};

/// A node in the simulated distributed system. Actors communicate only
/// through messages; the runtime invokes them once per round with the
/// messages addressed to them.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Handles this round's inbox. May send messages via `out`; they arrive
  /// next round (unit link delay, synchronous rounds).
  virtual void on_round(Outbox& out, std::span<const Message> inbox) = 0;
};

/// Synchronous-round message-passing runtime with delivery counters and
/// fail-stop node crashes — the paper's execution model (iterative rounds,
/// neighbor message exchange) made concrete and measurable. The message
/// counters back the Section-6 comparison of per-iteration message
/// complexity (O(L) marginal-cost waves vs O(1) buffer-level exchanges).
///
/// Throughput architecture (see DESIGN.md §7): actor steps within a round
/// are data-independent, so they are sharded across a thread pool; each
/// chunk writes sends into its own outbox, merged afterwards in chunk (=
/// actor id) order so runs are reproducible regardless of thread count.
/// Delivery uses a counting-sort flat buffer — per-actor offsets into one
/// contiguous Message array reused across rounds — and payload vectors are
/// recycled through per-worker free lists, so steady-state rounds allocate
/// nothing per message.
class Runtime {
 public:
  Runtime() : Runtime(RuntimeOptions{}) {}
  explicit Runtime(RuntimeOptions options);

  /// Registers an actor; returns its id (dense, in add order).
  ActorId add_actor(std::unique_ptr<Actor> actor);

  /// Installs a heterogeneous link-delay model: a message from `a` to `b`
  /// takes `delay(a, b)` rounds (values < 1 are clamped to 1). Default is a
  /// uniform one-round delay. The gradient protocol's waves wait for all
  /// inputs, so results are delay-insensitive — only round counts change
  /// (tested in sim_test.cpp). Must be safe to call concurrently when
  /// num_threads > 1 (a pure function of the endpoints always is).
  void set_delay_model(std::function<std::size_t(ActorId, ActorId)> delay);

  std::size_t actor_count() const { return actors_.size(); }

  const RuntimeOptions& options() const { return options_; }

  /// Fail-stop crash: the actor stops executing; messages to or from it are
  /// silently dropped (and counted in dropped_messages()).
  void fail(ActorId id);
  /// Restart after fail(): the actor resumes executing with whatever local
  /// state it had when it crashed. Messages dropped while it was down stay
  /// dropped — recovery is the protocol's job (see the seq-number resync in
  /// sim/distributed_gradient.cpp). FaultPlan crash windows call this pair.
  void restore(ActorId id);
  bool is_failed(ActorId id) const;

  /// Delivers all queued messages, runs every live actor once, and queues
  /// their sends for the next round. Returns the number of messages
  /// delivered this round.
  std::size_t run_round();

  /// Runs rounds until no messages are in flight (quiescence) or
  /// `max_rounds` elapse; returns the rounds executed plus a named
  /// QuietStatus. When `strict` (the default) an exhausted budget aborts
  /// via util::ensure; with strict = false the caller gets
  /// QuietStatus::kRoundLimit instead — what the failure/recovery benches
  /// need to measure stalled protocols rather than crash.
  QuietResult run_until_quiet(std::size_t max_rounds = 100000,
                              bool strict = true);

  /// True when no messages are in flight — neither queued for delivery nor
  /// parked in the fault injector's delay buffer. Counting the delayed
  /// messages matters: without them, run_until_quiet(strict=false) could
  /// report quiescence while a fault-delayed message was still due to
  /// arrive, and its late delivery would silently restart the protocol.
  bool quiet() const { return pending_.empty() && fault_deferred_.empty(); }

  /// Messages currently in flight (queued + fault-delayed).
  std::size_t in_flight_messages() const {
    return pending_.size() + fault_deferred_.size();
  }

  /// Runs `fn` once for every live actor with a connected outbox — the hook
  /// for protocol phase kickoffs outside the message-driven path. Uses the
  /// thread pool (and the same deterministic send merge as run_round) when
  /// one is configured.
  void for_each_live_actor(
      const std::function<void(ActorId, Actor&, Outbox&)>& fn);

  // --- Counters (cumulative) ---
  std::size_t rounds() const { return rounds_; }
  /// Messages accepted at the serial merge point (enqueue_now) — before
  /// failure filtering and fault draws. Conservation law, checked by
  /// tests/property_test.cpp: sent + fault_duplicated ==
  /// delivered + dropped + in_flight.
  std::size_t sent_messages() const { return sent_messages_; }
  std::size_t delivered_messages() const { return delivered_messages_; }
  std::size_t dropped_messages() const { return dropped_messages_; }
  /// Subset of dropped_messages() lost to fault injection (vs failed
  /// endpoints).
  std::size_t fault_dropped_messages() const { return fault_dropped_; }
  /// Extra copies created by fault-injected duplication.
  std::size_t fault_duplicated_messages() const { return fault_duplicated_; }
  /// Messages that drew a nonzero extra fault delay.
  std::size_t fault_delayed_messages() const { return fault_delayed_; }
  /// Crash windows that have triggered so far.
  std::size_t fault_crashes() const { return fault_crashes_; }
  /// Scheduled restarts that have triggered so far.
  std::size_t fault_restarts() const { return fault_restarts_; }
  /// Total doubles carried in delivered payloads (a bandwidth proxy).
  std::size_t delivered_payload_doubles() const { return delivered_payload_; }
  /// Payload buffers served from the recycle free lists vs freshly heap
  /// allocated — the pool's zero-steady-state-allocation evidence.
  std::size_t payload_pool_reuses() const;
  std::size_t payload_pool_allocations() const;
  /// Wall-clock seconds spent inside run_round (cumulative / last round).
  double total_round_seconds() const { return total_round_seconds_; }
  double last_round_seconds() const { return last_round_seconds_; }
  /// Per-phase wall-clock breakdown of the pooled round loop (delivery
  /// scatter / actor stepping / outbox merge). Accumulated only while
  /// observing — zero otherwise, so the off path pays no clock reads.
  double total_deliver_seconds() const { return total_deliver_seconds_; }
  double total_step_seconds() const { return total_step_seconds_; }
  double total_merge_seconds() const { return total_merge_seconds_; }

  // --- Observability (see src/obs/ and docs/OBSERVABILITY.md) ---
  /// Trace track ids used by the runtime (and, by convention, the layers
  /// above it — DistributedGradientSystem claims kObsWaveTrack).
  static constexpr std::size_t kObsRoundTrack = 0;
  static constexpr std::size_t kObsFaultTrack = 1;
  static constexpr std::size_t kObsWaveTrack = 2;

  /// Non-null iff RuntimeOptions::observe was set and the build has the
  /// layer compiled in. The registry's counters mirror the accessor values
  /// above; merge shards are folded at every serial merge point, so reads
  /// between rounds are always current.
  obs::Observability* observability() { return obs_.get(); }
  const obs::Observability* observability() const { return obs_.get(); }
  bool observing() const { return obs_ != nullptr; }

  /// Direct read access to an actor (observer-side instrumentation only —
  /// the protocol itself must go through messages).
  Actor& actor(ActorId id);
  const Actor& actor(ActorId id) const;

 private:
  friend class Outbox;

  struct Pending {
    std::size_t due;  // first round in which the message may be delivered
    Message message;
  };

  /// Per-worker recycle pool for payload vectors. Touched by exactly one
  /// worker during parallel stepping; refilled round-robin in the serial
  /// recycle phase at the end of each round.
  struct PayloadShard {
    std::vector<std::vector<double>> free_list;
    std::size_t reuses = 0;
    std::size_t allocations = 0;
  };

  /// Send buffer for one chunk (deterministic mode) or one worker.
  struct OutboxShard {
    std::vector<Message> sends;
  };

  static constexpr std::size_t kDirectSlot = static_cast<std::size_t>(-1);

  void record_send(const Outbox& outbox, ActorId to, int tag,
                   std::size_t commodity, std::span<const double> payload);
  /// Validates, failure-filters, applies fault injection, stamps the due
  /// round, and queues — the serial tail of every send path. All fault RNG
  /// draws happen here, in the deterministic merge order, which is why a
  /// faulted run is bit-identical across thread counts.
  void enqueue_now(Message message);
  /// Queues `message` due in `base + extra` rounds: messages with no fault
  /// delay (extra == 0) go straight to pending_, fault-delayed ones to the
  /// fault_deferred_ holding buffer.
  void schedule(Message message, std::size_t base, std::size_t extra);
  /// Moves now-due fault-delayed messages into pending_ (start of round).
  void release_fault_deferred();
  /// Triggers crash/restart windows whose round has arrived (start of
  /// round).
  void apply_crash_schedule();
  std::vector<double> acquire_payload(std::size_t worker,
                                      std::span<const double> data);
  void recycle_payload(std::vector<double>&& payload);

  /// Counting-sort delivery of due messages into the flat inbox buffer;
  /// compacts pending_ in place. Returns messages delivered.
  std::size_t deliver_due();
  std::span<const Message> inbox_of(ActorId id) const;
  /// Runs `fn` over live actors, serially or chunked over the pool, and
  /// merges recorded sends in deterministic order. `work_hint` gates the
  /// serial cutoff.
  void step_live_actors(
      const std::function<void(ActorId, Actor&, Outbox&)>& fn,
      std::size_t work_hint);
  std::size_t run_round_pooled();
  std::size_t run_round_legacy();
  /// Registers the runtime's metric catalog (ctor, observe path only).
  void obs_register_metrics();
  /// Pushes counter deltas into the registry and folds worker shards —
  /// called at the serial merge points (end of step_live_actors / round).
  void obs_sync_counters();

  RuntimeOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;

  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<bool> failed_;
  std::vector<Pending> pending_;
  /// Fault-delayed messages not yet due; kept out of pending_ so the
  /// per-round delivery scan stays proportional to near-term traffic.
  std::vector<Pending> fault_deferred_;
  std::function<std::size_t(ActorId, ActorId)> delay_;
  util::Rng fault_rng_;
  // Once-only latches per FaultPlan crash window (parallel to
  // options_.faults.crashes).
  std::vector<char> crash_fired_;
  std::vector<char> restart_fired_;

  // Flat delivery buffers, reused across rounds.
  std::vector<Message> inbox_messages_;
  std::vector<std::size_t> inbox_offsets_;  // size actor_count() + 1
  std::vector<std::size_t> inbox_cursor_;
  std::vector<OutboxShard> outbox_shards_;
  std::vector<PayloadShard> payload_shards_;
  std::size_t recycle_cursor_ = 0;

  std::size_t rounds_ = 0;
  std::size_t sent_messages_ = 0;
  std::size_t delivered_messages_ = 0;
  std::size_t dropped_messages_ = 0;
  std::size_t fault_dropped_ = 0;
  std::size_t fault_duplicated_ = 0;
  std::size_t fault_delayed_ = 0;
  std::size_t fault_crashes_ = 0;
  std::size_t fault_restarts_ = 0;
  std::size_t delivered_payload_ = 0;
  double total_round_seconds_ = 0.0;
  double last_round_seconds_ = 0.0;
  double total_deliver_seconds_ = 0.0;
  double total_step_seconds_ = 0.0;
  double total_merge_seconds_ = 0.0;

  /// Observability state; null unless options_.observe (and the layer is
  /// compiled in). Every instrumented site is behind an `if (obs_)`.
  std::unique_ptr<obs::Observability> obs_;
  /// Metric handles, valid only while obs_ is non-null.
  struct ObsIds {
    obs::MetricId rounds, sent, delivered, dropped, fault_dropped,
        fault_duplicated, fault_delayed, fault_crashes, fault_restarts,
        actor_steps, queue_depth, round_delivered, round_us;
  } obs_ids_{};
  /// Counter values already pushed to the registry (delta sync).
  struct ObsSynced {
    std::size_t rounds = 0, sent = 0, delivered = 0, dropped = 0,
                fault_dropped = 0, fault_duplicated = 0, fault_delayed = 0,
                fault_crashes = 0, fault_restarts = 0;
  } obs_synced_;
};

}  // namespace maxutil::sim
