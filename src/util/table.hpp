#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace maxutil::util {

/// Fixed-width console table used by the bench harness to print the rows the
/// paper's figures/tables report.
///
/// Cells are strings; `cell(...)` helpers format doubles with a fixed
/// precision. Columns auto-size to their widest entry.
class Table {
 public:
  /// Defines the header row.
  explicit Table(std::vector<std::string> headers);

  /// Appends one data row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column separators and a header underline.
  void print(std::ostream& out) const;

  /// Formats `v` with `precision` digits after the decimal point.
  static std::string cell(double v, int precision = 3);

  /// Formats an integer cell.
  static std::string cell(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace maxutil::util
