// Tests for the parallel deterministic runtime: thread-pool semantics,
// flat-inbox ordering, payload-pool recycling, and bit-identical results
// across thread counts and against the legacy (pre-parallel) delivery path.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "core/routing.hpp"
#include "gen/random_instance.hpp"
#include "sim/distributed_gradient.hpp"
#include "sim/runtime.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "xform/extended_graph.hpp"

namespace {

using maxutil::sim::Actor;
using maxutil::sim::ActorId;
using maxutil::sim::DistributedGradientSystem;
using maxutil::sim::Message;
using maxutil::sim::Outbox;
using maxutil::sim::PartitionMode;
using maxutil::sim::QuietResult;
using maxutil::sim::QuietStatus;
using maxutil::sim::Runtime;
using maxutil::sim::RuntimeOptions;
using maxutil::util::CheckError;
using maxutil::util::Rng;
using maxutil::util::ThreadPool;
using maxutil::xform::ExtendedGraph;

RuntimeOptions threaded(std::size_t threads) {
  RuntimeOptions options;
  options.num_threads = threads;
  options.serial_cutoff = 0;  // exercise the parallel path even when tiny
  return options;
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.run_chunks(hits.size(), [&](std::size_t worker, std::size_t chunk) {
    EXPECT_LT(worker, 4u);
    hits[chunk].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.run_chunks(7, [&](std::size_t, std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 7);
}

TEST(ThreadPool, SerialFallbackWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  int sum = 0;  // no synchronization needed: everything runs inline
  pool.run_chunks(5, [&](std::size_t worker, std::size_t chunk) {
    EXPECT_EQ(worker, 0u);
    sum += static_cast<int>(chunk);
  });
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_chunks(32,
                      [&](std::size_t, std::size_t chunk) {
                        if (chunk % 2 == 0) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> ok{0};
  pool.run_chunks(8, [&](std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

/// Sends `count` messages to a fixed target in the first round, tagged with
/// the send sequence number.
class Sprayer : public Actor {
 public:
  Sprayer(ActorId target, int count) : target_(target), count_(count) {}
  void on_round(Outbox& out, std::span<const Message> inbox) override {
    (void)inbox;
    if (sent_) return;
    sent_ = true;
    for (int i = 0; i < count_; ++i) {
      out.send(target_, i, 0, {static_cast<double>(i)});
    }
  }

 private:
  ActorId target_;
  int count_;
  bool sent_ = false;
};

/// Records the (from, tag) sequence of every message it ever receives.
class Collector : public Actor {
 public:
  void on_round(Outbox& out, std::span<const Message> inbox) override {
    (void)out;
    for (const Message& m : inbox) {
      seen_.emplace_back(m.from, m.tag);
      EXPECT_EQ(m.payload.size(), 1u);
      EXPECT_DOUBLE_EQ(m.payload[0], static_cast<double>(m.tag));
    }
  }
  const std::vector<std::pair<ActorId, int>>& seen() const { return seen_; }

 private:
  std::vector<std::pair<ActorId, int>> seen_;
};

/// The flat counting-sort inbox must deliver grouped by recipient in
/// (sender actor id, send order) sequence — for every thread count.
TEST(ParallelRuntime, InboxOrderedBySenderThenSendSequence) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Runtime rt(threaded(threads));
    constexpr int kSenders = 9;
    constexpr int kPerSender = 3;
    for (int s = 0; s < kSenders; ++s) {
      rt.add_actor(std::make_unique<Sprayer>(kSenders, kPerSender));
    }
    const ActorId sink = rt.add_actor(std::make_unique<Collector>());
    rt.run_round();  // sprayers emit
    rt.run_round();  // collector drains
    ASSERT_TRUE(rt.quiet());
    const auto& collector = dynamic_cast<const Collector&>(rt.actor(sink));
    ASSERT_EQ(collector.seen().size(),
              static_cast<std::size_t>(kSenders * kPerSender));
    std::size_t i = 0;
    for (ActorId s = 0; s < kSenders; ++s) {
      for (int k = 0; k < kPerSender; ++k, ++i) {
        EXPECT_EQ(collector.seen()[i].first, s) << "thread count " << threads;
        EXPECT_EQ(collector.seen()[i].second, k);
      }
    }
    EXPECT_EQ(rt.delivered_messages(),
              static_cast<std::size_t>(kSenders * kPerSender));
  }
}

/// An actor that never stops chattering to itself — run_until_quiet can
/// never succeed.
class Chatter : public Actor {
 public:
  void on_round(Outbox& out, std::span<const Message> inbox) override {
    (void)inbox;
    out.send(0, 0, 0, {1.0});
  }
};

TEST(ParallelRuntime, RunUntilQuietStrictnessKnob) {
  Runtime rt;
  rt.add_actor(std::make_unique<Chatter>());
  rt.run_round();
  // Non-strict: the budget is observable instead of fatal, and the result
  // names the failure mode instead of leaving quiet() inference to callers.
  const QuietResult result = rt.run_until_quiet(50, /*strict=*/false);
  EXPECT_EQ(result.rounds, 50u);
  EXPECT_EQ(result.status, QuietStatus::kRoundLimit);
  EXPECT_FALSE(result.quiet());
  EXPECT_FALSE(rt.quiet());
  // Strict (the default) aborts once the budget is exhausted.
  EXPECT_THROW(rt.run_until_quiet(50), CheckError);
}

TEST(ParallelRuntime, LegacyModeRejectsThreads) {
  RuntimeOptions options;
  options.pooled_delivery = false;
  options.num_threads = 2;
  EXPECT_THROW(Runtime rt(options), CheckError);
}

/// Bit-identical allocations and utility trajectories across thread counts
/// (1, 2, 8), against the legacy delivery path, and across several seeds —
/// the determinism contract of the parallel runtime.
TEST(ParallelRuntime, DeterministicAcrossThreadCountsAndSeeds) {
  constexpr std::size_t kIterations = 12;
  for (const std::uint64_t seed : {2007ull, 11ull, 42ull}) {
    Rng rng(seed);
    const auto net = maxutil::gen::random_instance({}, rng);
    const ExtendedGraph xg(net);

    // Serial pooled reference trajectory.
    DistributedGradientSystem reference(xg);
    std::vector<double> reference_utilities;
    for (std::size_t i = 0; i < kIterations; ++i) {
      reference.iterate();
      reference_utilities.push_back(reference.utility());
    }
    const auto reference_routing = reference.routing_snapshot();

    // The legacy delivery path pins the pre-parallel serial behavior.
    RuntimeOptions legacy;
    legacy.pooled_delivery = false;
    DistributedGradientSystem legacy_system(xg, {}, legacy);
    for (std::size_t i = 0; i < kIterations; ++i) {
      legacy_system.iterate();
      EXPECT_EQ(legacy_system.utility(), reference_utilities[i])
          << "legacy diverged at iteration " << i << ", seed " << seed;
    }
    EXPECT_EQ(legacy_system.routing_snapshot().max_difference(
                  reference_routing),
              0.0);

    // Both partitioning strategies, at both thread counts, must replay the
    // serial trajectory exactly — the partition must be invisible in every
    // output.
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      for (const PartitionMode mode :
           {PartitionMode::kShard, PartitionMode::kChunked}) {
        RuntimeOptions options = threaded(threads);
        options.partition = mode;
        DistributedGradientSystem parallel(xg, {}, options);
        const char* mode_name =
            mode == PartitionMode::kShard ? "shard" : "chunked";
        for (std::size_t i = 0; i < kIterations; ++i) {
          parallel.iterate();
          EXPECT_EQ(parallel.utility(), reference_utilities[i])
              << threads << " threads (" << mode_name
              << ") diverged at iteration " << i << ", seed " << seed;
        }
        EXPECT_EQ(
            parallel.routing_snapshot().max_difference(reference_routing),
            0.0)
            << threads << " threads (" << mode_name << "), seed " << seed;
        EXPECT_EQ(parallel.runtime().delivered_messages(),
                  reference.runtime().delivered_messages());
        EXPECT_EQ(parallel.runtime().delivered_payload_doubles(),
                  reference.runtime().delivered_payload_doubles());
        EXPECT_EQ(parallel.runtime().partitioned(),
                  mode == PartitionMode::kShard)
            << "shard mode must actually install a partition";
      }
    }
  }
}

/// Non-deterministic mode also computes correct results here (the gradient
/// protocol is order-insensitive within a round: actors wait for all
/// inputs), it just waives the message-order guarantee.
TEST(ParallelRuntime, NonDeterministicModeStillConverges) {
  Rng rng(2007);
  const auto net = maxutil::gen::random_instance({}, rng);
  const ExtendedGraph xg(net);
  DistributedGradientSystem reference(xg);
  reference.run(8);

  RuntimeOptions options = threaded(4);
  options.deterministic = false;
  DistributedGradientSystem relaxed(xg, {}, options);
  relaxed.run(8);
  EXPECT_LT(relaxed.routing_snapshot().max_difference(
                reference.routing_snapshot()),
            1e-12);
}

/// After warmup, every payload buffer must come from the recycle free list:
/// steady-state rounds perform zero per-message heap allocations — at every
/// thread count, not just serially. Cross-shard sends return each buffer to
/// the pool that issued it (exact conservation), so the shard path has no
/// warmup-resistant leak.
TEST(ParallelRuntime, PayloadPoolRecyclesInSteadyState) {
  Rng rng(2007);
  const auto net = maxutil::gen::random_instance({}, rng);
  const ExtendedGraph xg(net);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    maxutil::sim::RuntimeOptions options;
    options.num_threads = threads;
    DistributedGradientSystem system(xg, {}, options);
    system.run(4);  // warmup: free lists grow to the per-round working set

    const std::size_t allocations_after_warmup =
        system.runtime().payload_pool_allocations();
    const std::size_t reuses_after_warmup =
        system.runtime().payload_pool_reuses();
    EXPECT_GT(allocations_after_warmup, 0u);

    system.run(6);
    EXPECT_EQ(system.runtime().payload_pool_allocations(),
              allocations_after_warmup)
        << "steady-state iterations must not allocate payload buffers at "
        << threads << " thread(s)";
    EXPECT_GT(system.runtime().payload_pool_reuses(), reuses_after_warmup);
    // Every send was served by the pool: acquisitions == reuses +
    // allocations and the overwhelming majority are reuses by now.
    EXPECT_GT(system.runtime().payload_pool_reuses(),
              10 * allocations_after_warmup);
  }
}

/// The pool also recycles under threads, and failure drops recycle rather
/// than leak (exercised via counters staying consistent).
TEST(ParallelRuntime, PoolAndCountersConsistentUnderThreadsAndFailure) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Runtime rt(threaded(threads));
    constexpr int kSenders = 6;
    for (int s = 0; s < kSenders; ++s) {
      rt.add_actor(std::make_unique<Sprayer>(kSenders, 4));
    }
    rt.add_actor(std::make_unique<Collector>());
    rt.run_round();
    rt.fail(kSenders);  // kill the collector before delivery
    rt.run_until_quiet(10);
    EXPECT_TRUE(rt.quiet());
    EXPECT_EQ(rt.dropped_messages(), static_cast<std::size_t>(kSenders * 4));
    EXPECT_EQ(rt.delivered_messages(), 0u);
  }
}

/// Wall-time counters accumulate (values are host-dependent, presence and
/// monotonicity are not).
TEST(ParallelRuntime, RoundTimersAccumulate) {
  Runtime rt;
  rt.add_actor(std::make_unique<Chatter>());
  rt.run_round();
  const double after_one = rt.total_round_seconds();
  EXPECT_GE(after_one, 0.0);
  rt.run_round();
  EXPECT_GE(rt.total_round_seconds(), after_one);
  EXPECT_GE(rt.last_round_seconds(), 0.0);
}

}  // namespace
