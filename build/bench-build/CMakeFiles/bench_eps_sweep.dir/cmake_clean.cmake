file(REMOVE_RECURSE
  "../bench/bench_eps_sweep"
  "../bench/bench_eps_sweep.pdb"
  "CMakeFiles/bench_eps_sweep.dir/bench_eps_sweep.cpp.o"
  "CMakeFiles/bench_eps_sweep.dir/bench_eps_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eps_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
