#include "lp/frank_wolfe.hpp"

#include <cmath>

#include "util/check.hpp"

namespace maxutil::lp {

using maxutil::util::ensure;

namespace {

/// Golden-section maximization of f on [0, 1] (f concave along the segment,
/// so unimodal).
double golden_section(const std::function<double(double)>& f) {
  constexpr double kInvPhi = 0.6180339887498949;
  double lo = 0.0, hi = 1.0;
  double m1 = hi - kInvPhi * (hi - lo);
  double m2 = lo + kInvPhi * (hi - lo);
  double f1 = f(m1), f2 = f(m2);
  for (int i = 0; i < 60 && hi - lo > 1e-12; ++i) {
    if (f1 < f2) {
      lo = m1;
      m1 = m2;
      f1 = f2;
      m2 = lo + kInvPhi * (hi - lo);
      f2 = f(m2);
    } else {
      hi = m2;
      m2 = m1;
      f2 = f1;
      m1 = hi - kInvPhi * (hi - lo);
      f1 = f(m1);
    }
  }
  // Consider the endpoints too (the maximizer may sit at 0 or 1).
  const double mid = (lo + hi) / 2.0;
  double best = mid, best_value = f(mid);
  for (const double candidate : {0.0, 1.0}) {
    const double v = f(candidate);
    if (v > best_value) {
      best_value = v;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

FrankWolfeSolution maximize_concave(
    const LpProblem& feasible_region,
    const std::function<double(const std::vector<double>&)>& value,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        gradient,
    const FrankWolfeOptions& options) {
  ensure(value != nullptr && gradient != nullptr,
         "maximize_concave: callbacks required");
  const std::size_t n = feasible_region.variable_count();

  // Working copy whose objective we overwrite with the current gradient.
  LpProblem oracle = feasible_region;
  oracle.set_sense(Sense::kMaximize);

  FrankWolfeSolution out;

  // Initial point: any vertex (maximize the zero objective).
  for (VarId v = 0; v < n; ++v) oracle.set_objective_coefficient(v, 0.0);
  const LpSolution start = solve(oracle, options.simplex);
  if (start.status != LpStatus::kOptimal) {
    out.status = start.status;
    return out;
  }
  std::vector<double> x = start.x;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const std::vector<double> grad = gradient(x);
    ensure(grad.size() == n, "maximize_concave: gradient dimension mismatch");
    for (VarId v = 0; v < n; ++v) oracle.set_objective_coefficient(v, grad[v]);
    const LpSolution vertex = solve(oracle, options.simplex);
    if (vertex.status != LpStatus::kOptimal) {
      out.status = vertex.status;
      return out;
    }
    // Duality gap g = grad' (s - x) >= f* - f(x) for concave f.
    double gap = 0.0;
    for (VarId v = 0; v < n; ++v) gap += grad[v] * (vertex.x[v] - x[v]);
    out.gap = gap;
    out.iterations = it + 1;
    if (gap <= options.gap_tolerance) break;

    // Exact line search on the segment x -> s.
    const auto along = [&](double t) {
      std::vector<double> point(n);
      for (VarId v = 0; v < n; ++v) {
        point[v] = x[v] + t * (vertex.x[v] - x[v]);
      }
      return point;
    };
    const double step =
        golden_section([&](double t) { return value(along(t)); });
    x = along(step);
    if (step <= 1e-14) break;  // stuck at the boundary of improvement
  }

  out.status = LpStatus::kOptimal;
  out.objective = value(x);
  out.x = std::move(x);
  return out;
}

}  // namespace maxutil::lp
