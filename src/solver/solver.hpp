#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/allocation.hpp"
#include "core/optimality.hpp"
#include "core/routing.hpp"
#include "stream/model.hpp"
#include "util/timeseries.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::solver {

/// The problem every backend solves: a validated StreamNetwork together with
/// its (cached) Section-3 extended-graph transformation. Building the
/// extended graph once here means the five optimizers, the parity tests, and
/// any pipeline stage all differentiate the *same* cost model — the paper's
/// premise that the transformed problem is the common ground between the LP
/// reference, the gradient schemes, and the back-pressure baseline.
///
/// The referenced StreamNetwork must outlive the Problem (same contract as
/// xform::ExtendedGraph).
class Problem {
 public:
  explicit Problem(const stream::StreamNetwork& network,
                   xform::PenaltyConfig penalty = {});

  const stream::StreamNetwork& network() const { return *network_; }
  const xform::ExtendedGraph& extended() const { return xg_; }
  std::size_t commodity_count() const { return xg_.commodity_count(); }

 private:
  const stream::StreamNetwork* network_;
  xform::ExtendedGraph xg_;
};

/// Shared solve knobs. Every field has a neutral default; 0 means "use the
/// backend's documented default" for the numeric knobs, so a default-
/// constructed SolveOptions reproduces each backend's standalone behavior.
/// Backend-specific extras travel in `extra` (string key/value passthrough —
/// the registry table in docs/SOLVERS.md lists each backend's keys).
struct SolveOptions {
  /// Iteration budget; 0 = backend default (gradient/backpressure/fw 5000,
  /// distributed 500; ignored by lp, whose pivots are unbounded here).
  std::size_t max_iterations = 0;

  /// Early-stop tolerance for solvers that support one (gradient: max phi
  /// change per iteration); 0 runs the full budget.
  double tolerance = 0.0;

  /// Step size eta for the gradient family; 0 = backend default (the
  /// paper's 0.04, or 1.0 in curvature-scaled mode).
  double eta = 0.0;

  /// Worker threads for backends with a parallel engine (distributed);
  /// 0 = all hardware threads.
  std::size_t threads = 1;

  /// Parallel partitioning strategy for the distributed runtime: "shard"
  /// (default — graph-aware shard partition, per-shard queues and pools)
  /// or "chunked" (contiguous actor-id chunks, the pre-sharding A/B
  /// reference). Results are bit-identical either way; only throughput
  /// changes. Ignored by backends without a parallel engine.
  std::string partition = "shard";

  /// Seed for any backend-internal randomness (none of the current five
  /// draw from it directly; the fault injector's default seed comes from
  /// extra["faults"]). Kept in the shared contract so stochastic future
  /// backends don't need a new field.
  std::uint64_t seed = 2007;

  /// Curvature-scaled (Newton-like) steps for the gradient family.
  bool curvature_scaled = false;

  /// Record a per-iteration history trace into SolveResult::history.
  bool record_history = false;

  /// Turn on the runtime observability layer (backends with
  /// supports_observation); fills SolveResult::obs.
  bool observe = false;

  /// Fill SolveResult::report with the backend's human-readable diagnostics
  /// (bottleneck prices, runtime/fault telemetry, ...).
  bool report = false;

  /// Start from this routing instead of the backend's cold start (backends
  /// with supports_warm_start). Must be valid on the Problem's extended
  /// graph. Pipelines thread the previous stage's routing through here.
  std::optional<core::RoutingState> warm_start;

  /// Per-solver passthrough (e.g. {"faults", "drop=0.1"} for distributed,
  /// {"buffer_cap", "8"} for backpressure, {"pwl_segments", "200"} for lp).
  std::map<std::string, std::string> extra;

  /// `extra` lookup helpers with fallbacks.
  double extra_number(const std::string& key, double fallback) const;
  std::string extra_text(const std::string& key,
                         const std::string& fallback) const;
};

/// Named outcome taxonomy shared by all backends (docs/SOLVERS.md).
enum class Status {
  kConverged,       // tolerance met / LP optimal: the solution is final
  kIterationLimit,  // budget exhausted; the iterate is usable but unproven
  kRoundLimit,      // a message wave exhausted its round budget (distributed)
  kInfeasible,      // the problem has no feasible point (LP certificate)
  kUnbounded,       // the LP relaxation is unbounded (model error)
  kFailed,          // backend error; SolveResult::message has the cause
};

const char* to_string(Status status);

/// True for statuses whose SolveResult carries a usable solution.
bool is_usable(Status status);

/// Observability export snapshot (filled when SolveOptions::observe and the
/// backend runs an instrumented runtime; absent under MAXUTIL_OBS_OFF).
struct ObsSnapshot {
  std::string metrics_csv;         // obs::MetricsRegistry::write_csv
  std::string metrics_report;      // obs::MetricsRegistry::report
  std::string trace_chrome_json;   // obs::Tracer::write_chrome_json
  std::string trace_csv;           // obs::Tracer::write_csv
  std::size_t trace_events = 0;
};

/// One pipeline stage's headline numbers (SolveResult::stages).
struct StageSummary {
  std::string solver;
  Status status = Status::kFailed;
  double utility = 0.0;
  std::size_t iterations = 0;
  double wall_seconds = 0.0;
};

/// The common result shape. Core fields (status, admitted, utility,
/// iterations, wall_seconds) are always set by every backend; the optional
/// blocks are filled when the backend produces them (the capability flags in
/// SolverInfo say which).
struct SolveResult {
  Status status = Status::kFailed;

  /// Admitted rate a_j per commodity (source units).
  std::vector<double> admitted;

  /// Resource usage f_v per *extended* node (servers, bandwidth nodes,
  /// dummies), parallel to the extended graph; empty when the backend does
  /// not expose node usage (backpressure, fw).
  std::vector<double> node_usage;

  /// Overall utility sum_j U_j(a_j).
  double utility = 0.0;

  /// Iterations (gradient steps, message-passing iterations, back-pressure
  /// rounds, or simplex pivots — the backend's natural unit).
  std::size_t iterations = 0;

  /// Wall-clock seconds of the solve call (stamped by the registry).
  double wall_seconds = 0.0;

  /// Failure cause for non-usable statuses; empty on success.
  std::string message;

  /// Non-fatal notes (round-budget exhaustion, ignored knobs, ...); the CLI
  /// prints each as a stderr warning.
  std::vector<std::string> warnings;

  /// Informational stdout lines (e.g. fw's duality-gap certificate); the
  /// CLI prints each before the result table.
  std::vector<std::string> notes;

  /// Backend-specific scalar diagnostics, e.g. {"duality_gap", 1e-6} (fw),
  /// {"rounds", 4200} (distributed), {"cost", ...} (gradient).
  std::vector<std::pair<std::string, double>> metrics;

  /// Human-readable diagnostics block (SolveOptions::report).
  std::string report;

  /// Final routing decision, for warm-start chaining and inspection
  /// (backends with emits_routing).
  std::optional<core::RoutingState> routing;

  /// Physical-network view of the solution (admission, per-server /
  /// per-link usage, per-commodity link flows).
  std::optional<core::PhysicalAllocation> allocation;

  /// Theorem-2 residuals at the final iterate (gradient family).
  std::optional<core::OptimalityReport> optimality;

  /// Per-iteration trace (SolveOptions::record_history).
  std::optional<util::TimeSeries> history;

  /// Observability export (SolveOptions::observe).
  std::optional<ObsSnapshot> obs;

  /// Per-stage summaries when this result came from a Pipeline (the outer
  /// fields are the last stage's).
  std::vector<StageSummary> stages;

  /// Convenience: metrics lookup; fallback when absent.
  double metric(const std::string& name, double fallback = 0.0) const;
};

}  // namespace maxutil::solver
