#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "xform/extended_graph.hpp"

namespace maxutil::core {

using maxutil::graph::EdgeId;
using maxutil::graph::NodeId;
using maxutil::stream::CommodityId;
using maxutil::xform::ExtendedGraph;

/// The routing decision phi of Section 4: phi_ik(j) is the fraction of node
/// i's commodity-j traffic t_i(j) processed over extended edge (i,k).
///
/// Invariants (enforced by `is_valid`):
///  * phi >= 0, and phi = 0 on edges not usable by the commodity;
///  * fractions at every non-sink node of the commodity's node set sum to 1;
///  * the support never leaves the commodity's usable subgraph, which is a
///    DAG by construction (commodity DAGs + dummy links), so routing is
///    structurally loop-free — the paper's loop-freedom requirement holds at
///    every iterate, while the blocked-set machinery (gamma.hpp) still rules
///    out the *latent* loops Gallager's update must avoid.
///
/// Storage is sparse SoA: one double per usable (commodity, edge) *slot* of
/// the graph's CommodityIndex — O(sum of usable subgraph sizes) instead of
/// the old dense [commodity][edge] matrix. Unusable pairs hold no storage;
/// `phi(j, e)` reports them as 0 and `set_phi` rejects nonzero mass on them.
/// The index is held by shared_ptr, so a RoutingState (e.g. a controller
/// snapshot) stays usable after its originating ExtendedGraph is destroyed.
class RoutingState {
 public:
  /// All-zero fractions (invalid until initialized); prefer `initial`.
  explicit RoutingState(const ExtendedGraph& xg);

  /// The paper's starting point: every commodity routes its entire offered
  /// load over the dummy difference link (admitted rate 0 — trivially
  /// feasible), and interior nodes spread uniformly over their usable
  /// out-edges so the first marginal-cost sweep is well defined everywhere.
  static RoutingState initial(const ExtendedGraph& xg);

  /// Fraction on (j, e); 0 for pairs outside the usable subgraph.
  double phi(CommodityId j, EdgeId e) const {
    const std::size_t slot = index_->slot_of(j, e);
    return slot == xform::CommodityIndex::kNoSlot ? 0.0 : phi_[slot];
  }
  void set_phi(CommodityId j, EdgeId e, double value);

  /// Slot-addressed hot-path accessors (slots from the CommodityIndex).
  double phi_slot(std::size_t slot) const { return phi_[slot]; }
  void set_phi_slot(std::size_t slot, double value);

  const xform::CommodityIndex& index() const { return *index_; }

  std::size_t commodity_count() const { return index_->commodity_count(); }
  std::size_t slot_count() const { return phi_.size(); }

  /// Copies commodity j's entire slot range from `src` (same index layout).
  void assign_commodity(CommodityId j, const RoutingState& src);

  /// Largest violation of the routing invariants (0 when valid): negative
  /// fractions or per-node sums away from 1 (mass on unusable edges is
  /// structurally impossible in the sparse layout).
  double max_invariant_violation(const ExtendedGraph& xg) const;

  /// True when `max_invariant_violation` is below `tol`.
  bool is_valid(const ExtendedGraph& xg, double tol = 1e-9) const;

  /// Largest |phi - other.phi| across all commodities/edges.
  double max_difference(const RoutingState& other) const;

  /// this = (1 - alpha) * this + alpha * target (used by the capacity
  /// safeguard to damp a Gamma step; preserves all invariants since the
  /// simplex of fractions is convex).
  void blend_toward(const RoutingState& target, double alpha);

 private:
  std::shared_ptr<const xform::CommodityIndex> index_;
  std::vector<double> phi_;  // [slot]
};

}  // namespace maxutil::core
