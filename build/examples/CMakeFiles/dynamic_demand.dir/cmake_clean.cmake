file(REMOVE_RECURSE
  "CMakeFiles/dynamic_demand.dir/dynamic_demand.cpp.o"
  "CMakeFiles/dynamic_demand.dir/dynamic_demand.cpp.o.d"
  "dynamic_demand"
  "dynamic_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
