# docs_lint: checks that every relative markdown link in the repo's
# documentation points at a file that exists. Run as a ctest:
#
#   cmake -DREPO=<source dir> -P docs_lint.cmake
#
# External links (http/https/mailto) and pure in-page anchors (#...) are
# skipped; fragments on relative links are stripped before the existence
# check. Exits non-zero (FATAL_ERROR) listing every broken link.

if(NOT DEFINED REPO)
  message(FATAL_ERROR "docs_lint: pass -DREPO=<repository root>")
endif()

set(doc_files
    ${REPO}/README.md
    ${REPO}/DESIGN.md
    ${REPO}/EXPERIMENTS.md
    ${REPO}/ROADMAP.md)
file(GLOB docs_dir_files ${REPO}/docs/*.md)
list(APPEND doc_files ${docs_dir_files})

set(broken "")
set(checked 0)

foreach(doc ${doc_files})
  if(NOT EXISTS ${doc})
    list(APPEND broken "${doc}: file listed for linting does not exist")
    continue()
  endif()
  file(READ ${doc} content)
  get_filename_component(doc_dir ${doc} DIRECTORY)

  # Inline markdown links: ](target). Reference-style definitions are rare
  # in this repo and intentionally out of scope. The "](" is rewritten to a
  # bracket-free marker first: a "]" inside a CMake list item suppresses the
  # ";" separators, which would collapse all matches into one item.
  string(REGEX REPLACE "\\]\\(" "\nLINKTO(" content "${content}")
  string(REGEX MATCHALL "LINKTO\\(([^)\n]+)\\)" links "${content}")
  foreach(link ${links})
    string(REGEX REPLACE "^LINKTO\\((.*)\\)$" "\\1" target "${link}")
    # Drop an optional "title" part: ](file.md "Title")
    string(REGEX REPLACE "[ \t]+\"[^\"]*\"$" "" target "${target}")
    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()
    endif()
    # Strip a #fragment from a relative link.
    string(REGEX REPLACE "#.*$" "" target "${target}")
    if(target STREQUAL "")
      continue()
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS ${doc_dir}/${target})
      file(RELATIVE_PATH rel ${REPO} ${doc})
      list(APPEND broken "${rel}: broken link '${target}'")
    endif()
  endforeach()
endforeach()

if(NOT broken STREQUAL "")
  list(JOIN broken "\n  " report)
  message(FATAL_ERROR "docs_lint: broken relative links:\n  ${report}")
endif()
message(STATUS "docs_lint: ${checked} relative links OK")
