#include "stream/utility.hpp"

#include <cmath>

#include "util/check.hpp"

namespace maxutil::stream {

using maxutil::util::ensure;

Utility::Utility(Kind kind, double weight, double alpha)
    : kind_(kind), weight_(weight), alpha_(alpha) {
  ensure(weight > 0.0, "Utility: weight must be positive");
  ensure(alpha >= 0.0, "Utility: alpha must be non-negative");
}

Utility Utility::linear(double weight) {
  return Utility(Kind::kLinear, weight, 0.0);
}

Utility Utility::logarithmic(double weight) {
  return Utility(Kind::kLog, weight, 1.0);
}

Utility Utility::square_root(double weight) {
  return Utility(Kind::kSqrt, weight, 0.5);
}

Utility Utility::alpha_fair(double alpha, double weight) {
  return Utility(Kind::kAlphaFair, weight, alpha);
}

double Utility::value(double a) const {
  ensure(a >= 0.0, "Utility::value: negative rate");
  switch (kind_) {
    case Kind::kLinear:
      return weight_ * a;
    case Kind::kLog:
      return weight_ * std::log1p(a);
    case Kind::kSqrt:
      return weight_ * std::sqrt(a);
    case Kind::kAlphaFair:
      if (alpha_ == 1.0) return weight_ * std::log1p(a);
      return weight_ * (std::pow(1.0 + a, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
  }
  return 0.0;
}

double Utility::derivative(double a) const {
  ensure(a >= 0.0, "Utility::derivative: negative rate");
  switch (kind_) {
    case Kind::kLinear:
      return weight_;
    case Kind::kLog:
      return weight_ / (1.0 + a);
    case Kind::kSqrt:
      // U' is unbounded at 0; clamp to keep gradient steps finite. The
      // clamped region [0, 1e-12] is far below any meaningful stream rate.
      return weight_ * 0.5 / std::sqrt(std::max(a, 1e-12));
    case Kind::kAlphaFair:
      return weight_ * std::pow(1.0 + a, -alpha_);
  }
  return 0.0;
}

double Utility::second_derivative(double a) const {
  ensure(a >= 0.0, "Utility::second_derivative: negative rate");
  switch (kind_) {
    case Kind::kLinear:
      return 0.0;
    case Kind::kLog:
      return -weight_ / ((1.0 + a) * (1.0 + a));
    case Kind::kSqrt: {
      const double safe = std::max(a, 1e-12);
      return -weight_ * 0.25 / (safe * std::sqrt(safe));
    }
    case Kind::kAlphaFair:
      return -weight_ * alpha_ * std::pow(1.0 + a, -alpha_ - 1.0);
  }
  return 0.0;
}

std::string Utility::describe() const {
  switch (kind_) {
    case Kind::kLinear:
      return "linear(w=" + std::to_string(weight_) + ")";
    case Kind::kLog:
      return "log1p(w=" + std::to_string(weight_) + ")";
    case Kind::kSqrt:
      return "sqrt(w=" + std::to_string(weight_) + ")";
    case Kind::kAlphaFair:
      return "alpha_fair(alpha=" + std::to_string(alpha_) +
             ",w=" + std::to_string(weight_) + ")";
  }
  return "unknown";
}

}  // namespace maxutil::stream
