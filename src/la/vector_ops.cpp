#include "la/vector_ops.hpp"

#include <cmath>

#include "util/check.hpp"

namespace maxutil::la {

using maxutil::util::ensure;

double dot(std::span<const double> a, std::span<const double> b) {
  ensure(a.size() == b.size(), "dot: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

void axpy(double alpha, std::span<const double> x, std::vector<double>& y) {
  ensure(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::vector<double>& x, double alpha) {
  for (double& v : x) v *= alpha;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_inf(std::span<const double> x) {
  double worst = 0.0;
  for (const double v : x) worst = std::max(worst, std::abs(v));
  return worst;
}

double sum(std::span<const double> x) {
  double total = 0.0;
  for (const double v : x) total += v;
  return total;
}

std::vector<double> subtract(std::span<const double> a,
                             std::span<const double> b) {
  ensure(a.size() == b.size(), "subtract: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace maxutil::la
