#include "serve/protocol.hpp"

#include <sstream>

#include "util/check.hpp"

namespace maxutil::serve {

using maxutil::util::ensure;

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kTopology: return "topology";
    case RequestKind::kAdmit: return "admit";
    case RequestKind::kQuery: return "query";
  }
  return "?";
}

std::string Request::describe() const {
  switch (kind) {
    case RequestKind::kTopology:
      return event.describe();
    case RequestKind::kAdmit: {
      std::ostringstream out;
      out << "admit=" << event.commodity;
      if (event.factor != 1.0) out << "*" << event.factor;
      out << "@" << event.time;
      return out.str();
    }
    case RequestKind::kQuery:
      return "query=" + event.commodity + "@" + std::to_string(event.time);
  }
  return "?";
}

Request parse_request(const std::string& line) {
  ensure(line.find(',') == std::string::npos,
         "serve: '" + line + "' has a comma — one request per line");
  const std::size_t eq = line.find('=');
  ensure(eq != std::string::npos,
         "serve: '" + line + "' is not key=value@T");
  const std::string key = line.substr(0, eq);

  Request request;
  if (key == "admit" || key == "query") {
    // Reuse the churn grammar machinery by parsing the payload as an
    // arrive event: same COMMODITY[*F]@T shape, same error behaviour.
    // Error messages are rewritten to quote the operator's own line.
    ctrl::ChurnPlan plan;
    try {
      plan = ctrl::parse_churn_plan("arrive" + line.substr(eq));
    } catch (const util::CheckError& e) {
      std::string message = e.what();
      const std::string alias = "'arrive" + line.substr(eq) + "'";
      for (std::size_t pos = message.find(alias); pos != std::string::npos;
           pos = message.find(alias, pos)) {
        message.replace(pos, alias.size(), "'" + line + "'");
      }
      throw util::CheckError(message);
    }
    ensure(plan.events.size() == 1, "serve: '" + line + "' is empty");
    request.event = plan.events.front();
    if (key == "admit") {
      request.kind = RequestKind::kAdmit;
    } else {
      request.kind = RequestKind::kQuery;
      ensure(request.event.factor == 1.0,
             "serve: query '" + line + "' takes no *FACTOR");
    }
  } else {
    const ctrl::ChurnPlan plan = ctrl::parse_churn_plan(line);
    ensure(plan.events.size() == 1,
           "serve: '" + line + "' did not parse to one event");
    request.kind = RequestKind::kTopology;
    request.event = plan.events.front();
  }
  return request;
}

std::string Script::describe() const {
  std::string out;
  for (const Request& request : requests) {
    out += request.describe();
    out += "\n";
  }
  return out;
}

void for_each_request(std::istream& in,
                      const std::function<void(Request&&)>& fn) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t last_time = 0;
  bool first = true;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.pop_back();
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.erase(line.begin());
    }
    if (line.empty()) continue;

    Request request;
    try {
      request = parse_request(line);
    } catch (const util::CheckError& e) {
      throw util::CheckError("line " + std::to_string(line_no) + ": " +
                             e.what());
    }
    request.line = line_no;
    ensure(first || request.time() >= last_time,
           "line " + std::to_string(line_no) + ": timestamp @" +
               std::to_string(request.time()) + " decreases (previous @" +
               std::to_string(last_time) +
               "); serve streams must be time-ordered");
    first = false;
    last_time = request.time();
    fn(std::move(request));
  }
}

Script parse_script(std::istream& in) {
  Script script;
  for_each_request(in, [&script](Request&& request) {
    script.requests.push_back(std::move(request));
  });
  return script;
}

Script parse_script_text(const std::string& text) {
  std::istringstream in(text);
  return parse_script(in);
}

}  // namespace maxutil::serve
