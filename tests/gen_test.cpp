#include <gtest/gtest.h>

#include <set>

#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "graph/algorithms.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using maxutil::gen::Figure1Ids;
using maxutil::gen::Figure1Params;
using maxutil::gen::RandomInstanceParams;
using maxutil::stream::CommodityId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;

TEST(Figure1, MatchesPaperTopology) {
  Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  EXPECT_EQ(net.node_count(), 10u);  // 8 servers + 2 sinks
  EXPECT_EQ(net.link_count(), 12u);
  EXPECT_EQ(net.commodity_count(), 2u);

  // S1 subgraph: 1 -> {2,3} -> {4,5} -> 6 -> Sink1 (9 usable links).
  std::size_t s1_links = 0;
  std::size_t s2_links = 0;
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    s1_links += net.uses_link(ids.s1, l);
    s2_links += net.uses_link(ids.s2, l);
  }
  EXPECT_EQ(s1_links, 9u);
  EXPECT_EQ(s2_links, 4u);

  // The shared link 3 -> 5 carries both streams.
  const auto l35 = net.graph().find_edge(ids.server[2], ids.server[4]);
  ASSERT_LT(l35, net.link_count());
  EXPECT_TRUE(net.uses_link(ids.s1, l35));
  EXPECT_TRUE(net.uses_link(ids.s2, l35));
}

TEST(Figure1, PerStreamSubgraphsAreDags) {
  Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  EXPECT_TRUE(maxutil::graph::is_dag(net.graph(), net.commodity_filter(ids.s1)));
  EXPECT_TRUE(maxutil::graph::is_dag(net.graph(), net.commodity_filter(ids.s2)));
}

TEST(Figure1, Property1HoldsWithShrinkage) {
  Figure1Params params;
  params.stage_shrinkage = 0.7;
  Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example(params, &ids);
  EXPECT_TRUE(maxutil::stream::verify_path_independence(net, ids.s1));
  EXPECT_TRUE(maxutil::stream::verify_path_independence(net, ids.s2));
  // Four processing stages of shrinkage 0.7 from source to sink.
  EXPECT_NEAR(net.delivery_gain(ids.s1), 0.7 * 0.7 * 0.7 * 0.7, 1e-12);
}

TEST(Figure1, ValidatesCleanly) {
  const StreamNetwork net = maxutil::gen::figure1_example();
  EXPECT_TRUE(maxutil::stream::validate(net).ok());
}

TEST(RandomInstance, PaperDefaultsValidate) {
  Rng rng(2007);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  EXPECT_EQ(net.commodity_count(), 3u);
  // 40 servers + 3 sinks.
  EXPECT_EQ(net.node_count(), 43u);
  EXPECT_TRUE(maxutil::stream::validate(net).ok());
}

TEST(RandomInstance, ParameterDistributionsRespected) {
  Rng rng(99);
  RandomInstanceParams p;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  for (maxutil::stream::NodeId n = 0; n < net.node_count(); ++n) {
    if (net.is_sink(n)) continue;
    EXPECT_GE(net.capacity(n), p.min_capacity);
    EXPECT_LE(net.capacity(n), p.max_capacity);
  }
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    EXPECT_GE(net.bandwidth(l), p.min_bandwidth);
    EXPECT_LE(net.bandwidth(l), p.max_bandwidth);
    for (CommodityId j = 0; j < net.commodity_count(); ++j) {
      if (!net.uses_link(j, l)) continue;
      EXPECT_GE(net.consumption(j, l), p.min_consumption);
      EXPECT_LE(net.consumption(j, l), p.max_consumption);
      // beta = g_head / g_tail with g in [1, 10]: ratio within [0.1, 10].
      EXPECT_GE(net.shrinkage(j, l), 0.1 - 1e-12);
      EXPECT_LE(net.shrinkage(j, l), 10.0 + 1e-12);
    }
  }
}

TEST(RandomInstance, SourcesAreDistinct) {
  Rng rng(7);
  RandomInstanceParams p;
  p.commodities = 5;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  std::set<maxutil::stream::NodeId> sources;
  for (CommodityId j = 0; j < net.commodity_count(); ++j) {
    sources.insert(net.source(j));
  }
  EXPECT_EQ(sources.size(), 5u);
}

TEST(RandomInstance, CommoditySubgraphsAreDagsAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const StreamNetwork net = maxutil::gen::random_instance({}, rng);
    for (CommodityId j = 0; j < net.commodity_count(); ++j) {
      EXPECT_TRUE(
          maxutil::graph::is_dag(net.graph(), net.commodity_filter(j)))
          << "seed " << seed << " commodity " << j;
    }
  }
}

TEST(RandomInstance, DeterministicForSeed) {
  Rng rng1(5), rng2(5);
  const StreamNetwork a = maxutil::gen::random_instance({}, rng1);
  const StreamNetwork b = maxutil::gen::random_instance({}, rng2);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t l = 0; l < a.link_count(); ++l) {
    EXPECT_DOUBLE_EQ(a.bandwidth(l), b.bandwidth(l));
  }
  for (maxutil::stream::NodeId n = 0; n < a.node_count(); ++n) {
    EXPECT_DOUBLE_EQ(a.capacity(n), b.capacity(n));
  }
}

TEST(RandomInstance, DepthControlsLongestPath) {
  Rng rng(3);
  RandomInstanceParams p;
  p.stages = 8;
  p.min_width = 2;
  p.max_width = 2;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  for (CommodityId j = 0; j < net.commodity_count(); ++j) {
    // Exactly `stages` processing hops: stages-1 between server layers plus
    // the delivery hop into the sink.
    EXPECT_EQ(maxutil::graph::longest_path_length(net.graph(),
                                                  net.commodity_filter(j)),
              p.stages);
  }
}

TEST(RandomInstance, CustomUtilityApplied) {
  Rng rng(21);
  RandomInstanceParams p;
  p.utility_for = [](CommodityId) { return Utility::logarithmic(2.0); };
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  EXPECT_FALSE(net.utility(0).is_linear());
  EXPECT_DOUBLE_EQ(net.utility(0).weight(), 2.0);
}

TEST(RandomInstance, RejectsImpossibleParameters) {
  Rng rng(1);
  RandomInstanceParams p;
  p.servers = 5;
  p.stages = 10;
  p.min_width = 2;
  p.max_width = 2;
  EXPECT_THROW(maxutil::gen::random_instance(p, rng), CheckError);
  RandomInstanceParams q;
  q.commodities = 0;
  EXPECT_THROW(maxutil::gen::random_instance(q, rng), CheckError);
}

TEST(RandomInstance, Property1HoldsOnSmallInstance) {
  Rng rng(17);
  RandomInstanceParams p;
  p.servers = 12;
  p.commodities = 2;
  p.stages = 3;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  for (CommodityId j = 0; j < net.commodity_count(); ++j) {
    EXPECT_TRUE(maxutil::stream::verify_path_independence(net, j));
  }
}

}  // namespace
