#pragma once

#include <string>

namespace maxutil::stream {

/// Concave increasing utility function U_j(a) of an admitted stream rate,
/// with an exact closed-form derivative (the gradient algorithm's dummy
/// difference-link costs need U').
///
/// Value-semantic: a small tagged union over the families the paper's
/// evaluation and common NUM literature use. All families are increasing and
/// concave on [0, inf); all are finite at 0 (alpha-fair is the shifted
/// variant (1+a)^(1-alpha) so that zero admission has finite utility, which
/// the dummy-node admission scheme requires).
class Utility {
 public:
  /// U(a) = w * a — the paper's Section 6 choice ("total throughput").
  static Utility linear(double weight = 1.0);

  /// U(a) = w * log(1 + a) — proportional-fairness style.
  static Utility logarithmic(double weight = 1.0);

  /// U(a) = w * sqrt(a).
  static Utility square_root(double weight = 1.0);

  /// Shifted alpha-fair: U(a) = w * ((1+a)^(1-alpha) - 1) / (1-alpha) for
  /// alpha != 1, and w * log(1+a) for alpha == 1. alpha >= 0.
  static Utility alpha_fair(double alpha, double weight = 1.0);

  /// U(a).
  double value(double a) const;

  /// dU/da; strictly positive for all families.
  double derivative(double a) const;

  /// d2U/da2; non-positive for all families (concavity). Used by the
  /// curvature-scaled (second-derivative) step variant.
  double second_derivative(double a) const;

  /// The utility families this library ships.
  enum class Family { kLinear, kLog, kSqrt, kAlphaFair };

  /// True for the linear family (lets solvers skip PWL approximation).
  bool is_linear() const { return kind_ == Family::kLinear; }

  /// Which family this instance belongs to.
  Family family() const { return kind_; }

  /// Multiplicative weight w.
  double weight() const { return weight_; }

  /// Fairness parameter (meaningful for the alpha-fair family; 1 for log,
  /// 0.5 for sqrt, 0 for linear by convention).
  double alpha() const { return alpha_; }

  /// Family name plus parameters, for reports.
  std::string describe() const;

 private:
  using Kind = Family;
  Utility(Kind kind, double weight, double alpha);
  Kind kind_;
  double weight_;
  double alpha_;
};

}  // namespace maxutil::stream
