// Tests for the dynamic-workload features: demand traces, run-time lambda
// updates with continued (warm) optimization, and warm-start transfer of a
// routing decision across a failure.

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "core/warm_start.hpp"
#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "gen/trace.hpp"
#include "stream/surgery.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::core::GradientOptimizer;
using maxutil::core::GradientOptions;
using maxutil::gen::DemandTrace;
using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

TEST(DemandTrace, ConstantAndStep) {
  const DemandTrace c = DemandTrace::constant(5.0);
  EXPECT_DOUBLE_EQ(c.at(0), 5.0);
  EXPECT_DOUBLE_EQ(c.at(1000), 5.0);
  const DemandTrace s = DemandTrace::step(2.0, 8.0, 10);
  EXPECT_DOUBLE_EQ(s.at(9), 2.0);
  EXPECT_DOUBLE_EQ(s.at(10), 8.0);
}

TEST(DemandTrace, OnOffDutyCycle) {
  const DemandTrace t = DemandTrace::on_off(10.0, 1.0, 4, 1);
  EXPECT_DOUBLE_EQ(t.at(0), 10.0);
  EXPECT_DOUBLE_EQ(t.at(1), 1.0);
  EXPECT_DOUBLE_EQ(t.at(4), 10.0);
  EXPECT_DOUBLE_EQ(t.at(7), 1.0);
}

TEST(DemandTrace, SineStaysPositiveAndPeriodic) {
  const DemandTrace t = DemandTrace::sine(10.0, 4.0, 20);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GT(t.at(i), 0.0);
    EXPECT_NEAR(t.at(i), t.at(i + 20), 1e-9);
  }
  EXPECT_NEAR(t.at(5), 14.0, 1e-9);  // peak at quarter period
}

TEST(DemandTrace, RandomWalkDeterministicAndPositive) {
  const DemandTrace a = DemandTrace::random_walk(10.0, 0.2, 99);
  const DemandTrace b = DemandTrace::random_walk(10.0, 0.2, 99);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.at(i), b.at(i));
    EXPECT_GT(a.at(i), 0.0);
  }
  // Random access equals sequential access (lazy path is consistent).
  const DemandTrace c = DemandTrace::random_walk(10.0, 0.2, 99);
  EXPECT_DOUBLE_EQ(c.at(150), a.at(150));
}

TEST(DemandTrace, RejectsBadParameters) {
  EXPECT_THROW(DemandTrace::constant(0.0), CheckError);
  EXPECT_THROW(DemandTrace::step(-1.0, 2.0, 5), CheckError);
  EXPECT_THROW(DemandTrace::on_off(1.0, 1.0, 4, 5), CheckError);
  EXPECT_THROW(DemandTrace::sine(1.0, 2.0, 10), CheckError);
}

// --- Run-time lambda updates ---

StreamNetwork chain(double lambda) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 20.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 5.0);
  const auto bt = net.add_link(b, t, 6.0);
  const CommodityId j = net.add_commodity("c", a, t, lambda, Utility::linear());
  net.enable_link(j, ab, 2.0);
  net.enable_link(j, bt, 1.0);
  return net;
}

TEST(DynamicLambda, SetLambdaValidates) {
  StreamNetwork net = chain(3.0);
  net.set_lambda(0, 7.5);
  EXPECT_DOUBLE_EQ(net.lambda(0), 7.5);
  EXPECT_THROW(net.set_lambda(0, 0.0), CheckError);
  EXPECT_THROW(net.set_lambda(5, 1.0), CheckError);
}

TEST(DynamicLambda, OptimizerTracksDemandIncrease) {
  // Start with lambda = 2 (uncongested), then raise to 100 (network-bound):
  // the running optimizer must re-converge toward the bottleneck rate 5.
  StreamNetwork net = chain(2.0);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const ExtendedGraph xg(net, penalty);
  GradientOptions options;
  options.eta = 0.2;
  options.record_history = false;
  options.max_iterations = 100000;
  GradientOptimizer opt(xg, options);
  for (int i = 0; i < 2000; ++i) opt.step();
  EXPECT_NEAR(opt.utility(), 2.0, 0.1);

  net.set_lambda(0, 100.0);
  opt.refresh_flows();
  for (int i = 0; i < 4000; ++i) opt.step();
  EXPECT_GT(opt.utility(), 4.3);
  EXPECT_LT(opt.utility(), 5.0);
  EXPECT_NEAR(opt.allocation().max_capacity_violation(xg), 0.0, 1e-9);
}

TEST(DynamicLambda, OptimizerTracksDemandDecrease) {
  StreamNetwork net = chain(100.0);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.2;
  options.record_history = false;
  options.max_iterations = 100000;
  GradientOptimizer opt(xg, options);
  for (int i = 0; i < 3000; ++i) opt.step();
  EXPECT_GT(opt.utility(), 4.0);  // pinned at the bottleneck

  net.set_lambda(0, 1.5);  // demand collapses
  opt.refresh_flows();
  for (int i = 0; i < 2000; ++i) opt.step();
  EXPECT_NEAR(opt.utility(), 1.5, 0.1);
  EXPECT_LE(opt.admitted()[0], 1.5 + 1e-9);
}

// --- Warm start across failures ---

TEST(WarmStart, TransferredRoutingIsValidAndNearOptimal) {
  maxutil::gen::Figure1Params params;
  params.lambda = 30.0;
  params.server_capacity = 40.0;
  params.link_bandwidth = 25.0;
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example(params, &ids);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.1;
  options.record_history = false;
  options.max_iterations = 4000;
  GradientOptimizer before(xg, options);
  before.run();

  const auto surgery = maxutil::stream::without_server(net, ids.server[1]);
  const ExtendedGraph new_xg(surgery.network);
  const auto warm = maxutil::core::transfer_routing(xg, before.routing(),
                                                    new_xg, surgery);
  EXPECT_TRUE(warm.is_valid(new_xg, 1e-9));

  // Warm start must begin with substantial utility already admitted (the
  // surviving commodities keep most of their routing).
  GradientOptimizer after(new_xg, options, warm);
  EXPECT_GT(after.utility(), 20.0);
}

TEST(WarmStart, ConvergesFasterThanColdStart) {
  maxutil::gen::Figure1Params params;
  params.lambda = 30.0;
  params.server_capacity = 40.0;
  params.link_bandwidth = 25.0;
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example(params, &ids);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.1;
  options.record_history = false;
  options.max_iterations = 5000;
  GradientOptimizer before(xg, options);
  before.run();

  const auto surgery = maxutil::stream::without_server(net, ids.server[1]);
  const ExtendedGraph new_xg(surgery.network);
  const auto target = maxutil::xform::solve_reference(new_xg).optimal_utility;

  const auto iterations_to = [&](GradientOptimizer& opt, double goal) {
    std::size_t count = 0;
    while (opt.utility() < goal && count < 20000) {
      opt.step();
      ++count;
    }
    return count;
  };

  const auto warm_routing = maxutil::core::transfer_routing(
      xg, before.routing(), new_xg, surgery);
  GradientOptimizer warm(new_xg, options, warm_routing);
  GradientOptimizer cold(new_xg, options);
  const std::size_t warm_iters = iterations_to(warm, 0.95 * target);
  const std::size_t cold_iters = iterations_to(cold, 0.95 * target);
  EXPECT_LT(warm_iters, cold_iters / 2)
      << "warm " << warm_iters << " vs cold " << cold_iters;
}

TEST(WarmStart, RepairsOverloadedTransfer) {
  // Tight capacities: after losing a replica the surviving path cannot carry
  // the transferred admission; the repair must yield a feasible start.
  maxutil::gen::Figure1Params params;
  params.lambda = 60.0;
  params.server_capacity = 30.0;
  params.link_bandwidth = 18.0;
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example(params, &ids);
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.1;
  options.record_history = false;
  options.max_iterations = 4000;
  GradientOptimizer before(xg, options);
  before.run();

  const auto surgery = maxutil::stream::without_server(net, ids.server[1]);
  const ExtendedGraph new_xg(surgery.network);
  const auto warm = maxutil::core::transfer_routing(xg, before.routing(),
                                                    new_xg, surgery);
  const auto flows = maxutil::core::compute_flows(new_xg, warm);
  for (NodeId v = 0; v < new_xg.node_count(); ++v) {
    if (!new_xg.has_finite_capacity(v)) continue;
    EXPECT_LT(flows.f_node[v], new_xg.capacity(v));
  }
  // And it is a legal optimizer start.
  EXPECT_NO_THROW(GradientOptimizer(new_xg, options, warm));
}

}  // namespace
