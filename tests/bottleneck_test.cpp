#include <gtest/gtest.h>

#include <cmath>

#include "core/bottleneck.hpp"
#include "core/optimizer.hpp"
#include "gen/random_instance.hpp"
#include "stream/model.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::core::GradientOptimizer;
using maxutil::core::GradientOptions;
using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

StreamNetwork chain(double lambda) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 20.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 5.0);
  const auto bt = net.add_link(b, t, 6.0);
  const CommodityId j = net.add_commodity("c", a, t, lambda, Utility::linear());
  net.enable_link(j, ab, 2.0);
  net.enable_link(j, bt, 1.0);
  return net;
}

TEST(Bottleneck, RanksTightResourcesFirst) {
  const StreamNetwork net = chain(100.0);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;  // small eps: the binding node runs close to C
  const ExtendedGraph xg(net, penalty);
  GradientOptions options;
  options.eta = 0.2;
  options.record_history = false;
  options.max_iterations = 4000;
  GradientOptimizer opt(xg, options);
  opt.run();
  const auto report = maxutil::core::bottleneck_report(xg, opt.flows());
  ASSERT_GE(report.size(), 3u);
  // Prices sorted descending.
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].price, report[i].price);
  }
  // The binding resources (node a at c=2 and the 5-bandwidth a->b link, both
  // limiting at 5 units) outrank node b (20 capacity, load ~5).
  const NodeId top = report.front().node;
  EXPECT_TRUE(top == 0 || top == xg.bandwidth_node(0))
      << "unexpected top bottleneck " << xg.node_label(top);
  EXPECT_GT(report.front().utilization, 0.9);
}

TEST(Bottleneck, TopKTruncates) {
  const StreamNetwork net = chain(100.0);
  const ExtendedGraph xg(net);
  const auto flows =
      maxutil::core::compute_flows(xg, maxutil::core::RoutingState::initial(xg));
  EXPECT_EQ(maxutil::core::bottleneck_report(xg, flows, 2).size(), 2u);
  // 2 servers + 2 bandwidth nodes have finite capacity.
  EXPECT_EQ(maxutil::core::bottleneck_report(xg, flows).size(), 4u);
}

TEST(Bottleneck, BarrierPricesConvergeToLpShadowPrices) {
  // At small eps, the distributed barrier price eps*D'(f) at the converged
  // solution approximates the LP capacity duals — the economics the
  // capacity-planning example is built on.
  Rng rng(2007);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 20;
  p.commodities = 3;
  p.stages = 3;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.02;
  const ExtendedGraph xg(net, penalty);
  const auto reference = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(reference.status, maxutil::lp::LpStatus::kOptimal);

  GradientOptions options;
  options.eta = 0.05;
  options.record_history = false;
  options.max_iterations = 20000;
  GradientOptimizer opt(xg, options);
  opt.run();

  const auto report = maxutil::core::bottleneck_report(xg, opt.flows(), 3);
  ASSERT_GE(report.size(), 3u);
  for (const auto& entry : report) {
    const double lp_price = reference.node_shadow_price[entry.node];
    EXPECT_NEAR(entry.price, lp_price, 0.05 * (1.0 + std::abs(lp_price)))
        << xg.node_label(entry.node);
  }
  // The top distributed bottleneck carries a strictly positive LP dual.
  EXPECT_GT(reference.node_shadow_price[report.front().node], 0.01);
}

TEST(Bottleneck, ShadowPricesAreNonNegativeAndBoundedByUtilityWeight) {
  // For linear utility with weight w, one unit of any capacity can add at
  // most ... well, w / min(c) admitted units; just check non-negativity and
  // that slack nodes price at (near) zero.
  Rng rng(7);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 14;
  p.commodities = 2;
  p.stages = 3;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  const ExtendedGraph xg(net);
  const auto reference = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(reference.status, maxutil::lp::LpStatus::kOptimal);
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    EXPECT_GE(reference.node_shadow_price[v], -1e-7);
    if (xg.has_finite_capacity(v) &&
        reference.node_usage[v] < 0.5 * xg.capacity(v)) {
      EXPECT_NEAR(reference.node_shadow_price[v], 0.0, 1e-6)
          << xg.node_label(v);
    }
  }
}

}  // namespace
