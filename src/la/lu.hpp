#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "la/matrix.hpp"

namespace maxutil::la {

/// LU factorization with partial pivoting (PA = LU) of a square matrix.
///
/// Used for exact flow-balance solves when the routing support contains
/// near-cycles and for small dense systems inside the solvers. Construction
/// throws util::CheckError if the matrix is singular to working precision.
class LuFactorization {
 public:
  /// Factorizes `a`; throws on a non-square or numerically singular input.
  explicit LuFactorization(Matrix a);

  /// Solves A x = b for x; b.size() must equal the matrix dimension.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves A^T x = b (useful for adjoint/marginal-cost systems).
  std::vector<double> solve_transposed(std::span<const double> b) const;

  /// Dimension n of the factored n x n matrix.
  std::size_t size() const { return lu_.rows(); }

  /// Determinant of the original matrix (product of U diagonal, signed by
  /// the permutation parity).
  double determinant() const;

 private:
  Matrix lu_;                     // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_; // row permutation: row i of PA is perm_[i] of A
  int permutation_sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
std::vector<double> solve_dense(Matrix a, std::span<const double> b);

}  // namespace maxutil::la
