#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace maxutil::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform(double lo, double hi) {
  ensure(lo <= hi, "uniform: lo must not exceed hi");
  // 53 random mantissa bits -> uniform double in [0, 1).
  const double unit =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ensure(lo <= hi, "uniform_int: lo must not exceed hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = Rng::max() - Rng::max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::chance(double p) { return uniform(0.0, 1.0) < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log(u1) is finite.
  double u1 = 0.0;
  do {
    u1 = uniform(0.0, 1.0);
  } while (u1 <= 0.0);
  const double u2 = uniform(0.0, 1.0);
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

Rng Rng::split() { return Rng((*this)()); }

std::size_t Rng::index(std::size_t n) {
  ensure(n > 0, "index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace maxutil::util
