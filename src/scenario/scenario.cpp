#include "scenario/scenario.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace maxutil::scenario {

using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::ensure;

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw CheckError("scenario: line " + std::to_string(line) + ": " + message);
}

double parse_number(const std::string& token, std::size_t line,
                    const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    fail(line, std::string("expected a number for ") + what + ", got '" +
                   token + "'");
  }
  if (consumed != token.size()) {
    fail(line, std::string("trailing characters in ") + what + " '" + token +
                   "'");
  }
  return value;
}

}  // namespace

Utility parse_utility(const std::string& token) {
  // Split optional "*<w>" weight suffix.
  double weight = 1.0;
  std::string family = token;
  if (const auto star = token.find('*'); star != std::string::npos) {
    family = token.substr(0, star);
    const std::string w = token.substr(star + 1);
    try {
      weight = std::stod(w);
    } catch (const std::exception&) {
      throw CheckError("scenario: bad utility weight '" + w + "'");
    }
  }
  if (family == "linear") return Utility::linear(weight);
  if (family == "log") return Utility::logarithmic(weight);
  if (family == "sqrt") return Utility::square_root(weight);
  if (family.rfind("alpha", 0) == 0) {
    const std::string a = family.substr(5);
    try {
      return Utility::alpha_fair(std::stod(a), weight);
    } catch (const CheckError&) {
      throw;
    } catch (const std::exception&) {
      throw CheckError("scenario: bad alpha parameter '" + a + "'");
    }
  }
  throw CheckError("scenario: unknown utility family '" + family + "'");
}

std::string utility_token(const Utility& utility) {
  std::ostringstream os;
  switch (utility.family()) {
    case Utility::Family::kLinear:
      os << "linear";
      break;
    case Utility::Family::kLog:
      os << "log";
      break;
    case Utility::Family::kSqrt:
      os << "sqrt";
      break;
    case Utility::Family::kAlphaFair:
      os << "alpha" << utility.alpha();
      break;
  }
  if (utility.weight() != 1.0) os << '*' << utility.weight();
  return os.str();
}

StreamNetwork parse(std::istream& in) {
  StreamNetwork net;
  std::map<std::string, NodeId> nodes;
  std::map<std::string, CommodityId> commodities;

  const auto node_of = [&](const std::string& name, std::size_t line) {
    const auto it = nodes.find(name);
    if (it == nodes.end()) fail(line, "unknown node '" + name + "'");
    return it->second;
  };
  const auto commodity_of = [&](const std::string& name, std::size_t line) {
    const auto it = commodities.find(name);
    if (it == commodities.end()) fail(line, "unknown commodity '" + name + "'");
    return it->second;
  };

  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    for (std::string t; line >> t;) tokens.push_back(t);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    const auto want = [&](std::size_t n) {
      if (tokens.size() != n + 1) {
        fail(line_number, "'" + keyword + "' expects " + std::to_string(n) +
                              " arguments, got " +
                              std::to_string(tokens.size() - 1));
      }
    };

    try {
      if (keyword == "server") {
        want(2);
        if (nodes.count(tokens[1]) != 0) {
          fail(line_number, "duplicate node '" + tokens[1] + "'");
        }
        nodes[tokens[1]] = net.add_server(
            tokens[1], parse_number(tokens[2], line_number, "capacity"));
      } else if (keyword == "sink") {
        want(1);
        if (nodes.count(tokens[1]) != 0) {
          fail(line_number, "duplicate node '" + tokens[1] + "'");
        }
        nodes[tokens[1]] = net.add_sink(tokens[1]);
      } else if (keyword == "link") {
        want(3);
        net.add_link(node_of(tokens[1], line_number),
                     node_of(tokens[2], line_number),
                     parse_number(tokens[3], line_number, "bandwidth"));
      } else if (keyword == "commodity") {
        want(5);
        if (commodities.count(tokens[1]) != 0) {
          fail(line_number, "duplicate commodity '" + tokens[1] + "'");
        }
        commodities[tokens[1]] = net.add_commodity(
            tokens[1], node_of(tokens[2], line_number),
            node_of(tokens[3], line_number),
            parse_number(tokens[4], line_number, "lambda"),
            parse_utility(tokens[5]));
      } else if (keyword == "use") {
        want(4);
        const CommodityId j = commodity_of(tokens[1], line_number);
        const NodeId from = node_of(tokens[2], line_number);
        const NodeId to = node_of(tokens[3], line_number);
        const auto link = net.graph().find_edge(from, to);
        if (link == net.graph().edge_count()) {
          fail(line_number,
               "no link " + tokens[2] + " -> " + tokens[3] + " declared");
        }
        net.enable_link(j, link,
                        parse_number(tokens[4], line_number, "consumption"));
      } else if (keyword == "potential") {
        want(3);
        net.set_potential(commodity_of(tokens[1], line_number),
                          node_of(tokens[2], line_number),
                          parse_number(tokens[3], line_number, "potential"));
      } else {
        fail(line_number, "unknown keyword '" + keyword + "'");
      }
    } catch (const CheckError& e) {
      const std::string what = e.what();
      // Model-layer errors get the line number prefixed for context.
      if (what.find("scenario: line") == std::string::npos) {
        fail(line_number, what);
      }
      throw;
    }
  }
  return net;
}

StreamNetwork parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

StreamNetwork load_file(const std::string& path) {
  std::ifstream in(path);
  ensure(in.good(), "scenario: cannot open '" + path + "'");
  return parse(in);
}

void write(const StreamNetwork& net, std::ostream& out) {
  // Names are whitespace-delimited tokens in this format.
  const auto check_name = [](const std::string& name) {
    ensure(!name.empty() &&
               name.find_first_of(" \t\n#") == std::string::npos,
           "scenario: name '" + name + "' contains whitespace or '#'");
  };
  for (NodeId n = 0; n < net.node_count(); ++n) check_name(net.node_name(n));
  for (CommodityId j = 0; j < net.commodity_count(); ++j) {
    check_name(net.commodity_name(j));
  }
  // The `use` keyword addresses links by endpoint pair, so parallel links
  // are not representable in this format.
  {
    std::map<std::pair<NodeId, NodeId>, int> seen;
    const auto& g = net.graph();
    for (std::size_t l = 0; l < net.link_count(); ++l) {
      ensure(++seen[{g.tail(l), g.head(l)}] == 1,
             "scenario: parallel links are not representable");
    }
  }
  out << "# maxutil scenario\n";
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (net.is_sink(n)) {
      out << "sink " << net.node_name(n) << '\n';
    } else {
      out << "server " << net.node_name(n) << ' ' << net.capacity(n) << '\n';
    }
  }
  const auto& g = net.graph();
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    out << "link " << net.node_name(g.tail(l)) << ' '
        << net.node_name(g.head(l)) << ' ' << net.bandwidth(l) << '\n';
  }
  for (CommodityId j = 0; j < net.commodity_count(); ++j) {
    out << "commodity " << net.commodity_name(j) << ' '
        << net.node_name(net.source(j)) << ' ' << net.node_name(net.sink(j))
        << ' ' << net.lambda(j) << ' ' << utility_token(net.utility(j))
        << '\n';
    for (std::size_t l = 0; l < net.link_count(); ++l) {
      if (!net.uses_link(j, l)) continue;
      out << "use " << net.commodity_name(j) << ' '
          << net.node_name(g.tail(l)) << ' ' << net.node_name(g.head(l)) << ' '
          << net.consumption(j, l) << '\n';
    }
    for (NodeId n = 0; n < net.node_count(); ++n) {
      if (net.potential(j, n) != 1.0) {
        out << "potential " << net.commodity_name(j) << ' ' << net.node_name(n)
            << ' ' << net.potential(j, n) << '\n';
      }
    }
  }
}

std::string write_string(const StreamNetwork& net) {
  std::ostringstream os;
  os.precision(17);  // lossless double round-trip
  write(net, os);
  return os.str();
}

}  // namespace maxutil::scenario
