#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace maxutil::graph {

/// Shard index within a Partition (dense, 0..shards-1).
using ShardId = std::uint32_t;

/// Knobs for partition_bfs_grow. Defaults favor balanced shards with a
/// light refinement pass; all choices are deterministic for a fixed
/// (graph, shards, options) triple — the property the deterministic runtime
/// depends on (see docs/RUNTIME.md §4).
struct PartitionOptions {
  /// Seed for the grow-order tie-breaks. Two runs with equal seeds produce
  /// identical partitions; changing the seed explores a different (equally
  /// valid) grow order.
  std::uint64_t seed = 2007;

  /// Greedy move passes after the BFS growth. Each pass sweeps nodes in id
  /// order and moves a node to the neighboring shard with the largest
  /// weighted-cut gain, subject to the balance bound. 0 disables refinement.
  std::size_t refinement_passes = 2;

  /// Shard size ceiling as a fraction above perfect balance:
  /// max size = ceil(n / shards) * (1 + balance_slack). The BFS growth
  /// respects ceil(n / shards) exactly; only refinement uses the slack.
  double balance_slack = 0.10;
};

/// A shard assignment of a graph's nodes. `shard_of[v]` is the shard of
/// node v; shards are dense 0..shards-1 and every shard is non-empty when
/// nodes >= shards (extra shards stay empty when shards > nodes).
struct Partition {
  std::vector<ShardId> shard_of;
  std::size_t shards = 1;

  /// Edges whose endpoints land in different shards (structural cut).
  std::size_t edge_cut = 0;

  /// Same cut weighted by the caller's per-edge weights (== edge_cut when
  /// no weights were supplied).
  double weighted_cut = 0.0;

  std::size_t shard_size(ShardId s) const;
};

/// Structural edge cut of an assignment: number of edges with endpoints in
/// different shards. `shard_of.size()` must equal `g.node_count()`.
std::size_t edge_cut(const Digraph& g, std::span<const ShardId> shard_of);

/// Weighted edge cut; `edge_weight` is parallel to the graph's edge ids
/// (empty = unit weights).
double weighted_edge_cut(const Digraph& g, std::span<const ShardId> shard_of,
                         std::span<const double> edge_weight);

/// The baseline assignment the pre-partitioned runtime effectively used:
/// contiguous id ranges of ceil(nodes / shards) (round-robin over chunk
/// boundaries, ignoring adjacency entirely). Kept as the A/B reference the
/// partitioner must beat on edge cut.
Partition partition_contiguous(std::size_t nodes, std::size_t shards);

/// Edge-cut-minimizing shard partition by deterministic BFS growth plus
/// greedy refinement.
///
/// Growth: shards are grown one at a time to the exact balance target
/// ceil(n / shards). Each shard seeds at the unassigned node with the
/// highest weighted degree (ties to the lowest id) and absorbs a BFS
/// frontier over the graph viewed as undirected — neighbors enqueue in
/// ascending edge-id order, so the frontier order is a pure function of the
/// graph. When the frontier empties (disconnected remainder), the next
/// seed is chosen the same way. Refinement: `refinement_passes` greedy
/// sweeps move nodes to the adjacent shard with the largest reduction of
/// the weighted cut, subject to the `balance_slack` size ceiling and to
/// never emptying a shard.
///
/// `edge_weight` (optional, parallel to edge ids) biases both the seed
/// choice and the refinement gains — the extended-graph caller passes the
/// number of commodities able to use each edge, making the cut a proxy for
/// cross-shard messages per protocol wave (the commodity-DAG-aware cut).
///
/// Deterministic: equal (g, shards, edge_weight, options) inputs produce
/// identical partitions on every run, platform, and thread count.
Partition partition_bfs_grow(const Digraph& g, std::size_t shards,
                             std::span<const double> edge_weight = {},
                             const PartitionOptions& options = {});

}  // namespace maxutil::graph
