#pragma once

#include <memory>
#include <vector>

#include "core/flow.hpp"
#include "core/routing.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// Marginal costs of Section 5: dA/dr_i(j), computed by the paper's
/// deadlock-free upstream protocol — every node waits for the value from all
/// of its downstream neighbors, then broadcasts its own (eq. 9). Here the
/// wave is realized as a reverse topological sweep of each commodity's
/// usable DAG; the sim module re-implements it with real messages and is
/// tested to agree.
///
/// Storage is flat SoA indexed by the CommodityIndex's local node ids
/// (node_begin(j)..node_end(j) per commodity); `dr_at`/`curvature_at` look
/// up by global node id.
struct MarginalCosts {
  std::shared_ptr<const xform::CommodityIndex> index;

  /// dA/dr_i(j): marginal cost of one extra unit of commodity-j traffic at
  /// node i. 0 at the commodity sink by convention.
  std::vector<double> d_cost_d_input;  // [flat local node]

  /// Diagonal curvature estimate K_i(j) ~ d2A/dr_i(j)^2, computed by the
  /// same downstream-to-upstream telescoping as eq. (9) with second
  /// derivatives (K_i = sum_k phi^2 [c^2 (Y'' + eps D'') + beta^2 K_head]).
  /// Powers the curvature-scaled (Newton-like) step variant that Gallager's
  /// paper sketches as the "second derivative algorithm"; an approximation
  /// (cross terms between sibling edges are dropped), which only affects
  /// step *size*, never the descent property.
  std::vector<double> curvature;  // [flat local node]

  /// dA/dr_v(j) by global node id; 0 when v is not a commodity-j node.
  double dr_at(CommodityId j, NodeId v) const {
    const std::size_t local = index->local_of(j, v);
    return local == xform::CommodityIndex::kNoSlot ? 0.0
                                                   : d_cost_d_input[local];
  }

  /// K_v(j) by global node id; 0 when v is not a commodity-j node.
  double curvature_at(CommodityId j, NodeId v) const {
    const std::size_t local = index->local_of(j, v);
    return local == xform::CommodityIndex::kNoSlot ? 0.0 : curvature[local];
  }
};

/// The per-edge marginal of eq. (10)'s bracket (and eq. 15's a-term base):
///   dA_i/df_e * c_e(j) + beta_e(j) * dA/dr_head(j)
/// where dA_i/df_e = Y'_e(f_e) + eps*D'_i(f_i) (eq. 11 with the paper's
/// epsilon folded into D). Slot-addressed hot-path form.
double marginal_via_slot(const ExtendedGraph& xg, const FlowState& flows,
                         const MarginalCosts& marginals, std::size_t slot);

/// Per-edge curvature kappa_e(j) = c^2 (Y'' + eps D'') + beta^2 K_head: the
/// second-derivative analogue of `marginal_via_slot`.
double curvature_via_slot(const ExtendedGraph& xg, const FlowState& flows,
                          const MarginalCosts& marginals, std::size_t slot);

/// (commodity, global edge) form of `marginal_via_slot`; the edge must be
/// usable by j.
double marginal_via_edge(const ExtendedGraph& xg, const FlowState& flows,
                         const MarginalCosts& marginals, CommodityId j,
                         EdgeId e);

/// (commodity, global edge) form of `curvature_via_slot`.
double curvature_via_edge(const ExtendedGraph& xg, const FlowState& flows,
                          const MarginalCosts& marginals, CommodityId j,
                          EdgeId e);

/// Runs the upstream sweep (eq. 9) for every commodity.
MarginalCosts compute_marginals(const ExtendedGraph& xg,
                                const RoutingState& routing,
                                const FlowState& flows);

}  // namespace maxutil::core
