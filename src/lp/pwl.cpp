#include "lp/pwl.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxutil::lp {

using maxutil::util::ensure;

PwlConcave PwlConcave::from_function(const std::function<double(double)>& fn,
                                     double hi, std::size_t segments) {
  ensure(hi > 0.0, "PwlConcave: hi must be positive");
  ensure(segments >= 1, "PwlConcave: at least one segment required");
  PwlConcave out;
  out.base_value_ = fn(0.0);
  out.breakpoints_.resize(segments + 1);
  for (std::size_t k = 0; k <= segments; ++k) {
    out.breakpoints_[k] =
        hi * static_cast<double>(k) / static_cast<double>(segments);
  }
  out.slopes_.resize(segments);
  for (std::size_t k = 0; k < segments; ++k) {
    const double x0 = out.breakpoints_[k];
    const double x1 = out.breakpoints_[k + 1];
    out.slopes_[k] = (fn(x1) - fn(x0)) / (x1 - x0);
  }
  for (std::size_t k = 1; k < segments; ++k) {
    ensure(out.slopes_[k] <= out.slopes_[k - 1] + 1e-9,
           "PwlConcave: function is not concave on the sampling grid");
  }
  return out;
}

double PwlConcave::evaluate(double x) const {
  const double hi = breakpoints_.back();
  x = std::clamp(x, 0.0, hi);
  double value = base_value_;
  for (std::size_t k = 0; k < slopes_.size(); ++k) {
    const double seg_lo = breakpoints_[k];
    const double seg_hi = breakpoints_[k + 1];
    if (x <= seg_lo) break;
    value += slopes_[k] * (std::min(x, seg_hi) - seg_lo);
  }
  return value;
}

double PwlConcave::max_gap(const std::function<double(double)>& fn,
                           std::size_t probes) const {
  ensure(probes >= 2, "PwlConcave::max_gap: probes too small");
  const double hi = breakpoints_.back();
  double worst = 0.0;
  for (std::size_t i = 0; i <= probes; ++i) {
    const double x = hi * static_cast<double>(i) / static_cast<double>(probes);
    worst = std::max(worst, std::abs(evaluate(x) - fn(x)));
  }
  return worst;
}

VarId add_pwl_admission_variable(LpProblem& problem, double lambda,
                                 const PwlConcave& pwl,
                                 const std::string& prefix) {
  ensure(lambda > 0.0, "add_pwl_admission_variable: lambda must be positive");
  ensure(std::abs(pwl.breakpoints().back() - lambda) < 1e-9 * (1.0 + lambda),
         "add_pwl_admission_variable: pwl domain must equal [0, lambda]");
  const VarId admitted =
      problem.add_variable(prefix + ".admitted", 0.0, lambda, 0.0);
  std::vector<std::pair<VarId, double>> link{{admitted, -1.0}};
  for (std::size_t k = 0; k < pwl.slopes().size(); ++k) {
    const double width = pwl.breakpoints()[k + 1] - pwl.breakpoints()[k];
    const VarId seg =
        problem.add_variable(prefix + ".seg" + std::to_string(k), 0.0, width,
                             pwl.slopes()[k]);
    link.emplace_back(seg, 1.0);
  }
  // sum of segments == admitted rate
  problem.add_constraint(std::move(link), Relation::kEq, 0.0);
  return admitted;
}

}  // namespace maxutil::lp
