#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace maxutil::graph {

/// Predicate deciding whether an edge participates in a traversal; used to
/// restrict algorithms to a commodity subgraph or to the positive-routing
/// support without materializing subgraphs.
using EdgeFilter = std::function<bool(EdgeId)>;

/// Kahn topological sort over edges accepted by `filter` (all edges when the
/// filter is empty). Returns std::nullopt when the filtered graph has a
/// cycle; otherwise the nodes in an order where every accepted edge goes
/// forward.
std::optional<std::vector<NodeId>> topological_sort(
    const Digraph& g, const EdgeFilter& filter = {});

/// True when the filtered graph is acyclic.
bool is_dag(const Digraph& g, const EdgeFilter& filter = {});

/// Nodes reachable from `start` along accepted edges (including `start`).
std::vector<bool> reachable_from(const Digraph& g, NodeId start,
                                 const EdgeFilter& filter = {});

/// Nodes from which `target` is reachable along accepted edges
/// (including `target`).
std::vector<bool> reaches(const Digraph& g, NodeId target,
                          const EdgeFilter& filter = {});

/// Length (edge count) of the longest path in the filtered DAG; throws
/// util::CheckError if the filtered graph is cyclic. The paper's Section 6
/// denotes this L — the per-iteration message-propagation depth of the
/// gradient algorithm.
std::size_t longest_path_length(const Digraph& g, const EdgeFilter& filter = {});

/// All simple paths from `from` to `to` along accepted edges, as node
/// sequences. Exponential in general; callers use it on the small
/// per-commodity DAGs of tests/examples (guarded by `max_paths`).
std::vector<std::vector<NodeId>> enumerate_paths(const Digraph& g, NodeId from,
                                                 NodeId to,
                                                 const EdgeFilter& filter = {},
                                                 std::size_t max_paths = 10000);

/// True when every node in `nodes` is connected to at least one accepted
/// edge or the graph has a single node.
bool is_weakly_connected(const Digraph& g);

}  // namespace maxutil::graph
