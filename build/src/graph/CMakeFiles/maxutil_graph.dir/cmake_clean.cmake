file(REMOVE_RECURSE
  "CMakeFiles/maxutil_graph.dir/algorithms.cpp.o"
  "CMakeFiles/maxutil_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/maxutil_graph.dir/digraph.cpp.o"
  "CMakeFiles/maxutil_graph.dir/digraph.cpp.o.d"
  "libmaxutil_graph.a"
  "libmaxutil_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
