#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>

#include "ctrl/churn_plan.hpp"
#include "ctrl/controller.hpp"
#include "gen/figure1.hpp"
#include "solver/registry.hpp"
#include "util/check.hpp"

namespace {

using maxutil::ctrl::ChurnEvent;
using maxutil::ctrl::ChurnEventKind;
using maxutil::ctrl::ChurnPlan;
using maxutil::ctrl::ChurnReport;
using maxutil::ctrl::Controller;
using maxutil::ctrl::ControllerOptions;
using maxutil::ctrl::DegradationPolicy;
using maxutil::ctrl::EventOutcome;
using maxutil::ctrl::kNotRecovered;
using maxutil::ctrl::parse_churn_plan;
using maxutil::util::CheckError;

ControllerOptions fast_options() {
  ControllerOptions options;
  options.solve.eta = 0.1;
  options.solve.tolerance = 1e-6;
  options.watchdog_iterations = 3000;
  options.lp_reference = false;  // skip the per-event LP in structural tests
  return options;
}

// --- Plan grammar ---

TEST(ChurnPlan, ParsesEveryEventKindAndSortsByTime) {
  const ChurnPlan plan = parse_churn_plan(
      "restore=n2@6, depart=k@5,arrive=j*1.5@4,cap=relay*0.5@3,"
      "bw=a-b*2@2,crash=n2@1");
  ASSERT_EQ(plan.events.size(), 6u);
  EXPECT_EQ(plan.events[0].kind, ChurnEventKind::kCrash);
  EXPECT_EQ(plan.events[0].node, "n2");
  EXPECT_EQ(plan.events[0].time, 1u);
  EXPECT_EQ(plan.events[1].kind, ChurnEventKind::kBwScale);
  EXPECT_EQ(plan.events[1].from, "a");
  EXPECT_EQ(plan.events[1].to, "b");
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 2.0);
  EXPECT_EQ(plan.events[2].kind, ChurnEventKind::kCapScale);
  EXPECT_DOUBLE_EQ(plan.events[2].factor, 0.5);
  EXPECT_EQ(plan.events[3].kind, ChurnEventKind::kArrive);
  EXPECT_EQ(plan.events[3].commodity, "j");
  EXPECT_DOUBLE_EQ(plan.events[3].factor, 1.5);
  EXPECT_EQ(plan.events[4].kind, ChurnEventKind::kDepart);
  EXPECT_EQ(plan.events[5].kind, ChurnEventKind::kRestore);
}

TEST(ChurnPlan, DescribeRoundTrips) {
  const std::string spec =
      "crash=n2@1,bw=a-b*2@2,cap=relay*0.5@3,arrive=j*1.5@4,depart=k@5";
  const ChurnPlan plan = parse_churn_plan(spec);
  const ChurnPlan again = parse_churn_plan(plan.describe());
  ASSERT_EQ(again.events.size(), plan.events.size());
  EXPECT_EQ(again.describe(), plan.describe());
}

TEST(ChurnPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(parse_churn_plan("").empty());
  EXPECT_TRUE(parse_churn_plan(" ,  , ").empty());
}

TEST(ChurnPlan, SameTimeEventsKeepSpecOrder) {
  const ChurnPlan plan = parse_churn_plan("depart=a@3,arrive=b@3,crash=c@3");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, ChurnEventKind::kDepart);
  EXPECT_EQ(plan.events[1].kind, ChurnEventKind::kArrive);
  EXPECT_EQ(plan.events[2].kind, ChurnEventKind::kCrash);
}

TEST(ChurnPlan, RejectsMalformedEntries) {
  EXPECT_THROW(parse_churn_plan("boom=x@1"), CheckError);      // unknown key
  EXPECT_THROW(parse_churn_plan("crash=x"), CheckError);       // missing @T
  EXPECT_THROW(parse_churn_plan("crash=x@-1"), CheckError);    // bad time
  EXPECT_THROW(parse_churn_plan("crash=x@soon"), CheckError);  // bad time
  EXPECT_THROW(parse_churn_plan("crash=@1"), CheckError);      // empty name
  EXPECT_THROW(parse_churn_plan("cap=x@1"), CheckError);       // missing *F
  EXPECT_THROW(parse_churn_plan("cap=x*0@1"), CheckError);     // zero factor
  EXPECT_THROW(parse_churn_plan("cap=x*-2@1"), CheckError);    // negative
  EXPECT_THROW(parse_churn_plan("cap=x*nan@1"), CheckError);   // non-finite
  EXPECT_THROW(parse_churn_plan("bw=ab*2@1"), CheckError);     // no '-' pair
  EXPECT_THROW(parse_churn_plan("crash"), CheckError);         // no '='
}

TEST(ChurnPlan, ParsesPolicyNames) {
  EXPECT_EQ(maxutil::ctrl::parse_policy("proportional"),
            DegradationPolicy::kProportional);
  EXPECT_EQ(maxutil::ctrl::parse_policy("priority"),
            DegradationPolicy::kPriority);
  EXPECT_EQ(maxutil::ctrl::parse_policy("freeze"), DegradationPolicy::kFreeze);
  EXPECT_THROW(maxutil::ctrl::parse_policy("yolo"), CheckError);
}

// --- Controller: exact restores ---

TEST(Controller, CrashRestoreRoundTripIsExact) {
  maxutil::gen::Figure1Ids ids;
  const auto net = maxutil::gen::figure1_example({}, &ids);
  Controller controller(net, fast_options());
  const double before = controller.utility();
  const std::size_t nodes_before = controller.network().node_count();

  controller.apply(parse_churn_plan("crash=Server 2@1").events[0]);
  EXPECT_EQ(controller.network().node_count(), nodes_before - 1);

  const EventOutcome restore =
      controller.apply(parse_churn_plan("restore=Server 2@2").events[0]);
  EXPECT_TRUE(restore.exact_restore);
  EXPECT_EQ(restore.iterations, 0u);
  EXPECT_EQ(restore.recovery_iterations, 0u);
  EXPECT_EQ(restore.status, maxutil::solver::Status::kConverged);
  EXPECT_EQ(controller.network().node_count(), nodes_before);
  // Bit-exact: the snapshot is reinstated, not re-computed.
  EXPECT_EQ(controller.utility(), before);
  EXPECT_EQ(controller.report().exact_restores, 1u);
}

TEST(Controller, DepartArriveRoundTripIsExact) {
  const auto net = maxutil::gen::figure1_example();
  Controller controller(net, fast_options());
  const double before = controller.utility();

  controller.apply(parse_churn_plan("depart=S2@1").events[0]);
  EXPECT_EQ(controller.network().commodity_count(), 1u);

  const EventOutcome arrive =
      controller.apply(parse_churn_plan("arrive=S2@2").events[0]);
  EXPECT_TRUE(arrive.exact_restore);
  EXPECT_EQ(arrive.iterations, 0u);
  EXPECT_EQ(controller.network().commodity_count(), 2u);
  EXPECT_EQ(controller.utility(), before);
}

TEST(Controller, InterveningEventDefeatsExactRestore) {
  const auto net = maxutil::gen::figure1_example();
  Controller controller(net, fast_options());
  controller.apply(parse_churn_plan("crash=Server 2@1").events[0]);
  controller.apply(parse_churn_plan("cap=Server 4*0.5@2").events[0]);
  const EventOutcome restore =
      controller.apply(parse_churn_plan("restore=Server 2@3").events[0]);
  // The configuration no longer matches the crash snapshot, so the restore
  // re-solves (warm-started off the degraded routing).
  EXPECT_FALSE(restore.exact_restore);
  EXPECT_TRUE(restore.warm_started || restore.cold_started);
  EXPECT_GT(restore.iterations, 0u);
}

TEST(Controller, ArriveAtDifferentRateIsNotExact) {
  const auto net = maxutil::gen::figure1_example();
  Controller controller(net, fast_options());
  controller.apply(parse_churn_plan("depart=S2@1").events[0]);
  const EventOutcome arrive =
      controller.apply(parse_churn_plan("arrive=S2*0.5@2").events[0]);
  EXPECT_FALSE(arrive.exact_restore);
  EXPECT_EQ(controller.network().commodity_count(), 2u);
}

// --- Controller: warm starts, policies, SLOs ---

TEST(Controller, WarmStartsAreStrictlyFeasible) {
  const auto net = maxutil::gen::figure1_example();
  Controller controller(net, fast_options());
  const ChurnReport report = controller.run(parse_churn_plan(
      "cap=Server 3*0.3@1,bw=Server 3-Server 5*0.5@2,cap=Server 3*2@3"));
  ASSERT_EQ(report.events.size(), 3u);
  for (const EventOutcome& o : report.events) {
    EXPECT_TRUE(o.warm_started);
    // The degradation policy hands the optimizer a point strictly inside
    // the capacity guard.
    EXPECT_LT(o.warm_start_violation, 0.0) << o.event.describe();
  }
}

TEST(Controller, StartKindConservation) {
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.lp_reference = true;
  Controller controller(net, options);
  const ChurnReport report = controller.run(parse_churn_plan(
      "cap=Server 3*0.5@1,crash=Server 2@2,restore=Server 2@3,"
      "depart=S2@4,arrive=S2@5,cap=Server 3*2@6"));
  ASSERT_EQ(report.events.size(), 6u);
  EXPECT_EQ(report.warm_starts + report.cold_starts + report.exact_restores,
            report.events.size());
  for (const EventOutcome& o : report.events) {
    EXPECT_GE(o.utility_deficit, 0.0);
    EXPECT_GT(o.optimum, 0.0);
  }
}

TEST(Controller, FreezePolicyColdStartsOnInfeasibleCarryOver) {
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.policy = DegradationPolicy::kFreeze;
  Controller controller(net, options);
  // Shrinking the shared Server 3 to 2% of its power makes the carried-over
  // routing grossly infeasible; freeze sheds nothing, so it must cold-start.
  const EventOutcome outcome =
      controller.apply(parse_churn_plan("cap=Server 3*0.02@1").events[0]);
  EXPECT_TRUE(outcome.degraded_infeasible);
  EXPECT_TRUE(outcome.cold_started);
  EXPECT_FALSE(outcome.warm_started);
}

TEST(Controller, ProportionalPolicyKeepsWarmStartOnSameEvent) {
  const auto net = maxutil::gen::figure1_example();
  Controller controller(net, fast_options());  // proportional default
  const EventOutcome outcome =
      controller.apply(parse_churn_plan("cap=Server 3*0.02@1").events[0]);
  EXPECT_TRUE(outcome.warm_started);
  EXPECT_LT(outcome.warm_start_violation, 0.0);
}

TEST(Controller, PriorityPolicyKeepsWarmStartOnSameEvent) {
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.policy = DegradationPolicy::kPriority;
  Controller controller(net, options);
  const EventOutcome outcome =
      controller.apply(parse_churn_plan("cap=Server 3*0.02@1").events[0]);
  EXPECT_TRUE(outcome.warm_started);
  EXPECT_LT(outcome.warm_start_violation, 0.0);
}

TEST(Controller, RecoverySlosAgainstReferenceOptimum) {
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.lp_reference = true;
  options.recovery_band = 0.15;
  Controller controller(net, options);
  const EventOutcome outcome =
      controller.apply(parse_churn_plan("cap=Server 3*0.5@1").events[0]);
  EXPECT_GT(outcome.optimum, 0.0);
  ASSERT_NE(outcome.recovery_iterations, kNotRecovered);
  EXPECT_LE(outcome.recovery_iterations, outcome.iterations);
  EXPECT_GE(outcome.utility_deficit, 0.0);
}

TEST(Controller, MetricsAndTraceAreRecorded) {
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.record_trace = true;
  Controller controller(net, options);
  controller.run(
      parse_churn_plan("crash=Server 2@1,restore=Server 2@2,depart=S2@3"));
  const auto& metrics = controller.metrics();
  const auto events = metrics.find("ctrl_events_total");
  ASSERT_TRUE(events.has_value());
  EXPECT_EQ(metrics.counter_value(*events), 3u);
  const auto exact = metrics.find("ctrl_exact_restores_total");
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(metrics.counter_value(*exact), 1u);
  // One deterministic span per event.
  EXPECT_EQ(controller.tracer().events().size(), 3u);
}

TEST(Controller, ColdStartArmNeverWarmStarts) {
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.use_warm_start = false;
  Controller controller(net, options);
  const ChurnReport report = controller.run(
      parse_churn_plan("cap=Server 3*0.5@1,bw=Server 3-Server 5*0.5@2"));
  EXPECT_EQ(report.warm_starts, 0u);
  EXPECT_EQ(report.cold_starts, 2u);
}

// --- Controller: validation errors ---

TEST(Controller, RejectsInvalidEvents) {
  maxutil::gen::Figure1Ids ids;
  const auto net = maxutil::gen::figure1_example({}, &ids);
  Controller controller(net, fast_options());
  // Unknown entities.
  EXPECT_THROW(controller.apply(parse_churn_plan("crash=nope@1").events[0]),
               CheckError);
  EXPECT_THROW(controller.apply(parse_churn_plan("depart=nope@1").events[0]),
               CheckError);
  EXPECT_THROW(
      controller.apply(parse_churn_plan("bw=Server 1-Server 8*2@1").events[0]),
      CheckError);  // no such baseline link
  // State mismatches.
  EXPECT_THROW(
      controller.apply(parse_churn_plan("restore=Server 2@1").events[0]),
      CheckError);  // not down
  EXPECT_THROW(controller.apply(parse_churn_plan("arrive=S2@1").events[0]),
               CheckError);  // already present
  EXPECT_THROW(controller.apply(parse_churn_plan("cap=Sink 1*2@1").events[0]),
               CheckError);  // sinks have no computing power
  controller.apply(parse_churn_plan("crash=Server 2@2").events[0]);
  EXPECT_THROW(controller.apply(parse_churn_plan("crash=Server 2@3").events[0]),
               CheckError);  // already down
  EXPECT_THROW(
      controller.apply(parse_churn_plan("cap=Server 2*0.5@3").events[0]),
      CheckError);  // down
}

TEST(Controller, ResolvesEntitiesByNumericId) {
  maxutil::gen::Figure1Ids ids;
  const auto net = maxutil::gen::figure1_example({}, &ids);
  Controller controller(net, fast_options());
  const EventOutcome outcome = controller.apply(parse_churn_plan(
      "crash=" + std::to_string(ids.server[1]) + "@1").events[0]);
  EXPECT_EQ(outcome.status, maxutil::solver::Status::kConverged);
  EXPECT_EQ(controller.network().node_count(), net.node_count() - 1);
}

TEST(Controller, RejectsPipelineWithoutRoutingOutput) {
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.pipeline = "fw";  // fw emits admissions, not a routing
  EXPECT_THROW(Controller(net, options), CheckError);
}

// --- Watchdog ---

/// A deliberately flaky backend: delegates to the gradient adapter but fails
/// outright on a scripted window of call numbers (1-based, inclusive), so
/// tests can script "the first attempt dies, the watchdog's retry succeeds"
/// or "both attempts die".
std::size_t g_flaky_calls = 0;
std::size_t g_flaky_fail_lo = 0;
std::size_t g_flaky_fail_hi = 0;  // 0 = never fail

void register_flaky_solver() {
  static bool once = [] {
    maxutil::solver::SolverInfo info;
    info.name = "flaky";
    info.description = "test-only: fails on a scripted call-number window";
    info.default_iterations = 5000;
    info.supports_warm_start = true;
    info.emits_routing = true;
    info.solve = [](const maxutil::solver::Problem& problem,
                    const maxutil::solver::SolveOptions& options) {
      ++g_flaky_calls;
      if (g_flaky_calls >= g_flaky_fail_lo && g_flaky_calls <= g_flaky_fail_hi) {
        maxutil::solver::SolveResult result;
        result.status = maxutil::solver::Status::kFailed;
        result.message = "flaky: scripted failure";
        return result;
      }
      return maxutil::solver::SolverRegistry::instance().solve(
          "gradient", problem, options);
    };
    maxutil::solver::SolverRegistry::instance().add(std::move(info));
    return true;
  }();
  (void)once;
}

TEST(Controller, WatchdogRetriesOnceThenSucceeds) {
  register_flaky_solver();
  g_flaky_calls = 0;
  g_flaky_fail_lo = g_flaky_fail_hi = 2;  // boot passes, first attempt dies
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.pipeline = "flaky";
  Controller controller(net, options);
  const EventOutcome outcome =
      controller.apply(parse_churn_plan("cap=Server 3*0.5@1").events[0]);
  EXPECT_TRUE(outcome.watchdog_retry);
  EXPECT_TRUE(maxutil::solver::is_usable(outcome.status));
  EXPECT_EQ(controller.report().watchdog_retries, 1u);
  EXPECT_EQ(controller.report().failures, 0u);
  g_flaky_fail_lo = g_flaky_fail_hi = 0;
}

TEST(Controller, FailedRetryKeepsDegradedInterimPoint) {
  register_flaky_solver();
  g_flaky_calls = 0;
  g_flaky_fail_lo = 2;
  g_flaky_fail_hi = 3;  // boot passes; the event's attempt AND retry die
  const auto net = maxutil::gen::figure1_example();
  ControllerOptions options = fast_options();
  options.pipeline = "flaky";
  Controller controller(net, options);
  const double boot_utility = controller.utility();
  // Harsh enough that the degraded interim point must shed admitted rate.
  const EventOutcome outcome =
      controller.apply(parse_churn_plan("cap=Server 3*0.05@1").events[0]);
  // The topology change stands even though the solve failed; the degraded
  // interim routing keeps serving traffic until a later event recovers.
  EXPECT_FALSE(maxutil::solver::is_usable(outcome.status));
  EXPECT_TRUE(outcome.watchdog_retry);
  EXPECT_EQ(outcome.message, "flaky: scripted failure");
  EXPECT_EQ(controller.report().failures, 1u);
  EXPECT_GT(controller.utility(), 0.0);
  EXPECT_LT(controller.utility(), boot_utility);

  // The next event re-solves (calls 4+ succeed) and recovers.
  const EventOutcome next =
      controller.apply(parse_churn_plan("cap=Server 3*20@2").events[0]);
  EXPECT_TRUE(maxutil::solver::is_usable(next.status));
  EXPECT_GT(controller.utility(), 0.0);
  g_flaky_fail_lo = g_flaky_fail_hi = 0;
}

// --- Determinism ---

// --- Serialized state (serve recovery snapshots ride on this) ---

TEST(Controller, ExportImportStateIsBitExact) {
  const auto net = maxutil::gen::figure1_example();
  Controller original(net, fast_options());
  // Build up non-trivial state: a scale, a departure (creates a snapshot
  // entry for exact restore), and a crash.
  original.run(parse_churn_plan(
      "cap=Server 3*0.5@1,depart=S2@2,crash=Server 2@3"));
  std::ostringstream blob;
  original.export_state(blob);

  Controller restored(net, fast_options());
  std::istringstream in(blob.str());
  restored.import_state(in);
  EXPECT_EQ(restored.utility(), original.utility());  // exact, not approx
  EXPECT_EQ(restored.network().commodity_count(),
            original.network().commodity_count());
  ASSERT_EQ(restored.admitted().size(), original.admitted().size());
  for (std::size_t j = 0; j < restored.admitted().size(); ++j) {
    EXPECT_EQ(restored.admitted()[j], original.admitted()[j]);
  }

  // The restored controller continues identically: the snapshot map came
  // across, so re-arriving S2 is an exact restore in both.
  const ChurnPlan tail = parse_churn_plan("restore=Server 2@4,arrive=S2@5");
  original.run(tail);
  restored.run(tail);
  EXPECT_EQ(restored.utility(), original.utility());

  // A truncated blob is rejected without corrupting the target.
  Controller fresh(net, fast_options());
  const double before = fresh.utility();
  std::istringstream torn(blob.str().substr(0, blob.str().size() / 2));
  EXPECT_THROW(fresh.import_state(torn), CheckError);
  EXPECT_EQ(fresh.utility(), before);
}

TEST(Controller, DistributedChurnRunsAreThreadIndependent) {
  const auto net = maxutil::gen::figure1_example();
  const std::string plan_spec =
      "cap=Server 3*0.5@1,crash=Server 2@2,restore=Server 2@3";
  std::optional<ChurnReport> reference;
  std::optional<double> reference_utility;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ControllerOptions options = fast_options();
    options.pipeline = "distributed";
    options.watchdog_iterations = 120;
    options.solve.threads = threads;
    Controller controller(net, options);
    const ChurnReport report = controller.run(parse_churn_plan(plan_spec));
    if (!reference.has_value()) {
      reference = report;
      reference_utility = controller.utility();
    } else {
      EXPECT_EQ(controller.utility(), *reference_utility);
      ASSERT_EQ(report.events.size(), reference->events.size());
      for (std::size_t i = 0; i < report.events.size(); ++i) {
        EXPECT_EQ(report.events[i].iterations,
                  reference->events[i].iterations);
        EXPECT_EQ(report.events[i].utility_after,
                  reference->events[i].utility_after);
      }
    }
  }
}

}  // namespace
