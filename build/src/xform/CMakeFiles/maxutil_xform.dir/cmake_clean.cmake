file(REMOVE_RECURSE
  "CMakeFiles/maxutil_xform.dir/extended_graph.cpp.o"
  "CMakeFiles/maxutil_xform.dir/extended_graph.cpp.o.d"
  "CMakeFiles/maxutil_xform.dir/lp_reference.cpp.o"
  "CMakeFiles/maxutil_xform.dir/lp_reference.cpp.o.d"
  "CMakeFiles/maxutil_xform.dir/penalty.cpp.o"
  "CMakeFiles/maxutil_xform.dir/penalty.cpp.o.d"
  "libmaxutil_xform.a"
  "libmaxutil_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
