#include "solver/pipeline.hpp"

#include <utility>

#include "util/check.hpp"

namespace maxutil::solver {

using maxutil::util::ensure;

Pipeline::Pipeline(std::vector<std::string> stages,
                   const SolverRegistry& registry)
    : stages_(std::move(stages)), registry_(&registry) {}

Pipeline Pipeline::parse(const std::string& spec,
                         const SolverRegistry& registry) {
  std::vector<std::string> stages;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string name = spec.substr(begin, end - begin);
    // Trim surrounding spaces so "lp, gradient" parses.
    while (!name.empty() && name.front() == ' ') name.erase(name.begin());
    while (!name.empty() && name.back() == ' ') name.pop_back();
    ensure(!name.empty(), "pipeline '" + spec + "': empty stage (registered: " +
                              registry.names_joined() + ")");
    ensure(registry.find(name) != nullptr,
           "unknown solver '" + name + "' in pipeline '" + spec +
               "' (registered: " + registry.names_joined() + ")");
    stages.push_back(std::move(name));
    begin = end + 1;
  }
  ensure(!stages.empty(), "empty pipeline spec");
  return Pipeline(std::move(stages), registry);
}

std::string Pipeline::spec() const {
  std::string out;
  for (const std::string& stage : stages_) {
    if (!out.empty()) out += ",";
    out += stage;
  }
  return out;
}

bool Pipeline::any_stage(bool SolverInfo::* capability) const {
  for (const std::string& stage : stages_) {
    const SolverInfo* info = registry_->find(stage);
    if (info != nullptr && info->*capability) return true;
  }
  return false;
}

SolveResult Pipeline::run(const Problem& problem,
                          const SolveOptions& options) const {
  SolveResult result;
  std::vector<StageSummary> summaries;
  std::vector<std::string> warnings;
  std::optional<core::RoutingState> carry;
  for (const std::string& stage : stages_) {
    const SolverInfo* info = registry_->find(stage);
    ensure(info != nullptr, "pipeline stage '" + stage + "' vanished from "
                            "the registry");
    SolveOptions stage_options = options;
    if (carry.has_value() && info->supports_warm_start) {
      stage_options.warm_start = carry;
    }
    try {
      result = registry_->solve(stage, problem, stage_options);
    } catch (const maxutil::util::CheckError& e) {
      // The registry already converts adapter CheckErrors into failed
      // results; this guards the dispatch itself (and future registries) so
      // a pipeline never unwinds past a stage boundary.
      result = SolveResult{};
      result.status = Status::kFailed;
      result.message = e.what();
      result.warnings.push_back(result.message);
    }
    summaries.push_back({stage, result.status, result.utility,
                         result.iterations, result.wall_seconds});
    for (const std::string& w : result.warnings) {
      warnings.push_back(stage + ": " + w);
    }
    if (!is_usable(result.status)) break;
    if (result.routing.has_value()) carry = result.routing;
  }
  result.stages = std::move(summaries);
  if (stages_.size() > 1) result.warnings = std::move(warnings);
  return result;
}

}  // namespace maxutil::solver
