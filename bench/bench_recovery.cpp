// E12 — extension: failure recovery with warm starts. Section 3 remarks
// that the penalty's reserved headroom helps "faster recovery in the case of
// node or link failures". After a fail-stop server crash we rebuild the
// network (stream::without_server), transfer the surviving routing
// (core::transfer_routing), and compare re-convergence against a cold
// restart, across several random instances.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "core/warm_start.hpp"
#include "gen/random_instance.hpp"
#include "stream/surgery.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using namespace maxutil;

/// Picks an interior server that carries traffic at the converged solution
/// (never a source), so the failure actually matters.
stream::NodeId pick_victim(const stream::StreamNetwork& net,
                           const core::PhysicalAllocation& alloc) {
  stream::NodeId best = stream::kRemovedEntity;
  double best_usage = 0.0;
  for (stream::NodeId n = 0; n < net.node_count(); ++n) {
    if (net.is_sink(n)) continue;
    bool is_source = false;
    for (std::size_t j = 0; j < net.commodity_count(); ++j) {
      is_source = is_source || net.source(j) == n;
    }
    if (is_source) continue;
    if (alloc.server_usage[n] > best_usage) {
      best_usage = alloc.server_usage[n];
      best = n;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== E12: warm-start failure recovery ===\n");
  std::printf("random instances (16 servers, 2 commodities, stages 3),"
              " fail the busiest interior server, eps=0.05, eta=0.1\n\n");

  util::Table table({"seed", "util before", "LP after", "warm start util",
                     "warm iters to 95%", "cold iters to 95%", "speedup"});
  util::RunningStats speedups;
  bool all_feasible = true;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed * 7919);
    gen::RandomInstanceParams p;
    p.servers = 16;
    p.commodities = 2;
    p.stages = 3;
    p.lambda = 60.0;
    const auto net = gen::random_instance(p, rng);
    xform::PenaltyConfig penalty;
    penalty.epsilon = 0.05;
    const xform::ExtendedGraph xg(net, penalty);
    core::GradientOptions options;
    options.eta = 0.1;
    options.record_history = false;
    options.max_iterations = 8000;
    core::GradientOptimizer before(xg, options);
    before.run();

    const auto victim = pick_victim(net, before.allocation());
    if (victim == stream::kRemovedEntity) continue;
    const auto surgery = stream::without_server(net, victim);
    if (surgery.network.commodity_count() == 0) continue;
    const xform::ExtendedGraph new_xg(surgery.network, penalty);
    const double target =
        0.95 * xform::solve_reference(new_xg).optimal_utility;

    const auto warm_routing =
        core::transfer_routing(xg, before.routing(), new_xg, surgery);
    const auto warm_flows = core::compute_flows(new_xg, warm_routing);
    all_feasible = all_feasible &&
                   core::map_to_physical(new_xg, warm_flows)
                           .max_capacity_violation(new_xg) <= 0.0;

    const auto iterations_to = [&](core::GradientOptimizer& opt) {
      std::size_t count = 0;
      while (opt.utility() < target && count < 30000) {
        opt.step();
        ++count;
      }
      return count;
    };
    core::GradientOptions longrun = options;
    longrun.max_iterations = 30000;
    core::GradientOptimizer warm(new_xg, longrun, warm_routing);
    const double warm_initial = warm.utility();
    core::GradientOptimizer cold(new_xg, longrun);
    const std::size_t warm_iters = iterations_to(warm);
    const std::size_t cold_iters = iterations_to(cold);
    if (cold_iters >= 30000 && warm_iters >= 30000) {
      // Neither run reached the target inside the budget (deep-overload
      // instances where admission crawls at eta*a/lambda): no speedup
      // information, skip the row.
      continue;
    }
    const double speedup = static_cast<double>(cold_iters) /
                           std::max<double>(1.0, static_cast<double>(warm_iters));
    speedups.add(speedup);
    table.add_row({util::Table::cell(static_cast<long long>(seed)),
                   util::Table::cell(before.utility()),
                   util::Table::cell(target / 0.95),
                   util::Table::cell(warm_initial),
                   util::Table::cell(static_cast<long long>(warm_iters)),
                   util::Table::cell(static_cast<long long>(cold_iters)),
                   util::Table::cell(speedup, 1) + "x"});
  }
  table.print(std::cout);

  std::printf("\nmean warm-start speedup: %.1fx (min %.1fx)\n\n",
              speedups.mean(), speedups.min());
  std::printf("shape checks:\n");
  bool ok = true;
  ok &= bench::shape_check("transferred routing is always feasible",
                           all_feasible);
  ok &= bench::shape_check("warm start is never slower than cold",
                           speedups.min() >= 1.0);
  ok &= bench::shape_check("warm start is >= 3x faster on average",
                           speedups.mean() >= 3.0);
  return ok ? 0 : 1;
}
