#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "ctrl/churn_plan.hpp"

namespace maxutil::serve {

/// What a serve-protocol line asks for (docs/SERVE.md §2). The line grammar
/// extends the churn-plan event syntax with two request keys:
///
///   admit=COMMODITY[*F]@T   ask to admit (re-arrive) COMMODITY at lambda*F;
///                           answered admit / degrade / deny
///   query=COMMODITY@T       read back the commodity's standing admission
///
/// plus the six topology events (crash/restore/cap/bw/arrive/depart) exactly
/// as in ctrl::parse_churn_plan. One request per line; '#' starts a comment;
/// blank lines are skipped; timestamps must be non-decreasing (a live stream
/// cannot be sorted after the fact, unlike a scripted ChurnPlan).
enum class RequestKind {
  kTopology,  // one ChurnEvent, applied (batched) through the controller
  kAdmit,     // an admission request; the daemon answers a decision
  kQuery,     // read-only; answered from the post-batch state
};

const char* to_string(RequestKind kind);

/// One parsed line. `event` always carries the timestamp; for kAdmit it
/// holds the commodity + lambda factor (kind kArrive), for kQuery the
/// commodity alone.
struct Request {
  RequestKind kind = RequestKind::kTopology;
  ctrl::ChurnEvent event;
  std::size_t line = 0;  // 1-based source line, 0 when fed programmatically

  std::size_t time() const { return event.time; }
  std::string commodity() const { return event.commodity; }

  /// The request in canonical line form, e.g. "admit=video*0.5@12".
  std::string describe() const;
};

/// Parses one protocol line (no surrounding whitespace requirements, no
/// comment handling — parse_script does both). Throws util::CheckError
/// naming the offending entry on any malformed input: unknown key, missing
/// @T, bad factor, a comma list (one request per line), or a factor on a
/// query.
Request parse_request(const std::string& line);

/// A fully parsed replay script: requests in arrival order with their
/// source line numbers.
struct Script {
  std::vector<Request> requests;

  bool empty() const { return requests.empty(); }
  std::string describe() const;  // canonical, one request per line
};

/// Streams an event stream request by request: one request per line, '#'
/// comments and blank lines skipped, `fn` invoked for each request as its
/// line is read — so a pipe or FIFO source is served live, not buffered to
/// EOF first (the durable CLI path depends on this: a request must reach
/// the write-ahead log as it arrives, docs/SERVE.md §7). Throws
/// util::CheckError with "line N:" context on a malformed line or a
/// timestamp that decreases.
void for_each_request(std::istream& in,
                      const std::function<void(Request&&)>& fn);

/// Parses a whole event stream via for_each_request, collecting into a
/// Script.
Script parse_script(std::istream& in);
Script parse_script_text(const std::string& text);

}  // namespace maxutil::serve
