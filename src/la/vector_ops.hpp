#pragma once

#include <span>
#include <vector>

namespace maxutil::la {

/// Dense vector helpers shared by the LP solver and the optimizers.
/// All operate on std::vector<double>/std::span<const double>; sizes must
/// match where two operands are involved.

/// Dot product a·b.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x (classic axpy).
void axpy(double alpha, std::span<const double> x, std::vector<double>& y);

/// In-place scaling x *= alpha.
void scale(std::vector<double>& x, double alpha);

/// Euclidean norm.
double norm2(std::span<const double> x);

/// Maximum absolute entry (infinity norm).
double norm_inf(std::span<const double> x);

/// Sum of entries.
double sum(std::span<const double> x);

/// Elementwise a - b as a new vector.
std::vector<double> subtract(std::span<const double> a, std::span<const double> b);

}  // namespace maxutil::la
