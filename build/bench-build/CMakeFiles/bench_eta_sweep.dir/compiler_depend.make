# Empty compiler generated dependencies file for bench_eta_sweep.
# This may be replaced when dependencies are built.
