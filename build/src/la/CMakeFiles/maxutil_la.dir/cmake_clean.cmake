file(REMOVE_RECURSE
  "CMakeFiles/maxutil_la.dir/lu.cpp.o"
  "CMakeFiles/maxutil_la.dir/lu.cpp.o.d"
  "CMakeFiles/maxutil_la.dir/matrix.cpp.o"
  "CMakeFiles/maxutil_la.dir/matrix.cpp.o.d"
  "CMakeFiles/maxutil_la.dir/sparse.cpp.o"
  "CMakeFiles/maxutil_la.dir/sparse.cpp.o.d"
  "CMakeFiles/maxutil_la.dir/vector_ops.cpp.o"
  "CMakeFiles/maxutil_la.dir/vector_ops.cpp.o.d"
  "libmaxutil_la.a"
  "libmaxutil_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
