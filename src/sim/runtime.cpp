#include "sim/runtime.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace maxutil::sim {

using maxutil::util::ensure;

void Outbox::send(ActorId to, int tag, std::size_t commodity,
                  std::vector<double> payload) {
  runtime_->enqueue({self_, to, tag, commodity, std::move(payload)});
}

ActorId Runtime::add_actor(std::unique_ptr<Actor> actor) {
  ensure(actor != nullptr, "Runtime::add_actor: null actor");
  actors_.push_back(std::move(actor));
  failed_.push_back(false);
  return actors_.size() - 1;
}

void Runtime::fail(ActorId id) {
  ensure(id < actors_.size(), "Runtime::fail: unknown actor");
  failed_[id] = true;
}

bool Runtime::is_failed(ActorId id) const {
  ensure(id < actors_.size(), "Runtime::is_failed: unknown actor");
  return failed_[id];
}

void Runtime::set_delay_model(
    std::function<std::size_t(ActorId, ActorId)> delay) {
  delay_ = std::move(delay);
}

void Runtime::enqueue(Message message) {
  ensure(message.to < actors_.size(), "Runtime: message to unknown actor");
  if (failed_[message.from] || failed_[message.to]) {
    ++dropped_messages_;
    return;
  }
  const std::size_t delay =
      delay_ ? std::max<std::size_t>(1, delay_(message.from, message.to)) : 1;
  pending_.push_back({rounds_ + delay, std::move(message)});
}

std::size_t Runtime::run_round() {
  ++rounds_;
  // Pull the messages due this round; later-due ones stay queued. Sends
  // made by actors during this round are stamped relative to rounds_, so a
  // one-round delay lands them in the next round.
  std::vector<Message> batch;
  std::vector<Pending> later;
  later.reserve(pending_.size());
  for (auto& p : pending_) {
    if (p.due <= rounds_) {
      batch.push_back(std::move(p.message));
    } else {
      later.push_back(std::move(p));
    }
  }
  pending_ = std::move(later);

  // Group per recipient, preserving send order.
  std::vector<std::vector<Message>> inboxes(actors_.size());
  std::size_t delivered = 0;
  for (auto& m : batch) {
    if (failed_[m.to] || failed_[m.from]) {
      ++dropped_messages_;
      continue;
    }
    ++delivered;
    delivered_payload_ += m.payload.size();
    inboxes[m.to].push_back(std::move(m));
  }
  delivered_messages_ += delivered;

  for (ActorId id = 0; id < actors_.size(); ++id) {
    if (failed_[id]) continue;
    Outbox out(*this, id);
    actors_[id]->on_round(out, inboxes[id]);
  }
  return delivered;
}

std::size_t Runtime::run_until_quiet(std::size_t max_rounds) {
  std::size_t used = 0;
  while (!quiet() && used < max_rounds) {
    run_round();
    ++used;
  }
  ensure(quiet(), "Runtime::run_until_quiet: round budget exhausted");
  return used;
}

Actor& Runtime::actor(ActorId id) {
  ensure(id < actors_.size(), "Runtime::actor: unknown actor");
  return *actors_[id];
}

const Actor& Runtime::actor(ActorId id) const {
  ensure(id < actors_.size(), "Runtime::actor: unknown actor");
  return *actors_[id];
}

}  // namespace maxutil::sim
