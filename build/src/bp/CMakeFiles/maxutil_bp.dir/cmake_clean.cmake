file(REMOVE_RECURSE
  "CMakeFiles/maxutil_bp.dir/backpressure.cpp.o"
  "CMakeFiles/maxutil_bp.dir/backpressure.cpp.o.d"
  "libmaxutil_bp.a"
  "libmaxutil_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
