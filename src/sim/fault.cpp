#include "sim/fault.hpp"

#include <charconv>
#include <sstream>

#include "util/check.hpp"

namespace maxutil::sim {

using maxutil::util::ensure;

bool FaultPlan::link_faults() const {
  if (drop > 0.0 || delay_max > 0 || duplicate > 0.0) return true;
  for (const LinkDrop& link : link_drops) {
    if (link.probability > 0.0) return true;
  }
  return false;
}

bool FaultPlan::enabled() const { return link_faults() || !crashes.empty(); }

double FaultPlan::drop_for(std::size_t from, std::size_t to) const {
  for (const LinkDrop& link : link_drops) {
    if (link.from == from && link.to == to) return link.probability;
  }
  return drop;
}

void FaultPlan::validate() const {
  ensure(drop >= 0.0 && drop <= 1.0, "FaultPlan: drop must be in [0, 1]");
  ensure(duplicate >= 0.0 && duplicate <= 1.0,
         "FaultPlan: duplicate must be in [0, 1]");
  ensure(delay_min <= delay_max,
         "FaultPlan: delay_min must not exceed delay_max");
  for (const LinkDrop& link : link_drops) {
    ensure(link.probability >= 0.0 && link.probability <= 1.0,
           "FaultPlan: link drop probability must be in [0, 1]");
  }
}

namespace {

double parse_probability(const std::string& text, const char* what) {
  std::size_t used = 0;
  double value = -1.0;
  try {
    value = std::stod(text, &used);
  } catch (...) {
    ensure(false, std::string("fault spec: bad number for ") + what);
  }
  ensure(used == text.size(),
         std::string("fault spec: trailing junk after ") + what);
  return value;
}

std::size_t parse_count(const std::string& text, const char* what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  ensure(ec == std::errc{} && ptr == text.data() + text.size(),
         std::string("fault spec: bad integer for ") + what);
  return value;
}

}  // namespace

FaultPlan parse_fault_spec(const std::string& spec) {
  FaultPlan plan;
  std::stringstream stream(spec);
  std::string entry;
  bool any = false;
  while (std::getline(stream, entry, ',')) {
    const std::size_t eq = entry.find('=');
    ensure(eq != std::string::npos && eq > 0 && eq + 1 < entry.size(),
           "fault spec: entries must look like key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    any = true;
    if (key == "drop") {
      plan.drop = parse_probability(value, "drop");
    } else if (key == "dup") {
      plan.duplicate = parse_probability(value, "dup");
    } else if (key == "seed") {
      plan.seed = parse_count(value, "seed");
    } else if (key == "delay") {
      const std::size_t dash = value.find('-');
      if (dash == std::string::npos) {
        plan.delay_min = 0;
        plan.delay_max = parse_count(value, "delay");
      } else {
        plan.delay_min = parse_count(value.substr(0, dash), "delay");
        plan.delay_max = parse_count(value.substr(dash + 1), "delay");
      }
    } else if (key == "crash") {
      const std::size_t at = value.find('@');
      ensure(at != std::string::npos,
             "fault spec: crash entries look like crash=NODE@BEGIN-END");
      const std::string window = value.substr(at + 1);
      const std::size_t dash = window.find('-');
      ensure(dash != std::string::npos,
             "fault spec: crash entries look like crash=NODE@BEGIN-END");
      CrashWindow w;
      w.node = parse_count(value.substr(0, at), "crash node");
      w.crash_round = parse_count(window.substr(0, dash), "crash begin");
      w.restart_round = parse_count(window.substr(dash + 1), "crash end");
      plan.crashes.push_back(w);
    } else {
      ensure(false, "fault spec: unknown key '" + key + "'");
    }
  }
  ensure(any, "fault spec: empty specification");
  plan.validate();
  return plan;
}

std::string describe(const FaultPlan& plan) {
  std::ostringstream out;
  out << "drop=" << plan.drop << " delay=[" << plan.delay_min << ","
      << plan.delay_max << "] dup=" << plan.duplicate
      << " seed=" << plan.seed;
  for (const CrashWindow& w : plan.crashes) {
    out << " crash=" << w.node << "@" << w.crash_round << "-"
        << w.restart_round;
  }
  return out.str();
}

}  // namespace maxutil::sim
