#include "obs/trace.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace maxutil::obs {

using maxutil::util::ensure;

namespace {

/// JSON string escaping for the small set of characters that can appear in
/// event/track names (which this repository controls, but escaping keeps the
/// export valid for any input).
void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// JSON-safe number rendering: integral values print without a fraction,
/// non-finite values (never produced by the instrumentation, but callers can
/// pass anything) clamp to 0 because JSON has no NaN/Inf literal.
std::string render_number(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream out;
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    out << static_cast<long long>(value);
  } else {
    out.precision(17);
    out << value;
  }
  return out.str();
}

void write_args_json(std::ostream& out, const std::vector<TraceArg>& args) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out << ",";
    write_json_string(out, args[i].key);
    out << ":" << render_number(args[i].value);
  }
  out << "}";
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::set_track_name(std::size_t track, std::string name) {
  for (auto& entry : track_names_) {
    if (entry.first == track) {
      entry.second = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::move(name));
}

bool Tracer::has_room() {
  if (events_.size() < max_events_) return true;
  ++dropped_events_;
  return false;
}

TraceEvent* Tracer::push(TraceEvent event) {
  if (!has_room()) return nullptr;
  events_.push_back(std::move(event));
  return &events_.back();
}

std::size_t Tracer::begin_span(std::string name, std::string category,
                               std::size_t track) {
  if (!has_room()) return kDroppedSpan;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.track = track;
  event.ts_us = now_us();
  event.dur_us = -1.0;  // open; end_span fills it
  events_.push_back(std::move(event));
  if (open_.size() <= track) open_.resize(track + 1);
  open_[track].push_back(events_.size() - 1);
  ++open_count_;
  return events_.size() - 1;
}

void Tracer::end_span(std::size_t token, std::vector<TraceArg> args) {
  if (token == kDroppedSpan) return;
  ensure(token < events_.size(), "Tracer::end_span: unknown span token");
  TraceEvent& event = events_[token];
  ensure(event.phase == 'X' && event.dur_us < 0.0,
         "Tracer::end_span: span already closed");
  ensure(event.track < open_.size() && !open_[event.track].empty() &&
             open_[event.track].back() == token,
         "Tracer::end_span: spans must close innermost-first per track");
  open_[event.track].pop_back();
  --open_count_;
  event.dur_us = now_us() - event.ts_us;
  event.args = std::move(args);
}

void Tracer::complete(std::string name, std::string category,
                      std::size_t track, double ts_us, double dur_us,
                      std::vector<TraceArg> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.track = track;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args = std::move(args);
  push(std::move(event));
}

void Tracer::instant(std::string name, std::string category, std::size_t track,
                     std::vector<TraceArg> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.track = track;
  event.ts_us = now_us();
  event.args = std::move(args);
  push(std::move(event));
}

void Tracer::counter(std::string name, std::size_t track,
                     std::vector<TraceArg> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'C';
  event.track = track;
  event.ts_us = now_us();
  event.args = std::move(args);
  push(std::move(event));
}

std::size_t Tracer::open_spans() const { return open_count_; }

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const auto& [track, name] : track_names_) {
    separator();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
        << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_json_string(out, name);
    out << "}}";
  }
  for (const TraceEvent& event : events_) {
    separator();
    out << "{\"ph\":\"" << event.phase << "\",\"pid\":0,\"tid\":"
        << event.track << ",\"ts\":" << render_number(event.ts_us);
    if (event.phase == 'X') {
      // A still-open span (dur < 0) exports with zero duration rather than
      // invalid JSON; finished traces never contain one.
      out << ",\"dur\":"
          << render_number(event.dur_us < 0.0 ? 0.0 : event.dur_us);
    }
    out << ",\"name\":";
    write_json_string(out, event.name);
    if (!event.category.empty()) {
      out << ",\"cat\":";
      write_json_string(out, event.category);
    }
    if (event.phase == 'i') out << ",\"s\":\"t\"";
    if (!event.args.empty() || event.phase == 'C') {
      out << ",\"args\":";
      write_args_json(out, event.args);
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":"
      << "\"maxutil obs::Tracer\"";
  if (dropped_events_ > 0) {
    out << ",\"dropped_events\":\"" << dropped_events_ << "\"";
  }
  out << "}}\n";
}

void Tracer::write_csv(std::ostream& out) const {
  out << "phase,track,ts_us,dur_us,category,name,args\n";
  for (const TraceEvent& event : events_) {
    out << event.phase << "," << event.track << ","
        << render_number(event.ts_us) << ","
        << render_number(event.phase == 'X' && event.dur_us >= 0.0
                             ? event.dur_us
                             : 0.0)
        << "," << event.category << "," << event.name << ",";
    for (std::size_t i = 0; i < event.args.size(); ++i) {
      if (i != 0) out << ";";
      out << event.args[i].key << "=" << render_number(event.args[i].value);
    }
    out << "\n";
  }
}

}  // namespace maxutil::obs
