#include "xform/extended_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace maxutil::xform {

using maxutil::util::ensure;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ExtendedGraph::ExtendedGraph(const stream::StreamNetwork& network,
                             PenaltyConfig penalty)
    : network_(&network), penalty_(penalty) {
  ensure(penalty.epsilon > 0.0, "ExtendedGraph: epsilon must be positive");
  const auto& g0 = network.graph();

  // Physical nodes keep their ids.
  for (NodeId n = 0; n < g0.node_count(); ++n) {
    graph_.add_node();
    if (network.is_sink(n)) {
      nodes_.push_back({NodeKind::kSink, kInf, n});
    } else {
      nodes_.push_back({NodeKind::kServer, network.capacity(n), n});
    }
  }

  // Bandwidth node n_ik per physical link, spliced as i -> n_ik -> k.
  bandwidth_node_.resize(network.link_count());
  for (stream::LinkId l = 0; l < network.link_count(); ++l) {
    const NodeId nik = graph_.add_node();
    nodes_.push_back({NodeKind::kBandwidth, network.bandwidth(l), l});
    bandwidth_node_[l] = nik;

    graph_.add_edge(g0.tail(l), nik);
    edges_.push_back({LinkKind::kProcessing, l});
    graph_.add_edge(nik, g0.head(l));
    edges_.push_back({LinkKind::kTransfer, l});
  }

  // Dummy source s-bar_j with input and difference links.
  dummy_source_.resize(network.commodity_count());
  dummy_input_.resize(network.commodity_count());
  dummy_difference_.resize(network.commodity_count());
  for (CommodityId j = 0; j < network.commodity_count(); ++j) {
    const NodeId sbar = graph_.add_node();
    nodes_.push_back({NodeKind::kDummySource, kInf, j});
    dummy_source_[j] = sbar;
    dummy_input_[j] = graph_.add_edge(sbar, network.source(j));
    edges_.push_back({LinkKind::kDummyInput, j});
    dummy_difference_[j] = graph_.add_edge(sbar, network.sink(j));
    edges_.push_back({LinkKind::kDummyDifference, j});
  }

  // The per-commodity CSR index; the sorted node sets fall out of it.
  index_ = std::make_shared<const CommodityIndex>(*this);
  commodity_nodes_.resize(network.commodity_count());
  for (CommodityId j = 0; j < network.commodity_count(); ++j) {
    auto& nodes = commodity_nodes_[j];
    nodes.reserve(index_->node_end(j) - index_->node_begin(j));
    for (std::size_t k = index_->node_begin(j); k < index_->node_end(j); ++k) {
      nodes.push_back(index_->node_sorted(k));
    }
  }
}

NodeKind ExtendedGraph::node_kind(NodeId v) const {
  ensure(v < nodes_.size(), "ExtendedGraph: node out of range");
  return nodes_[v].kind;
}

double ExtendedGraph::capacity(NodeId v) const {
  ensure(v < nodes_.size(), "ExtendedGraph: node out of range");
  return nodes_[v].capacity;
}

bool ExtendedGraph::has_finite_capacity(NodeId v) const {
  return std::isfinite(capacity(v));
}

NodeId ExtendedGraph::physical_node(NodeId v) const {
  ensure(node_kind(v) == NodeKind::kServer || node_kind(v) == NodeKind::kSink,
         "ExtendedGraph: not a physical node");
  return nodes_[v].ref;
}

stream::LinkId ExtendedGraph::physical_link_of_bandwidth_node(NodeId v) const {
  ensure(node_kind(v) == NodeKind::kBandwidth,
         "ExtendedGraph: not a bandwidth node");
  return nodes_[v].ref;
}

NodeId ExtendedGraph::bandwidth_node(stream::LinkId l) const {
  ensure(l < bandwidth_node_.size(), "ExtendedGraph: link out of range");
  return bandwidth_node_[l];
}

EdgeId ExtendedGraph::processing_edge(stream::LinkId l) const {
  const NodeId nik = bandwidth_node(l);
  // A bandwidth node has exactly one in-edge: the processing edge.
  return graph_.in_edges(nik).front();
}

EdgeId ExtendedGraph::transfer_edge(stream::LinkId l) const {
  const NodeId nik = bandwidth_node(l);
  return graph_.out_edges(nik).front();
}

std::string ExtendedGraph::node_label(NodeId v) const {
  switch (node_kind(v)) {
    case NodeKind::kServer:
    case NodeKind::kSink:
      return network_->node_name(nodes_[v].ref);
    case NodeKind::kBandwidth: {
      const auto l = nodes_[v].ref;
      return "bw(" + network_->node_name(network_->graph().tail(l)) + "->" +
             network_->node_name(network_->graph().head(l)) + ")";
    }
    case NodeKind::kDummySource:
      return "dummy(" + network_->commodity_name(nodes_[v].ref) + ")";
  }
  return "?";
}

LinkKind ExtendedGraph::link_kind(EdgeId e) const {
  ensure(e < edges_.size(), "ExtendedGraph: edge out of range");
  return edges_[e].kind;
}

stream::LinkId ExtendedGraph::physical_link(EdgeId e) const {
  const LinkKind kind = link_kind(e);
  ensure(kind == LinkKind::kProcessing || kind == LinkKind::kTransfer,
         "ExtendedGraph: edge has no physical link");
  return edges_[e].ref;
}

CommodityId ExtendedGraph::dummy_commodity(EdgeId e) const {
  const LinkKind kind = link_kind(e);
  ensure(kind == LinkKind::kDummyInput || kind == LinkKind::kDummyDifference,
         "ExtendedGraph: not a dummy edge");
  return edges_[e].ref;
}

NodeId ExtendedGraph::dummy_source(CommodityId j) const {
  ensure(j < dummy_source_.size(), "ExtendedGraph: commodity out of range");
  return dummy_source_[j];
}

EdgeId ExtendedGraph::dummy_input_link(CommodityId j) const {
  ensure(j < dummy_input_.size(), "ExtendedGraph: commodity out of range");
  return dummy_input_[j];
}

EdgeId ExtendedGraph::dummy_difference_link(CommodityId j) const {
  ensure(j < dummy_difference_.size(), "ExtendedGraph: commodity out of range");
  return dummy_difference_[j];
}

bool ExtendedGraph::usable(CommodityId j, EdgeId e) const {
  ensure(e < edges_.size(), "ExtendedGraph: edge out of range");
  switch (edges_[e].kind) {
    case LinkKind::kProcessing:
    case LinkKind::kTransfer:
      return network_->uses_link(j, edges_[e].ref);
    case LinkKind::kDummyInput:
    case LinkKind::kDummyDifference:
      return edges_[e].ref == j;
  }
  return false;
}

double ExtendedGraph::beta(CommodityId j, EdgeId e) const {
  ensure(usable(j, e), "ExtendedGraph::beta: edge not usable by commodity");
  // The processing edge carries the whole physical shrinkage; transfer and
  // dummy edges are rate-preserving (beta = 1, Section 3).
  if (edges_[e].kind == LinkKind::kProcessing) {
    return network_->shrinkage(j, edges_[e].ref);
  }
  return 1.0;
}

double ExtendedGraph::cost_rate(CommodityId j, EdgeId e) const {
  ensure(usable(j, e), "ExtendedGraph::cost_rate: edge not usable by commodity");
  // Processing spends the physical c_ik(j); a bandwidth node spends one unit
  // of bandwidth per unit of (post-processing) flow; dummy nodes have
  // infinite capacity, so their unit rate only fixes the f = flow identity
  // that the difference-link cost Y relies on.
  if (edges_[e].kind == LinkKind::kProcessing) {
    return network_->consumption(j, edges_[e].ref);
  }
  return 1.0;
}

maxutil::graph::EdgeFilter ExtendedGraph::commodity_filter(
    CommodityId j) const {
  ensure(j < commodity_count(), "ExtendedGraph: commodity out of range");
  return [this, j](EdgeId e) { return usable(j, e); };
}

const std::vector<NodeId>& ExtendedGraph::commodity_nodes(CommodityId j) const {
  ensure(j < commodity_nodes_.size(), "ExtendedGraph: commodity out of range");
  return commodity_nodes_[j];
}

double ExtendedGraph::edge_cost(EdgeId e, double x) const {
  ensure(x >= -1e-9, "ExtendedGraph::edge_cost: negative usage");
  if (link_kind(e) != LinkKind::kDummyDifference) return 0.0;
  const CommodityId j = edges_[e].ref;
  const double lambda = network_->lambda(j);
  const auto& u = network_->utility(j);
  const double clamped = std::clamp(x, 0.0, lambda);
  return u.value(lambda) - u.value(lambda - clamped);
}

double ExtendedGraph::edge_cost_derivative(EdgeId e, double x) const {
  ensure(x >= -1e-9, "ExtendedGraph::edge_cost_derivative: negative usage");
  if (link_kind(e) != LinkKind::kDummyDifference) return 0.0;
  const CommodityId j = edges_[e].ref;
  const double lambda = network_->lambda(j);
  const auto& u = network_->utility(j);
  return u.derivative(lambda - std::clamp(x, 0.0, lambda));
}

double ExtendedGraph::node_penalty(NodeId v, double z) const {
  return penalty_value(penalty_, capacity(v), z);
}

double ExtendedGraph::node_penalty_derivative(NodeId v, double z) const {
  return penalty_derivative(penalty_, capacity(v), z);
}

double ExtendedGraph::edge_cost_second_derivative(EdgeId e, double x) const {
  ensure(x >= -1e-9, "ExtendedGraph::edge_cost_second_derivative: negative");
  if (link_kind(e) != LinkKind::kDummyDifference) return 0.0;
  const CommodityId j = edges_[e].ref;
  const double lambda = network_->lambda(j);
  const auto& u = network_->utility(j);
  // Y(x) = U(l) - U(l - x)  =>  Y''(x) = -U''(l - x) >= 0.
  return -u.second_derivative(lambda - std::clamp(x, 0.0, lambda));
}

double ExtendedGraph::node_penalty_second_derivative(NodeId v, double z) const {
  return penalty_second_derivative(penalty_, capacity(v), z);
}

}  // namespace maxutil::xform
