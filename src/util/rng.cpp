#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace maxutil::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

double Rng::uniform(double lo, double hi) {
  ensure(lo <= hi, "uniform: lo must not exceed hi");
  // 53 random mantissa bits -> uniform double in [0, 1).
  const double unit =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::chance(double p) { return uniform(0.0, 1.0) < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log(u1) is finite.
  double u1 = 0.0;
  do {
    u1 = uniform(0.0, 1.0);
  } while (u1 <= 0.0);
  const double u2 = uniform(0.0, 1.0);
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace maxutil::util
