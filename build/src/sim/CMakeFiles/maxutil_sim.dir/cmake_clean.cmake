file(REMOVE_RECURSE
  "CMakeFiles/maxutil_sim.dir/distributed_gradient.cpp.o"
  "CMakeFiles/maxutil_sim.dir/distributed_gradient.cpp.o.d"
  "CMakeFiles/maxutil_sim.dir/runtime.cpp.o"
  "CMakeFiles/maxutil_sim.dir/runtime.cpp.o.d"
  "libmaxutil_sim.a"
  "libmaxutil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
