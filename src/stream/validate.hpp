#pragma once

#include <string>
#include <vector>

#include "stream/model.hpp"

namespace maxutil::stream {

/// Result of structural validation of a StreamNetwork.
struct ValidationReport {
  std::vector<std::string> errors;    // model is unusable until fixed
  std::vector<std::string> warnings;  // legal but suspicious

  bool ok() const { return errors.empty(); }

  /// All messages joined with newlines (errors first).
  std::string to_string() const;
};

/// Checks the Section-2 model assumptions:
///  * every commodity's usable subgraph is a DAG (the paper's G_j);
///  * the sink is reachable from the source over usable links;
///  * no usable link enters a foreign sink;
///  * no dead ends: every node reachable from the source can reach the sink;
///  * warns when the overall graph is not weakly connected.
ValidationReport validate(const StreamNetwork& network);

/// Throws util::CheckError with the full report when validation fails.
void validate_or_throw(const StreamNetwork& network);

/// Numerically verifies the paper's Property 1 for commodity j: the product
/// of shrinkage factors along every source->sink path agrees (and equals
/// delivery_gain). Path enumeration is exponential — intended for the small
/// graphs in tests and examples.
bool verify_path_independence(const StreamNetwork& network, CommodityId j,
                              double tolerance = 1e-9,
                              std::size_t max_paths = 10000);

}  // namespace maxutil::stream
