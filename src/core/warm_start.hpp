#pragma once

#include <utility>
#include <vector>

#include "core/routing.hpp"
#include "stream/surgery.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// Transfers a converged routing decision from a network onto its
/// post-surgery survivor (stream::without_server), giving the optimizer a
/// warm start after a failure instead of restarting from all-rejected.
///
/// For every surviving commodity, the fraction of each surviving usable
/// extended edge is copied and the per-node fractions renormalized (mass
/// that pointed at the failed server is spread proportionally over the
/// remaining links; a node whose entire mass died falls back to uniform).
/// The result always satisfies the RoutingState invariants on `new_xg`.
///
/// Warm starts are one payoff of the paper's Section-3 observation that the
/// penalty barrier leaves spare capacity "for faster recovery in the case of
/// node or link failures": the surviving routing is feasible-with-headroom
/// and already near-optimal for the reduced network (bench_recovery
/// quantifies the saved iterations).
/// `capacity_guard` mirrors GradientOptions::capacity_guard: if concentrating
/// the surviving mass would overload a node past guard * C (the failed
/// server's load landing on one replica), the transferred routing is blended
/// toward the all-rejected initial state until it is strictly feasible, so
/// it is always a legal optimizer start.
RoutingState transfer_routing(const xform::ExtendedGraph& old_xg,
                              const RoutingState& old_routing,
                              const xform::ExtendedGraph& new_xg,
                              const stream::SurgeryResult& surgery,
                              double capacity_guard = 0.999);

/// Reconstructs a valid RoutingState from per-commodity extended-edge flows
/// (e.g. the LP reference vertex, whose ReferenceSolution::flows has exactly
/// this shape): phi at each non-sink commodity node is the node's outgoing
/// flow split, with a uniform fallback where the node carries no flow.
///
/// The second warm-start pipe alongside transfer_routing: a vertex of the
/// *original* constrained polytope typically saturates capacities exactly
/// (f = C), where the barrier cost is infinite, so the result is blended
/// toward the all-rejected initial state until every finite-capacity node is
/// strictly inside guard * C — always a legal optimizer start. Used by the
/// solver layer's lp -> gradient warm-start chaining (docs/SOLVERS.md).
RoutingState routing_from_flows(
    const xform::ExtendedGraph& xg,
    const std::vector<std::vector<std::pair<graph::EdgeId, double>>>& flows,
    double capacity_guard = 0.999);

}  // namespace maxutil::core
