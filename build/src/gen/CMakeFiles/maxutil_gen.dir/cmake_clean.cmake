file(REMOVE_RECURSE
  "CMakeFiles/maxutil_gen.dir/figure1.cpp.o"
  "CMakeFiles/maxutil_gen.dir/figure1.cpp.o.d"
  "CMakeFiles/maxutil_gen.dir/random_instance.cpp.o"
  "CMakeFiles/maxutil_gen.dir/random_instance.cpp.o.d"
  "CMakeFiles/maxutil_gen.dir/trace.cpp.o"
  "CMakeFiles/maxutil_gen.dir/trace.cpp.o.d"
  "libmaxutil_gen.a"
  "libmaxutil_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
