#include "stream/model.hpp"

#include <limits>

#include "util/check.hpp"

namespace maxutil::stream {

using maxutil::util::ensure;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-commodity arrays grow lazily: entries past the stored tail hold their
// defaults (potential 1, link unusable), so adding a node or link is O(1)
// instead of touching every commodity. Without this, building a
// 5000-commodity / 50k-server instance spends seconds re-growing 5000 dense
// vectors on every add_sink/add_link.
double potential_at(const std::vector<double>& potential, NodeId n) {
  return n < potential.size() ? potential[n] : 1.0;
}

void grow_to(std::vector<double>& values, std::size_t index, double fill) {
  if (values.size() <= index) values.resize(index + 1, fill);
}

}  // namespace

NodeId StreamNetwork::add_server(std::string name, double capacity) {
  ensure(capacity > 0.0, "add_server: capacity must be positive");
  const NodeId n = graph_.add_node();
  nodes_.push_back({std::move(name), capacity, /*sink=*/false});
  return n;
}

NodeId StreamNetwork::add_sink(std::string name) {
  const NodeId n = graph_.add_node();
  nodes_.push_back({std::move(name), kInf, /*sink=*/true});
  return n;
}

LinkId StreamNetwork::add_link(NodeId from, NodeId to, double bandwidth) {
  check_node(from);
  check_node(to);
  ensure(!nodes_[from].sink, "add_link: sinks cannot originate links");
  ensure(bandwidth > 0.0, "add_link: bandwidth must be positive");
  const LinkId link = graph_.add_edge(from, to);
  bandwidth_.push_back(bandwidth);
  return link;
}

CommodityId StreamNetwork::add_commodity(std::string name, NodeId source,
                                         NodeId sink, double lambda,
                                         Utility utility) {
  check_node(source);
  check_node(sink);
  ensure(!nodes_[source].sink, "add_commodity: source must be a server");
  ensure(nodes_[sink].sink, "add_commodity: sink must be a sink node");
  ensure(source != sink, "add_commodity: source equals sink");
  ensure(lambda > 0.0, "add_commodity: lambda must be positive");
  commodities_.push_back({std::move(name), source, sink, lambda,
                          std::move(utility),
                          /*potential=*/{},
                          /*consumption=*/{},
                          /*enabled=*/{}});
  return commodities_.size() - 1;
}

void StreamNetwork::set_potential(CommodityId j, NodeId n, double g) {
  check_commodity(j);
  check_node(n);
  ensure(g > 0.0, "set_potential: potential must be positive");
  grow_to(commodities_[j].potential, n, 1.0);
  commodities_[j].potential[n] = g;
}

void StreamNetwork::enable_link(CommodityId j, LinkId link, double consumption) {
  check_commodity(j);
  check_link(link);
  ensure(consumption > 0.0, "enable_link: consumption must be positive");
  ensure(graph_.head(link) != commodities_[j].source,
         "enable_link: links into the commodity source would break the DAG");
  auto& c = commodities_[j];
  const bool newly_enabled =
      !(link < c.consumption.size() && c.consumption[link] > 0.0);
  grow_to(c.consumption, link, -1.0);
  c.consumption[link] = consumption;
  if (newly_enabled) c.enabled.push_back(link);
}

void StreamNetwork::set_lambda(CommodityId j, double lambda) {
  check_commodity(j);
  ensure(lambda > 0.0, "set_lambda: lambda must be positive");
  commodities_[j].lambda = lambda;
}

const std::string& StreamNetwork::node_name(NodeId n) const {
  check_node(n);
  return nodes_[n].name;
}

bool StreamNetwork::is_sink(NodeId n) const {
  check_node(n);
  return nodes_[n].sink;
}

double StreamNetwork::capacity(NodeId n) const {
  check_node(n);
  return nodes_[n].capacity;
}

double StreamNetwork::bandwidth(LinkId link) const {
  check_link(link);
  return bandwidth_[link];
}

const std::string& StreamNetwork::commodity_name(CommodityId j) const {
  check_commodity(j);
  return commodities_[j].name;
}

NodeId StreamNetwork::source(CommodityId j) const {
  check_commodity(j);
  return commodities_[j].source;
}

NodeId StreamNetwork::sink(CommodityId j) const {
  check_commodity(j);
  return commodities_[j].sink;
}

double StreamNetwork::lambda(CommodityId j) const {
  check_commodity(j);
  return commodities_[j].lambda;
}

const Utility& StreamNetwork::utility(CommodityId j) const {
  check_commodity(j);
  return commodities_[j].utility;
}

bool StreamNetwork::uses_link(CommodityId j, LinkId link) const {
  check_commodity(j);
  check_link(link);
  const auto& consumption = commodities_[j].consumption;
  return link < consumption.size() && consumption[link] > 0.0;
}

const std::vector<LinkId>& StreamNetwork::enabled_links(CommodityId j) const {
  check_commodity(j);
  return commodities_[j].enabled;
}

double StreamNetwork::consumption(CommodityId j, LinkId link) const {
  ensure(uses_link(j, link), "consumption: link not enabled for commodity");
  return commodities_[j].consumption[link];
}

double StreamNetwork::shrinkage(CommodityId j, LinkId link) const {
  ensure(uses_link(j, link), "shrinkage: link not enabled for commodity");
  const auto& c = commodities_[j];
  return potential_at(c.potential, graph_.head(link)) /
         potential_at(c.potential, graph_.tail(link));
}

double StreamNetwork::potential(CommodityId j, NodeId n) const {
  check_commodity(j);
  check_node(n);
  return potential_at(commodities_[j].potential, n);
}

maxutil::graph::EdgeFilter StreamNetwork::commodity_filter(
    CommodityId j) const {
  check_commodity(j);
  // Captures `this`; the filter must not outlive the network.
  return [this, j](maxutil::graph::EdgeId e) { return uses_link(j, e); };
}

double StreamNetwork::delivery_gain(CommodityId j) const {
  check_commodity(j);
  const auto& c = commodities_[j];
  return potential_at(c.potential, c.sink) /
         potential_at(c.potential, c.source);
}

void StreamNetwork::check_commodity(CommodityId j) const {
  ensure(j < commodities_.size(), "StreamNetwork: commodity out of range");
}

void StreamNetwork::check_node(NodeId n) const {
  ensure(n < node_count(), "StreamNetwork: node out of range");
}

void StreamNetwork::check_link(LinkId link) const {
  ensure(link < link_count(), "StreamNetwork: link out of range");
}

}  // namespace maxutil::stream
