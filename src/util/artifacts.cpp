#include "util/artifacts.hpp"

#include <cstdlib>
#include <fstream>

#include "util/check.hpp"

namespace maxutil::util {

std::optional<std::string> results_dir() {
  const char* dir = std::getenv("MAXUTIL_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir);
}

std::optional<std::string> save_series(const TimeSeries& series,
                                       const std::string& name) {
  const auto dir = results_dir();
  if (!dir.has_value()) return std::nullopt;
  ensure(name.find('/') == std::string::npos,
         "save_series: name must not contain path separators");
  const std::string path = *dir + "/" + name + ".csv";
  std::ofstream out(path);
  ensure(out.good(), "save_series: cannot write '" + path + "'");
  series.write_csv(out);
  ensure(out.good(), "save_series: write failed for '" + path + "'");
  return path;
}

}  // namespace maxutil::util
