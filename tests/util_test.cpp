#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/artifacts.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timeseries.hpp"

namespace {

using maxutil::util::CheckError;
using maxutil::util::ensure;
using maxutil::util::max_abs_diff;
using maxutil::util::mean_of;
using maxutil::util::percentile;
using maxutil::util::Rng;
using maxutil::util::RunningStats;
using maxutil::util::Table;
using maxutil::util::TimeSeries;

TEST(Check, EnsurePassesOnTrue) { EXPECT_NO_THROW(ensure(true, "ok")); }

TEST(Check, EnsureThrowsWithLocationAndMessage) {
  try {
    ensure(false, "the reason");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the reason"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(1.0, 100.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 100.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform(0.0, 1.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (const int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 1.0), CheckError);
  EXPECT_THROW(rng.uniform_int(2, 1), CheckError);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, IndexBounds) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(9), 9u);
  EXPECT_THROW(rng.index(0), CheckError);
}

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(37);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 5.0);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, SingleValue) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 30.0), 42.0);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), CheckError);
  EXPECT_THROW(percentile(v, -1.0), CheckError);
  EXPECT_THROW(percentile(v, 101.0), CheckError);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{2.0, 4.0}), 3.0);
}

TEST(MaxAbsDiff, Basics) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.5, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
  EXPECT_THROW(max_abs_diff(a, std::vector<double>{1.0}), CheckError);
}

TEST(TimeSeries, AppendAndAccess) {
  TimeSeries ts({"iter", "utility"});
  ts.append({0.0, 1.5});
  ts.append({1.0, 2.5});
  EXPECT_EQ(ts.rows(), 2u);
  EXPECT_EQ(ts.cols(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(1, 1), 2.5);
  EXPECT_EQ(ts.column("utility").back(), 2.5);
}

TEST(TimeSeries, RejectsBadShape) {
  EXPECT_THROW(TimeSeries(std::vector<std::string>{}), CheckError);
  EXPECT_THROW(TimeSeries({"a", "a"}), CheckError);
  TimeSeries ts({"a", "b"});
  EXPECT_THROW(ts.append({1.0}), CheckError);
  EXPECT_THROW(ts.column("missing"), CheckError);
}

TEST(TimeSeries, CsvRoundTripShape) {
  TimeSeries ts({"x", "y"});
  ts.append({1.0, 2.0});
  std::ostringstream os;
  ts.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TimeSeries, LogDownsampleKeepsEndpoints) {
  TimeSeries ts({"i"});
  for (int i = 0; i < 1000; ++i) ts.append({static_cast<double>(i)});
  const TimeSeries small = ts.log_downsample(20);
  EXPECT_LE(small.rows(), 25u);
  EXPECT_GE(small.rows(), 2u);
  EXPECT_DOUBLE_EQ(small.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(small.at(small.rows() - 1, 0), 999.0);
}

TEST(TimeSeries, LogDownsampleEmptyAndTiny) {
  TimeSeries ts({"i"});
  EXPECT_EQ(ts.log_downsample(10).rows(), 0u);
  ts.append({5.0});
  EXPECT_EQ(ts.log_downsample(10).rows(), 1u);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::cell(1.25, 2)});
  t.add_row({"b", Table::cell(100LL)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}


TEST(Artifacts, DisabledWithoutEnvVar) {
  unsetenv("MAXUTIL_RESULTS_DIR");
  EXPECT_FALSE(maxutil::util::results_dir().has_value());
  TimeSeries ts({"x"});
  ts.append({1.0});
  EXPECT_FALSE(maxutil::util::save_series(ts, "nope").has_value());
}

TEST(Artifacts, WritesCsvWhenEnabled) {
  setenv("MAXUTIL_RESULTS_DIR", "/tmp", 1);
  TimeSeries ts({"x", "y"});
  ts.append({1.0, 2.0});
  const auto path = maxutil::util::save_series(ts, "maxutil_artifact_test");
  ASSERT_TRUE(path.has_value());
  std::ifstream in(*path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  unsetenv("MAXUTIL_RESULTS_DIR");
  std::remove(path->c_str());
}

TEST(Artifacts, RejectsPathTraversalAndBadDir) {
  setenv("MAXUTIL_RESULTS_DIR", "/tmp", 1);
  TimeSeries ts({"x"});
  ts.append({1.0});
  EXPECT_THROW(maxutil::util::save_series(ts, "a/b"), CheckError);
  setenv("MAXUTIL_RESULTS_DIR", "/no/such/dir/exists", 1);
  EXPECT_THROW(maxutil::util::save_series(ts, "x"), CheckError);
  unsetenv("MAXUTIL_RESULTS_DIR");
}

}  // namespace
