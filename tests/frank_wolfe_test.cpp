#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/random_instance.hpp"
#include "lp/frank_wolfe.hpp"
#include "lp/model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::lp::FrankWolfeOptions;
using maxutil::lp::kInfinity;
using maxutil::lp::LpProblem;
using maxutil::lp::LpStatus;
using maxutil::lp::Relation;
using maxutil::lp::VarId;
using maxutil::util::Rng;

TEST(FrankWolfe, QuadraticOverBox) {
  // max -(x-3)^2 - (y-1)^2 over [0,2] x [0,2]: optimum at (2, 1).
  LpProblem box;
  const VarId x = box.add_variable("x", 0.0, 2.0);
  const VarId y = box.add_variable("y", 0.0, 2.0);
  const auto value = [&](const std::vector<double>& p) {
    return -(p[x] - 3.0) * (p[x] - 3.0) - (p[y] - 1.0) * (p[y] - 1.0);
  };
  const auto grad = [&](const std::vector<double>& p) {
    return std::vector<double>{-2.0 * (p[x] - 3.0), -2.0 * (p[y] - 1.0)};
  };
  const auto solution = maxutil::lp::maximize_concave(box, value, grad);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[x], 2.0, 1e-4);
  EXPECT_NEAR(solution.x[y], 1.0, 1e-4);
  EXPECT_NEAR(solution.objective, -1.0, 1e-6);
  EXPECT_LT(solution.gap, 1e-5);
}

TEST(FrankWolfe, LogOverSimplex) {
  // max log(1+x) + log(1+y) s.t. x + y <= 4: symmetric optimum x = y = 2.
  LpProblem region;
  const VarId x = region.add_variable("x", 0.0, kInfinity);
  const VarId y = region.add_variable("y", 0.0, kInfinity);
  region.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEq, 4.0);
  const auto value = [&](const std::vector<double>& p) {
    return std::log1p(p[x]) + std::log1p(p[y]);
  };
  const auto grad = [&](const std::vector<double>& p) {
    return std::vector<double>{1.0 / (1.0 + p[x]), 1.0 / (1.0 + p[y])};
  };
  FrankWolfeOptions options;
  options.max_iterations = 2000;
  options.gap_tolerance = 1e-8;
  const auto solution =
      maxutil::lp::maximize_concave(region, value, grad, options);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.x[x], 2.0, 1e-2);
  EXPECT_NEAR(solution.x[y], 2.0, 1e-2);
  EXPECT_NEAR(solution.objective, 2.0 * std::log(3.0), 1e-5);
}

TEST(FrankWolfe, LinearObjectiveSolvesInOneIteration) {
  LpProblem region;
  const VarId x = region.add_variable("x", 0.0, 5.0);
  const auto value = [&](const std::vector<double>& p) { return 2.0 * p[x]; };
  const auto grad = [&](const std::vector<double>&) {
    return std::vector<double>{2.0};
  };
  const auto solution = maxutil::lp::maximize_concave(region, value, grad);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 10.0, 1e-9);
  EXPECT_LE(solution.iterations, 3u);
}

TEST(FrankWolfe, ReportsInfeasibleRegion) {
  LpProblem region;
  const VarId x = region.add_variable("x", 0.0, kInfinity);
  region.add_constraint({{x, 1.0}}, Relation::kLessEq, 1.0);
  region.add_constraint({{x, 1.0}}, Relation::kGreaterEq, 2.0);
  const auto solution = maxutil::lp::maximize_concave(
      region, [](const std::vector<double>&) { return 0.0; },
      [](const std::vector<double>& p) {
        return std::vector<double>(p.size(), 0.0);
      });
  EXPECT_EQ(solution.status, LpStatus::kInfeasible);
}

// The duality gap bound: value(optimum) - value(x) <= gap. Cross-check on a
// problem with a known optimum.
TEST(FrankWolfe, GapBoundsSuboptimality) {
  LpProblem region;
  const VarId x = region.add_variable("x", 0.0, 10.0);
  const auto value = [&](const std::vector<double>& p) {
    return std::sqrt(1.0 + p[x]);
  };
  const auto grad = [&](const std::vector<double>& p) {
    return std::vector<double>{0.5 / std::sqrt(1.0 + p[x])};
  };
  FrankWolfeOptions options;
  options.max_iterations = 5;  // deliberately under-converged
  options.gap_tolerance = 0.0;
  const auto solution =
      maxutil::lp::maximize_concave(region, value, grad, options);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  const double true_optimum = std::sqrt(11.0);
  EXPECT_LE(true_optimum - solution.objective, solution.gap + 1e-9);
}

// The headline cross-check: on stream instances with concave utilities, the
// Frank-Wolfe optimum over the exact polytope must agree with the PWL-LP
// reference (two completely different discretizations/algorithms).
class FwCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(FwCrossCheck, AgreesWithPwlReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 991 + 7);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 14;
  p.commodities = 2;
  p.stages = 3;
  p.utility_for = [](maxutil::stream::CommodityId j) {
    return j % 2 == 0 ? maxutil::stream::Utility::logarithmic()
                      : maxutil::stream::Utility::square_root();
  };
  const auto net = maxutil::gen::random_instance(p, rng);
  const maxutil::xform::ExtendedGraph xg(net);

  maxutil::xform::ReferenceOptions ropts;
  ropts.pwl_segments = 400;
  const auto pwl = maxutil::xform::solve_reference(xg, ropts);
  ASSERT_EQ(pwl.status, LpStatus::kOptimal);

  const auto fw = maxutil::xform::solve_reference_frank_wolfe(xg, 600);
  ASSERT_EQ(fw.status, LpStatus::kOptimal);

  EXPECT_NEAR(fw.utility, pwl.optimal_utility,
              1e-2 * (1.0 + std::abs(pwl.optimal_utility)));
  // FW never exceeds PWL by more than its own certified gap (PWL slightly
  // *over*-approximates concave functions between breakpoints).
  EXPECT_LE(fw.utility, pwl.optimal_utility + fw.duality_gap + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FwCrossCheck, ::testing::Range(0, 6));

}  // namespace
