#pragma once

#include <cstddef>
#include <vector>

#include "core/allocation.hpp"
#include "core/flow.hpp"
#include "core/gamma.hpp"
#include "core/marginals.hpp"
#include "core/optimality.hpp"
#include "core/routing.hpp"
#include "util/timeseries.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// Configuration of the full distributed gradient optimizer (Section 5).
struct GradientOptions {
  /// Scale factor eta of the Gamma update (Section 6 uses 0.04).
  double eta = 0.04;

  /// Hard iteration cap for run().
  std::size_t max_iterations = 5000;

  /// run() stops early when the largest phi change of an iteration falls
  /// below this; 0 disables early stopping.
  double convergence_tol = 0.0;

  /// Capacity safeguard: a Gamma step whose forecast usage would exceed
  /// guard * C_i at any node is geometrically damped until feasible. Keeps
  /// the barrier cost finite under discrete steps (see DESIGN.md).
  double capacity_guard = 0.999;

  /// Maximum halvings before a step is rejected entirely.
  std::size_t max_damping_rounds = 60;

  /// Require every committed step to not increase the transformed cost A.
  /// Gamma's target is a descent direction, so damping always finds such a
  /// step; without this, a fixed eta can oscillate against the barrier's
  /// steep curvature near capacity and slowly degrade (see DESIGN.md).
  bool enforce_cost_decrease = true;

  /// Auto-tune the working eta: halve it whenever a step needs damping,
  /// multiply by `adaptive_growth` after `adaptive_patience` consecutive
  /// clean steps (capped at `adaptive_eta_max`). Resolves the paper's
  /// "choosing eta" dilemma (Section 6) without manual sweeps; `eta` is the
  /// starting value.
  bool adaptive_eta = false;
  double adaptive_growth = 1.26;
  std::size_t adaptive_patience = 20;
  double adaptive_eta_max = 2.0;

  /// Use curvature-scaled (Newton-like) Gamma steps — Gallager's sketched
  /// "second derivative algorithm". `eta` then acts as a trust multiplier
  /// with natural value 1.0; set it accordingly when enabling this.
  bool curvature_scaled = false;

  /// Record a history row per iteration (disable for micro-benchmarks).
  bool record_history = true;

  /// Floor under which t_i(j) triggers the t -> 0 update rule.
  double traffic_floor = 1e-9;
};

/// Drives the three per-iteration protocols of Section 5 — marginal-cost
/// calculation, routing update Gamma, and flow forecasting/resource
/// allocation — from the paper's all-traffic-rejected initial state to the
/// optimum. The sim module runs the same mathematics over real messages;
/// this driver is the centralized (and benchmarkable) form.
class GradientOptimizer {
 public:
  explicit GradientOptimizer(const xform::ExtendedGraph& xg,
                             GradientOptions options = {});

  /// Starts from a caller-provided routing (e.g. a warm start transferred
  /// from a pre-failure network via transfer_routing) instead of the
  /// all-rejected initial state. The routing must satisfy the invariants.
  GradientOptimizer(const xform::ExtendedGraph& xg, GradientOptions options,
                    RoutingState initial_routing);

  /// Re-derives flows from the current routing — call after mutating the
  /// underlying StreamNetwork (e.g. stream::StreamNetwork::set_lambda) so
  /// the next step's marginals see the new demand immediately rather than
  /// one iteration late.
  void refresh_flows();

  /// One iteration: sweep marginals, apply Gamma, forecast flows, damp if
  /// the forecast violates the capacity guard, commit. Returns the max phi
  /// change actually committed.
  double step();

  /// Runs until `max_iterations` or `convergence_tol`. Returns iterations.
  std::size_t run();

  std::size_t iterations() const { return iterations_; }
  const RoutingState& routing() const { return routing_; }
  const FlowState& flows() const { return flows_; }
  const xform::ExtendedGraph& extended_graph() const { return *xg_; }

  /// Current overall utility sum_j U_j(a_j).
  double utility() const;

  /// Current transformed cost A = Y + eps*D.
  double cost() const { return flows_.cost(); }

  /// Current admitted rate per commodity.
  std::vector<double> admitted() const;

  /// The eta currently in force (equals options.eta unless adaptive_eta).
  double working_eta() const { return working_eta_; }

  /// True when an iteration produced non-finite utility or routing mass
  /// (e.g. an unbounded utility evaluating to inf - inf). Once set, step()
  /// and run() are no-ops: the optimizer refuses to iterate on NaNs, and the
  /// solver layer surfaces Status::kFailed with divergence_iteration().
  bool diverged() const { return diverged_; }

  /// Iteration index at which divergence was detected (0 when the initial
  /// state was already non-finite). Meaningful only when diverged().
  std::size_t divergence_iteration() const { return divergence_iteration_; }

  /// Theorem-2 residuals at the current state.
  OptimalityReport optimality() const;

  /// Physical-network view of the current solution.
  PhysicalAllocation allocation() const;

  /// Per-iteration trace: iteration, utility, cost, utility_loss, penalty,
  /// max_phi_delta, damping_rounds. Row 0 is the initial state.
  const util::TimeSeries& history() const { return history_; }

 private:
  void record(double max_delta, std::size_t damping_rounds);

  const xform::ExtendedGraph* xg_;
  GradientOptions options_;
  RoutingState routing_;
  FlowState flows_;
  std::size_t iterations_ = 0;
  double working_eta_ = 0.0;
  std::size_t clean_steps_ = 0;
  bool diverged_ = false;
  std::size_t divergence_iteration_ = 0;
  util::TimeSeries history_;
};

}  // namespace maxutil::core
