#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "ctrl/controller.hpp"
#include "serve/protocol.hpp"

namespace maxutil::serve {

/// What the daemon answered for one request (docs/SERVE.md §3).
enum class Outcome {
  kAdmit,     // admit request: admitted share >= admit_share
  kDegrade,   // admit request: between deny_share and admit_share
  kDeny,      // admit request: share below deny_share (or batch solve failed);
              // the commodity is reverted out of the plan
  kApplied,   // topology event folded into the batch and applied
  kRejected,  // request failed validation; state untouched
  kReport,    // query answered from the post-batch standing plan
};

const char* to_string(Outcome outcome);

/// One decided request. `decided_at` and `virtual_latency` come from the
/// virtual clock (decided_at = batch open time + window), so the record —
/// and the whole decision log — is a pure function of the input stream.
/// `wall_seconds` is the real re-solve time of the request's batch and is
/// reported only through the latency metrics, never in the log.
struct DecisionRecord {
  Request request;
  Outcome outcome = Outcome::kRejected;
  std::size_t batch = 0;        // 0-based batch ordinal
  std::size_t decided_at = 0;   // virtual decision timestamp
  double requested = 0.0;       // admit/query: the asked-for source rate
  double admitted = 0.0;        // admit/query: rate the plan carries
  double share = 0.0;           // admitted / requested (0 when requested 0)
  double utility = 0.0;         // total utility after the batch settled
  double wall_seconds = 0.0;    // the batch's re-solve wall time
  std::string reason;           // rejection / denial cause

  /// Canonical deterministic log line, e.g.
  /// "t=12 batch=3 admit=video@12 -> admit share=1 utility=34.5".
  std::string line() const;
};

struct ServeOptions {
  ctrl::ControllerOptions controller;

  /// Coalescing window in virtual time units: a batch opened by the first
  /// pending request at time T flushes when a request arrives at or past
  /// T + window (or when the stream ends). 0 = flush every request
  /// individually (lowest latency, most re-solves).
  std::size_t window = 0;

  /// Admission thresholds on admitted/requested share.
  double admit_share = 0.95;
  double deny_share = 0.05;

  /// Record one Chrome trace span per batch (deterministic timestamps).
  bool record_trace = false;
};

/// Aggregate over a serve run (docs/SERVE.md §5).
struct ServeReport {
  std::vector<DecisionRecord> decisions;
  std::size_t batches = 0;
  std::size_t solves = 0;  // apply_batch calls (re-solves + revert solves)
  std::size_t admits = 0;
  std::size_t degrades = 0;
  std::size_t denies = 0;
  std::size_t applied = 0;
  std::size_t rejected = 0;
  std::size_t queries = 0;
  double initial_utility = 0.0;
  double final_utility = 0.0;
  double solve_wall_seconds = 0.0;  // total wall spent inside re-solves

  // Virtual decision latency (decided_at - request time, time units) and
  // wall decision latency (the deciding batch's solve wall time, seconds).
  double virtual_p50 = 0.0;
  double virtual_p99 = 0.0;
  double wall_p50 = 0.0;
  double wall_p99 = 0.0;

  /// Decisions per wall-second of solve time (0 when no solve ran).
  double decisions_per_second() const;

  /// The deterministic replay artifact: every DecisionRecord::line(),
  /// newline-terminated. Bit-identical across thread counts.
  std::string decision_log() const;

  /// Human-readable aggregate (CLI --report).
  std::string summary() const;

  /// Machine-readable summary (CLI --json): counts, latency percentiles,
  /// throughput, and the final utility. Valid JSON by construction.
  void write_json(std::ostream& out) const;
};

/// The admission-serving event loop (ISSUE 7 tentpole, docs/SERVE.md).
/// Wraps a ctrl::Controller: requests stream in via submit() in timestamp
/// order, coalesce into batches under `window`, and each flush applies the
/// batch's topology events plus staged admit arrivals through
/// Controller::apply_batch — one rebuild, one warm-started re-solve —
/// then answers every pending request from the updated plan. Denied
/// admissions are reverted with a second (depart) batch, so a flush costs
/// at most two solves regardless of batch size.
///
/// Deterministic by construction: decisions depend only on the request
/// stream and the solver (bit-identical across thread counts with the
/// distributed backend); wall time feeds metrics only.
class Daemon {
 public:
  Daemon(const stream::StreamNetwork& baseline, ServeOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Feeds one request. Throws util::CheckError if its timestamp precedes
  /// an already-submitted one; any other validation failure becomes a
  /// kRejected decision, not an exception — a live daemon must survive bad
  /// input. May flush the pending batch first (window expiry).
  void submit(const Request& request);

  /// Flushes the pending batch (no-op when nothing is pending).
  void flush();

  /// Flushes and returns the final report. submit() after finish() throws.
  const ServeReport& finish();

  /// Replays a whole script: submit every request, then finish().
  const ServeReport& run(const Script& script);

  const ServeReport& report() const { return report_; }
  const ctrl::Controller& controller() const { return *controller_; }
  ctrl::Controller& controller() { return *controller_; }

 private:
  struct Pending {
    Request request;
    bool staged = false;          // accepted into the batch's event list
    std::string reject_reason;    // non-empty => decided kRejected
  };

  void open_batch(std::size_t time);
  void decide_batch();
  DecisionRecord decide_admit(const Pending& pending,
                              const ctrl::BatchOutcome& outcome,
                              std::vector<ctrl::ChurnEvent>& reverts);
  void finalize_record(DecisionRecord record);
  void register_metrics();

  ServeOptions options_;
  std::unique_ptr<ctrl::Controller> controller_;
  ServeReport report_;
  std::vector<Pending> pending_;
  std::vector<double> virtual_latencies_;
  std::vector<double> wall_latencies_;
  std::size_t open_time_ = 0;
  std::size_t last_time_ = 0;
  bool batch_open_ = false;
  bool finished_ = false;

  obs::MetricId m_requests_ = 0;
  obs::MetricId m_admits_ = 0;
  obs::MetricId m_degrades_ = 0;
  obs::MetricId m_denies_ = 0;
  obs::MetricId m_applied_ = 0;
  obs::MetricId m_rejected_ = 0;
  obs::MetricId m_queries_ = 0;
  obs::MetricId m_batches_ = 0;
  obs::MetricId m_solves_ = 0;
  obs::MetricId m_batch_size_ = 0;
  obs::MetricId m_virtual_latency_ = 0;
  obs::MetricId m_wall_latency_us_ = 0;
  obs::MetricId m_utility_ = 0;
};

}  // namespace maxutil::serve
