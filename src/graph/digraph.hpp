#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace maxutil::graph {

/// Dense node identifier: nodes are numbered 0..node_count()-1 in creation
/// order, which lets algorithm state live in flat vectors indexed by node.
using NodeId = std::size_t;

/// Dense edge identifier, numbered 0..edge_count()-1 in creation order.
using EdgeId = std::size_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Directed multigraph with O(1) access to a node's in- and out-edges.
///
/// This is the structural substrate for both the physical stream-processing
/// network and the extended graph of Section 3 (bandwidth + dummy nodes).
/// Parallel edges are allowed (the extended graph never creates them, but the
/// physical model does not forbid them); self-loops are rejected because no
/// graph in the formulation contains them and they would break the
/// loop-freedom machinery.
class Digraph {
 public:
  Digraph() = default;

  /// Creates `n` isolated nodes up front.
  explicit Digraph(std::size_t n);

  /// Adds one node and returns its id.
  NodeId add_node();

  /// Adds a directed edge from `from` to `to`; returns its id.
  /// Throws on out-of-range endpoints or a self-loop.
  EdgeId add_edge(NodeId from, NodeId to);

  std::size_t node_count() const { return out_edges_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Tail (source endpoint) of an edge.
  NodeId tail(EdgeId e) const;

  /// Head (target endpoint) of an edge.
  NodeId head(EdgeId e) const;

  /// Ids of edges leaving `n`, in insertion order.
  std::span<const EdgeId> out_edges(NodeId n) const;

  /// Ids of edges entering `n`, in insertion order.
  std::span<const EdgeId> in_edges(NodeId n) const;

  /// First edge from `from` to `to`, or the sentinel `edge_count()` when no
  /// such edge exists; linear in the out-degree of `from`.
  EdgeId find_edge(NodeId from, NodeId to) const;

  /// True if some edge runs from `from` to `to` (i.e. `find_edge` does not
  /// return its `edge_count()` sentinel).
  bool has_edge(NodeId from, NodeId to) const;

  /// Out-degree of `n`.
  std::size_t out_degree(NodeId n) const { return out_edges(n).size(); }

  /// In-degree of `n`.
  std::size_t in_degree(NodeId n) const { return in_edges(n).size(); }

  /// Graphviz DOT rendering; `node_label(n)` may be empty to use ids.
  std::string to_dot(
      const std::vector<std::string>& node_labels = {}) const;

 private:
  struct Edge {
    NodeId from;
    NodeId to;
  };
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace maxutil::graph
