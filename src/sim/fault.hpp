#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace maxutil::sim {

/// A scheduled fail-stop window: the node is failed at the start of round
/// `crash_round` and restored at the start of round `restart_round`
/// (half-open: the node is down for rounds [crash_round, restart_round)).
/// `restart_round == 0` (or anything <= crash_round) means the node never
/// comes back. Node ids refer to ActorIds of the runtime the plan is
/// installed on; they are validated lazily when the window first triggers,
/// so one plan can be reused across instances of different sizes as long as
/// the crashed nodes exist.
struct CrashWindow {
  std::size_t node = 0;
  std::size_t crash_round = 0;
  std::size_t restart_round = 0;
};

/// Per-link override of the global drop probability (matched on the exact
/// (from, to) actor pair).
struct LinkDrop {
  std::size_t from = 0;
  std::size_t to = 0;
  double probability = 0.0;
};

/// A seeded, deterministic fault model for sim::Runtime. All randomness is
/// drawn from one xoshiro256** stream seeded with `seed` and consumed at the
/// serial outbox-merge point in a fixed per-message draw order (drop, delay,
/// duplicate, duplicate's delay), so a faulted run is bit-identical for a
/// given seed across thread counts — see docs/RUNTIME.md for the argument.
///
/// Semantics per message (after the runtime's failure filter, before
/// queuing):
///   1. dropped with probability drop (or the link's override) — the message
///      simply never arrives; senders are not notified;
///   2. otherwise delayed by extra in [delay_min, delay_max] rounds drawn
///      uniformly, on top of the link's base delay;
///   3. otherwise-or-additionally duplicated with probability `duplicate`;
///      the copy draws its own extra delay, so original and copy usually
///      arrive in different rounds (the copy is never dropped — duplication
///      models retransmission-style repeats, not loss).
/// Crash windows are applied at the start of each round independently of
/// per-message faults.
struct FaultPlan {
  /// Global per-message drop probability in [0, 1].
  double drop = 0.0;

  /// Extra delivery delay in rounds, drawn uniformly from
  /// [delay_min, delay_max] per message. Both 0 = no fault delay.
  std::size_t delay_min = 0;
  std::size_t delay_max = 0;

  /// Per-message duplication probability in [0, 1].
  double duplicate = 0.0;

  /// Seed of the fault RNG stream. Runs with equal plans and seeds are
  /// bit-identical regardless of thread count.
  std::uint64_t seed = 2007;

  /// Per-link overrides of `drop` (first match wins).
  std::vector<LinkDrop> link_drops;

  /// Scheduled fail-stop crash/restart windows.
  std::vector<CrashWindow> crashes;

  /// True when any per-message fault can fire (drop/delay/duplicate) —
  /// gates the RNG draws so a default plan leaves the runtime byte-for-byte
  /// on its fault-free fast path.
  bool link_faults() const;

  /// True when the plan can perturb the run at all (link faults or crashes).
  bool enabled() const;

  /// Drop probability for a specific link, honoring overrides.
  double drop_for(std::size_t from, std::size_t to) const;

  /// Aborts via util::ensure (with the offending values in the message) on
  /// out-of-range probabilities, an inverted delay interval, or two crash
  /// windows of the same node whose down intervals overlap.
  void validate() const;
};

/// Parses the CLI fault-spec grammar into a plan:
///
///   spec    := entry ("," entry)*
///   entry   := "drop=" P | "delay=" D | "dup=" P | "seed=" N
///            | "crash=" NODE "@" A "-" B
///            | "link=" FROM "-" TO "@" P
///   D       := B | A "-" B          (single value means [0, B])
///
/// e.g. "drop=0.1,delay=1-3,dup=0.05,seed=7,crash=4@200-400,link=2-5@0.5".
/// `crash` and `link` may repeat. Aborts via util::ensure on malformed
/// input, with the expected shape in the error message.
FaultPlan parse_fault_spec(const std::string& spec);

/// One-line human-readable rendering of a plan (CLI --report output).
std::string describe(const FaultPlan& plan);

}  // namespace maxutil::sim
