#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace maxutil::obs {

/// Compile-time kill switch: building with -DMAXUTIL_OBS_OFF makes every
/// observability attach point a dead branch (Runtime never allocates an
/// obs::Observability, so `if (obs_)` is always false and the instrumented
/// code paths are unreachable). The runtime knob is
/// sim::RuntimeOptions::observe; both default to "off is free".
#if defined(MAXUTIL_OBS_OFF)
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Dense handle into a MetricsRegistry, assigned at registration.
using MetricId = std::size_t;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Read-side view of a histogram with all shards folded together.
/// `buckets[i]` counts samples with value <= upper_bounds[i]; the final
/// bucket (buckets.back()) is the implicit +inf overflow bucket.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;  // size upper_bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// A low-overhead metrics registry: monotonic counters (uint64), gauges
/// (double, serial writers only), and fixed-bucket histograms. Writes touch
/// plain slots — no locks, no atomics. Concurrency contract:
///
///   * Registration (counter()/gauge()/histogram()) is serial-only and must
///     finish before any parallel writes.
///   * add()/observe() take a `shard` index; each concurrent writer must use
///     its own shard (sim::Runtime passes the worker index). Two writers on
///     distinct shards never share a cache line's ownership semantics —
///     shards are independent slot arrays.
///   * set() (gauges) and all read accessors are serial-only.
///
/// Read accessors fold shards in ascending shard order, so merged values are
/// a pure function of the per-shard contents — and because counters and
/// bucket counts are integers, the fold is exactly associative: the same
/// multiset of increments yields bit-identical totals no matter how the
/// writers were sharded (tests/obs_test.cpp pins this across 1/2/8 shards).
/// merge_shards() folds everything into shard 0 eagerly at a serial point.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t shards = 1);

  // --- Registration (serial-only, before parallel use) ---
  MetricId counter(std::string name, std::string help = {});
  MetricId gauge(std::string name, std::string help = {});
  /// `upper_bounds` must be strictly increasing; an implicit +inf overflow
  /// bucket is appended.
  MetricId histogram(std::string name, std::vector<double> upper_bounds,
                     std::string help = {});

  // --- Hot-path writes ---
  void add(MetricId id, std::uint64_t delta = 1, std::size_t shard = 0);
  void set(MetricId id, double value);  // gauges, serial-only
  void observe(MetricId id, double value, std::size_t shard = 0);
  /// Records `count` identical samples with one bucket/count/sum update.
  /// Bit-identical to calling observe(id, value) `count` times whenever
  /// `value` and `value * count` are exactly representable (integer-valued
  /// series like round latencies) — the bulk path exists so O(actors)
  /// per-wave harvests collapse into one write per distinct value.
  void observe_n(MetricId id, double value, std::uint64_t count,
                 std::size_t shard = 0);

  /// Folds shards 1..N-1 into shard 0 (and zeroes them) — called at a serial
  /// merge point so subsequent reads walk only warm shard-0 memory.
  void merge_shards();

  // --- Reads (serial-only) ---
  std::uint64_t counter_value(MetricId id) const;
  double gauge_value(MetricId id) const;
  HistogramSnapshot histogram_snapshot(MetricId id) const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t size() const { return metrics_.size(); }
  std::optional<MetricId> find(std::string_view name) const;
  MetricKind kind(MetricId id) const;
  const std::string& name(MetricId id) const;
  const std::string& help(MetricId id) const;

  /// Flat CSV export: header "kind,name,field,value", one row per scalar
  /// (counters/gauges: field "value"; histograms: count/sum/min/max plus one
  /// "le_<bound>" row per bucket and "le_inf" for the overflow bucket).
  void write_csv(std::ostream& out) const;

  /// Human-readable catalog (CLI --metrics-report): every metric with its
  /// current value and help string.
  std::string report() const;

 private:
  struct HistogramState {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  struct Shard {
    std::vector<std::uint64_t> counters;
    std::vector<HistogramState> histograms;
  };

  struct Metric {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::size_t slot = 0;                // index into the per-kind arrays
    std::vector<double> upper_bounds;    // histograms only
  };

  const Metric& checked(MetricId id, MetricKind kind) const;
  std::size_t bucket_of(const Metric& metric, double value) const;

  std::vector<Metric> metrics_;
  std::vector<Shard> shards_;
  std::vector<double> gauges_;  // serial writers only, unsharded
};

}  // namespace maxutil::obs
