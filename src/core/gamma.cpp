#include "core/gamma.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace maxutil::core {

using maxutil::util::ensure;

std::vector<bool> compute_blocked_tags(const ExtendedGraph& xg,
                                       const RoutingState& routing,
                                       const FlowState& flows,
                                       const MarginalCosts& marginals,
                                       CommodityId j,
                                       const GammaOptions& options) {
  const auto& g = xg.graph();
  const auto order = maxutil::graph::topological_sort(g, xg.commodity_filter(j));
  ensure(order.has_value(), "compute_blocked_tags: cyclic usable subgraph");
  const auto& dr = marginals.d_cost_d_input[j];
  std::vector<bool> tagged(xg.node_count(), false);
  // Reverse topological order: downstream tags are final before v looks at
  // its neighbors — the sweep form of the paper's tag-in-broadcast protocol.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    if (v == xg.sink(j)) continue;
    const double tv = flows.t[j][v];
    for (const EdgeId e : g.out_edges(v)) {
      if (!xg.usable(j, e)) continue;
      const double phi = routing.phi(j, e);
      if (phi <= 0.0) continue;
      const NodeId m = g.head(e);
      if (tagged[m]) {
        tagged[v] = true;
        break;
      }
      // Improper link test (eq. 18), with two adaptations:
      //  * the downstream marginal is shrinkage-scaled (dr_v vs beta * dr_m):
      //    eq. 18 is Gallager's beta = 1 form, and with shrinkage one unit
      //    at v legitimately becomes beta units at m, so the unscaled
      //    comparison would tag every normally-operating node (see
      //    DESIGN.md);
      //  * multiplied through by t_v so a zero-traffic node needs no special
      //    casing: phi * t_v >= eta * (marginal via e - dA/dr_v).
      if (dr[v] <= xg.beta(j, e) * dr[m] &&
          phi * tv >= options.eta *
                          (marginal_via_edge(xg, flows, marginals, j, e) -
                           dr[v])) {
        tagged[v] = true;
        break;
      }
    }
  }
  return tagged;
}

GammaStats apply_gamma(const ExtendedGraph& xg, const FlowState& flows,
                       const MarginalCosts& marginals,
                       const GammaOptions& options, RoutingState& routing) {
  ensure(options.eta > 0.0, "apply_gamma: eta must be positive");
  const auto& g = xg.graph();
  GammaStats stats;

  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    const auto tagged =
        compute_blocked_tags(xg, routing, flows, marginals, j, options);

    for (const NodeId v : xg.commodity_nodes(j)) {
      if (v == xg.sink(j)) continue;

      // Candidate out-edges, with the blocked set B_i(j) removed: an edge is
      // blocked when phi = 0 and its head carries the tag (eq. 14).
      std::vector<EdgeId> eligible;
      for (const EdgeId e : g.out_edges(v)) {
        if (!xg.usable(j, e)) continue;
        if (routing.phi(j, e) == 0.0 && tagged[g.head(e)]) {
          ++stats.blocked_edges;
          continue;
        }
        eligible.push_back(e);
      }
      ensure(!eligible.empty(), "apply_gamma: all out-edges blocked");

      // Best (cheapest-marginal) eligible link k(i,j) of eq. 16/17.
      EdgeId best = eligible.front();
      double best_via = std::numeric_limits<double>::infinity();
      for (const EdgeId e : eligible) {
        const double via = marginal_via_edge(xg, flows, marginals, j, e);
        if (via < best_via) {
          best_via = via;
          best = e;
        }
      }

      const double tv = flows.t[j][v];
      double shifted = 0.0;
      if (tv <= options.traffic_floor) {
        // Gallager's t -> 0 limit: Delta = phi on every non-best link.
        ++stats.snapped_nodes;
        for (const EdgeId e : eligible) {
          if (e == best) continue;
          const double phi = routing.phi(j, e);
          if (phi == 0.0) continue;
          shifted += phi;
          stats.max_phi_change = std::max(stats.max_phi_change, phi);
          routing.set_phi(j, e, 0.0);
        }
      } else {
        const double best_curvature =
            options.step_mode == StepMode::kCurvatureScaled
                ? curvature_via_edge(xg, flows, marginals, j, best)
                : 0.0;
        for (const EdgeId e : eligible) {
          if (e == best) continue;
          const double phi = routing.phi(j, e);
          if (phi == 0.0) continue;
          const double a =
              marginal_via_edge(xg, flows, marginals, j, e) - best_via;
          double step;
          if (options.step_mode == StepMode::kCurvatureScaled) {
            // Newton step for the 1-D move of mass from e to best:
            // A(delta) ~ -a t delta + 1/2 (kappa_e + kappa_best) t^2 delta^2.
            const double kappa =
                std::max(curvature_via_edge(xg, flows, marginals, j, e) +
                             best_curvature,
                         options.curvature_floor);
            step = options.eta * a / (tv * kappa);
          } else {
            step = options.eta * a / tv;
          }
          const double delta = std::min(phi, step);
          if (delta <= 0.0) continue;
          shifted += delta;
          stats.max_phi_change = std::max(stats.max_phi_change, delta);
          routing.set_phi(j, e, phi - delta);
        }
      }
      if (shifted > 0.0) {
        routing.set_phi(j, best, routing.phi(j, best) + shifted);
      }
    }
  }
  return stats;
}

}  // namespace maxutil::core
