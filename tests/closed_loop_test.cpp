// Tests for the measurement-driven (closed-loop) optimizer: the gradient
// algorithm converges when fed packet-level telemetry instead of fluid
// predictions, with accuracy governed by the measurement window.

#include <gtest/gtest.h>

#include <cmath>

#include "des/closed_loop.hpp"
#include "gen/random_instance.hpp"
#include "stream/model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::des::ClosedLoopOptions;
using maxutil::des::MeasurementDrivenOptimizer;
using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

StreamNetwork chain(double lambda) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 20.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 5.0);
  const auto bt = net.add_link(b, t, 6.0);
  const CommodityId j = net.add_commodity("c", a, t, lambda, Utility::linear());
  net.enable_link(j, ab, 2.0);
  net.enable_link(j, bt, 1.0);
  return net;
}

TEST(ClosedLoop, RejectsBadOptions) {
  const StreamNetwork net = chain(3.0);
  const ExtendedGraph xg(net);
  ClosedLoopOptions bad;
  bad.epochs = 0;
  EXPECT_THROW(MeasurementDrivenOptimizer(xg, bad), CheckError);
}

TEST(ClosedLoop, AdmitsUncongestedLoadFromMeasurementsOnly) {
  const StreamNetwork net = chain(3.0);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const ExtendedGraph xg(net, penalty);
  ClosedLoopOptions options;
  options.gamma.eta = 0.2;
  options.epochs = 120;
  MeasurementDrivenOptimizer opt(xg, options);
  opt.run();
  // lambda = 3 far below the bottleneck of 5: nearly everything admitted.
  EXPECT_GT(opt.fluid_utility(), 2.6);
  EXPECT_TRUE(opt.routing().is_valid(xg, 1e-6));
}

TEST(ClosedLoop, FindsBottleneckUnderOverload) {
  const StreamNetwork net = chain(50.0);  // bottleneck 5
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const ExtendedGraph xg(net, penalty);
  ClosedLoopOptions options;
  options.gamma.eta = 0.2;
  options.epochs = 150;
  MeasurementDrivenOptimizer opt(xg, options);
  opt.run();
  EXPECT_GT(opt.fluid_utility(), 4.0);
  EXPECT_LT(opt.fluid_utility(), 5.05);
  // The *fluid* evaluation of the learned routing respects capacities.
  const auto flows = maxutil::core::compute_flows(xg, opt.routing());
  for (NodeId v = 0; v < xg.node_count(); ++v) {
    if (!xg.has_finite_capacity(v)) continue;
    EXPECT_LT(flows.f_node[v], xg.capacity(v) * 1.001);
  }
}

TEST(ClosedLoop, HistoryTracksBothViews) {
  const StreamNetwork net = chain(3.0);
  const ExtendedGraph xg(net);
  ClosedLoopOptions options;
  options.epochs = 5;
  MeasurementDrivenOptimizer opt(xg, options);
  opt.run();
  EXPECT_EQ(opt.history().rows(), 5u);
  EXPECT_EQ(opt.epochs_run(), 5u);
  EXPECT_GE(opt.history().column("measured_utility").back(), 0.0);
}

TEST(ClosedLoop, TracksFluidOptimumOnRandomInstance) {
  // The headline claim: fed only packet-level telemetry (smoothed across
  // epochs), the gradient loop hovers within a few percent of the LP
  // optimum. Metrics are tail-averaged over the last 50 epochs — a single
  // epoch's end state is a noisy snapshot, which is the point of measuring
  // this way.
  Rng rng(51);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 10;
  p.commodities = 2;
  p.stages = 2;
  p.lambda = 30.0;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const ExtendedGraph xg(net, penalty);
  const double lp = maxutil::xform::solve_reference(xg).optimal_utility;

  ClosedLoopOptions options;
  options.gamma.eta = 0.1;
  options.sim.horizon = 100.0;
  options.sim.warmup = 10.0;
  options.sim.packet_size = 1.0;
  options.epochs = 300;
  MeasurementDrivenOptimizer opt(xg, options);
  opt.run();

  const auto& measured = opt.history().column("measured_utility");
  const auto& fluid = opt.history().column("fluid_utility");
  double measured_tail = 0.0, fluid_tail = 0.0;
  const std::size_t tail = 50;
  for (std::size_t i = 0; i < tail; ++i) {
    measured_tail += measured[measured.size() - 1 - i];
    fluid_tail += fluid[fluid.size() - 1 - i];
  }
  measured_tail /= tail;
  fluid_tail /= tail;
  EXPECT_GT(measured_tail, 0.88 * lp);
  EXPECT_LT(measured_tail, 1.02 * lp);  // physics caps delivered throughput
  EXPECT_GT(fluid_tail, 0.90 * lp);
  // Measurement noise weakens the barrier slightly: allow a small fluid
  // overshoot band (the packet system absorbs it as queueing).
  EXPECT_LT(fluid_tail, 1.05 * lp);
}

}  // namespace
