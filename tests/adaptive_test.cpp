// Tests for the adaptive-eta mode of the gradient optimizer: the working
// step scale grows on clean streaks, shrinks on damped/rejected steps, and
// converges at least as well as the paper's hand-tuned eta without sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "core/flow.hpp"
#include "core/marginals.hpp"
#include "core/optimizer.hpp"
#include "gen/random_instance.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::core::GradientOptimizer;
using maxutil::core::GradientOptions;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

maxutil::stream::StreamNetwork paper_net() {
  Rng rng(2007);
  return maxutil::gen::random_instance({}, rng);
}

TEST(AdaptiveEta, GrowsOnCleanStreaks) {
  const auto net = paper_net();
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  GradientOptions options;
  options.eta = 0.01;
  options.adaptive_eta = true;
  options.adaptive_patience = 10;
  options.record_history = false;
  options.max_iterations = 300;
  GradientOptimizer opt(xg, options);
  EXPECT_DOUBLE_EQ(opt.working_eta(), 0.01);
  opt.run();
  EXPECT_GT(opt.working_eta(), 0.01);
}

TEST(AdaptiveEta, FixedModeKeepsEta) {
  const auto net = paper_net();
  const ExtendedGraph xg(net);
  GradientOptions options;
  options.eta = 0.04;
  options.record_history = false;
  options.max_iterations = 200;
  GradientOptimizer opt(xg, options);
  opt.run();
  EXPECT_DOUBLE_EQ(opt.working_eta(), 0.04);
}

TEST(AdaptiveEta, ShrinksWhenStepsNeedDamping) {
  // A huge starting eta forces damping immediately; the working eta must
  // fall below the start.
  const auto net = paper_net();
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  GradientOptions options;
  options.eta = 2.0;
  options.adaptive_eta = true;
  options.record_history = false;
  options.max_iterations = 500;
  GradientOptimizer opt(xg, options);
  opt.run();
  EXPECT_LT(opt.working_eta(), 2.0);
}

TEST(AdaptiveEta, MatchesHandTunedConvergence) {
  const auto net = paper_net();
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  const double optimal = maxutil::xform::solve_reference(xg).optimal_utility;

  const auto iterations_to_95 = [&](GradientOptions options) {
    options.record_history = false;
    options.max_iterations = 20000;
    GradientOptimizer opt(xg, options);
    std::size_t count = 0;
    while (opt.utility() < 0.95 * optimal && count < 20000) {
      opt.step();
      ++count;
    }
    return count;
  };

  GradientOptions tuned;
  tuned.eta = 0.04;  // the paper's sweep result
  GradientOptions adaptive;
  adaptive.eta = 0.005;  // a deliberately too-small start
  adaptive.adaptive_eta = true;
  adaptive.adaptive_patience = 10;

  const std::size_t tuned_iters = iterations_to_95(tuned);
  const std::size_t adaptive_iters = iterations_to_95(adaptive);
  ASSERT_LT(tuned_iters, 20000u);
  ASSERT_LT(adaptive_iters, 20000u);
  // Adaptive from a bad start stays within ~4x of the hand-tuned optimum
  // and far better than the fixed bad start (which is ~8x slower).
  EXPECT_LT(adaptive_iters, 4 * tuned_iters);
}

TEST(CurvatureScaled, SecondDerivativesMatchFiniteDifferences) {
  // The curvature telescoping must agree with numeric second differences of
  // the cost along single-phi perturbations (same scheme as the first-order
  // test, one derivative higher): d2A/dphi^2 = t^2 * kappa_via_edge.
  const auto net = paper_net();
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  // Measure at a realistic feasible point: a briefly-run optimizer iterate.
  // (The all-uniform interior routing is *infeasible* on this instance — it
  // funnels flow through tiny-capacity nodes the optimizer learns to avoid,
  // making the barrier cost infinite.)
  GradientOptions warmup;
  warmup.eta = 0.04;
  warmup.record_history = false;
  warmup.max_iterations = 200;
  GradientOptimizer warm(xg, warmup);
  warm.run();
  const maxutil::core::RoutingState routing = warm.routing();
  const auto flows = maxutil::core::compute_flows(xg, routing);
  ASSERT_TRUE(std::isfinite(flows.cost()));
  const auto marginals = maxutil::core::compute_marginals(xg, routing, flows);
  const double h = 1e-4;
  std::size_t checked = 0;
  for (maxutil::stream::CommodityId j = 0; j < xg.commodity_count(); ++j) {
    for (maxutil::graph::EdgeId e = 0; e < xg.edge_count(); ++e) {
      if (!xg.usable(j, e)) continue;
      const auto tail = xg.graph().tail(e);
      const double t = flows.t_at(j, tail);
      if (t <= 1e-6 || routing.phi(j, e) < h) continue;
      auto up = routing, down = routing;
      up.set_phi(j, e, routing.phi(j, e) + h);
      down.set_phi(j, e, routing.phi(j, e) - h);
      const double c0 = flows.cost();
      const double cu = maxutil::core::compute_flows(xg, up).cost();
      const double cd = maxutil::core::compute_flows(xg, down).cost();
      if (!std::isfinite(cu) || !std::isfinite(cd)) continue;
      const double fd2 = (cu - 2.0 * c0 + cd) / (h * h);
      const double analytic =
          t * t *
          maxutil::core::curvature_via_edge(xg, flows, marginals, j, e);
      EXPECT_NEAR(analytic, fd2, 2e-2 * (1.0 + std::abs(fd2)))
          << "j " << j << " e " << e;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(CurvatureScaled, ConvergesWithoutTuning) {
  // Natural eta = 1 matches a well-tuned fixed eta on the paper instance
  // (no sweep needed), and reaches the same optimum.
  const auto net = paper_net();
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  const double optimal = maxutil::xform::solve_reference(xg).optimal_utility;
  GradientOptions options;
  options.eta = 1.0;
  options.curvature_scaled = true;
  options.record_history = false;
  options.max_iterations = 5000;
  GradientOptimizer opt(xg, options);
  std::size_t it = 0;
  while (it < 5000 && opt.utility() < 0.95 * optimal) {
    opt.step();
    ++it;
  }
  EXPECT_LT(it, 300u);  // comparable to the tuned eta=0.08 (73 iterations)
  opt.run();
  EXPECT_GT(opt.utility(), 0.96 * optimal);
}

TEST(AdaptiveEta, StaysStableAtHighGrowthCap) {
  const auto net = paper_net();
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  const double optimal = maxutil::xform::solve_reference(xg).optimal_utility;
  GradientOptions options;
  options.eta = 0.04;
  options.adaptive_eta = true;
  options.adaptive_eta_max = 2.0;
  options.record_history = false;
  options.max_iterations = 5000;
  GradientOptimizer opt(xg, options);
  opt.run();
  // Even when eta climbs aggressively, the monotone-descent safeguard keeps
  // the end state near-optimal rather than oscillating away.
  EXPECT_GT(opt.utility(), 0.95 * optimal);
}

}  // namespace
