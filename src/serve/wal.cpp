#include "serve/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace maxutil::serve {

namespace fs = std::filesystem;
using maxutil::util::ensure;

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

int open_append(const std::string& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  } while (fd < 0 && errno == EINTR);
  ensure(fd >= 0, "wal: cannot open '" + path +
                      "': " + std::string(std::strerror(errno)));
  return fd;
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& what) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ensure(false,
             what + ": write failed: " + std::string(std::strerror(errno)));
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_fd(int fd, const std::string& what) {
  int rc = 0;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  ensure(rc == 0, what + ": fsync failed: " + std::string(std::strerror(errno)));
}

void fsync_dir(const std::string& dir) {
  int fd = -1;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return;  // best effort; some filesystems refuse directory fds
  ::fsync(fd);
  ::close(fd);
}

std::string checksum_body(const WalRecord& record) {
  return std::to_string(record.seq) + " " + std::to_string(record.epoch) +
         " " + record.payload;
}

bool parse_wal_line(const std::string& line, WalRecord& out) {
  if (line.rfind("r ", 0) != 0) return false;
  std::size_t at = 2;
  const auto next_token = [&](std::string& token) {
    const std::size_t sp = line.find(' ', at);
    if (sp == std::string::npos) return false;
    token = line.substr(at, sp - at);
    at = sp + 1;
    return !token.empty();
  };
  std::string seq_tok, epoch_tok, sum_tok;
  if (!next_token(seq_tok) || !next_token(epoch_tok) || !next_token(sum_tok)) {
    return false;
  }
  out.payload = line.substr(at);
  char* end = nullptr;
  out.seq = std::strtoull(seq_tok.c_str(), &end, 10);
  if (end != seq_tok.c_str() + seq_tok.size()) return false;
  out.epoch = std::strtoull(epoch_tok.c_str(), &end, 10);
  if (end != epoch_tok.c_str() + epoch_tok.size()) return false;
  const std::uint64_t sum = std::strtoull(sum_tok.c_str(), &end, 16);
  if (end != sum_tok.c_str() + sum_tok.size()) return false;
  return sum == fnv1a64(checksum_body(out));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// tmp + fsync + rename + directory fsync: either the old file or the
/// complete new one survives a crash, never a partial write.
void write_file_durably(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  int fd = -1;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  ensure(fd >= 0, "wal: cannot create '" + tmp +
                      "': " + std::string(std::strerror(errno)));
  write_all(fd, content.data(), content.size(), tmp);
  fsync_fd(fd, tmp);
  ::close(fd);
  ensure(std::rename(tmp.c_str(), path.c_str()) == 0,
         "wal: rename '" + tmp + "' -> '" + path +
             "' failed: " + std::string(std::strerror(errno)));
  fsync_dir(fs::path(path).parent_path().string());
}

/// Byte offset just past the first `lines` newline-terminated lines.
std::size_t offset_after_lines(const std::string& data, std::size_t lines) {
  std::size_t offset = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    const std::size_t nl = data.find('\n', offset);
    ensure(nl != std::string::npos,
           "wal: decisions.log shorter than its snapshot claims (" +
               std::to_string(lines) + " lines expected)");
    offset = nl + 1;
  }
  return offset;
}

}  // namespace

Wal::Wal(const std::string& path) : fd_(open_append(path)), path_(path) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::append(const WalRecord& record) {
  ensure(record.payload.find('\n') == std::string::npos,
         "wal: payload contains a newline");
  const std::string line = "r " + std::to_string(record.seq) + " " +
                           std::to_string(record.epoch) + " " +
                           hex64(fnv1a64(checksum_body(record))) + " " +
                           record.payload + "\n";
  write_all(fd_, line.data(), line.size(), "wal append");
  last_seq_ = record.seq;
}

void Wal::sync() { fsync_fd(fd_, "wal"); }

std::vector<WalRecord> Wal::read_and_repair(const std::string& path,
                                            std::size_t* truncated_bytes) {
  if (truncated_bytes) *truncated_bytes = 0;
  const std::string data = read_file(path);
  if (data.empty()) return {};
  std::vector<WalRecord> records;
  std::size_t pos = 0;
  std::size_t good_end = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // torn final line
    WalRecord record;
    if (!parse_wal_line(data.substr(pos, nl - pos), record)) break;
    records.push_back(std::move(record));
    pos = nl + 1;
    good_end = pos;
  }
  if (good_end < data.size()) {
    if (truncated_bytes) *truncated_bytes = data.size() - good_end;
    ensure(::truncate(path.c_str(), static_cast<off_t>(good_end)) == 0,
           "wal: truncate '" + path +
               "' failed: " + std::string(std::strerror(errno)));
  }
  return records;
}

Durable::Durable(Daemon& daemon, DurableOptions options)
    : daemon_(&daemon), options_(std::move(options)) {
  ensure(!options_.dir.empty(), "durable: a WAL directory is required");
  fs::create_directories(options_.dir);
  register_metrics();
  load_or_init_meta();
  epoch_ = bump_epoch();
  daemon_->controller().metrics().set(m_epoch_, static_cast<double>(epoch_));
  recover();
}

Durable::~Durable() {
  if (decisions_fd_ >= 0) ::close(decisions_fd_);
}

void Durable::register_metrics() {
  obs::MetricsRegistry& m = daemon_->controller().metrics();
  const auto counter = [&m](const char* name, const char* help) {
    if (const auto id = m.find(name)) return *id;
    return m.counter(name, help);
  };
  m_records_ =
      counter("serve_wal_records_total", "requests appended to the WAL");
  m_replayed_ = counter("serve_wal_replayed_total",
                        "WAL records replayed during recovery");
  m_snapshots_ =
      counter("serve_snapshots_total", "daemon snapshots written durably");
  m_truncated_ = counter("serve_wal_truncated_total",
                         "torn WAL tails truncated at open");
  if (const auto id = m.find("serve_epoch")) {
    m_epoch_ = *id;
  } else {
    m_epoch_ = m.gauge("serve_epoch", "fencing epoch of this incarnation");
  }
}

void Durable::load_or_init_meta() const {
  // Decision-relevant options fingerprint. Deliberately excludes thread
  // count / partitioning (replay is bit-identical across them) and
  // snapshot_every (a replay-time knob, not a decision input).
  const ServeOptions& opts = daemon_->options();
  std::ostringstream meta;
  meta << "maxutil-serve-meta 1\n"
       << "window " << opts.window << "\n"
       << "admit " << hex_double(opts.admit_share) << "\n"
       << "deny " << hex_double(opts.deny_share) << "\n"
       << "max_pending " << opts.max_pending << "\n"
       << "pipeline " << opts.controller.pipeline << "\n";
  const std::string path = options_.dir + "/meta";
  const std::string existing = read_file(path);
  if (existing.empty()) {
    write_file_durably(path, meta.str());
    return;
  }
  ensure(existing == meta.str(),
         "durable: WAL directory '" + options_.dir +
             "' was written with different serve options; refusing to mix "
             "histories (delete the directory or match the options)");
}

std::uint64_t Durable::bump_epoch() const {
  const std::string path = options_.dir + "/epoch";
  std::uint64_t epoch = 0;
  const std::string existing = read_file(path);
  if (!existing.empty()) {
    char* end = nullptr;
    epoch = std::strtoull(existing.c_str(), &end, 10);
    ensure(end != existing.c_str(), "durable: bad epoch file '" + path + "'");
  }
  ++epoch;
  // Persisted before any request is accepted: a fenced predecessor can
  // never have written records carrying this epoch.
  write_file_durably(path, std::to_string(epoch) + "\n");
  return epoch;
}

void Durable::recover() {
  const std::string wal_path = options_.dir + "/wal.log";
  const std::string dec_path = options_.dir + "/decisions.log";
  obs::MetricsRegistry& m = daemon_->controller().metrics();

  std::size_t torn = 0;
  std::vector<WalRecord> records = Wal::read_and_repair(wal_path, &torn);
  if (torn != 0) m.add(m_truncated_);

  // Newest valid snapshot wins; a corrupt or unreadable one falls back to
  // the next (retention keeps two), and with none the whole WAL replays.
  std::vector<std::pair<std::uint64_t, fs::path>> snaps;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) != 0 ||
        name.find(".snap") != name.size() - 5) {
      continue;
    }
    char* end = nullptr;
    const std::uint64_t seq = std::strtoull(name.c_str() + 9, &end, 10);
    if (std::string(end) != ".snap") continue;
    snaps.emplace_back(seq, entry.path());
  }
  std::sort(snaps.rbegin(), snaps.rend());

  std::uint64_t snap_seq = 0;
  std::size_t snap_decisions = 0;
  bool have_snap = false;
  for (const auto& [seq, path] : snaps) {
    const std::string file = read_file(path.string());
    const std::size_t nl = file.find('\n');
    if (nl == std::string::npos) continue;
    std::istringstream header(file.substr(0, nl));
    std::string magic;
    std::size_t version = 0;
    std::uint64_t file_seq = 0;
    std::size_t decisions = 0;
    std::string sum_tok;
    header >> magic >> version >> file_seq >> decisions >> sum_tok;
    if (magic != "maxutil-serve-snap" || version != 1 || file_seq != seq) {
      continue;
    }
    const std::string body = file.substr(nl + 1);
    char* end = nullptr;
    const std::uint64_t sum = std::strtoull(sum_tok.c_str(), &end, 16);
    if (end != sum_tok.c_str() + sum_tok.size() || sum != fnv1a64(body)) {
      continue;
    }
    try {
      std::istringstream body_in(body);
      daemon_->import_snapshot(body_in);
    } catch (const util::CheckError&) {
      continue;
    }
    snap_seq = seq;
    snap_decisions = decisions;
    have_snap = true;
    break;
  }

  // decisions.log beyond the snapshot's coverage is regenerated by replay;
  // truncating first keeps the persisted prefix + replay exactly equal to
  // the uninterrupted log (and drops any torn final line for free).
  const std::string dec = read_file(dec_path);
  if (!dec.empty() || snap_decisions != 0) {
    const std::size_t keep = offset_after_lines(dec, snap_decisions);
    if (keep < dec.size()) {
      ensure(::truncate(dec_path.c_str(), static_cast<off_t>(keep)) == 0,
             "durable: truncate '" + dec_path +
                 "' failed: " + std::string(std::strerror(errno)));
    }
    prefix_ = dec.substr(0, keep);
    prefix_lines_ = snap_decisions;
  }

  wal_ = std::make_unique<Wal>(wal_path);
  wal_->set_last_seq(
      std::max(records.empty() ? 0 : records.back().seq, snap_seq));
  decisions_fd_ = open_append(dec_path);
  submitted_seq_ = snap_seq;
  recovered_ = have_snap || !records.empty();

  replaying_ = true;
  for (const WalRecord& record : records) {
    if (record.seq <= snap_seq) continue;
    Request request;
    try {
      request = parse_request(record.payload);
    } catch (const util::CheckError&) {
      continue;  // defensive: every appended payload parsed once already
    }
    daemon_->advance_to(request.time());
    persist_settled();
    submitted_seq_ = record.seq;
    try {
      daemon_->submit(request);
    } catch (const util::CheckError&) {
      // The live path answered this with an error line and no decision;
      // replay reproduces the no-decision outcome by skipping it too.
    }
    ++replayed_;
    m.add(m_replayed_);
  }
  persist_settled();
  replaying_ = false;
}

void Durable::submit(const Request& request) {
  // Settle first: if this arrival's timestamp closes the open window, the
  // flush (and any snapshot) happens with nothing pending, *before* the new
  // record exists — so a snapshot at seq S always covers exactly records
  // 1..S, all decided.
  daemon_->advance_to(request.time());
  persist_settled();
  WalRecord record;
  record.seq = wal_->last_seq() + 1;
  record.epoch = epoch_;
  record.payload = request.describe();
  wal_->append(record);
  daemon_->controller().metrics().add(m_records_);
  submitted_seq_ = record.seq;
  // May throw (out-of-order timestamp). The record is already durable and
  // that is correct: replay skips it the same way the live path drops it.
  daemon_->submit(request);
}

void Durable::force_flush() {
  daemon_->flush();
  persist_settled();
}

void Durable::persist_settled() {
  const std::vector<DecisionRecord>& live = daemon_->report().decisions;
  std::string buf;
  for (std::size_t i = persisted_live_; i < live.size(); ++i) {
    buf += live[i].line();
    buf += "\n";
  }
  if (!buf.empty()) {
    write_all(decisions_fd_, buf.data(), buf.size(), "decisions.log");
    persisted_live_ = live.size();
    // Flush point: the fsync-batching boundary (power-loss durability).
    wal_->sync();
    fsync_fd(decisions_fd_, "decisions.log");
    ++flushes_since_snapshot_;
  }
  if (!replaying_ && options_.snapshot_every != 0 &&
      flushes_since_snapshot_ >= options_.snapshot_every &&
      !daemon_->batch_open() && daemon_->pending_count() == 0 &&
      submitted_seq_ != last_snapshot_seq_) {
    write_snapshot();
    flushes_since_snapshot_ = 0;
  }
}

void Durable::write_snapshot() {
  std::ostringstream body;
  daemon_->export_snapshot(body);
  const std::string body_str = body.str();
  std::ostringstream file;
  file << "maxutil-serve-snap 1 " << submitted_seq_ << " "
       << (prefix_lines_ + persisted_live_) << " " << hex64(fnv1a64(body_str))
       << "\n"
       << body_str;
  write_file_durably(
      options_.dir + "/snapshot-" + std::to_string(submitted_seq_) + ".snap",
      file.str());
  last_snapshot_seq_ = submitted_seq_;
  daemon_->controller().metrics().add(m_snapshots_);

  // Retention: the newest two snapshots (survivor + fallback).
  std::vector<std::pair<std::uint64_t, fs::path>> snaps;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) != 0 ||
        name.find(".snap") != name.size() - 5) {
      continue;
    }
    char* end = nullptr;
    const std::uint64_t seq = std::strtoull(name.c_str() + 9, &end, 10);
    if (std::string(end) != ".snap") continue;
    snaps.emplace_back(seq, entry.path());
  }
  std::sort(snaps.rbegin(), snaps.rend());
  for (std::size_t i = 2; i < snaps.size(); ++i) {
    std::error_code ec;
    fs::remove(snaps[i].second, ec);
  }
}

std::string Durable::full_decision_log() const {
  return prefix_ + daemon_->report().decision_log();
}

const ServeReport& Durable::finish() {
  const ServeReport& report = daemon_->finish();
  persist_settled();
  wal_->sync();
  fsync_fd(decisions_fd_, "decisions.log");
  return report;
}

}  // namespace maxutil::serve
