// Unit tests for the observability layer (src/obs): metrics registry
// semantics, shard-merge determinism, staging-ring drains, tracer span
// nesting, and golden-file checks of the Chrome-JSON and CSV exports (via
// the explicit-timestamp complete() path, so the expected bytes are exact).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace {

using maxutil::obs::HistogramSnapshot;
using maxutil::obs::MetricId;
using maxutil::obs::MetricKind;
using maxutil::obs::MetricRingSet;
using maxutil::obs::MetricsRegistry;
using maxutil::obs::Tracer;
using maxutil::obs::TraceArg;
using maxutil::util::CheckError;

// --- Metrics registry ---

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry m;
  const MetricId c = m.counter("messages", "help text");
  EXPECT_EQ(m.counter_value(c), 0u);
  m.add(c);
  m.add(c, 41);
  EXPECT_EQ(m.counter_value(c), 42u);
  EXPECT_EQ(m.kind(c), MetricKind::kCounter);
  EXPECT_EQ(m.name(c), "messages");
  EXPECT_EQ(m.help(c), "help text");
  EXPECT_EQ(m.find("messages"), c);
  EXPECT_FALSE(m.find("nonexistent").has_value());
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry m;
  const MetricId g = m.gauge("queue_depth");
  EXPECT_EQ(m.gauge_value(g), 0.0);
  m.set(g, 7.5);
  m.set(g, -2.0);
  EXPECT_EQ(m.gauge_value(g), -2.0);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry m;
  const MetricId h = m.histogram("latency", {1.0, 10.0});
  m.observe(h, 0.5);   // <= 1
  m.observe(h, 1.0);   // <= 1 (bounds are inclusive)
  m.observe(h, 7.0);   // <= 10
  m.observe(h, 20.0);  // overflow
  const HistogramSnapshot s = m.histogram_snapshot(h);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 28.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 28.5 / 4.0);
}

TEST(Metrics, RegistrationRejectsBadInput) {
  MetricsRegistry m;
  m.counter("taken");
  EXPECT_THROW(m.gauge("taken"), CheckError);
  EXPECT_THROW(m.histogram("empty", {}), CheckError);
  EXPECT_THROW(m.histogram("unsorted", {5.0, 1.0}), CheckError);
  EXPECT_THROW(m.histogram("duplicate_bound", {1.0, 1.0}), CheckError);
  const MetricId c = m.counter("a_counter");
  EXPECT_THROW(m.set(c, 1.0), CheckError);       // wrong kind
  EXPECT_THROW(m.observe(c, 1.0), CheckError);   // wrong kind
  EXPECT_THROW(m.add(c, 1, 5), CheckError);      // shard out of range
  EXPECT_THROW(m.counter_value(999), CheckError);
}

// The shard fold is exactly associative for integer counters and bucket
// counts, so the same multiset of writes must produce bit-identical reads no
// matter how it was spread over 1, 2, or 8 shards — the property the runtime
// leans on for cross-thread-count determinism.
TEST(Metrics, ShardMergeIsDeterministicAcrossShardCounts) {
  std::string baseline_csv;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    MetricsRegistry m(shards);
    const MetricId c = m.counter("steps");
    const MetricId h = m.histogram("work", {2.0, 8.0, 32.0});
    const MetricId g = m.gauge("depth");
    for (std::size_t i = 0; i < 1000; ++i) {
      const std::size_t shard = i % shards;
      m.add(c, 1 + i % 3, shard);
      m.observe(h, static_cast<double>(i % 40), shard);
    }
    m.set(g, 17.0);
    // Reads fold shards on the fly; merge_shards must not change them.
    const std::uint64_t before = m.counter_value(c);
    m.merge_shards();
    EXPECT_EQ(m.counter_value(c), before);
    EXPECT_EQ(m.shard_count(), shards);

    std::ostringstream csv;
    m.write_csv(csv);
    if (baseline_csv.empty()) {
      baseline_csv = csv.str();
    } else {
      EXPECT_EQ(csv.str(), baseline_csv) << shards << " shards";
    }
  }
  EXPECT_FALSE(baseline_csv.empty());
}

TEST(Metrics, CsvExportGolden) {
  MetricsRegistry m;
  const MetricId a = m.counter("a");
  const MetricId g = m.gauge("g");
  const MetricId h = m.histogram("h", {1.0, 10.0});
  m.add(a, 5);
  m.set(g, 1.5);
  m.observe(h, 0.5);
  m.observe(h, 1.0);
  m.observe(h, 7.0);
  m.observe(h, 20.0);
  std::ostringstream out;
  m.write_csv(out);
  EXPECT_EQ(out.str(),
            "kind,name,field,value\n"
            "counter,a,value,5\n"
            "gauge,g,value,1.5\n"
            "histogram,h,count,4\n"
            "histogram,h,sum,28.5\n"
            "histogram,h,min,0.5\n"
            "histogram,h,max,20\n"
            "histogram,h,le_1,2\n"
            "histogram,h,le_10,1\n"
            "histogram,h,le_inf,1\n");
}

TEST(Metrics, ReportListsEveryMetricWithHelp) {
  MetricsRegistry m;
  m.add(m.counter("rounds", "rounds executed"), 3);
  m.set(m.gauge("depth"), 2.0);
  const std::string report = m.report();
  EXPECT_NE(report.find("rounds = 3"), std::string::npos);
  EXPECT_NE(report.find("(rounds executed)"), std::string::npos);
  EXPECT_NE(report.find("depth = 2"), std::string::npos);
}

// observe_n is the bulk path behind per-wave latency harvests: for
// integer-valued samples it must be bit-identical to the same number of
// individual observes, including sum/min/max and the CSV rendering.
TEST(Metrics, ObserveNMatchesRepeatedObserves) {
  MetricsRegistry bulk;
  MetricsRegistry loop;
  const MetricId hb = bulk.histogram("lat", {1.0, 4.0, 16.0});
  const MetricId hl = loop.histogram("lat", {1.0, 4.0, 16.0});
  const std::uint64_t counts[] = {3, 0, 117, 1, 42};
  for (std::size_t value = 0; value < 5; ++value) {
    bulk.observe_n(hb, static_cast<double>(value), counts[value]);
    for (std::uint64_t i = 0; i < counts[value]; ++i) {
      loop.observe(hl, static_cast<double>(value));
    }
  }
  std::ostringstream bulk_csv;
  std::ostringstream loop_csv;
  bulk.write_csv(bulk_csv);
  loop.write_csv(loop_csv);
  EXPECT_EQ(bulk_csv.str(), loop_csv.str());
  // A zero count is a no-op and must not disturb min/max.
  const HistogramSnapshot before = bulk.histogram_snapshot(hb);
  bulk.observe_n(hb, 1000.0, 0);
  const HistogramSnapshot after = bulk.histogram_snapshot(hb);
  EXPECT_EQ(after.count, before.count);
  EXPECT_DOUBLE_EQ(after.max, before.max);
}

// --- Staging rings ---

TEST(Rings, DrainAppliesEveryEventKindAndClears) {
  MetricsRegistry m;
  const MetricId c = m.counter("steps");
  const MetricId h = m.histogram("work", {1.0, 10.0});
  const MetricId g = m.gauge("depth");
  MetricRingSet rings(2);
  EXPECT_EQ(rings.ring_count(), 2u);
  rings.add(0, c, 3);
  rings.add(1, c, 4);
  rings.observe(1, h, 0.5);
  rings.observe(0, h, 20.0);
  rings.set(0, g, 7.0);
  EXPECT_EQ(rings.pending(), 5u);
  // Nothing reaches the registry until the serial drain.
  EXPECT_EQ(m.counter_value(c), 0u);
  rings.drain(m);
  EXPECT_EQ(rings.pending(), 0u);
  EXPECT_EQ(m.counter_value(c), 7u);
  EXPECT_EQ(m.gauge_value(g), 7.0);
  const HistogramSnapshot s = m.histogram_snapshot(h);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 20.0);
  // A second drain with nothing staged is a no-op.
  rings.drain(m);
  EXPECT_EQ(m.counter_value(c), 7u);
}

// The property the runtime's parallel sections lean on: for integer counter
// increments and histogram samples, the drained registry is bit-identical
// no matter how the same events were spread across rings.
TEST(Rings, DrainIsExactlyAssociativeAcrossRingSpreads) {
  std::string baseline_csv;
  for (const std::size_t ring_count : {1u, 2u, 8u}) {
    MetricsRegistry m;
    const MetricId c = m.counter("steps");
    const MetricId h = m.histogram("work", {2.0, 8.0, 32.0});
    MetricRingSet rings(ring_count);
    for (std::size_t i = 0; i < 1000; ++i) {
      const std::size_t ring = i % ring_count;
      rings.add(ring, c, 1 + i % 3);
      rings.observe(ring, h, static_cast<double>(i % 40));
      if (i % 100 == 0) rings.drain(m);  // interleaved drains fold the same
    }
    rings.drain(m);
    std::ostringstream csv;
    m.write_csv(csv);
    if (baseline_csv.empty()) {
      baseline_csv = csv.str();
    } else {
      EXPECT_EQ(csv.str(), baseline_csv) << ring_count << " rings";
    }
  }
  EXPECT_FALSE(baseline_csv.empty());
}

TEST(Rings, GrowKeepsStagedEventsAndNeverShrinks) {
  MetricsRegistry m;
  const MetricId c = m.counter("steps");
  MetricRingSet rings(1);
  rings.add(0, c, 5);
  rings.grow(4);
  EXPECT_EQ(rings.ring_count(), 4u);
  rings.add(3, c, 2);
  rings.grow(2);  // never shrinks
  EXPECT_EQ(rings.ring_count(), 4u);
  EXPECT_EQ(rings.pending(), 2u);
  rings.drain(m);
  EXPECT_EQ(m.counter_value(c), 7u);
}

// --- Tracer ---

TEST(Trace, SpansNestLifoPerTrack) {
  Tracer t;
  const std::size_t outer = t.begin_span("outer", "test", 0);
  const std::size_t inner = t.begin_span("inner", "test", 0);
  const std::size_t other = t.begin_span("other_track", "test", 1);
  EXPECT_EQ(t.open_spans(), 3u);
  // Closing the outer span while the inner is open violates nesting.
  EXPECT_THROW(t.end_span(outer), CheckError);
  t.end_span(inner, {{"k", 1.0}});
  t.end_span(outer);
  t.end_span(other);  // tracks are independent stacks
  EXPECT_EQ(t.open_spans(), 0u);
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_GE(t.events()[0].dur_us, t.events()[1].dur_us);  // outer contains inner
  EXPECT_THROW(t.end_span(inner), CheckError);  // already closed
  EXPECT_NO_THROW(t.end_span(Tracer::kDroppedSpan));  // sentinel no-ops
}

TEST(Trace, CapacityCapDropsAndCounts) {
  Tracer t;
  t.set_capacity(2);
  t.instant("one", "test", 0);
  t.instant("two", "test", 0);
  const std::size_t dropped = t.begin_span("three", "test", 0);
  EXPECT_EQ(dropped, Tracer::kDroppedSpan);
  t.instant("four", "test", 0);
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.dropped_events(), 2u);
  std::ostringstream json;
  t.write_chrome_json(json);
  EXPECT_NE(json.str().find("\"dropped_events\":\"2\""), std::string::npos);
}

TEST(Trace, ChromeJsonExportGolden) {
  // Only the explicit-timestamp paths, so the bytes are deterministic.
  Tracer t;
  t.set_track_name(0, "rounds");
  t.complete("round", "runtime", 0, 1.0, 2.5, {{"delivered", 3.0}});
  t.complete("empty", "", 1, 10.0, 0.0);
  std::ostringstream out;
  t.write_chrome_json(out);
  EXPECT_EQ(
      out.str(),
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"rounds\"}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1,\"dur\":2.5,"
      "\"name\":\"round\",\"cat\":\"runtime\",\"args\":{\"delivered\":3}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":10,\"dur\":0,"
      "\"name\":\"empty\"}\n"
      "],\"displayTimeUnit\":\"ms\",\"otherData\":"
      "{\"generator\":\"maxutil obs::Tracer\"}}\n");
}

TEST(Trace, CsvExportGolden) {
  Tracer t;
  t.complete("round", "runtime", 0, 1.0, 2.5, {{"delivered", 3.0}, {"q", 0.5}});
  t.complete("empty", "", 1, 10.0, 0.0);
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(),
            "phase,track,ts_us,dur_us,category,name,args\n"
            "X,0,1,2.5,runtime,round,delivered=3;q=0.5\n"
            "X,1,10,0,,empty,\n");
}

TEST(Trace, JsonEscapesHostileNamesAndClampsNonFinite) {
  Tracer t;
  t.complete("quote\"back\\slash\nnewline", "c", 0, 0.0, 1.0,
             {{"nan", std::numeric_limits<double>::quiet_NaN()}});
  std::ostringstream out;
  t.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"), std::string::npos);
  EXPECT_NE(json.find("\"nan\":0"), std::string::npos);  // no NaN literal
  EXPECT_EQ(json.find("NaN"), std::string::npos);
}

}  // namespace
