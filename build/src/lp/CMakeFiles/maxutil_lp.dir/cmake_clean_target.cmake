file(REMOVE_RECURSE
  "libmaxutil_lp.a"
)
