// E13 — extension: packet-level validation of the fluid optimum. The paper
// evaluates its algorithms in the fluid model; here the converged routing is
// executed as an operating policy in a discrete-event queueing simulation
// (Poisson arrivals, Bernoulli admission, probabilistic routing, FIFO
// service). Two questions:
//   1. fidelity — do the fluid-promised admission/delivery rates
//      materialize at packet level?
//   2. the eps trade-off — Section 3 says the barrier's reserved headroom
//      helps in practice; in queueing terms, headroom *is* latency margin:
//      smaller eps pushes utilization toward 1 and delay up.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "des/packet_sim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E13: packet-level execution of the fluid optimum ===\n");
  std::printf("Section-6 instance (seed 2007); DES: Poisson arrivals,"
              " packet size 0.5, 3000s horizon, 300s warm-up\n\n");

  const auto net = bench::paper_instance();

  util::Table table({"eps", "fluid utility", "packet utility",
                     "fidelity", "max utilization", "mean latency (s)",
                     "p95 latency (s)"});
  std::vector<double> max_rhos, latencies;
  bool fidelity_ok = true;
  for (const double eps : {0.4, 0.2, 0.1, 0.05, 0.02}) {
    xform::PenaltyConfig penalty;
    penalty.epsilon = eps;
    const xform::ExtendedGraph xg(net, penalty);
    core::GradientOptions options;
    options.eta = 0.04;
    options.record_history = false;
    options.max_iterations = 8000;
    core::GradientOptimizer opt(xg, options);
    opt.run();
    const auto fluid = opt.admitted();
    const double fluid_utility = opt.utility();

    des::PacketSimOptions sopts;
    sopts.horizon = 3000.0;
    sopts.warmup = 300.0;
    sopts.packet_size = 0.5;
    sopts.seed = 11;
    des::PacketSimulator sim(xg, opt.routing(), sopts);
    sim.run();

    double packet_utility = 0.0;
    double worst_fidelity = 0.0;
    util::RunningStats latency;
    for (stream::CommodityId j = 0; j < xg.commodity_count(); ++j) {
      const auto stats = sim.commodity_stats(j);
      packet_utility += stats.delivered_rate;  // linear utility = throughput
      if (fluid[j] > 0.5) {
        worst_fidelity = std::max(
            worst_fidelity, std::abs(stats.delivered_rate - fluid[j]) / fluid[j]);
      }
      latency.add(stats.mean_latency);
    }
    double max_rho = 0.0, p95 = 0.0;
    for (graph::NodeId v = 0; v < xg.node_count(); ++v) {
      if (xg.has_finite_capacity(v)) {
        max_rho = std::max(max_rho, sim.node_stats(v).utilization);
      }
    }
    for (stream::CommodityId j = 0; j < xg.commodity_count(); ++j) {
      p95 = std::max(p95, sim.commodity_stats(j).p95_latency);
    }
    max_rhos.push_back(max_rho);
    latencies.push_back(latency.mean());
    fidelity_ok = fidelity_ok && worst_fidelity < 0.15;
    table.add_row({util::Table::cell(eps), util::Table::cell(fluid_utility),
                   util::Table::cell(packet_utility),
                   util::Table::cell(100.0 * (1.0 - worst_fidelity), 1) + "%",
                   util::Table::cell(max_rho, 3),
                   util::Table::cell(latency.mean(), 3),
                   util::Table::cell(p95, 3)});
  }
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  ok &= bench::shape_check(
      "packet-level delivery within 15% of every fluid promise", fidelity_ok);
  ok &= bench::shape_check(
      "utilization rises toward 1 as eps shrinks (headroom consumed)",
      max_rhos.back() > max_rhos.front());
  ok &= bench::shape_check(
      "queueing latency grows as eps shrinks (the price of less headroom)",
      latencies.back() > latencies.front());
  ok &= bench::shape_check("no node saturated (utilization < 1 everywhere)",
                           *std::max_element(max_rhos.begin(), max_rhos.end()) <
                               1.0);
  return ok ? 0 : 1;
}
