#include <gtest/gtest.h>

#include <cmath>

#include "bp/backpressure.hpp"
#include "core/optimizer.hpp"
#include "gen/random_instance.hpp"
#include "stream/model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using maxutil::bp::BackPressureOptimizer;
using maxutil::bp::BackPressureOptions;
using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::util::Rng;
using maxutil::xform::ExtendedGraph;

StreamNetwork chain_network(double lambda) {
  StreamNetwork net;
  const NodeId a = net.add_server("a", 10.0);
  const NodeId b = net.add_server("b", 20.0);
  const NodeId t = net.add_sink("t");
  const auto ab = net.add_link(a, b, 5.0);
  const auto bt = net.add_link(b, t, 6.0);
  const CommodityId j = net.add_commodity("c0", a, t, lambda, Utility::linear());
  net.enable_link(j, ab, 2.0);
  net.enable_link(j, bt, 1.0);
  return net;
}

TEST(BackPressure, RejectsBadOptions) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  BackPressureOptions bad;
  bad.buffer_cap_multiplier = 0.0;
  EXPECT_THROW(BackPressureOptimizer(xg, bad), CheckError);
  bad = {};
  bad.step_scale = 1.5;
  EXPECT_THROW(BackPressureOptimizer(xg, bad), CheckError);
}

TEST(BackPressure, FirstStepInjectsAndBuffers) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  BackPressureOptimizer opt(xg);
  opt.step();
  // Some of the injected lambda moved toward the source; the rest sits in
  // the (uncapped-at-3*8=24) dummy buffer. Nothing was delivered yet.
  const double q_dummy = opt.buffer(0, xg.dummy_source(0));
  const double q_source = opt.buffer(0, 0);
  EXPECT_GT(q_source, 0.0);
  EXPECT_NEAR(q_dummy + q_source, 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(opt.admitted_rates()[0], 0.0);
}

TEST(BackPressure, UncongestedChainAdmitsEverything) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  BackPressureOptions options;
  options.record_history = false;
  // Steady flow x needs a buffer gradient of about (1 + beta^2) * x per hop
  // (quadratic potential), so the dummy buffer must hold roughly
  // depth * 2 * lambda: the Awerbuch-Leighton buffer/accuracy trade-off.
  options.buffer_cap_multiplier = 20.0;
  BackPressureOptimizer opt(xg, options);
  opt.run(30000);
  EXPECT_NEAR(opt.admitted_rates()[0], 3.0, 0.12);
  EXPECT_NEAR(opt.utility(), 3.0, 0.12);
}

TEST(BackPressure, LargerBuffersAdmitMore) {
  // The cap multiplier trades accuracy for convergence speed: on the
  // uncongested chain, deeper buffers support a larger steady admission.
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  double previous = 0.0;
  for (const double mult : {2.0, 8.0, 32.0}) {
    BackPressureOptions options;
    options.record_history = false;
    options.buffer_cap_multiplier = mult;
    BackPressureOptimizer opt(xg, options);
    opt.run(30000);
    EXPECT_GT(opt.admitted_rates()[0], previous);
    previous = opt.admitted_rates()[0];
  }
  EXPECT_GT(previous, 2.9);
}

TEST(BackPressure, CongestedChainFindsBottleneck) {
  // lambda = 100 against a bottleneck of 5 (node a: 10/2, bandwidth 5).
  const StreamNetwork net = chain_network(100.0);
  const ExtendedGraph xg(net);
  BackPressureOptions options;
  options.record_history = false;
  BackPressureOptimizer opt(xg, options);
  opt.run(30000);
  EXPECT_GT(opt.admitted_rates()[0], 4.5);
  EXPECT_LE(opt.admitted_rates()[0], 5.0 + 1e-6);
}

TEST(BackPressure, BudgetsNeverViolated) {
  const StreamNetwork net = chain_network(100.0);
  const ExtendedGraph xg(net);
  BackPressureOptions options;
  options.record_history = false;
  BackPressureOptimizer opt(xg, options);
  opt.run(5000);
  EXPECT_LT(opt.max_budget_violation(), 1e-9);
}

TEST(BackPressure, AdmittedNeverExceedsLambda) {
  Rng rng(42);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 16;
  p.commodities = 2;
  p.stages = 3;
  p.lambda = 20.0;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  const ExtendedGraph xg(net);
  BackPressureOptions options;
  options.record_history = false;
  BackPressureOptimizer opt(xg, options);
  opt.run(20000);
  for (const double a : opt.admitted_rates()) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 20.0 + 1e-9);
  }
}

TEST(BackPressure, HistoryStrideRecordsSparsely) {
  const StreamNetwork net = chain_network(3.0);
  const ExtendedGraph xg(net);
  BackPressureOptions options;
  options.history_stride = 100;
  BackPressureOptimizer opt(xg, options);
  opt.run(1000);
  // Row for iteration 1 plus one per 100 iterations.
  EXPECT_LE(opt.history().rows(), 12u);
  EXPECT_GE(opt.history().rows(), 10u);
}

TEST(BackPressure, UtilityRisesMonotonicallyInTheLongRun) {
  const StreamNetwork net = chain_network(100.0);
  const ExtendedGraph xg(net);
  BackPressureOptions options;
  options.history_stride = 200;
  BackPressureOptimizer opt(xg, options);
  opt.run(20000);
  const auto& u = opt.history().column("utility");
  // After warm-up, the cumulative-average utility is nondecreasing up to
  // tiny numerical wiggle.
  for (std::size_t i = 20; i + 1 < u.size(); ++i) {
    EXPECT_LE(u[i] - u[i + 1], 0.02) << "row " << i;
  }
}

TEST(BackPressure, PaperInstanceConvergesNearOptimal) {
  Rng rng(2007);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  const ExtendedGraph xg(net);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);

  BackPressureOptions options;
  options.record_history = false;
  BackPressureOptimizer opt(xg, options);
  opt.run(30000);
  EXPECT_GT(opt.utility(), 0.95 * ref.optimal_utility)
      << "bp " << opt.utility() << " vs LP " << ref.optimal_utility;
  EXPECT_LE(opt.utility(), ref.optimal_utility + 1e-6);
}

// The paper's headline comparison (Figure 4): both algorithms reach the
// optimum, but the gradient algorithm is orders of magnitude more
// iteration-efficient than back-pressure.
TEST(BackPressure, GradientIsAtLeastTenTimesMoreIterationEfficient) {
  Rng rng(2007);
  const StreamNetwork net = maxutil::gen::random_instance({}, rng);
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.1;
  const ExtendedGraph xg(net, penalty);
  const auto ref = maxutil::xform::solve_reference(xg);
  ASSERT_EQ(ref.status, maxutil::lp::LpStatus::kOptimal);
  const double target = 0.95 * ref.optimal_utility;

  maxutil::core::GradientOptions gopt;
  gopt.eta = 0.04;
  gopt.record_history = false;
  maxutil::core::GradientOptimizer gradient(xg, gopt);
  std::size_t gradient_iters = 0;
  while (gradient.utility() < target && gradient_iters < 20000) {
    gradient.step();
    ++gradient_iters;
  }
  ASSERT_LT(gradient_iters, 20000u);

  BackPressureOptions bopt;
  bopt.record_history = false;
  BackPressureOptimizer bp(xg, bopt);
  std::size_t bp_iters = 0;
  while (bp.utility() < target && bp_iters < 200000) {
    bp.step();
    ++bp_iters;
  }
  ASSERT_LT(bp_iters, 200000u);

  EXPECT_GE(bp_iters, 10 * gradient_iters)
      << "gradient " << gradient_iters << " vs back-pressure " << bp_iters;
}

}  // namespace
