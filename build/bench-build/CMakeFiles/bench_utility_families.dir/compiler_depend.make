# Empty compiler generated dependencies file for bench_utility_families.
# This may be replaced when dependencies are built.
