file(REMOVE_RECURSE
  "../bench/bench_dynamic"
  "../bench/bench_dynamic.pdb"
  "CMakeFiles/bench_dynamic.dir/bench_dynamic.cpp.o"
  "CMakeFiles/bench_dynamic.dir/bench_dynamic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
