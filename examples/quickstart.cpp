// Quickstart: build a tiny stream-processing network, optimize it with the
// distributed gradient algorithm, and inspect the resulting admission rates
// and resource allocation.
//
// Pipeline: source server -> relay server -> sink, one stream whose
// filtering stage halves the data rate (beta = 0.5).

#include <cstdio>

#include "solver/registry.hpp"
#include "stream/model.hpp"
#include "stream/validate.hpp"
#include "util/table.hpp"

#include <iostream>

int main() {
  using namespace maxutil;

  // 1. Describe the physical system: servers with computing power, links
  //    with bandwidth, sinks that only receive.
  stream::StreamNetwork net;
  const auto source = net.add_server("ingest", /*capacity=*/10.0);
  const auto relay = net.add_server("filter", /*capacity=*/20.0);
  const auto sink = net.add_sink("dashboard");
  const auto l_in = net.add_link(source, relay, /*bandwidth=*/5.0);
  const auto l_out = net.add_link(relay, sink, /*bandwidth=*/6.0);

  // 2. Declare the stream: up to 8 units/s are offered; the operator on the
  //    ingest server costs 2 resource units per stream unit, the filter 1.
  const auto s = net.add_commodity("sensor-feed", source, sink,
                                   /*lambda=*/8.0, stream::Utility::linear());
  net.enable_link(s, l_in, /*consumption=*/2.0);
  net.enable_link(s, l_out, /*consumption=*/1.0);

  // The filter halves the rate: potentials 1 -> 0.5 (Property 1 holds by
  // construction).
  net.set_potential(s, relay, 0.5);
  net.set_potential(s, sink, 0.5);
  stream::validate_or_throw(net);

  // 3. Transform (Section 3): bandwidth nodes unify link and CPU limits;
  //    dummy nodes turn admission control into routing. A small penalty
  //    epsilon keeps the barrier-induced optimality gap tight. The
  //    solver::Problem caches the transformation for every backend.
  xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const solver::Problem problem(net, penalty);

  // 4. Run the distributed gradient algorithm (Section 5) through the
  //    solver registry — swap the name for "lp", "distributed",
  //    "backpressure", or "fw" (or a pipeline like "lp,gradient") to try
  //    another backend on the same Problem.
  const auto& registry = solver::SolverRegistry::instance();
  solver::SolveOptions options;
  options.eta = 0.2;
  options.max_iterations = 2000;
  const auto result = registry.solve("gradient", problem, options);

  // 5. Compare against the centralized LP optimum and print the allocation.
  const auto reference = registry.solve("lp", problem, {});
  const core::PhysicalAllocation& alloc = *result.allocation;

  std::printf("quickstart: one stream through ingest(10 cpu) -> 5 bw -> "
              "filter(20 cpu) -> 6 bw -> dashboard\n\n");
  util::Table table({"quantity", "value"});
  table.add_row({"offered rate (lambda)", util::Table::cell(net.lambda(s))});
  table.add_row({"admitted rate a*", util::Table::cell(alloc.admitted[0])});
  table.add_row({"delivered at sink", util::Table::cell(alloc.delivered[0])});
  table.add_row({"utility (gradient)", util::Table::cell(result.utility)});
  table.add_row({"utility (LP optimum)", util::Table::cell(reference.utility)});
  table.add_row({"ingest cpu used / 10",
                 util::Table::cell(alloc.server_usage[source])});
  table.add_row({"filter cpu used / 20",
                 util::Table::cell(alloc.server_usage[relay])});
  table.add_row({"link ingest->filter used / 5",
                 util::Table::cell(alloc.link_usage[l_in])});
  table.add_row({"link filter->sink used / 6",
                 util::Table::cell(alloc.link_usage[l_out])});
  table.add_row({"iterations", util::Table::cell(
                                   static_cast<long long>(result.iterations))});
  table.print(std::cout);

  std::printf("\nThe ingest stage is the bottleneck: 10 cpu / 2 per unit = 5"
              " units/s max, below the offered 8 -> admission control holds"
              " the stream at ~5.\n");
  return 0;
}
