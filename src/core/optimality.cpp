#include "core/optimality.hpp"

#include <algorithm>
#include <limits>

namespace maxutil::core {

OptimalityReport check_optimality(const ExtendedGraph& xg,
                                  const RoutingState& routing,
                                  const FlowState& flows,
                                  const MarginalCosts& marginals) {
  const auto& idx = xg.index();
  OptimalityReport report;
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    for (std::size_t local = idx.node_begin(j); local < idx.node_end(j);
         ++local) {
      if (local == idx.sink_local(j)) continue;
      const double dr_v = marginals.d_cost_d_input[local];
      double min_via = std::numeric_limits<double>::infinity();
      for (std::size_t s = idx.out_begin(local); s < idx.out_end(local); ++s) {
        const double via = marginal_via_slot(xg, flows, marginals, s);
        min_via = std::min(min_via, via);
        // Sufficient condition (13): via >= dA/dr_v on every usable edge.
        report.sufficient_violation =
            std::max(report.sufficient_violation, dr_v - via);
      }
      for (std::size_t s = idx.out_begin(local); s < idx.out_end(local); ++s) {
        const double phi = routing.phi_slot(s);
        if (phi <= 0.0) continue;
        const double via = marginal_via_slot(xg, flows, marginals, s);
        // Necessary condition (12): loaded links sit at the minimum,
        // weighted by phi so vanishing fractions do not dominate.
        report.stationarity_gap =
            std::max(report.stationarity_gap, phi * (via - min_via));
      }
    }
  }
  return report;
}

}  // namespace maxutil::core
