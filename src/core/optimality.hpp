#pragma once

#include "core/flow.hpp"
#include "core/marginals.hpp"
#include "core/routing.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// Residuals of Theorem 2's optimality conditions at a routing state.
struct OptimalityReport {
  /// Largest violation of the sufficient condition (13):
  ///   max over non-sink i and usable (i,k) of dA/dr_i - marginal-via-(i,k);
  /// <= 0 (up to tolerance) certifies global optimality.
  double sufficient_violation = 0.0;

  /// Largest violation of the necessary stationarity condition (12): for
  /// every node, loaded (phi > 0) links must all achieve the node's minimum
  /// marginal; this is max over loaded links of (via - min_via), weighted by
  /// the link's routing fraction to ignore vanishing stragglers.
  double stationarity_gap = 0.0;

  bool sufficient_holds(double tol = 1e-6) const {
    return sufficient_violation <= tol;
  }
  bool stationary(double tol = 1e-6) const { return stationarity_gap <= tol; }
};

/// Evaluates Theorem 2's conditions; used by tests and the optimality bench
/// to certify that the distributed algorithm actually converged to the
/// optimum rather than merely stalling.
OptimalityReport check_optimality(const ExtendedGraph& xg,
                                  const RoutingState& routing,
                                  const FlowState& flows,
                                  const MarginalCosts& marginals);

}  // namespace maxutil::core
