#include "core/warm_start.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "util/check.hpp"

namespace maxutil::core {

using maxutil::stream::kRemovedEntity;
using maxutil::util::ensure;
using maxutil::xform::ExtendedGraph;
using maxutil::xform::LinkKind;

namespace {

/// Old extended edge corresponding to `new_edge`, using the surgery's link
/// and commodity maps; kRemovedEntity never occurs because surgery only
/// removes entities (every new edge has an old counterpart).
EdgeId old_edge_for(const ExtendedGraph& old_xg, const ExtendedGraph& new_xg,
                    const stream::SurgeryResult& surgery, EdgeId new_edge) {
  switch (new_xg.link_kind(new_edge)) {
    case LinkKind::kProcessing: {
      const auto new_link = new_xg.physical_link(new_edge);
      for (std::size_t l = 0; l < surgery.link_map.size(); ++l) {
        if (surgery.link_map[l] == new_link) {
          return old_xg.processing_edge(l);
        }
      }
      break;
    }
    case LinkKind::kTransfer: {
      const auto new_link = new_xg.physical_link(new_edge);
      for (std::size_t l = 0; l < surgery.link_map.size(); ++l) {
        if (surgery.link_map[l] == new_link) {
          return old_xg.transfer_edge(l);
        }
      }
      break;
    }
    case LinkKind::kDummyInput: {
      const auto new_j = new_xg.dummy_commodity(new_edge);
      for (std::size_t j = 0; j < surgery.commodity_map.size(); ++j) {
        if (surgery.commodity_map[j] == new_j) {
          return old_xg.dummy_input_link(j);
        }
      }
      break;
    }
    case LinkKind::kDummyDifference: {
      const auto new_j = new_xg.dummy_commodity(new_edge);
      for (std::size_t j = 0; j < surgery.commodity_map.size(); ++j) {
        if (surgery.commodity_map[j] == new_j) {
          return old_xg.dummy_difference_link(j);
        }
      }
      break;
    }
  }
  throw maxutil::util::CheckError(
      "transfer_routing: new edge has no pre-surgery counterpart");
}

}  // namespace

RoutingState repair_capacity_feasibility(const ExtendedGraph& xg,
                                         RoutingState routing,
                                         double capacity_guard) {
  const RoutingState fallback = RoutingState::initial(xg);
  for (int round = 0; round < 60; ++round) {
    const FlowState flows = compute_flows(xg, routing);
    bool feasible = true;
    for (NodeId v = 0; v < xg.node_count() && feasible; ++v) {
      if (!xg.has_finite_capacity(v)) continue;
      feasible = flows.f_node[v] < capacity_guard * xg.capacity(v);
    }
    if (feasible) return routing;
    routing.blend_toward(fallback, 0.5);
  }
  return fallback;
}

RoutingState transfer_routing(const ExtendedGraph& old_xg,
                              const RoutingState& old_routing,
                              const ExtendedGraph& new_xg,
                              const stream::SurgeryResult& surgery,
                              double capacity_guard) {
  RoutingState out(new_xg);
  // Old commodity per new commodity.
  std::vector<std::size_t> old_commodity(new_xg.commodity_count(),
                                         kRemovedEntity);
  for (std::size_t j = 0; j < surgery.commodity_map.size(); ++j) {
    if (surgery.commodity_map[j] != kRemovedEntity) {
      old_commodity[surgery.commodity_map[j]] = j;
    }
  }

  const auto& g = new_xg.graph();
  for (CommodityId nj = 0; nj < new_xg.commodity_count(); ++nj) {
    const std::size_t oj = old_commodity[nj];
    ensure(oj != kRemovedEntity, "transfer_routing: unmapped commodity");
    for (const NodeId nv : new_xg.commodity_nodes(nj)) {
      if (nv == new_xg.sink(nj)) continue;
      std::vector<EdgeId> usable;
      std::vector<double> phi;
      double total = 0.0;
      for (const EdgeId e : g.out_edges(nv)) {
        if (!new_xg.usable(nj, e)) continue;
        usable.push_back(e);
        const EdgeId old_e = old_edge_for(old_xg, new_xg, surgery, e);
        const double value = old_routing.phi(oj, old_e);
        phi.push_back(value);
        total += value;
      }
      ensure(!usable.empty(), "transfer_routing: node without usable out-edge");
      if (total > 1e-12) {
        for (std::size_t i = 0; i < usable.size(); ++i) {
          out.set_phi(nj, usable[i], phi[i] / total);
        }
      } else {
        // All prior mass pointed at the failed branch: fall back to uniform.
        const double share = 1.0 / static_cast<double>(usable.size());
        for (const EdgeId e : usable) out.set_phi(nj, e, share);
      }
    }
  }
  ensure(out.is_valid(new_xg, 1e-9),
         "transfer_routing: produced invalid routing");

  // Feasibility repair: redistributed mass can overload a surviving replica
  // (the failed server's share now funnels through fewer nodes).
  return repair_capacity_feasibility(new_xg, std::move(out), capacity_guard);
}

std::optional<RoutingState> remap_routing(const ExtendedGraph& old_xg,
                                          const RoutingState& old_routing,
                                          const ExtendedGraph& new_xg,
                                          const stream::EntityMaps& maps,
                                          double capacity_guard, bool repair) {
  try {
    // Reverse indices: old physical link per new link, old commodity per new
    // commodity (kRemovedEntity where the new entity has no old counterpart).
    std::size_t new_link_count = 0;
    for (const std::size_t nl : maps.link_map) {
      if (nl != kRemovedEntity) new_link_count = std::max(new_link_count, nl + 1);
    }
    std::vector<std::size_t> old_link_of(new_link_count, kRemovedEntity);
    for (std::size_t l = 0; l < maps.link_map.size(); ++l) {
      if (maps.link_map[l] != kRemovedEntity) {
        ensure(maps.link_map[l] < new_link_count,
               "remap_routing: malformed link map");
        old_link_of[maps.link_map[l]] = l;
      }
    }
    std::vector<std::size_t> old_commodity_of(new_xg.commodity_count(),
                                              kRemovedEntity);
    for (std::size_t j = 0; j < maps.commodity_map.size(); ++j) {
      if (maps.commodity_map[j] != kRemovedEntity) {
        ensure(maps.commodity_map[j] < new_xg.commodity_count(),
               "remap_routing: commodity map exceeds new graph");
        ensure(j < old_xg.commodity_count(),
               "remap_routing: commodity map exceeds old graph");
        old_commodity_of[maps.commodity_map[j]] = j;
      }
    }

    // Old extended edge per new usable edge; kRemovedEntity = no counterpart
    // (a restored link, or any edge of a newly arrived commodity).
    const auto old_edge_of = [&](CommodityId oj, EdgeId new_e) -> EdgeId {
      switch (new_xg.link_kind(new_e)) {
        case LinkKind::kProcessing: {
          const auto nl = new_xg.physical_link(new_e);
          if (nl >= old_link_of.size() || old_link_of[nl] == kRemovedEntity) {
            return kRemovedEntity;
          }
          return old_xg.processing_edge(old_link_of[nl]);
        }
        case LinkKind::kTransfer: {
          const auto nl = new_xg.physical_link(new_e);
          if (nl >= old_link_of.size() || old_link_of[nl] == kRemovedEntity) {
            return kRemovedEntity;
          }
          return old_xg.transfer_edge(old_link_of[nl]);
        }
        case LinkKind::kDummyInput:
          return old_xg.dummy_input_link(oj);
        case LinkKind::kDummyDifference:
          return old_xg.dummy_difference_link(oj);
      }
      return kRemovedEntity;
    };

    RoutingState out(new_xg);
    const auto& g = new_xg.graph();
    for (CommodityId nj = 0; nj < new_xg.commodity_count(); ++nj) {
      const std::size_t oj = old_commodity_of[nj];
      for (const NodeId nv : new_xg.commodity_nodes(nj)) {
        if (nv == new_xg.sink(nj)) continue;
        std::vector<EdgeId> usable;
        std::vector<double> phi;
        double total = 0.0;
        for (const EdgeId e : g.out_edges(nv)) {
          if (!new_xg.usable(nj, e)) continue;
          usable.push_back(e);
          double value = 0.0;
          if (oj != kRemovedEntity) {
            const EdgeId old_e = old_edge_of(oj, e);
            if (old_e != kRemovedEntity) value = old_routing.phi(oj, old_e);
          }
          phi.push_back(value);
          total += value;
        }
        ensure(!usable.empty(), "remap_routing: node without usable out-edge");
        const bool at_dummy_source = nv == new_xg.dummy_source(nj);
        if (oj != kRemovedEntity && total > 1e-12) {
          for (std::size_t i = 0; i < usable.size(); ++i) {
            out.set_phi(nj, usable[i], phi[i] / total);
          }
        } else if (at_dummy_source) {
          // Unmapped commodity, or mapped mass vanished: admit nothing until
          // the optimizer pulls it in (RoutingState::initial convention).
          for (const EdgeId e : usable) {
            out.set_phi(nj, e,
                        e == new_xg.dummy_difference_link(nj) ? 1.0 : 0.0);
          }
        } else {
          const double share = 1.0 / static_cast<double>(usable.size());
          for (const EdgeId e : usable) out.set_phi(nj, e, share);
        }
      }
    }
    ensure(out.is_valid(new_xg, 1e-9), "remap_routing: produced invalid routing");
    if (!repair) return out;
    return repair_capacity_feasibility(new_xg, std::move(out), capacity_guard);
  } catch (const maxutil::util::CheckError&) {
    return std::nullopt;  // inconsistent maps: caller cold-starts instead
  }
}

RoutingState routing_from_flows(
    const ExtendedGraph& xg,
    const std::vector<std::vector<std::pair<EdgeId, double>>>& flows,
    double capacity_guard) {
  ensure(flows.size() == xg.commodity_count(),
         "routing_from_flows: one flow list per commodity required");
  RoutingState out(xg);
  const auto& idx = xg.index();
  // Per-commodity flow scratch addressed by slot; only this commodity's
  // slot range [edge_begin, edge_end) is ever touched, so a fill of that
  // range resets it between commodities.
  std::vector<double> y(idx.slot_count(), 0.0);
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    std::fill(y.begin() + idx.edge_begin(j), y.begin() + idx.edge_end(j), 0.0);
    for (const auto& [e, rate] : flows[j]) {
      ensure(e < xg.edge_count(), "routing_from_flows: edge out of range");
      ensure(rate >= -1e-9, "routing_from_flows: negative flow");
      const std::size_t slot = idx.slot_of(j, e);
      if (slot == xform::CommodityIndex::kNoSlot) continue;  // unusable: no
                                                             // usable out-sum
                                                             // ever read it
      y[slot] = std::max(0.0, rate);
    }
    for (std::size_t local = idx.node_begin(j); local < idx.node_end(j);
         ++local) {
      if (local == idx.sink_local(j)) continue;
      const std::size_t begin = idx.out_begin(local);
      const std::size_t end = idx.out_end(local);
      ensure(begin < end, "routing_from_flows: node without usable out-edge");
      double total = 0.0;
      for (std::size_t s = begin; s < end; ++s) total += y[s];
      if (total > 1e-12) {
        for (std::size_t s = begin; s < end; ++s) {
          out.set_phi_slot(s, y[s] / total);
        }
      } else {
        // The flow never reaches this node: any valid split works, and
        // uniform matches RoutingState::initial's interior convention.
        const double share = 1.0 / static_cast<double>(end - begin);
        for (std::size_t s = begin; s < end; ++s) out.set_phi_slot(s, share);
      }
    }
  }
  ensure(out.is_valid(xg, 1e-9),
         "routing_from_flows: produced invalid routing");
  return repair_capacity_feasibility(xg, std::move(out), capacity_guard);
}

}  // namespace maxutil::core
