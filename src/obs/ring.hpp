#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace maxutil::obs {

/// One staged metric event. Counters interpret `value` as an integer delta,
/// histograms as the observed sample, gauges as the new value.
struct MetricEvent {
  MetricId id = 0;
  double value = 0.0;
};

/// Per-thread staging rings for metric events produced inside parallel
/// regions, drained into a MetricsRegistry at a serial merge point.
///
/// Each ring is appended by exactly one worker at a time — a plain vector
/// push with no locks and no atomics, so observing a parallel hot path
/// costs two stores and a bounds check per event. drain() replays all
/// staged events ring-by-ring in ascending ring index; because counter
/// increments and histogram bucket counts are integers, that fold is
/// exactly associative — the registry ends bit-identical to a serial run
/// recording the same events, regardless of how they were spread across
/// rings or threads (gauge events are last-write-wins in the same
/// deterministic ring order). Buffers keep their high-water capacity
/// across drains, so steady-state appends never allocate.
///
/// This is how sim::Runtime observes its parallel sections: workers stage
/// into their ring, and the existing serial outbox-merge point drains —
/// the registry itself is only ever touched serially.
class MetricRingSet {
 public:
  explicit MetricRingSet(std::size_t rings) : rings_(rings ? rings : 1) {}

  std::size_t ring_count() const { return rings_.size(); }

  /// Grows to `rings` rings (never shrinks; existing staged events keep
  /// their ring). Serial-only, like registration.
  void grow(std::size_t rings) {
    if (rings > rings_.size()) rings_.resize(rings);
  }

  /// Stages a counter increment on `ring` (owner thread only).
  void add(std::size_t ring, MetricId id, std::uint64_t delta) {
    rings_[ring].push_back({id, static_cast<double>(delta)});
  }

  /// Stages a histogram sample on `ring` (owner thread only).
  void observe(std::size_t ring, MetricId id, double value) {
    rings_[ring].push_back({id, value});
  }

  /// Stages a gauge write on `ring` (owner thread only).
  void set(std::size_t ring, MetricId id, double value) {
    rings_[ring].push_back({id, value});
  }

  /// Events staged and not yet drained, across all rings.
  std::size_t pending() const {
    std::size_t total = 0;
    for (const auto& ring : rings_) total += ring.size();
    return total;
  }

  /// Applies every staged event to `registry` in ascending ring order and
  /// clears the rings. Serial merge point only.
  void drain(MetricsRegistry& registry) {
    for (auto& ring : rings_) {
      for (const MetricEvent& event : ring) {
        switch (registry.kind(event.id)) {
          case MetricKind::kCounter:
            registry.add(event.id, static_cast<std::uint64_t>(event.value));
            break;
          case MetricKind::kHistogram:
            registry.observe(event.id, event.value);
            break;
          case MetricKind::kGauge:
            registry.set(event.id, event.value);
            break;
        }
      }
      ring.clear();
    }
  }

 private:
  std::vector<std::vector<MetricEvent>> rings_;
};

}  // namespace maxutil::obs
