// E14 — extension: the closed measurement loop. The paper's protocol
// already assumes nodes *estimate* rates ("assume that each node i can
// estimate the demand rate r_i(j)"); this bench runs the gradient algorithm
// entirely on packet-level telemetry (simulate -> measure -> update) and
// compares the loop's steady state against the fluid optimizer and the LP
// optimum, across measurement-window lengths.

#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "des/closed_loop.hpp"
#include "gen/random_instance.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E14: measurement-driven (closed-loop) optimization ===\n");
  std::printf("10-server 2-commodity instance; telemetry smoothed (rho=0.3);"
              " tail = mean of the last 50 of 300 epochs\n\n");

  util::Rng rng(51);
  gen::RandomInstanceParams p;
  p.servers = 10;
  p.commodities = 2;
  p.stages = 2;
  p.lambda = 30.0;
  const auto net = gen::random_instance(p, rng);
  xform::PenaltyConfig penalty;
  penalty.epsilon = 0.05;
  const xform::ExtendedGraph xg(net, penalty);
  const double lp = xform::solve_reference(xg).optimal_utility;

  core::GradientOptions fopts;
  fopts.eta = 0.1;
  fopts.record_history = false;
  fopts.max_iterations = 10000;
  core::GradientOptimizer fluid(xg, fopts);
  fluid.run();
  std::printf("LP optimum %.4f; fluid gradient (exact state) %.4f (%.1f%%)\n\n",
              lp, fluid.utility(), 100.0 * fluid.utility() / lp);

  util::Table table({"window (s)", "tail measured utility", "% of LP",
                     "tail fluid utility", "% of LP"});
  std::vector<double> measured_pct;
  for (const double horizon : {25.0, 100.0, 400.0}) {
    des::ClosedLoopOptions options;
    options.gamma.eta = 0.1;
    options.sim.horizon = horizon;
    options.sim.warmup = horizon * 0.1;
    options.sim.packet_size = 1.0;
    options.epochs = 300;
    des::MeasurementDrivenOptimizer loop(xg, options);
    loop.run();
    const auto& mu = loop.history().column("measured_utility");
    const auto& fu = loop.history().column("fluid_utility");
    double m = 0.0, f = 0.0;
    for (std::size_t i = 0; i < 50; ++i) {
      m += mu[mu.size() - 1 - i];
      f += fu[fu.size() - 1 - i];
    }
    m /= 50.0;
    f /= 50.0;
    measured_pct.push_back(100.0 * m / lp);
    table.add_row({util::Table::cell(horizon, 0), util::Table::cell(m),
                   util::Table::cell(100.0 * m / lp, 1),
                   util::Table::cell(f), util::Table::cell(100.0 * f / lp, 1)});
  }
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  ok &= bench::shape_check(
      "the loop reaches >= 88% of the LP optimum from telemetry alone",
      *std::max_element(measured_pct.begin(), measured_pct.end()) >= 88.0);
  ok &= bench::shape_check(
      "every window length holds >= 80% (graceful degradation with noise)",
      *std::min_element(measured_pct.begin(), measured_pct.end()) >= 80.0);
  ok &= bench::shape_check(
      "measured throughput never exceeds the LP optimum (physics)",
      *std::max_element(measured_pct.begin(), measured_pct.end()) <= 102.0);
  return ok ? 0 : 1;
}
