file(REMOVE_RECURSE
  "libmaxutil_graph.a"
)
