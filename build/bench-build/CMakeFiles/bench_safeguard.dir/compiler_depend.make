# Empty compiler generated dependencies file for bench_safeguard.
# This may be replaced when dependencies are built.
