#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace maxutil::la {

/// Dense row-major matrix of doubles.
///
/// Deliberately minimal: the LP simplex and LU factorization need contiguous
/// row access and O(1) element access, nothing more. Value-semantic
/// (rule of zero).
class Matrix {
 public:
  /// Zero-filled rows x cols matrix. Either dimension may be zero.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from nested initializer lists; all rows must agree in width.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// The n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Mutable element access (row r, column c); bounds-checked.
  double& operator()(std::size_t r, std::size_t c);

  /// Const element access; bounds-checked.
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Matrix-vector product A x; x.size() must equal cols().
  std::vector<double> multiply(std::span<const double> x) const;

  /// Transposed matrix-vector product A^T y; y.size() must equal rows().
  std::vector<double> multiply_transposed(std::span<const double> y) const;

  /// Dense matrix product A * B.
  Matrix multiply(const Matrix& other) const;

  /// Returns the transpose as a new matrix.
  Matrix transposed() const;

  /// Swaps rows a and b in place.
  void swap_rows(std::size_t a, std::size_t b);

  /// Underlying storage (row-major), for tight loops in the solvers.
  std::span<const double> data() const { return data_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace maxutil::la
