#include "des/event_queue.hpp"

#include "util/check.hpp"

namespace maxutil::des {

void EventQueue::schedule(SimTime at, std::function<void()> handler) {
  maxutil::util::ensure(at >= now_, "EventQueue: scheduling into the past");
  maxutil::util::ensure(handler != nullptr, "EventQueue: null handler");
  heap_.push({at, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_in(SimTime delay, std::function<void()> handler) {
  maxutil::util::ensure(delay >= 0.0, "EventQueue: negative delay");
  schedule(now_ + delay, std::move(handler));
}

std::size_t EventQueue::run_until(SimTime horizon) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    // Copy out before pop so the handler may schedule new events.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = entry.time;
    entry.handler();
    ++executed;
  }
  if (heap_.empty() && now_ < horizon) now_ = horizon;
  return executed;
}

}  // namespace maxutil::des
