#pragma once

#include <optional>
#include <string>

#include "util/timeseries.hpp"

namespace maxutil::util {

/// Directory for bench result artifacts, taken from the MAXUTIL_RESULTS_DIR
/// environment variable; std::nullopt when unset or empty. Benches that
/// regenerate figures write their raw series there so the plots can be
/// reproduced outside the console tables.
std::optional<std::string> results_dir();

/// Writes `series` as "<results_dir>/<name>.csv" when MAXUTIL_RESULTS_DIR is
/// set; returns the written path, or std::nullopt when exporting is off.
/// Throws util::CheckError when the directory is set but unwritable.
std::optional<std::string> save_series(const TimeSeries& series,
                                       const std::string& name);

}  // namespace maxutil::util
