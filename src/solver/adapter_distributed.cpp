// Registry adapter for the message-passing Section-5 system
// (sim::DistributedGradientSystem on the parallel deterministic actor
// runtime). Computed iterates are thread-count independent; admitted rates
// and utility are evaluated observer-side through the shared flow solver,
// exactly as the pre-registry CLI did.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>

#include "core/flow.hpp"
#include "sim/distributed_gradient.hpp"
#include "sim/fault.hpp"
#include "solver/adapters.hpp"
#include "solver/registry.hpp"
#include "util/check.hpp"

namespace maxutil::solver {

using maxutil::util::ensure;

namespace {

/// The pre-registry CLI's `--report` telemetry block, verbatim.
std::string runtime_report(const sim::DistributedGradientSystem& system,
                           std::size_t num_threads) {
  const sim::Runtime& rt = system.runtime();
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "runtime telemetry (%zu thread%s):\n",
                num_threads, num_threads == 1 ? "" : "s");
  out << line;
  std::snprintf(line, sizeof(line),
                "  rounds %zu, messages %zu, payload doubles %zu\n",
                rt.rounds(), rt.delivered_messages(),
                rt.delivered_payload_doubles());
  out << line;
  const std::size_t pool_total =
      rt.payload_pool_reuses() + rt.payload_pool_allocations();
  std::snprintf(line, sizeof(line),
                "  payload pool: %zu acquisitions, %.1f%% recycled\n",
                pool_total,
                pool_total == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(rt.payload_pool_reuses()) /
                          static_cast<double>(pool_total));
  out << line;
  if (rt.options().faults.enabled()) {
    out << "  fault plan: " << sim::describe(rt.options().faults) << "\n";
    std::snprintf(line, sizeof(line),
                  "  faults: %zu dropped, %zu duplicated, %zu delayed, "
                  "%zu crashes\n",
                  rt.fault_dropped_messages(), rt.fault_duplicated_messages(),
                  rt.fault_delayed_messages(), rt.fault_crashes());
    out << line;
    std::snprintf(line, sizeof(line),
                  "  staleness: %zu held updates, max input age %zu waves\n",
                  system.held_updates(), system.max_input_staleness());
    out << line;
  }
  std::snprintf(line, sizeof(line), "  %.3fs in rounds (%.1f rounds/s)\n",
                rt.total_round_seconds(),
                static_cast<double>(rt.rounds()) /
                    std::max(1e-12, rt.total_round_seconds()));
  out << line;
  return out.str();
}

SolveResult solve_distributed(const Problem& problem,
                              const SolveOptions& options) {
  const xform::ExtendedGraph& xg = problem.extended();
  core::GammaOptions g;
  if (options.curvature_scaled) {
    g.step_mode = core::StepMode::kCurvatureScaled;
    g.eta = 1.0;
  }
  if (options.eta > 0.0) g.eta = options.eta;

  sim::RuntimeOptions ropts;
  ropts.num_threads =
      options.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.threads;
  if (options.partition == "chunked") {
    ropts.partition = sim::PartitionMode::kChunked;
  } else {
    ensure(options.partition == "shard",
           "distributed solver: partition must be 'shard' or 'chunked'");
    ropts.partition = sim::PartitionMode::kShard;
  }
  const std::string faults = options.extra_text("faults", "");
  if (!faults.empty()) ropts.faults = sim::parse_fault_spec(faults);
  ropts.observe = options.observe;

  const std::size_t iterations =
      options.max_iterations != 0 ? options.max_iterations : 500;
  const auto max_staleness =
      static_cast<std::size_t>(options.extra_number("max_staleness", 8));

  SolveResult result;
  auto run = [&](sim::DistributedGradientSystem& system) {
    system.run(iterations);
    const core::FlowState flows =
        core::compute_flows(xg, system.routing_snapshot());
    result.admitted.resize(xg.commodity_count());
    for (stream::CommodityId j = 0; j < xg.commodity_count(); ++j) {
      result.admitted[j] = core::admitted_rate(xg, flows, j);
    }
    result.utility = core::total_utility(xg, flows);
    result.node_usage = flows.f_node;
    result.allocation = core::map_to_physical(xg, flows);
    result.routing = system.routing_snapshot();
    result.iterations = system.iterations();
    result.status = system.last_iteration_converged() ? Status::kIterationLimit
                                                      : Status::kRoundLimit;
    if (!system.last_iteration_converged()) {
      result.warnings.push_back(
          "last iteration's wave did not quiesce within the round budget");
    }
    const sim::Runtime& rt = system.runtime();
    result.metrics = {
        {"rounds", static_cast<double>(rt.rounds())},
        {"messages", static_cast<double>(rt.delivered_messages())},
        {"last_iteration_rounds",
         static_cast<double>(system.last_iteration_rounds())},
        {"held_updates", static_cast<double>(system.held_updates())},
        {"resync_events", static_cast<double>(system.resync_events())},
    };
    if (options.report) {
      result.report = runtime_report(system, ropts.num_threads);
    }
    if (options.observe) {
      const obs::Observability* o = rt.observability();
      if (o == nullptr) {
        result.warnings.push_back(
            "this build compiled the observability layer out "
            "(MAXUTIL_OBS_OFF); no metrics/trace written");
      } else {
        ObsSnapshot snapshot;
        std::ostringstream metrics_csv;
        o->metrics.write_csv(metrics_csv);
        snapshot.metrics_csv = metrics_csv.str();
        snapshot.metrics_report = o->metrics.report();
        std::ostringstream chrome;
        o->tracer.write_chrome_json(chrome);
        snapshot.trace_chrome_json = chrome.str();
        std::ostringstream csv;
        o->tracer.write_csv(csv);
        snapshot.trace_csv = csv.str();
        snapshot.trace_events = o->tracer.events().size();
        result.obs = std::move(snapshot);
      }
    }
  };

  if (options.warm_start.has_value()) {
    sim::DistributedGradientSystem system(xg, *options.warm_start, g, ropts,
                                          max_staleness);
    run(system);
  } else {
    sim::DistributedGradientSystem system(xg, g, ropts, max_staleness);
    run(system);
  }
  return result;
}

}  // namespace

void register_distributed_solver(SolverRegistry& registry) {
  SolverInfo info;
  info.name = "distributed";
  info.description =
      "Section-5 algorithm as message-passing actors on the parallel "
      "deterministic runtime (threads, faults, observability)";
  info.default_iterations = 500;
  info.supports_warm_start = true;
  info.supports_threads = true;
  info.supports_observation = true;
  info.emits_routing = true;
  info.solve = solve_distributed;
  registry.add(std::move(info));
}

}  // namespace maxutil::solver
