# Empty dependencies file for maxutil_xform.
# This may be replaced when dependencies are built.
