file(REMOVE_RECURSE
  "../bench/bench_eta_sweep"
  "../bench/bench_eta_sweep.pdb"
  "CMakeFiles/bench_eta_sweep.dir/bench_eta_sweep.cpp.o"
  "CMakeFiles/bench_eta_sweep.dir/bench_eta_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
