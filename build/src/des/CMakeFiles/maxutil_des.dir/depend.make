# Empty dependencies file for maxutil_des.
# This may be replaced when dependencies are built.
