// E3 — penalty coefficient ablation (Section 3): "by selecting eps
// appropriately, this standard approach typically results in a solution
// that is nearly the optimal solution ... A penalty function may also
// prevent a node resource from being completely allocated", leaving
// headroom for demand changes and failure recovery.
//
// Expected shape: the utility gap to the LP optimum shrinks as eps -> 0,
// while the minimum capacity slack (the safety margin) shrinks with it.

#include <cstdio>
#include <iostream>
#include <limits>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E3: optimality gap and safety margin vs eps ===\n");
  std::printf("instance: Section-6 defaults (seed 2007), eta=0.04\n\n");

  const auto net = bench::paper_instance();
  double optimal = 0.0;

  util::Table table({"eps", "final utility", "gap vs LP", "% of optimal",
                     "min slack fraction"});
  std::vector<double> epss{0.8, 0.4, 0.2, 0.1, 0.05, 0.02};
  std::vector<double> utilities;
  std::vector<double> slacks;
  for (const double eps : epss) {
    xform::PenaltyConfig penalty;
    penalty.epsilon = eps;
    const xform::ExtendedGraph xg(net, penalty);
    if (optimal == 0.0) {
      optimal = xform::solve_reference(xg).optimal_utility;
      std::printf("LP optimal utility: %.4f\n\n", optimal);
    }
    core::GradientOptions options;
    options.eta = 0.04;
    options.max_iterations = 15000;
    options.record_history = false;
    core::GradientOptimizer opt(xg, options);
    opt.run();

    // Minimum relative slack over loaded finite-capacity nodes.
    double min_slack = std::numeric_limits<double>::infinity();
    for (graph::NodeId v = 0; v < xg.node_count(); ++v) {
      if (!xg.has_finite_capacity(v)) continue;
      if (opt.flows().f_node[v] <= 1e-9) continue;  // unloaded node
      min_slack = std::min(
          min_slack, (xg.capacity(v) - opt.flows().f_node[v]) / xg.capacity(v));
    }
    utilities.push_back(opt.utility());
    slacks.push_back(min_slack);
    table.add_row({util::Table::cell(eps), util::Table::cell(opt.utility()),
                   util::Table::cell(optimal - opt.utility()),
                   util::Table::cell(100.0 * opt.utility() / optimal, 1),
                   util::Table::cell(min_slack, 4)});
  }
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  bool gap_monotone = true;
  for (std::size_t i = 1; i < utilities.size(); ++i) {
    gap_monotone = gap_monotone && utilities[i] >= utilities[i - 1] - 1e-6;
  }
  ok &= bench::shape_check("utility gap shrinks monotonically as eps decreases",
                           gap_monotone);
  ok &= bench::shape_check("smallest eps reaches >= 98% of the LP optimum",
                           utilities.back() >= 0.98 * optimal);
  ok &= bench::shape_check(
      "larger eps leaves a larger minimum safety margin",
      slacks.front() > slacks.back());
  ok &= bench::shape_check("some capacity always remains unallocated",
                           slacks.back() > 0.0);
  return ok ? 0 : 1;
}
