# Empty compiler generated dependencies file for maxutil_gen.
# This may be replaced when dependencies are built.
