#include "solver/registry.hpp"

#include <chrono>
#include <utility>

#include "solver/adapters.hpp"
#include "util/check.hpp"

namespace maxutil::solver {

using maxutil::util::ensure;

SolverRegistry& SolverRegistry::instance() {
  // Built-ins register lazily here (in the README's presentation order)
  // rather than via static-initializer registrar objects: the adapters live
  // in a static library, and the linker would drop object files nothing
  // references, silently losing backends.
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    register_gradient_solver(*r);
    register_distributed_solver(*r);
    register_backpressure_solver(*r);
    register_lp_solver(*r);
    register_frank_wolfe_solver(*r);
    register_lp_sparse_solver(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::add(SolverInfo info) {
  ensure(!info.name.empty(), "SolverRegistry: empty solver name");
  ensure(static_cast<bool>(info.solve),
         "SolverRegistry: solver '" + info.name + "' has no solve function");
  ensure(find(info.name) == nullptr,
         "SolverRegistry: duplicate solver '" + info.name + "'");
  solvers_.push_back(std::move(info));
}

const SolverInfo* SolverRegistry::find(std::string_view name) const {
  for (const SolverInfo& info : solvers_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const SolverInfo& info : solvers_) out.push_back(info.name);
  return out;
}

std::string SolverRegistry::names_joined() const {
  std::string out;
  for (const SolverInfo& info : solvers_) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

SolveResult SolverRegistry::solve(const std::string& name,
                                  const Problem& problem,
                                  const SolveOptions& options) const {
  const SolverInfo* info = find(name);
  ensure(info != nullptr, "unknown solver '" + name +
                              "' (registered: " + names_joined() + ")");
  const auto start = std::chrono::steady_clock::now();
  SolveResult result;
  try {
    result = info->solve(problem, options);
  } catch (const maxutil::util::CheckError& e) {
    // Malformed inputs (an unreachable sink, an invalid warm start, ...)
    // surface as a failed *result* rather than an exception, so callers that
    // drive many solves — the churn controller, pipelines, the CLI — can
    // inspect and continue instead of unwinding.
    result = SolveResult{};
    result.status = Status::kFailed;
    result.message = e.what();
    result.warnings.push_back(result.message);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ensure(result.admitted.size() == problem.commodity_count() ||
             !is_usable(result.status),
         "solver '" + name + "' returned " +
             std::to_string(result.admitted.size()) +
             " admitted rates for " +
             std::to_string(problem.commodity_count()) + " commodities");
  return result;
}

}  // namespace maxutil::solver
