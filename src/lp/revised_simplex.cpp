#include "lp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "la/sparse.hpp"
#include "la/sparse_lu.hpp"

namespace maxutil::lp {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();

/// One product-form update: after the pivot that replaced basis position
/// `row` with the column whose FTRAN image was w, B_new^{-1} = E^{-1}
/// B_old^{-1} where E is the identity with column `row` replaced by w.
struct Eta {
  std::uint32_t row = 0;
  double diag = 1.0;                                   // w[row]
  std::vector<std::pair<std::uint32_t, double>> rest;  // w[i], i != row
};

enum class Phase { kOne, kTwo };

class RevisedSolver {
 public:
  RevisedSolver(const LpProblem& problem, const RevisedSimplexOptions& options)
      : problem_(problem), opt_(options) {
    m_ = problem.constraint_count();
    n_ = problem.variable_count();
    total_ = n_ + m_;
    if (opt_.refactor_interval == 0) opt_.refactor_interval = 64;
    max_iters_ = opt_.max_iterations ? opt_.max_iterations
                                     : 200 * (m_ + n_) + 10000;

    const double sign = problem.sense() == Sense::kMaximize ? -1.0 : 1.0;
    sense_sign_ = sign;
    lo_.resize(total_);
    up_.resize(total_);
    cost_.assign(total_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      lo_[j] = problem.lower(j);
      up_[j] = problem.upper(j);
      cost_[j] = sign * problem.objective_coefficient(j);
    }
    b_.resize(m_);
    std::vector<la::Triplet> entries;
    for (std::size_t i = 0; i < m_; ++i) {
      const LpProblem::Row& row = problem.row(i);
      b_[i] = row.rhs;
      for (const auto& [v, coeff] : row.terms) {
        entries.push_back({v, i, coeff});
      }
      // Slack: row + s = rhs. <= rows keep s >= 0, >= rows s <= 0, and
      // equalities pin s at 0 — no artificial variables anywhere.
      const std::size_t s = n_ + i;
      switch (row.rel) {
        case Relation::kLessEq:
          lo_[s] = 0.0;
          up_[s] = kInfinity;
          break;
        case Relation::kGreaterEq:
          lo_[s] = -kInfinity;
          up_[s] = 0.0;
          break;
        case Relation::kEq:
          lo_[s] = 0.0;
          up_[s] = 0.0;
          break;
      }
    }
    // CSC of the structural block, deduplicated and row-sorted: the CSR of
    // A^T is exactly the CSC of A.
    const la::CsrMatrix csc(n_, m_, std::move(entries));
    col_starts_.assign(n_ + 1, 0);
    col_rows_.reserve(csc.nonzeros());
    col_vals_.reserve(csc.nonzeros());
    for (std::size_t j = 0; j < n_; ++j) {
      const auto rows = csc.row_columns(j);
      const auto vals = csc.row_values(j);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        if (vals[k] == 0.0) continue;  // duplicates may cancel exactly
        col_rows_.push_back(static_cast<std::uint32_t>(rows[k]));
        col_vals_.push_back(vals[k]);
      }
      col_starts_[j + 1] = col_rows_.size();
    }
    slack_rows_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      slack_rows_[i] = static_cast<std::uint32_t>(i);
    }

    status_.assign(total_, BasisStatus::kFree);
    x_.assign(total_, 0.0);
    basis_.clear();
  }

  LpStatus run(SimplexBasis* warm, LpSolution& out) {
    if (warm == nullptr || warm->empty() || !init_warm(*warm)) init_cold();
    if (!factorize()) {
      // A stale warm basis can be singular for the current model; the slack
      // basis never is (identity columns).
      init_cold();
      if (!factorize()) return LpStatus::kIterationLimit;
    }
    compute_basic_values();

    LpStatus status = LpStatus::kIterationLimit;
    // Phase pair plus bounded repair rounds: the final refactorized
    // recompute can surface drift beyond the feasibility tolerance, in
    // which case the (cheap, warm) phases run again from the exact basis.
    for (int round = 0; round < 4; ++round) {
      status = iterate(Phase::kOne);
      if (status != LpStatus::kOptimal) return status;
      status = iterate(Phase::kTwo);
      if (status != LpStatus::kOptimal) return status;
      // Canonicalize before the terminal refactorization: with the basis
      // header sorted, the final LU (and so x, objective, duals) is a
      // function of the basis *set* alone — a warm re-solve that adopts
      // this basis reproduces the cold results bit for bit.
      std::sort(basis_.begin(), basis_.end());
      if (!factorize()) return LpStatus::kIterationLimit;
      compute_basic_values();
      if (basic_bound_violation() <= opt_.feasibility_tolerance) break;
      status = LpStatus::kIterationLimit;  // repair round exhausted?
    }
    if (status != LpStatus::kOptimal) return status;

    // --- Extract the natural-form solution from the exact basis. ---
    out.x.assign(x_.begin(), x_.begin() + static_cast<std::ptrdiff_t>(n_));
    out.objective = problem_.objective_value(out.x);
    // Duals: B^T y = c_B in min form; undo the sense flip so duals are
    // d(objective-in-declared-sense)/d(rhs), matching lp::solve.
    std::vector<double> y(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) y[i] = cost_[basis_[i]];
    btran(y);
    out.duals.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) out.duals[i] = sense_sign_ * y[i];
    if (warm != nullptr) warm->status = status_;
    return LpStatus::kOptimal;
  }

  std::size_t iterations() const { return iters_; }

 private:
  // ------------------------------------------------------------- start basis

  void init_cold() {
    basis_.resize(m_);
    for (std::size_t j = 0; j < n_; ++j) set_nonbasic_start(j);
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t s = n_ + i;
      basis_[i] = static_cast<std::uint32_t>(s);
      status_[s] = BasisStatus::kBasic;
      x_[s] = 0.0;
    }
  }

  bool init_warm(const SimplexBasis& warm) {
    if (warm.status.size() != total_) return false;
    std::size_t basics = 0;
    for (const BasisStatus s : warm.status) {
      if (s == BasisStatus::kBasic) ++basics;
    }
    if (basics != m_) return false;
    basis_.clear();
    basis_.reserve(m_);
    for (std::size_t j = 0; j < total_; ++j) {
      if (warm.status[j] == BasisStatus::kBasic) {
        basis_.push_back(static_cast<std::uint32_t>(j));
        status_[j] = BasisStatus::kBasic;
        x_[j] = 0.0;
      } else {
        set_nonbasic_start(j, warm.status[j]);
      }
    }
    return true;
  }

  /// Parks column j at a sane nonbasic position, preferring `hint` when it
  /// is consistent with the bounds.
  void set_nonbasic_start(std::size_t j,
                          BasisStatus hint = BasisStatus::kAtLower) {
    const bool has_lo = std::isfinite(lo_[j]);
    const bool has_up = std::isfinite(up_[j]);
    BasisStatus s = hint;
    if (s == BasisStatus::kBasic) s = BasisStatus::kAtLower;
    if (s == BasisStatus::kAtLower && !has_lo) {
      s = has_up ? BasisStatus::kAtUpper : BasisStatus::kFree;
    } else if (s == BasisStatus::kAtUpper && !has_up) {
      s = has_lo ? BasisStatus::kAtLower : BasisStatus::kFree;
    } else if (s == BasisStatus::kFree && (has_lo || has_up)) {
      s = has_lo ? BasisStatus::kAtLower : BasisStatus::kAtUpper;
    }
    status_[j] = s;
    x_[j] = s == BasisStatus::kAtLower   ? lo_[j]
            : s == BasisStatus::kAtUpper ? up_[j]
                                         : 0.0;
  }

  // ----------------------------------------------------- basis linear algebra

  bool factorize() {
    std::vector<la::SparseColumnView> cols(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = basis_[i];
      if (j < n_) {
        const std::size_t s = col_starts_[j], e = col_starts_[j + 1];
        cols[i] = {{col_rows_.data() + s, e - s}, {col_vals_.data() + s, e - s}};
      } else {
        cols[i] = {{&slack_rows_[j - n_], 1}, {&kOne, 1}};
      }
    }
    lu_.emplace(m_, cols);
    if (lu_->singular()) return false;
    etas_.clear();
    return true;
  }

  /// v <- B^{-1} v through the LU factorization and the eta file.
  void ftran(std::vector<double>& v) const {
    lu_->solve_in_place(v);
    for (const Eta& eta : etas_) {
      const double vr = v[eta.row] / eta.diag;
      v[eta.row] = vr;
      if (vr == 0.0) continue;
      for (const auto& [i, d] : eta.rest) v[i] -= d * vr;
    }
  }

  /// v <- B^{-T} v (eta transposes in reverse, then the LU transpose).
  void btran(std::vector<double>& v) const {
    for (std::size_t k = etas_.size(); k-- > 0;) {
      const Eta& eta = etas_[k];
      double s = v[eta.row];
      for (const auto& [i, d] : eta.rest) s -= d * v[i];
      v[eta.row] = s / eta.diag;
    }
    lu_->solve_transposed_in_place(v);
  }

  /// Recomputes every basic value from scratch: x_B = B^{-1}(b - N x_N).
  void compute_basic_values() {
    std::vector<double> rhs = b_;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == BasisStatus::kBasic || x_[j] == 0.0) continue;
      if (j < n_) {
        for (std::size_t t = col_starts_[j]; t < col_starts_[j + 1]; ++t) {
          rhs[col_rows_[t]] -= col_vals_[t] * x_[j];
        }
      } else {
        rhs[j - n_] -= x_[j];
      }
    }
    ftran(rhs);
    for (std::size_t i = 0; i < m_; ++i) x_[basis_[i]] = rhs[i];
  }

  /// c_j - y^T a_j for the structural/slack column j (with cost term `cj`).
  double reduced_cost(std::size_t j, double cj,
                      const std::vector<double>& y) const {
    double dot = 0.0;
    if (j < n_) {
      for (std::size_t t = col_starts_[j]; t < col_starts_[j + 1]; ++t) {
        dot += col_vals_[t] * y[col_rows_[t]];
      }
    } else {
      dot = y[j - n_];
    }
    return cj - dot;
  }

  // ------------------------------------------------------------- measurements

  double basic_bound_violation() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = basis_[i];
      worst = std::max(worst, lo_[j] - x_[j]);
      worst = std::max(worst, x_[j] - up_[j]);
    }
    return std::max(worst, 0.0);
  }

  double infeasibility() const {
    double total = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = basis_[i];
      if (x_[j] < lo_[j]) total += lo_[j] - x_[j];
      if (x_[j] > up_[j]) total += x_[j] - up_[j];
    }
    return total;
  }

  double objective_min_form() const {
    double z = 0.0;
    for (std::size_t j = 0; j < total_; ++j) z += cost_[j] * x_[j];
    return z;
  }

  bool is_fixed(std::size_t j) const { return lo_[j] == up_[j]; }

  // -------------------------------------------------------------- iterations

  LpStatus iterate(const Phase phase) {
    const double tol = opt_.tolerance;
    const double ftol = opt_.feasibility_tolerance;
    bool bland = opt_.always_bland;
    double last = kInf;
    std::size_t stall = 0;
    const std::size_t stall_limit = opt_.stall_pivot_limit
                                        ? opt_.stall_pivot_limit
                                        : 2 * (m_ + n_) + 100;
    bool retried_after_refactor = false;
    std::vector<double> y(m_), w(m_);

    while (true) {
      double sigma = 0.0;
      if (phase == Phase::kOne) {
        sigma = infeasibility();
        if (sigma <= ftol) return LpStatus::kOptimal;  // feasible: phase done
      }
      if (iters_ >= max_iters_) return LpStatus::kIterationLimit;

      // Degeneracy watchdog: when the phase measure stops improving, fall
      // back to Bland's rule, which cannot cycle.
      const double measure =
          phase == Phase::kOne ? sigma : objective_min_form();
      if (measure < last - tol) {
        last = measure;
        stall = 0;
      } else if (++stall > stall_limit) {
        bland = true;
      }

      // --- Pricing: y = B^{-T} c_B, then reduced costs per nonbasic. ---
      for (std::size_t i = 0; i < m_; ++i) {
        y[i] = phase == Phase::kOne ? phase1_cost(basis_[i], ftol)
                                    : cost_[basis_[i]];
      }
      btran(y);

      std::size_t entering = kNone;
      double entering_d = 0.0;
      int delta = 0;
      for (std::size_t j = 0; j < total_; ++j) {
        const BasisStatus s = status_[j];
        if (s == BasisStatus::kBasic || is_fixed(j)) continue;
        const double cj = phase == Phase::kOne ? 0.0 : cost_[j];
        const double d = reduced_cost(j, cj, y);
        int dir = 0;
        if (s == BasisStatus::kAtLower && d < -tol) dir = 1;
        else if (s == BasisStatus::kAtUpper && d > tol) dir = -1;
        else if (s == BasisStatus::kFree && std::abs(d) > tol)
          dir = d < 0.0 ? 1 : -1;
        if (dir == 0) continue;
        if (bland) {  // first eligible index
          entering = j;
          entering_d = d;
          delta = dir;
          break;
        }
        if (std::abs(d) > std::abs(entering_d)) {  // Dantzig: steepest
          entering = j;
          entering_d = d;
          delta = dir;
        }
      }
      if (entering == kNone) {
        return phase == Phase::kOne ? LpStatus::kInfeasible
                                    : LpStatus::kOptimal;
      }

      // --- FTRAN the entering column: w = B^{-1} a_q. ---
      std::fill(w.begin(), w.end(), 0.0);
      if (entering < n_) {
        for (std::size_t t = col_starts_[entering];
             t < col_starts_[entering + 1]; ++t) {
          w[col_rows_[t]] = col_vals_[t];
        }
      } else {
        w[entering - n_] = 1.0;
      }
      ftran(w);

      // --- Ratio test (pass 1: the tightest breakpoint). ---
      double t_min = kInf;
      bool blocked_at_upper = false;
      for (std::size_t i = 0; i < m_; ++i) {
        const double t =
            block_step(phase, i, -delta * w[i], ftol, &blocked_at_upper);
        t_min = std::min(t_min, t);
      }
      // The entering variable's own opposite bound is a breakpoint too: a
      // bound flip that changes no basis.
      double t_flip = kInf;
      if (status_[entering] != BasisStatus::kFree &&
          std::isfinite(lo_[entering]) && std::isfinite(up_[entering])) {
        t_flip = up_[entering] - lo_[entering];
      }

      if (t_min == kInf && t_flip == kInf) {
        if (phase == Phase::kTwo) return LpStatus::kUnbounded;
        // Phase 1 cannot be unbounded (the infeasibility sum is bounded
        // below by zero); a missing breakpoint means the eta file has
        // drifted. Refactorize once and retry, else give up.
        if (retried_after_refactor) return LpStatus::kIterationLimit;
        retried_after_refactor = true;
        if (!factorize()) return LpStatus::kIterationLimit;
        compute_basic_values();
        continue;
      }

      if (t_flip <= t_min) {
        // --- Bound flip: walk q across to its opposite bound. ---
        apply_rates(w, delta, t_flip);
        const bool to_upper = delta > 0;
        status_[entering] =
            to_upper ? BasisStatus::kAtUpper : BasisStatus::kAtLower;
        x_[entering] = to_upper ? up_[entering] : lo_[entering];
        ++iters_;
        continue;
      }

      // --- Pass 2: pick the leaving row among the near-tied blockers. ---
      const double slack = 1e-10 * (1.0 + std::abs(t_min));
      std::size_t leaving = kNone;
      bool leave_at_upper = false;
      double best_rate = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double rho = -delta * w[i];
        bool at_upper = false;
        const double t = block_step(phase, i, rho, ftol, &at_upper);
        if (t > t_min + slack) continue;
        if (leaving == kNone ||
            (bland ? basis_[i] < basis_[leaving]
                   : std::abs(rho) > std::abs(best_rate))) {
          leaving = i;
          best_rate = rho;
          leave_at_upper = at_upper;
        }
      }
      if (leaving == kNone) {  // roundoff squeezed every blocker out
        if (retried_after_refactor) return LpStatus::kIterationLimit;
        retried_after_refactor = true;
        if (!factorize()) return LpStatus::kIterationLimit;
        compute_basic_values();
        continue;
      }

      // --- Pivot: step, swap basis, append the eta column. ---
      apply_rates(w, delta, t_min);
      x_[entering] += delta * t_min;
      const std::size_t out_col = basis_[leaving];
      // The leaving variable parks exactly on the (always finite) bound
      // that blocked the ratio test.
      status_[out_col] =
          leave_at_upper ? BasisStatus::kAtUpper : BasisStatus::kAtLower;
      x_[out_col] = leave_at_upper ? up_[out_col] : lo_[out_col];
      basis_[leaving] = static_cast<std::uint32_t>(entering);
      status_[entering] = BasisStatus::kBasic;

      Eta eta;
      eta.row = static_cast<std::uint32_t>(leaving);
      eta.diag = w[leaving];
      for (std::size_t i = 0; i < m_; ++i) {
        if (i != leaving && w[i] != 0.0) {
          eta.rest.emplace_back(static_cast<std::uint32_t>(i), w[i]);
        }
      }
      etas_.push_back(std::move(eta));
      ++iters_;

      if (etas_.size() >= opt_.refactor_interval) {
        if (!factorize()) return LpStatus::kIterationLimit;
        compute_basic_values();
      }
      retried_after_refactor = false;
    }
  }

  /// Phase-1 cost of the basic column j: -1 below its lower bound, +1 above
  /// its upper, 0 inside (minimizing the total infeasibility).
  double phase1_cost(std::size_t j, double ftol) const {
    if (x_[j] < lo_[j] - ftol) return -1.0;
    if (x_[j] > up_[j] + ftol) return 1.0;
    return 0.0;
  }

  /// Step length at which basis row i blocks movement at rate rho
  /// (dx_basic/dt); kInf when it never does. Phase 1 lets an infeasible
  /// basic run to its *violated* bound (where it turns feasible and the
  /// phase-1 objective kinks) and ignores motion further into
  /// infeasibility (the objective stays linear there). On a finite return,
  /// *at_upper says which (finite) bound did the blocking.
  double block_step(Phase phase, std::size_t i, double rho, double ftol,
                    bool* at_upper) const {
    if (std::abs(rho) <= opt_.tolerance) return kInf;
    const std::size_t j = basis_[i];
    const double xv = x_[j];
    double limit;
    if (rho > 0.0) {
      if (phase == Phase::kOne && xv < lo_[j] - ftol) {
        limit = lo_[j];
        *at_upper = false;
      } else if (phase == Phase::kOne && xv > up_[j] + ftol) {
        return kInf;
      } else {
        limit = up_[j];
        if (!std::isfinite(limit)) return kInf;
        *at_upper = true;
      }
    } else {
      if (phase == Phase::kOne && xv > up_[j] + ftol) {
        limit = up_[j];
        *at_upper = true;
      } else if (phase == Phase::kOne && xv < lo_[j] - ftol) {
        return kInf;
      } else {
        limit = lo_[j];
        if (!std::isfinite(limit)) return kInf;
        *at_upper = false;
      }
    }
    return std::max((limit - xv) / rho, 0.0);
  }

  /// x_B += -delta * t * w (every basic moves at its ratio-test rate).
  void apply_rates(const std::vector<double>& w, int delta, double t) {
    if (t == 0.0) return;
    for (std::size_t i = 0; i < m_; ++i) {
      if (w[i] != 0.0) x_[basis_[i]] -= delta * t * w[i];
    }
  }

  // ------------------------------------------------------------------- state

  const LpProblem& problem_;
  RevisedSimplexOptions opt_;
  std::size_t m_ = 0, n_ = 0, total_ = 0;
  std::size_t max_iters_ = 0;
  double sense_sign_ = 1.0;

  std::vector<double> lo_, up_, cost_, b_;
  std::vector<std::size_t> col_starts_;
  std::vector<std::uint32_t> col_rows_;
  std::vector<double> col_vals_;
  std::vector<std::uint32_t> slack_rows_;
  static constexpr double kOne = 1.0;

  std::vector<BasisStatus> status_;
  std::vector<double> x_;
  std::vector<std::uint32_t> basis_;
  std::optional<la::SparseLu> lu_;
  std::vector<Eta> etas_;
  std::size_t iters_ = 0;
};

}  // namespace

LpSolution solve_revised(const LpProblem& problem,
                         const RevisedSimplexOptions& options,
                         SimplexBasis* warm_basis) {
  RevisedSolver solver(problem, options);
  LpSolution solution;
  solution.status = solver.run(warm_basis, solution);
  solution.iterations = solver.iterations();
  if (solution.status != LpStatus::kOptimal) {
    solution.x.clear();
    solution.duals.clear();
    solution.objective = 0.0;
  }
  return solution;
}

}  // namespace maxutil::lp
