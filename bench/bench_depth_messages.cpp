// E4 — message complexity vs pipeline depth (Section 6 prose): a gradient
// iteration costs O(L) message exchanges (each node waits for all downstream
// marginals; L = length of the longest path), while a back-pressure
// iteration costs O(1) (one neighbor buffer exchange). "The gradient-based
// algorithm may be better when the depth of the graph is not large, or else
// the back-pressure algorithm may be favored."
//
// The actor runtime measures real message rounds. The robust, gated claims
// are structural: gradient rounds/iteration grow linearly with depth while
// back-pressure stays at one round, so back-pressure's per-iteration latency
// advantage widens with depth. Total rounds-to-converge for both algorithms
// are reported (averaged over seeds) for the crossover discussion; which
// algorithm wins a specific instance is noisy and not gated.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bp/backpressure.hpp"
#include "common.hpp"
#include "core/optimizer.hpp"
#include "gen/random_instance.hpp"
#include "sim/distributed_gradient.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  std::printf("=== E4: per-iteration message cost vs pipeline depth ===\n");
  std::printf("single-commodity layered instances, width 2, lambda=100,"
              " eps=0.1, eta=0.08; averages over 3 seeds\n\n");

  util::Table table({"stages", "rounds/iter (gradient)", "msgs/iter",
                     "grad iters to 95% opt", "grad total rounds",
                     "bp rounds to 95% opt"});

  std::vector<std::size_t> rounds_per_iter;
  const std::vector<std::size_t> stage_list{2, 4, 6, 8, 10};
  for (const std::size_t stages : stage_list) {
    std::size_t rounds_sum = 0, msgs_sum = 0;
    double g95_sum = 0.0, ground_sum = 0.0, b95_sum = 0.0;
    const int seeds = 3;
    for (int seed = 0; seed < seeds; ++seed) {
      util::Rng rng(900 + stages * 17 + static_cast<std::uint64_t>(seed));
      gen::RandomInstanceParams p;
      p.servers = 40;
      p.commodities = 1;
      p.stages = stages;
      p.min_width = 2;
      p.max_width = 2;
      const auto net = gen::random_instance(p, rng);
      xform::PenaltyConfig penalty;
      penalty.epsilon = 0.1;
      const xform::ExtendedGraph xg(net, penalty);
      const double optimal = xform::solve_reference(xg).optimal_utility;

      sim::DistributedGradientSystem system(xg, {.eta = 0.08});
      system.iterate();
      rounds_sum += system.last_iteration_rounds();
      msgs_sum += system.last_iteration_messages();

      core::GradientOptions gopt;
      gopt.eta = 0.08;
      gopt.max_iterations = 30000;
      core::GradientOptimizer gradient(xg, gopt);
      gradient.run();
      // Convergence speed to 95% of what the algorithm itself attains (the
      // barrier asymptote sits below the LP optimum on deep chains).
      const double target = std::min(optimal, gradient.utility() / 0.98);
      std::size_t g95 = bench::iterations_to_fraction(gradient.history(),
                                                      "utility", target, 0.95);
      if (g95 == bench::kNeverReached) g95 = gopt.max_iterations;
      g95_sum += static_cast<double>(g95);
      ground_sum +=
          static_cast<double>(g95 * system.last_iteration_rounds());

      bp::BackPressureOptions bopt;
      bopt.history_stride = 10;
      bp::BackPressureOptimizer backpressure(xg, bopt);
      backpressure.run(300000);
      const double btarget = std::min(optimal, backpressure.utility() / 0.98);
      std::size_t b95 = bench::iterations_to_fraction(
          backpressure.history(), "utility", btarget, 0.95);
      if (b95 == bench::kNeverReached) b95 = 300000;
      b95_sum += static_cast<double>(b95);
    }
    rounds_per_iter.push_back(rounds_sum / seeds);
    table.add_row({util::Table::cell(static_cast<long long>(stages)),
                   util::Table::cell(static_cast<long long>(rounds_sum / seeds)),
                   util::Table::cell(static_cast<long long>(msgs_sum / seeds)),
                   util::Table::cell(g95_sum / seeds, 0),
                   util::Table::cell(ground_sum / seeds, 0),
                   util::Table::cell(b95_sum / seeds, 0)});
  }
  table.print(std::cout);

  std::printf("\nshape checks:\n");
  bool ok = true;
  bool grows_linearly = true;
  for (std::size_t i = 1; i < rounds_per_iter.size(); ++i) {
    grows_linearly = grows_linearly &&
                     rounds_per_iter[i] > rounds_per_iter[i - 1];
  }
  ok &= bench::shape_check(
      "gradient rounds/iteration grow with depth (O(L) waves)",
      grows_linearly);
  // Two waves over an extended-graph path of ~2*stages+2 hops.
  ok &= bench::shape_check(
      "rounds/iteration track 2 waves x extended path length (~4 stages + c)",
      rounds_per_iter.back() >= 4 * stage_list.back() &&
          rounds_per_iter.back() <= 4 * stage_list.back() + 8);
  ok &= bench::shape_check(
      "back-pressure's per-iteration latency advantage widens with depth "
      "(rounds ratio grows from depth 2 to depth 10)",
      rounds_per_iter.back() > 2 * rounds_per_iter.front());
  return ok ? 0 : 1;
}
