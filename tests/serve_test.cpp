#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ctrl/churn_plan.hpp"
#include "gen/figure1.hpp"
#include "serve/acceptor.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/wal.hpp"
#include "util/check.hpp"

namespace {

using maxutil::ctrl::ChurnEvent;
using maxutil::ctrl::ChurnEventKind;
using maxutil::serve::Acceptor;
using maxutil::serve::AcceptorOptions;
using maxutil::serve::Daemon;
using maxutil::serve::DaemonSink;
using maxutil::serve::Durable;
using maxutil::serve::DurableOptions;
using maxutil::serve::Outcome;
using maxutil::serve::parse_request;
using maxutil::serve::parse_script_text;
using maxutil::serve::Request;
using maxutil::serve::RequestKind;
using maxutil::serve::Script;
using maxutil::serve::ServeOptions;
using maxutil::serve::ServeReport;
using maxutil::serve::Wal;
using maxutil::serve::WalRecord;
using maxutil::util::CheckError;

ServeOptions fast_options() {
  ServeOptions options;
  options.controller.solve.eta = 0.1;
  options.controller.solve.tolerance = 1e-6;
  options.controller.watchdog_iterations = 3000;
  return options;
}

/// Expects `fn` to throw CheckError whose message contains `needle`.
template <typename Fn>
void expect_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected CheckError containing '" << needle << "'";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

// --- Request grammar ---

TEST(ServeProtocol, ParsesAdmitQueryAndTopology) {
  const Request admit = parse_request("admit=video*0.5@12");
  EXPECT_EQ(admit.kind, RequestKind::kAdmit);
  EXPECT_EQ(admit.commodity(), "video");
  EXPECT_DOUBLE_EQ(admit.event.factor, 0.5);
  EXPECT_EQ(admit.time(), 12u);
  EXPECT_EQ(admit.describe(), "admit=video*0.5@12");

  const Request query = parse_request("query=video@3");
  EXPECT_EQ(query.kind, RequestKind::kQuery);
  EXPECT_EQ(query.describe(), "query=video@3");

  const Request crash = parse_request("crash=Server 2@7");
  EXPECT_EQ(crash.kind, RequestKind::kTopology);
  EXPECT_EQ(crash.event.kind, ChurnEventKind::kCrash);
  EXPECT_EQ(crash.event.node, "Server 2");
  EXPECT_EQ(crash.time(), 7u);
}

TEST(ServeProtocol, ErrorsNameTheOffendingLine) {
  // Unknown key falls through to the churn grammar, which names the key.
  expect_error([] { parse_request("evict=video@1"); }, "evict");
  // Missing timestamp.
  expect_error([] { parse_request("admit=video"); }, "admit=video");
  // Bad factor: the message quotes the operator's line, not the internal
  // arrive= alias the parser uses under the hood.
  expect_error([] { parse_request("admit=video*x@3"); }, "'admit=video*x@3'");
  // One request per line.
  expect_error([] { parse_request("admit=a@1,admit=b@1"); }, "comma");
  // Queries take no factor.
  expect_error([] { parse_request("query=video*0.5@3"); }, "no *FACTOR");
}

TEST(ServeProtocol, ScriptSkipsCommentsAndTracksLineNumbers) {
  const Script script = parse_script_text(
      "# header comment\n"
      "\n"
      "admit=a@1   # trailing comment\n"
      "  query=b@2\n");
  ASSERT_EQ(script.requests.size(), 2u);
  EXPECT_EQ(script.requests[0].line, 3u);
  EXPECT_EQ(script.requests[0].describe(), "admit=a@1");
  EXPECT_EQ(script.requests[1].line, 4u);

  expect_error([] { parse_script_text("admit=a@1\nbogus line\n"); }, "line 2");
}

TEST(ServeProtocol, ScriptRejectsDecreasingTimestamps) {
  expect_error([] { parse_script_text("admit=a@5\nquery=b@3\n"); },
               "decreases");
  expect_error([] { parse_script_text("admit=a@5\nquery=b@3\n"); }, "line 2");
  // Equal timestamps are fine (they coalesce).
  EXPECT_EQ(parse_script_text("admit=a@5\nquery=b@5\n").requests.size(), 2u);
}

// --- Batching window ---

TEST(ServeDaemon, WindowCoalescesBurstIntoOneSolve) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 10;
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(
      "depart=S2@1\n"
      "cap=Server 3*0.5@2\n"
      "query=S1@3\n"));
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.solves, 1u);
  EXPECT_EQ(report.applied, 2u);
  EXPECT_EQ(report.queries, 1u);
  // Virtual decision time is batch open (1) + window (10).
  for (const auto& decision : report.decisions) {
    EXPECT_EQ(decision.decided_at, 11u);
    EXPECT_EQ(decision.batch, 0u);
  }
}

TEST(ServeDaemon, WindowZeroSolvesPerRequest) {
  const auto net = maxutil::gen::figure1_example();
  Daemon daemon(net, fast_options());  // window = 0
  const ServeReport& report = daemon.run(parse_script_text(
      "depart=S2@1\n"
      "cap=Server 3*0.5@2\n"
      "query=S1@3\n"));
  EXPECT_EQ(report.batches, 3u);
  EXPECT_EQ(report.solves, 2u);  // the query batch has nothing to solve
  for (const auto& decision : report.decisions) {
    // Zero window: decided at the request's own timestamp, zero latency.
    EXPECT_EQ(decision.decided_at, decision.request.time());
  }
  EXPECT_EQ(report.virtual_p99, 0.0);
}

TEST(ServeDaemon, OutOfOrderSubmitThrows) {
  const auto net = maxutil::gen::figure1_example();
  Daemon daemon(net, fast_options());
  daemon.submit(parse_request("query=S1@5"));
  expect_error([&] { daemon.submit(parse_request("query=S1@3")); },
               "time-ordered");
}

// --- Decisions ---

TEST(ServeDaemon, AdmitDenyDegradeAndRejectOutcomes) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(
      "admit=S1@1\n"     // already present: validation rejects it
      "depart=S2@2\n"
      "admit=S2@3\n"     // exact snapshot restore: full rate back
      "query=S2@4\n"
      "query=nope@5\n"   // unknown commodity
      ));
  ASSERT_EQ(report.decisions.size(), 5u);
  EXPECT_EQ(report.decisions[0].outcome, Outcome::kRejected);
  EXPECT_NE(report.decisions[0].reason.find("already present"),
            std::string::npos);
  EXPECT_EQ(report.decisions[1].outcome, Outcome::kApplied);
  EXPECT_EQ(report.decisions[2].outcome, Outcome::kAdmit);
  EXPECT_DOUBLE_EQ(report.decisions[2].share, 1.0);
  EXPECT_EQ(report.decisions[3].outcome, Outcome::kReport);
  EXPECT_GT(report.decisions[3].admitted, 0.0);
  EXPECT_EQ(report.decisions[4].outcome, Outcome::kRejected);
  EXPECT_NE(report.decisions[4].reason.find("unknown commodity"),
            std::string::npos);
  EXPECT_EQ(report.admits, 1u);
  EXPECT_EQ(report.rejected, 2u);
  // Rejection reasons never leak build-tree paths into the decision log.
  EXPECT_EQ(report.decision_log().find("/src/ctrl/"), std::string::npos);
}

TEST(ServeDaemon, ExactRestoreRoundTripReinstatesUtility) {
  const auto net = maxutil::gen::figure1_example();
  Daemon daemon(net, fast_options());
  const double initial = daemon.report().initial_utility;
  const ServeReport& report = daemon.run(parse_script_text(
      "depart=S2@1\n"
      "admit=S2@2\n"));
  // A departure snapshot plus an identical re-arrival is an exact restore:
  // the pre-departure plan comes back bit-for-bit.
  EXPECT_DOUBLE_EQ(report.final_utility, initial);
  EXPECT_EQ(report.decisions[1].outcome, Outcome::kAdmit);
  EXPECT_DOUBLE_EQ(report.decisions[1].share, 1.0);
}

TEST(ServeDaemon, DenialRevertsTheCommodity) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  // Impossible threshold: every admit with share < 1.01 is denied, which
  // must revert the commodity back out of the plan.
  options.admit_share = 1.01;
  options.deny_share = 1.01;
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(
      "depart=S2@1\n"
      "admit=S2*0.5@2\n"  // half-rate re-arrival: no snapshot match, re-solve
      "query=S2@3\n"));
  EXPECT_EQ(report.decisions[1].outcome, Outcome::kDeny);
  EXPECT_NE(report.decisions[1].reason.find("below deny_share"),
            std::string::npos);
  // The deny was reverted: the query sees the commodity absent.
  EXPECT_EQ(report.decisions[2].outcome, Outcome::kReport);
  EXPECT_EQ(report.decisions[2].reason, "absent");
  EXPECT_DOUBLE_EQ(report.decisions[2].admitted, 0.0);
}

TEST(ServeDaemon, SubmitAfterFinishThrows) {
  const auto net = maxutil::gen::figure1_example();
  Daemon daemon(net, fast_options());
  daemon.finish();
  expect_error([&] { daemon.submit(parse_request("query=S1@1")); },
               "after finish");
}

// --- Determinism ---

std::string run_replay(const std::string& stream, std::size_t threads,
                       double* final_utility) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options;
  options.controller.pipeline = "distributed";
  options.controller.solve.threads = threads;
  options.controller.solve.tolerance = 1e-6;
  options.controller.watchdog_iterations = 400;
  options.window = 2;
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(stream));
  *final_utility = report.final_utility;
  return report.decision_log();
}

TEST(ServeDaemon, ReplayIsBitIdenticalAcross128Threads) {
  const std::string stream =
      "query=S1@0\n"
      "depart=S2@1\n"
      "cap=Server 3*0.5@2\n"
      "admit=S2*0.5@5\n"
      "query=S2@6\n"
      "cap=Server 3*2@9\n"
      "query=S1@12\n";
  double u1 = 0.0, u2 = 0.0, u8 = 0.0;
  const std::string log1 = run_replay(stream, 1, &u1);
  const std::string log2 = run_replay(stream, 2, &u2);
  const std::string log8 = run_replay(stream, 8, &u8);
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(log1, log8);
  EXPECT_DOUBLE_EQ(u1, u2);
  EXPECT_DOUBLE_EQ(u1, u8);
  EXPECT_FALSE(log1.empty());
}

TEST(ServeDaemon, ReplayTwiceIsBitIdentical) {
  const std::string stream =
      "depart=S2@1\n"
      "admit=S2*0.5@4\n"
      "query=S1@8\n";
  double ua = 0.0, ub = 0.0;
  const std::string a = run_replay(stream, 1, &ua);
  const std::string b = run_replay(stream, 1, &ub);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(ua, ub);
}

// --- Batch path on the controller ---

TEST(ServeDaemon, BatchValidationIsAllOrNothing) {
  const auto net = maxutil::gen::figure1_example();
  maxutil::ctrl::Controller controller(net, fast_options().controller);
  const double utility = controller.utility();
  std::vector<ChurnEvent> batch =
      maxutil::ctrl::parse_churn_plan("depart=S2@1,depart=nope@1").events;
  EXPECT_THROW(controller.apply_batch(batch), CheckError);
  // The valid first event must not have been applied.
  EXPECT_EQ(controller.network().commodity_count(), 2u);
  EXPECT_DOUBLE_EQ(controller.utility(), utility);
}

TEST(ServeDaemon, CheckEventSeesStagedEvents) {
  const auto net = maxutil::gen::figure1_example();
  maxutil::ctrl::Controller controller(net, fast_options().controller);
  const ChurnEvent depart =
      maxutil::ctrl::parse_churn_plan("depart=S2@1").events[0];
  EXPECT_EQ(controller.check_event(depart), "");
  // With the same departure already staged, a second one must fail.
  const std::string reason = controller.check_event(depart, {depart});
  EXPECT_NE(reason.find("absent"), std::string::npos);
  // And the reason carries no file:line preamble.
  EXPECT_EQ(reason.find("check failed"), std::string::npos);
}

// --- Report export ---

TEST(ServeReportJson, IsWellFormedAndCarriesLatencies) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 3;
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(
      "depart=S2@1\n"
      "query=S1@2\n"
      "admit=S2@7\n"));
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  for (const char* key :
       {"\"decisions\"", "\"batches\"", "\"solves\"", "\"admits\"",
        "\"virtual_latency_p50\"", "\"virtual_latency_p99\"",
        "\"wall_latency_p99_seconds\"", "\"decisions_per_second\"",
        "\"final_utility\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');

  // serve_* metrics landed in the shared registry.
  const auto& metrics = daemon.controller().metrics();
  ASSERT_TRUE(metrics.find("serve_requests_total").has_value());
  EXPECT_EQ(metrics.counter_value(*metrics.find("serve_requests_total")), 3u);
  ASSERT_TRUE(metrics.find("serve_batches_total").has_value());
  EXPECT_EQ(metrics.counter_value(*metrics.find("serve_batches_total")),
            report.batches);
}

// --- Window semantics: trailing flush + overload bound ---

std::uint64_t counter(const Daemon& daemon, const char* name) {
  const auto& metrics = daemon.controller().metrics();
  const auto id = metrics.find(name);
  return id ? metrics.counter_value(*id) : 0;
}

TEST(ServeDaemon, TrailingBatchForceFlushesAndIsCounted) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 3;
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(
      "depart=S2@1\n"   // batch 0 opens at 1 ...
      "query=S2@2\n"    // ... coalesces ...
      "query=S1@10\n"   // ... flushes on arrival; batch 1 opens at 10
      ));              // end-of-stream: batch 1 must force-flush
  EXPECT_EQ(report.batches, 2u);
  EXPECT_EQ(report.decisions.size(), 3u);  // nothing dropped at EOS
  // Only the end-of-stream flush is "forced"; batch 0 flushed on arrival.
  EXPECT_EQ(report.forced_flushes, 1u);
  EXPECT_EQ(counter(daemon, "serve_batch_forced_flush"), 1u);
}

TEST(ServeDaemon, OverloadDeniesBeyondMaxPending) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 100;   // nothing flushes on its own
  options.max_pending = 2;
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(
      "depart=S2@1\n"
      "query=S1@2\n"
      "query=S1@3\n"    // third arrival: immediate overload denial
      "admit=S2@4\n"    // fourth: denied too
      ));
  EXPECT_EQ(report.overload_denied, 2u);
  EXPECT_EQ(counter(daemon, "serve_overload_denied_total"), 2u);
  // Overload denials are decided immediately, before the batch flushes.
  ASSERT_GE(report.decisions.size(), 2u);
  EXPECT_EQ(report.decisions[0].outcome, Outcome::kDeny);
  EXPECT_EQ(report.decisions[0].decided_at, 3u);  // the arrival's own time
  EXPECT_NE(report.decisions[0].reason.find("overloaded"), std::string::npos);
  EXPECT_NE(report.decisions[0].reason.find("retryable"), std::string::npos);
  // The two batch members were still decided at the trailing flush.
  EXPECT_EQ(report.decisions.size(), 4u);
  // And the denial is replay-deterministic: same stream, same log.
  Daemon again(net, options);
  again.run(parse_script_text(
      "depart=S2@1\nquery=S1@2\nquery=S1@3\nadmit=S2@4\n"));
  EXPECT_EQ(again.report().decision_log(), report.decision_log());
}

// --- Crash recovery: WAL + snapshots ---

/// mkdtemp-backed scratch directory, removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/maxutil_serve_XXXXXX";
    const char* made = ::mkdtemp(buf);
    if (made == nullptr) throw std::runtime_error("mkdtemp failed");
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

ServeOptions recovery_options(const std::string& pipeline,
                              std::size_t threads) {
  ServeOptions options;
  options.controller.pipeline = pipeline;
  options.controller.solve.threads = threads;
  options.controller.solve.tolerance = 1e-6;
  if (pipeline == "gradient") {
    options.controller.solve.eta = 0.1;
    options.controller.watchdog_iterations = 3000;
  } else {
    options.controller.watchdog_iterations = 400;
  }
  options.window = 2;
  return options;
}

/// Requests in canonical describe() form (WAL payloads equal these lines).
const char* kRecoveryStream =
    "query=S1@0\n"
    "depart=S2@1\n"
    "cap=Server 3*0.5@2\n"
    "admit=S2*0.5@5\n"
    "query=S2@6\n"
    "cap=Server 3*2@9\n"
    "query=S1@12\n"
    "admit=S1@13\n"   // S1 already present: a rejected decision
    "query=S2@15\n";

std::string run_uninterrupted(const ServeOptions& options, double* utility) {
  const auto net = maxutil::gen::figure1_example();
  Daemon daemon(net, options);
  const ServeReport& report = daemon.run(parse_script_text(kRecoveryStream));
  *utility = report.final_utility;
  return report.decision_log();
}

/// Feeds the first `crash_after` requests through a Durable, "crashes"
/// (destroys everything without finish — exactly what SIGKILL leaves on
/// disk, since every WAL append is an immediate write() syscall), then
/// recovers into a fresh Daemon over the same directory and feeds the rest.
std::string run_with_crash(std::size_t crash_after,
                           const ServeOptions& options,
                           std::size_t snapshot_every, double* utility,
                           std::uint64_t* replayed = nullptr) {
  const auto net = maxutil::gen::figure1_example();
  const Script script = parse_script_text(kRecoveryStream);
  TempDir dir;
  DurableOptions durable_options;
  durable_options.dir = dir.path;
  durable_options.snapshot_every = snapshot_every;
  {
    Daemon daemon(net, options);
    Durable durable(daemon, durable_options);
    EXPECT_EQ(durable.epoch(), 1u);
    for (std::size_t i = 0; i < crash_after; ++i) {
      durable.submit(script.requests[i]);
    }
  }
  Daemon daemon(net, options);
  Durable durable(daemon, durable_options);
  EXPECT_EQ(durable.epoch(), 2u);
  if (replayed != nullptr) *replayed = durable.replayed();
  for (std::size_t i = crash_after; i < script.requests.size(); ++i) {
    durable.submit(script.requests[i]);
  }
  const ServeReport& report = durable.finish();
  *utility = report.final_utility;
  return durable.full_decision_log();
}

TEST(ServeRecovery, KillAtEveryWalRecordIsBitIdentical) {
  const ServeOptions options = recovery_options("gradient", 1);
  double reference_utility = 0.0;
  const std::string reference =
      run_uninterrupted(options, &reference_utility);
  const std::size_t requests =
      parse_script_text(kRecoveryStream).requests.size();
  for (std::size_t k = 0; k <= requests; ++k) {
    double utility = 0.0;
    const std::string log = run_with_crash(k, options, 2, &utility);
    EXPECT_EQ(log, reference) << "crash after record " << k;
    EXPECT_EQ(utility, reference_utility) << "crash after record " << k;
  }
}

TEST(ServeRecovery, NoSnapshotsMeansFullWalReplay) {
  const ServeOptions options = recovery_options("gradient", 1);
  double reference_utility = 0.0;
  const std::string reference =
      run_uninterrupted(options, &reference_utility);
  double utility = 0.0;
  std::uint64_t replayed = 0;
  // snapshot_every = 0: recovery must replay all 6 pre-crash records.
  const std::string log = run_with_crash(6, options, 0, &utility, &replayed);
  EXPECT_EQ(replayed, 6u);
  EXPECT_EQ(log, reference);
  EXPECT_EQ(utility, reference_utility);
}

TEST(ServeRecovery, DistributedBitIdentityAcross128Threads) {
  // The acceptance bar: crash + recover under the distributed backend at
  // 1/2/8 threads matches the uninterrupted run bit-for-bit, and the logs
  // agree across thread counts.
  std::string logs[3];
  const std::size_t threads[3] = {1, 2, 8};
  for (std::size_t t = 0; t < 3; ++t) {
    const ServeOptions options = recovery_options("distributed", threads[t]);
    double reference_utility = 0.0;
    const std::string reference =
        run_uninterrupted(options, &reference_utility);
    for (const std::size_t k : {std::size_t{2}, std::size_t{5}}) {
      double utility = 0.0;
      const std::string log = run_with_crash(k, options, 2, &utility);
      EXPECT_EQ(log, reference)
          << "threads=" << threads[t] << " crash after " << k;
      EXPECT_EQ(utility, reference_utility)
          << "threads=" << threads[t] << " crash after " << k;
      logs[t] = log;
    }
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[0], logs[2]);
  EXPECT_FALSE(logs[0].empty());
}

TEST(ServeRecovery, TornWalTailIsTruncated) {
  TempDir dir;
  const std::string path = dir.path + "/wal.log";
  {
    Wal wal(path);
    wal.append({1, 1, "query=S1@0"});
    wal.append({2, 1, "depart=S2@1"});
    wal.sync();
  }
  {
    // A corrupt record (bad checksum) and a torn final line.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "r 3 1 deadbeefdeadbeef query=S1@2\n";
    out << "r 4 1 0123";  // no newline: torn mid-append
  }
  std::size_t truncated = 0;
  const std::vector<WalRecord> records = Wal::read_and_repair(path, &truncated);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "query=S1@0");
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_GT(truncated, 0u);
  // The repair is durable: a second read finds a clean file.
  std::size_t truncated_again = 0;
  EXPECT_EQ(Wal::read_and_repair(path, &truncated_again).size(), 2u);
  EXPECT_EQ(truncated_again, 0u);
}

TEST(ServeRecovery, SnapshotRoundTripContinuesBatchNumbering) {
  const auto net = maxutil::gen::figure1_example();
  const ServeOptions options = recovery_options("gradient", 1);
  const Script script = parse_script_text(kRecoveryStream);

  Daemon original(net, options);
  for (std::size_t i = 0; i < 5; ++i) original.submit(script.requests[i]);
  original.flush();
  std::ostringstream snapshot;
  original.export_snapshot(snapshot);
  const std::size_t batches_at_export = original.report().batches;

  Daemon restored(net, options);
  std::istringstream in(snapshot.str());
  restored.import_snapshot(in);
  EXPECT_EQ(restored.report().batches, batches_at_export);
  EXPECT_EQ(restored.report().final_utility,
            original.report().final_utility);

  // Both continue with the rest of the stream and agree bit-for-bit.
  for (std::size_t i = 5; i < script.requests.size(); ++i) {
    original.submit(script.requests[i]);
    restored.submit(script.requests[i]);
  }
  original.finish();
  restored.finish();
  const auto& a = original.report().decisions;
  const auto& b = restored.report().decisions;
  ASSERT_EQ(a.size() - 5, b.size());  // restored log restarts after import
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i].line(), a[i + 5].line());
  }
  EXPECT_EQ(restored.report().final_utility, original.report().final_utility);

  // The ordering bound survived the restore: pre-snapshot times are stale.
  Daemon late(net, options);
  std::istringstream again(snapshot.str());
  late.import_snapshot(again);
  expect_error([&] { late.submit(parse_request("query=S1@1")); },
               "time-ordered");
}

TEST(ServeRecovery, MismatchedOptionsAreRefused) {
  const auto net = maxutil::gen::figure1_example();
  TempDir dir;
  DurableOptions durable_options;
  durable_options.dir = dir.path;
  {
    Daemon daemon(net, recovery_options("gradient", 1));
    Durable durable(daemon, durable_options);
    durable.submit(parse_request("query=S1@0"));
  }
  ServeOptions changed = recovery_options("gradient", 1);
  changed.window = 7;  // a different window would re-batch history
  Daemon daemon(net, changed);
  expect_error([&] { Durable durable(daemon, durable_options); },
               "different serve options");
}

// --- Acceptor: multi-client fan-in, epoch fencing, overload routing ---

TEST(ServeAcceptor, MultiClientInterleavingIsDeterministic) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 0;
  Daemon daemon(net, options);
  DaemonSink sink(daemon);
  AcceptorOptions acceptor_options;
  acceptor_options.stamp_arrival = true;
  Acceptor acceptor(sink, acceptor_options);

  const int a = acceptor.open_session();
  const int b = acceptor.open_session();
  EXPECT_EQ(acceptor.take_output(a), "epoch=0\n");  // not durable: epoch 0
  EXPECT_EQ(acceptor.take_output(b), "epoch=0\n");

  // Clients disagree about time (@0 everywhere); the boundary order rules.
  acceptor.feed_line(a, "depart=S2@0");
  acceptor.feed_line(b, "query=S1@0");
  acceptor.feed_line(a, "admit=S2*0.5@0");
  acceptor.feed_line(b, "query=S2@0");
  acceptor.flush_now();
  daemon.finish();

  // Responses route to the submitting client, in that client's order.
  const std::string out_a = acceptor.take_output(a);
  const std::string out_b = acceptor.take_output(b);
  EXPECT_NE(out_a.find("depart=S2@0 -> applied"), std::string::npos);
  EXPECT_NE(out_a.find("admit=S2*0.5@2 -> "), std::string::npos);
  EXPECT_EQ(out_a.find("query="), std::string::npos);
  EXPECT_NE(out_b.find("query=S1@1 -> report"), std::string::npos);
  EXPECT_NE(out_b.find("query=S2@3 -> report"), std::string::npos);
  EXPECT_EQ(out_b.find("depart="), std::string::npos);

  // The stamped stream replays to the identical decision log: any client
  // interleaving is just a serve script under boundary ordinals.
  Daemon replay(net, options);
  replay.run(parse_script_text(
      "depart=S2@0\nquery=S1@1\nadmit=S2*0.5@2\nquery=S2@3\n"));
  EXPECT_EQ(replay.report().decision_log(),
            daemon.report().decision_log());
}

TEST(ServeAcceptor, StaleEpochIsFencedWithRetryableError) {
  const auto net = maxutil::gen::figure1_example();
  TempDir dir;
  ServeOptions options = fast_options();
  options.window = 0;
  Daemon daemon(net, options);
  DurableOptions durable_options;
  durable_options.dir = dir.path;
  Durable durable(daemon, durable_options);
  EXPECT_EQ(durable.epoch(), 1u);

  Acceptor acceptor(durable);
  const int stale = acceptor.open_session();
  EXPECT_EQ(acceptor.take_output(stale), "epoch=1\n");
  acceptor.feed_line(stale, "epoch=0");  // a fenced-off predecessor's epoch
  std::string out = acceptor.take_output(stale);
  EXPECT_NE(out.find("error: stale epoch 0 (current 1)"), std::string::npos);
  EXPECT_NE(out.find("retry"), std::string::npos);
  // Every later line bounces without reaching the daemon.
  acceptor.feed_line(stale, "query=S1@0");
  EXPECT_NE(acceptor.take_output(stale).find("fenced"), std::string::npos);
  EXPECT_TRUE(daemon.report().decisions.empty());
  EXPECT_EQ(counter(daemon, "serve_stale_epoch_total"), 2u);

  // A client asserting the current epoch proceeds normally.
  const int fresh = acceptor.open_session();
  acceptor.take_output(fresh);
  acceptor.feed_line(fresh, "epoch=1");
  acceptor.feed_line(fresh, "query=S1@0");
  acceptor.flush_now();
  EXPECT_NE(acceptor.take_output(fresh).find("-> report"), std::string::npos);
}

TEST(ServeAcceptor, OverloadDenialRoutesToTheOverloadingClient) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 100;
  options.max_pending = 1;
  Daemon daemon(net, options);
  DaemonSink sink(daemon);
  AcceptorOptions acceptor_options;
  acceptor_options.stamp_arrival = true;
  Acceptor acceptor(sink, acceptor_options);
  const int a = acceptor.open_session();
  const int b = acceptor.open_session();
  acceptor.take_output(a);
  acceptor.take_output(b);
  acceptor.feed_line(a, "query=S1@0");  // joins the batch
  acceptor.feed_line(b, "query=S1@0");  // overflows: denied immediately
  // The denial reaches b at once, while a's request is still pending.
  EXPECT_NE(acceptor.take_output(b).find("overloaded"), std::string::npos);
  EXPECT_EQ(acceptor.take_output(a), "");
  // a's answer arrives at the flush and routes to a, not b.
  acceptor.flush_now();
  EXPECT_NE(acceptor.take_output(a).find("-> report"), std::string::npos);
  EXPECT_EQ(acceptor.take_output(b), "");
}

TEST(ServeAcceptor, ClosingClientGetsItsAnswers) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 100;  // nothing would flush without the EOF
  Daemon daemon(net, options);
  DaemonSink sink(daemon);
  Acceptor acceptor(sink);
  const int session = acceptor.open_session();
  acceptor.take_output(session);
  acceptor.feed_line(session, "query=S1@0");
  const std::string farewell = acceptor.close_session(session);
  EXPECT_NE(farewell.find("query=S1@0 -> report"), std::string::npos);
  EXPECT_FALSE(acceptor.has_session(session));
}

// --- Acceptor socket front end: wall-clock timer flush ---

TEST(ServeAcceptor, SocketTimerFlushesWithoutFurtherArrivals) {
  const auto net = maxutil::gen::figure1_example();
  ServeOptions options = fast_options();
  options.window = 1000000;  // virtually never flushes on arrival
  Daemon daemon(net, options);
  DaemonSink sink(daemon);
  AcceptorOptions acceptor_options;
  acceptor_options.flush_ms = 30;
  Acceptor acceptor(sink, acceptor_options);

  const std::string path = "/tmp/maxutil_serve_sock_" +
                           std::to_string(::getpid());
  std::thread server([&] { acceptor.run(path); });

  // Wait for the socket to appear, then connect.
  int client = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    client = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(client, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    if (::connect(client, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    ::close(client);
    client = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(client, 0) << "could not connect to " << path;

  const auto read_until = [&](const std::string& needle) {
    std::string got;
    char chunk[512];
    while (got.find(needle) == std::string::npos) {
      const ssize_t n = ::read(client, chunk, sizeof(chunk));
      if (n <= 0) break;
      got.append(chunk, static_cast<std::size_t>(n));
    }
    return got;
  };

  EXPECT_NE(read_until("epoch=0\n").find("epoch=0"), std::string::npos);
  const std::string line = "query=S1@0\n";
  ASSERT_EQ(::write(client, line.data(), line.size()),
            static_cast<ssize_t>(line.size()));
  // No second request ever arrives; only the wall-clock timer can flush.
  const std::string answer = read_until("-> report");
  EXPECT_NE(answer.find("query=S1@0 -> report"), std::string::npos);
  ::close(client);  // last client leaves: run() returns
  server.join();
  EXPECT_EQ(acceptor.clients_served(), 1u);
  EXPECT_GE(daemon.report().forced_flushes, 1u);
}

TEST(ServeAcceptor, StampOrdinalContinuesAcrossRecovery) {
  const auto net = maxutil::gen::figure1_example();
  TempDir dir;
  ServeOptions options = fast_options();
  options.window = 2;
  AcceptorOptions acceptor_options;
  acceptor_options.stamp_arrival = true;
  DurableOptions durable_options;
  durable_options.dir = dir.path;
  {
    Daemon daemon(net, options);
    Durable durable(daemon, durable_options);
    Acceptor acceptor(durable, acceptor_options);
    const int a = acceptor.open_session();
    acceptor.take_output(a);
    acceptor.feed_line(a, "query=S1@0");
    acceptor.feed_line(a, "query=S2@0");
    // Crash without finish: the WAL holds ordinals 0 and 1, both pending.
  }
  Daemon daemon(net, options);
  Durable durable(daemon, durable_options);
  ASSERT_TRUE(durable.recovered());
  Acceptor acceptor(durable, acceptor_options);
  const int a = acceptor.open_session();
  EXPECT_EQ(acceptor.take_output(a), "epoch=2\n");
  // A restarted stamp clock would emit @0 and violate the daemon's time
  // ordering; the ordinal must continue where the WAL left off, and the
  // replayed orphans' decisions must be dropped, not misrouted to `a`.
  acceptor.feed_line(a, "query=S1@0");
  acceptor.flush_now();
  const std::string out = acceptor.take_output(a);
  EXPECT_NE(out.find("query=S1@2 -> report"), std::string::npos);
  EXPECT_EQ(out.find("error"), std::string::npos);
  EXPECT_EQ(out.find("query=S2"), std::string::npos);
  durable.finish();
  EXPECT_EQ(counter(daemon, "serve_dropped_responses_total"), 2u);
}

}  // namespace
