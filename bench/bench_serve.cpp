// E18 — online admission serving (extension): decision latency vs. request
// rate for the serve daemon (docs/SERVE.md). On the canonical Section-6
// instance we synthesize a cyclic request stream (query, depart, half-rate
// re-admit, query, capacity dip, capacity repair) at a fixed inter-request
// gap and replay it through serve::Daemon across a ladder of gap x
// coalescing-window points. Measures wall p50/p99 decision latency,
// sustained decisions/sec, batches, re-solves, and mean batch size. Writes
// BENCH_serve.json.
//
// A recovery section (docs/SERVE.md §7) crashes a durable server
// mid-stream and times the restart with and without snapshots, recording
// replayed-record counts and recovery wall time.
//
// Shape checks (the acceptance criteria):
//   * every run answers every request (decisions == stream length),
//   * virtual decision latency p99 <= the coalescing window on every run,
//   * widening the window at fixed gap never increases batches or solves,
//   * a distributed-backend replay is bit-identical across 1/2/8 threads
//     (identical decision logs and final utility),
//   * the recovered decision log is byte-identical to the uninterrupted
//     run's, and snapshots strictly shorten the recovery replay.
//
// `--smoke` shortens the stream and ladder (the CI leg).

#include <stdlib.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/wal.hpp"
#include "util/artifacts.hpp"
#include "util/table.hpp"

namespace {

using namespace maxutil;

/// A closed 6-request cycle against the instance's first two commodities
/// and one interior server: each full cycle returns the topology to its
/// starting configuration (cap factors 0.8 * 1.25 = 1, the departed
/// commodity re-admitted), so the stream sustains arbitrary length.
std::string make_stream(const stream::StreamNetwork& net,
                        std::size_t requests, std::size_t gap) {
  const std::string c0 = net.commodity_name(0);
  const std::string c1 = net.commodity_name(1);
  std::string victim;
  for (stream::NodeId n = 0; n < net.node_count(); ++n) {
    if (net.is_sink(n)) continue;
    bool is_source = false;
    for (std::size_t j = 0; j < net.commodity_count(); ++j) {
      is_source = is_source || net.source(j) == n;
    }
    if (!is_source) {
      victim = net.node_name(n);
      break;
    }
  }
  std::string out;
  for (std::size_t i = 0; i < requests; ++i) {
    const std::string at = "@" + std::to_string(i * gap) + "\n";
    switch (i % 6) {
      case 0: out += "query=" + c0 + at; break;
      case 1: out += "depart=" + c1 + at; break;
      case 2: out += "admit=" + c1 + "*0.5" + at; break;
      case 3: out += "query=" + c1 + at; break;
      case 4: out += "cap=" + victim + "*0.8" + at; break;
      case 5: out += "cap=" + victim + "*1.25" + at; break;
    }
  }
  return out;
}

serve::ServeOptions ladder_options(std::size_t window) {
  serve::ServeOptions options;
  options.controller.solve.eta = 0.1;
  options.controller.solve.tolerance = 1e-6;
  options.controller.watchdog_iterations = 1500;
  options.window = window;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  const std::size_t requests = smoke ? 12 : 36;
  const std::vector<std::size_t> gaps = smoke ? std::vector<std::size_t>{1, 4}
                                              : std::vector<std::size_t>{1, 2, 8};
  const std::vector<std::size_t> windows =
      smoke ? std::vector<std::size_t>{0, 8} : std::vector<std::size_t>{0, 4, 16};
  std::printf("E18: serve decision latency vs request rate, %zu requests%s\n",
              requests, smoke ? " [smoke]" : "");

  const stream::StreamNetwork net = bench::paper_instance();
  std::vector<util::BenchRecord> records;
  util::Table table({"gap", "window", "batches", "solves", "mean batch",
                     "wall p50 ms", "wall p99 ms", "dec/s"});
  bool ok = true;

  for (const std::size_t gap : gaps) {
    const std::string stream = make_stream(net, requests, gap);
    std::size_t prev_batches = 0, prev_solves = 0;
    bool first_window = true;
    for (const std::size_t window : windows) {
      serve::Daemon daemon(net, ladder_options(window));
      const serve::ServeReport& report =
          daemon.run(serve::parse_script_text(stream));

      const double mean_batch =
          report.batches == 0
              ? 0.0
              : static_cast<double>(report.decisions.size()) /
                    static_cast<double>(report.batches);
      const std::string name =
          "gap=" + std::to_string(gap) + "/window=" + std::to_string(window);
      table.add_row({std::to_string(gap), std::to_string(window),
                     std::to_string(report.batches),
                     std::to_string(report.solves),
                     util::Table::cell(mean_batch, 2),
                     util::Table::cell(report.wall_p50 * 1e3, 3),
                     util::Table::cell(report.wall_p99 * 1e3, 3),
                     util::Table::cell(report.decisions_per_second(), 1)});
      records.push_back(
          {name,
           {{"requests", static_cast<double>(report.decisions.size())},
            {"batches", static_cast<double>(report.batches)},
            {"solves", static_cast<double>(report.solves)},
            {"mean_batch_size", mean_batch},
            {"virtual_latency_p50", report.virtual_p50},
            {"virtual_latency_p99", report.virtual_p99},
            {"wall_latency_p50_seconds", report.wall_p50},
            {"wall_latency_p99_seconds", report.wall_p99},
            {"decisions_per_second", report.decisions_per_second()},
            {"final_utility", report.final_utility}},
           {}});

      ok &= bench::shape_check(
          ("every request answered (" + name + ")").c_str(),
          report.decisions.size() == requests);
      ok &= bench::shape_check(
          ("virtual p99 within the window (" + name + ")").c_str(),
          report.virtual_p99 <= static_cast<double>(window));
      if (!first_window) {
        ok &= bench::shape_check(
            ("wider window never adds batches (" + name + ")").c_str(),
            report.batches <= prev_batches && report.solves <= prev_solves);
      }
      prev_batches = report.batches;
      prev_solves = report.solves;
      first_window = false;
    }
  }
  table.print(std::cout);

  // Determinism across thread counts: the distributed backend's decision
  // log must be bit-identical at 1/2/8 workers.
  {
    const std::string stream = make_stream(net, smoke ? 6 : 12, 2);
    std::string log1;
    double utility1 = 0.0;
    bool identical = true;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      serve::ServeOptions options = ladder_options(4);
      options.controller.pipeline = "distributed";
      options.controller.solve.threads = threads;
      options.controller.watchdog_iterations = 400;
      serve::Daemon daemon(net, options);
      const serve::ServeReport& report =
          daemon.run(serve::parse_script_text(stream));
      if (threads == 1) {
        log1 = report.decision_log();
        utility1 = report.final_utility;
      } else {
        identical = identical && report.decision_log() == log1 &&
                    report.final_utility == utility1;
      }
    }
    ok &= bench::shape_check("decision log bit-identical across 1/2/8 threads",
                             identical);
  }

  // Recovery time vs WAL length (docs/SERVE.md §7): serve the stream
  // durably, crash the server (drop it without finish), and time the
  // restart — once with snapshots off (recovery replays the whole WAL) and
  // once with a snapshot cadence (recovery replays only the tail). The
  // recovered decision log must equal the uninterrupted one byte for byte,
  // and snapshots must strictly shorten the replay.
  {
    const std::string stream = make_stream(net, smoke ? 12 : 24, 2);
    const serve::Script script = serve::parse_script_text(stream);
    serve::Daemon reference(net, ladder_options(4));
    const std::string reference_log =
        reference.run(serve::parse_script_text(stream)).decision_log();

    std::size_t replayed_plain = 0, replayed_snap = 0;
    for (const std::size_t snapshot_every :
         {std::size_t{0}, std::size_t{4}}) {
      char dir_template[] = "/tmp/maxutil_bench_wal.XXXXXX";
      const char* dir_cstr = ::mkdtemp(dir_template);
      if (dir_cstr == nullptr) {
        ok &= bench::shape_check("mkdtemp for the recovery run", false);
        break;
      }
      serve::DurableOptions durable_options;
      durable_options.dir = dir_cstr;
      durable_options.snapshot_every = snapshot_every;
      {
        serve::Daemon daemon(net, ladder_options(4));
        serve::Durable durable(daemon, durable_options);
        for (const serve::Request& request : script.requests) {
          durable.submit(request);
        }
        // Crash: the Durable goes out of scope without finish() — exactly
        // the state a SIGKILL leaves on disk (WAL complete, batch open).
      }
      serve::Daemon daemon(net, ladder_options(4));
      const auto start = std::chrono::steady_clock::now();
      serve::Durable recovered(daemon, durable_options);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      ok &= bench::shape_check("restart found state to recover",
                               recovered.recovered());
      recovered.finish();
      ok &= bench::shape_check(
          "recovered decision log identical to the uninterrupted run",
          recovered.full_decision_log() == reference_log);
      if (snapshot_every == 0) {
        replayed_plain = recovered.replayed();
      } else {
        replayed_snap = recovered.replayed();
      }
      records.push_back(
          {"recovery/snapshot_every=" + std::to_string(snapshot_every),
           {{"wal_records", static_cast<double>(script.requests.size())},
            {"replayed_records", static_cast<double>(recovered.replayed())},
            {"recovery_seconds", seconds}},
           {}});
      std::filesystem::remove_all(dir_cstr);
    }
    ok &= bench::shape_check("snapshots shorten the recovery replay",
                             replayed_snap < replayed_plain);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const std::string path = util::write_bench_json(
      "serve", records,
      {{"hardware_concurrency", std::to_string(hw), /*raw=*/true},
       {"insufficient_cores", hw < 2 ? "true" : "false", /*raw=*/true},
       {"requests_per_run", std::to_string(requests), /*raw=*/true},
       {"instance", "paper_instance(seed=2007)"},
       {"pipeline", "gradient (ladder), distributed (determinism check)"},
       {"mode", smoke ? "smoke" : "full"}});
  std::printf("wrote %s\n", path.c_str());

  if (!ok) {
    std::fprintf(stderr, "shape checks FAILED\n");
    return 1;
  }
  std::printf("shape checks passed\n");
  return 0;
}
