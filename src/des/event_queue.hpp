#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace maxutil::des {

/// Simulation clock time (seconds of simulated time).
using SimTime = double;

/// Discrete-event scheduler: a time-ordered queue of closures.
///
/// Ties break by insertion order (FIFO), which keeps runs deterministic for
/// a fixed seed. Handlers may schedule further events; `run_until` drains
/// the queue up to a horizon.
class EventQueue {
 public:
  /// Schedules `handler` at absolute time `at` (must be >= now()).
  void schedule(SimTime at, std::function<void()> handler);

  /// Schedules `handler` `delay` seconds from now.
  void schedule_in(SimTime delay, std::function<void()> handler);

  /// Current simulation time (the timestamp of the last handled event).
  SimTime now() const { return now_; }

  /// Number of events still pending.
  std::size_t pending() const { return heap_.size(); }

  /// Executes events in time order until the queue is empty or the next
  /// event lies beyond `horizon`. Returns the number of events executed.
  std::size_t run_until(SimTime horizon);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace maxutil::des
