#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "stream/model.hpp"

namespace maxutil::xform {

class ExtendedGraph;

using maxutil::graph::EdgeId;
using maxutil::graph::NodeId;
using maxutil::stream::CommodityId;

/// Precomputed per-commodity view of the extended graph: for every commodity
/// j, the usable subgraph as flat CSR arrays in topological order, replacing
/// the `usable(j, e)` full-scan idiom of the pre-index code.
///
/// **Slots.** Each usable (commodity, edge) pair owns one *slot*; slots are
/// laid out commodity-major, and within a commodity grouped by tail node in
/// the commodity's topological node order, with a node's out-edges in
/// `Digraph::out_edges` insertion order. That layout makes the out-CSR
/// contiguous — `out_begin(local)..out_end(local)` is a slot *range* — and
/// makes a commodity-major slot sweep visit edges in exactly the order the
/// old `topological_sort + usable(j, e)` sweeps did, so converted consumers
/// accumulate floating-point sums in the identical order (bit-parity).
///
/// **Local nodes.** Each node a commodity can carry gets a flat local index
/// in `node_begin(j)..node_end(j)`, stored in the same topological order the
/// global filtered Kahn sort produced (ties broken by increasing global id);
/// `node(local)` maps back to the global id. Per-commodity state (traffic t,
/// marginals) lives in flat arrays indexed by local node.
///
/// **Lookups.** `slot_of(j, e)` is an O(1) open-addressing probe returning
/// `kNoSlot` for unusable pairs; `local_of(j, v)` is a binary search over the
/// commodity's nodes sorted by global id. Transposed CSRs answer the reverse
/// questions — `edge_commodities_*` lists the (commodity, slot) pairs of a
/// global edge and `node_commodities_*` the (commodity, local) pairs of a
/// global node, both in ascending commodity order.
///
/// Built once inside the ExtendedGraph constructor in O(J·L) probe time plus
/// O(sum of usable subgraph sizes); shared by shared_ptr so routing/flow
/// snapshots stay valid after their originating graph is gone.
class CommodityIndex {
 public:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  explicit CommodityIndex(const ExtendedGraph& xg);

  std::size_t commodity_count() const { return edge_offset_.size() - 1; }
  std::size_t global_node_count() const { return global_nodes_; }
  std::size_t global_edge_count() const { return global_edges_; }
  /// Total usable (commodity, edge) pairs = sum of per-commodity edge counts.
  std::size_t slot_count() const { return edge_.size(); }
  /// Total (commodity, node) pairs = sum of per-commodity node counts.
  std::size_t local_node_count() const { return node_.size(); }

  // --- Per-commodity flat ranges ---
  std::size_t edge_begin(CommodityId j) const { return edge_offset_[j]; }
  std::size_t edge_end(CommodityId j) const { return edge_offset_[j + 1]; }
  std::size_t node_begin(CommodityId j) const { return node_offset_[j]; }
  std::size_t node_end(CommodityId j) const { return node_offset_[j + 1]; }

  // --- Per-slot cached edge data ---
  EdgeId edge(std::size_t slot) const { return edge_[slot]; }
  /// Flat local index of the edge's head within the owning commodity.
  std::size_t head_local(std::size_t slot) const { return head_local_[slot]; }
  double beta(std::size_t slot) const { return beta_[slot]; }
  double cost_rate(std::size_t slot) const { return cost_rate_[slot]; }

  // --- Local nodes (flat), in per-commodity topological order ---
  NodeId node(std::size_t local) const { return node_[local]; }
  std::size_t out_begin(std::size_t local) const { return out_begin_[local]; }
  std::size_t out_end(std::size_t local) const {
    return out_begin_[local + 1];
  }
  std::size_t in_begin(std::size_t local) const { return in_begin_[local]; }
  std::size_t in_end(std::size_t local) const { return in_begin_[local + 1]; }
  /// Slot of the k-th usable in-edge (in `Digraph::in_edges` order).
  std::size_t in_slot(std::size_t k) const { return in_slot_[k]; }

  // --- Per-commodity structure ---
  std::size_t sink_local(CommodityId j) const { return sink_local_[j]; }
  std::size_t dummy_source_local(CommodityId j) const {
    return dummy_source_local_[j];
  }
  std::size_t dummy_input_slot(CommodityId j) const {
    return dummy_input_slot_[j];
  }
  std::size_t dummy_difference_slot(CommodityId j) const {
    return dummy_difference_slot_[j];
  }

  /// Slot of commodity j's k-th usable edge in ascending global-edge-id
  /// order (k in 0..edge_end(j)-edge_begin(j)) — the enumeration order the
  /// LP polytope uses for its variables.
  std::size_t slot_by_id(CommodityId j, std::size_t k) const {
    return slot_by_id_[edge_offset_[j] + k];
  }
  /// Inverse of slot_by_id: the slot's rank in its commodity's ascending
  /// global-edge-id enumeration.
  std::size_t id_rank(std::size_t slot) const { return id_rank_[slot]; }

  /// O(1): the slot of (j, e), or kNoSlot when e is not usable by j.
  std::size_t slot_of(CommodityId j, EdgeId e) const;

  /// Flat local index of global node v for commodity j, or kNoSlot when v is
  /// not in the commodity's node set. O(log |nodes(j)|).
  std::size_t local_of(CommodityId j, NodeId v) const;

  /// Commodity j's nodes in increasing global id (the pre-index
  /// `commodity_nodes` order): global id and flat local index of the k-th,
  /// for k in node_begin(j)..node_end(j).
  NodeId node_sorted(std::size_t k) const { return node_sorted_[k]; }
  std::size_t sorted_local(std::size_t k) const { return sorted_local_[k]; }

  // --- Transpose: global edge -> (commodity, slot), ascending commodity ---
  std::size_t edge_commodities_begin(EdgeId e) const {
    return edge_t_offset_[e];
  }
  std::size_t edge_commodities_end(EdgeId e) const {
    return edge_t_offset_[e + 1];
  }
  CommodityId edge_commodity(std::size_t k) const {
    return edge_t_commodity_[k];
  }
  std::size_t edge_commodity_slot(std::size_t k) const {
    return edge_t_slot_[k];
  }

  // --- Transpose: global node -> (commodity, local), ascending commodity ---
  std::size_t node_commodities_begin(NodeId v) const {
    return node_t_offset_[v];
  }
  std::size_t node_commodities_end(NodeId v) const {
    return node_t_offset_[v + 1];
  }
  CommodityId node_commodity(std::size_t k) const {
    return node_t_commodity_[k];
  }
  std::size_t node_commodity_local(std::size_t k) const {
    return node_t_local_[k];
  }

  /// Longest usable path (edge count) of commodity j's subgraph — the depth
  /// bound the fault-tolerant runtime uses for its patience windows.
  std::size_t depth(CommodityId j) const { return depth_[j]; }

 private:
  void insert_slot_key(std::uint64_t key, std::size_t slot);

  std::size_t global_nodes_ = 0;
  std::size_t global_edges_ = 0;

  // Per-commodity offsets into the flat slot / local-node arrays (size J+1).
  std::vector<std::size_t> edge_offset_;
  std::vector<std::size_t> node_offset_;

  // Per-slot arrays (size slot_count()).
  std::vector<EdgeId> edge_;
  std::vector<std::size_t> head_local_;
  std::vector<double> beta_;
  std::vector<double> cost_rate_;
  std::vector<std::size_t> slot_by_id_;
  std::vector<std::size_t> id_rank_;

  // Per-local-node arrays (size local_node_count(), +1 for CSR begins).
  std::vector<NodeId> node_;
  std::vector<NodeId> node_sorted_;
  std::vector<std::size_t> sorted_local_;
  std::vector<std::size_t> out_begin_;
  std::vector<std::size_t> in_begin_;
  std::vector<std::size_t> in_slot_;

  // Per-commodity scalars.
  std::vector<std::size_t> sink_local_;
  std::vector<std::size_t> dummy_source_local_;
  std::vector<std::size_t> dummy_input_slot_;
  std::vector<std::size_t> dummy_difference_slot_;
  std::vector<std::size_t> depth_;

  // Transposed CSRs.
  std::vector<std::size_t> edge_t_offset_;
  std::vector<CommodityId> edge_t_commodity_;
  std::vector<std::size_t> edge_t_slot_;
  std::vector<std::size_t> node_t_offset_;
  std::vector<CommodityId> node_t_commodity_;
  std::vector<std::size_t> node_t_local_;

  // Open-addressing (j, e) -> slot map: power-of-two table, linear probing.
  std::vector<std::uint64_t> hash_key_;
  std::vector<std::size_t> hash_slot_;
  std::uint64_t hash_mask_ = 0;
};

}  // namespace maxutil::xform
