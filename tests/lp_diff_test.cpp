// Differential harness: the sparse revised simplex (lp::solve_revised) vs
// the dense tableau (lp::solve) on the same LpProblem. Two generators feed
// it — seeded random raw LPs that sweep the awkward corners of the
// bounded-variable form (free/fixed/upper-only variables, equality rows,
// infeasible and unbounded instances, degenerate vertices), and flow
// polytopes of gen::random_instance networks (the LP family the solver
// exists for). On every case the two backends must agree on status; on
// optimal cases the objectives must match within 1e-6 * (1 + |obj|) and the
// sparse x must be primal-feasible. Well over 200 cases total.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/random_instance.hpp"
#include "lp/model.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

namespace {

using namespace maxutil;
using lp::LpProblem;
using lp::LpStatus;
using lp::Relation;
using lp::Sense;

/// Runs both backends and checks the differential contract. `tag` labels
/// the failing case for reproduction.
void expect_backends_agree(const LpProblem& problem, const std::string& tag) {
  const auto dense = lp::solve(problem);
  const auto sparse = lp::solve_revised(problem);

  ASSERT_EQ(sparse.status, dense.status) << tag;
  if (dense.status != LpStatus::kOptimal) return;

  const double tol = 1e-6 * (1.0 + std::abs(dense.objective));
  EXPECT_NEAR(sparse.objective, dense.objective, tol) << tag;
  ASSERT_EQ(sparse.x.size(), problem.variable_count()) << tag;
  EXPECT_LE(problem.max_violation(sparse.x), 1e-6) << tag;
  // The claimed objective must be the objective of the returned point.
  EXPECT_NEAR(problem.objective_value(sparse.x), sparse.objective, 1e-9) << tag;
  // Duals must exist for every row under both backends.
  EXPECT_EQ(sparse.duals.size(), problem.constraint_count()) << tag;
  EXPECT_EQ(dense.duals.size(), problem.constraint_count()) << tag;
}

/// A random raw LP that deliberately hits every variable/row shape the
/// bounded-variable simplex distinguishes. Integer-leaning coefficients
/// keep the instances away from tolerance borderlines, so the two backends
/// cannot legitimately disagree on status. `boxed` forces a finite box on
/// every variable (boundedness guaranteed, so the sweep gets a healthy
/// share of optimal cases alongside the wild infeasible/unbounded mix).
LpProblem random_raw_lp(util::Rng& rng, bool boxed) {
  LpProblem p;
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 10));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 8));
  p.set_sense(rng.chance(0.5) ? Sense::kMaximize : Sense::kMinimize);

  for (std::size_t j = 0; j < n; ++j) {
    const double c = static_cast<double>(rng.uniform_int(-5, 5));
    double lower = 0.0, upper = lp::kInfinity;
    switch (boxed ? 3 : rng.uniform_int(0, 9)) {
      case 0:  // free
        lower = -lp::kInfinity;
        break;
      case 1:  // upper-bounded only
        lower = -lp::kInfinity;
        upper = static_cast<double>(rng.uniform_int(0, 10));
        break;
      case 2: {  // fixed
        const double v = static_cast<double>(rng.uniform_int(-3, 3));
        lower = upper = v;
        break;
      }
      case 3:  // boxed
      case 4:
        lower = static_cast<double>(rng.uniform_int(-5, 0));
        upper = lower + static_cast<double>(rng.uniform_int(0, 10));
        break;
      default:  // standard [0, inf)
        break;
    }
    p.add_variable("x" + std::to_string(j), lower, upper, c);
  }

  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::pair<lp::VarId, double>> terms;
    for (std::size_t j = 0; j < n; ++j) {
      if (!rng.chance(0.6)) continue;
      const double a = static_cast<double>(rng.uniform_int(-4, 4));
      if (a != 0.0) terms.emplace_back(j, a);
    }
    if (terms.empty()) terms.emplace_back(rng.index(n), 1.0);
    const Relation rel = rng.chance(0.2)   ? Relation::kEq
                         : rng.chance(0.5) ? Relation::kLessEq
                                           : Relation::kGreaterEq;
    const double rhs = static_cast<double>(rng.uniform_int(-10, 20));
    p.add_constraint(std::move(terms), rel, rhs);
  }
  return p;
}

// ------------------------------------------------------------ raw LP sweep

TEST(LpDiff, RandomRawLpsAgree) {
  // 240 seeded random LPs: two thirds wild (every variable shape, all three
  // relations — most come out infeasible or unbounded) and one third boxed
  // (finite boxes guarantee boundedness, so plenty of optimal pivoting
  // happens too). The mix is asserted below so the sweep cannot silently
  // degenerate to a single status class.
  std::size_t optimal = 0, infeasible = 0, unbounded = 0;
  for (std::uint64_t seed = 1; seed <= 240; ++seed) {
    util::Rng rng(seed * 7919);
    const LpProblem p = random_raw_lp(rng, seed % 3 == 0);
    expect_backends_agree(p, "raw seed " + std::to_string(seed));
    switch (lp::solve(p).status) {
      case LpStatus::kOptimal: ++optimal; break;
      case LpStatus::kInfeasible: ++infeasible; break;
      case LpStatus::kUnbounded: ++unbounded; break;
      default: break;
    }
  }
  EXPECT_GE(optimal, 40u);
  EXPECT_GE(infeasible, 30u);
  EXPECT_GE(unbounded, 10u);
}

// ------------------------------------------------------- structured corners

TEST(LpDiff, InfeasibleByBoundsAndRows) {
  {
    LpProblem p;  // x <= 1 and x >= 2 cannot both hold
    const auto x = p.add_variable("x", 0.0, 10.0, 1.0);
    p.add_constraint({{x, 1.0}}, Relation::kLessEq, 1.0);
    p.add_constraint({{x, 1.0}}, Relation::kGreaterEq, 2.0);
    expect_backends_agree(p, "infeasible rows");
  }
  {
    LpProblem p;  // equality out of reach of the variable box
    const auto x = p.add_variable("x", 0.0, 1.0);
    const auto y = p.add_variable("y", 0.0, 1.0);
    p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
    expect_backends_agree(p, "infeasible eq");
  }
}

TEST(LpDiff, UnboundedDirections) {
  {
    LpProblem p;  // max x with no upper limit
    p.set_sense(Sense::kMaximize);
    const auto x = p.add_variable("x", 0.0, lp::kInfinity, 1.0);
    const auto y = p.add_variable("y");
    p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kLessEq, 1.0);
    expect_backends_agree(p, "unbounded ray");
  }
  {
    LpProblem p;  // min over a free variable with no binding row
    const auto f = p.add_variable("f", -lp::kInfinity, lp::kInfinity, 1.0);
    const auto x = p.add_variable("x");
    p.add_constraint({{x, 1.0}}, Relation::kLessEq, 4.0);
    (void)f;
    expect_backends_agree(p, "unbounded free");
  }
}

TEST(LpDiff, FreeAndFixedVariables) {
  {
    LpProblem p;  // free variable pinned only by an equality
    p.set_sense(Sense::kMaximize);
    const auto f = p.add_variable("f", -lp::kInfinity, lp::kInfinity, 1.0);
    const auto x = p.add_variable("x", 0.0, 3.0);
    p.add_constraint({{f, 1.0}, {x, -2.0}}, Relation::kEq, -1.0);
    expect_backends_agree(p, "free via eq");
  }
  {
    LpProblem p;  // fixed variable shifts the effective rhs
    const auto k = p.add_variable("k", 2.0, 2.0);
    const auto x = p.add_variable("x", 0.0, lp::kInfinity, 1.0);
    p.add_constraint({{k, 3.0}, {x, 1.0}}, Relation::kGreaterEq, 10.0);
    expect_backends_agree(p, "fixed shift");
  }
  {
    LpProblem p;  // all variables fixed: feasibility is a pure check
    const auto a = p.add_variable("a", 1.0, 1.0, 5.0);
    const auto b = p.add_variable("b", -2.0, -2.0, 1.0);
    p.add_constraint({{a, 1.0}, {b, 1.0}}, Relation::kLessEq, 0.0);
    expect_backends_agree(p, "all fixed");
  }
}

TEST(LpDiff, DegenerateVertices) {
  {
    // Three redundant rows meet at the same vertex; the dense and sparse
    // pivots walk different degenerate bases to the same objective.
    LpProblem p;
    p.set_sense(Sense::kMaximize);
    const auto x = p.add_variable("x", 0.0, lp::kInfinity, 1.0);
    const auto y = p.add_variable("y", 0.0, lp::kInfinity, 1.0);
    p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEq, 4.0);
    p.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kLessEq, 8.0);
    p.add_constraint({{x, 3.0}, {y, 3.0}}, Relation::kLessEq, 12.0);
    expect_backends_agree(p, "redundant rows");
  }
  {
    // Beale's classic cycling example: Dantzig pricing cycles without the
    // stall watchdog; both backends must terminate at -0.05.
    LpProblem p;
    const auto x1 = p.add_variable("x1", 0.0, lp::kInfinity, -0.75);
    const auto x2 = p.add_variable("x2", 0.0, lp::kInfinity, 150.0);
    const auto x3 = p.add_variable("x3", 0.0, lp::kInfinity, -0.02);
    const auto x4 = p.add_variable("x4", 0.0, lp::kInfinity, 6.0);
    p.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                     Relation::kLessEq, 0.0);
    p.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                     Relation::kLessEq, 0.0);
    p.add_constraint({{x3, 1.0}}, Relation::kLessEq, 1.0);
    expect_backends_agree(p, "beale");
    const auto sparse = lp::solve_revised(p);
    EXPECT_NEAR(sparse.objective, -0.05, 1e-9);
  }
}

TEST(LpDiff, DualsAgreeOnTextbookInstances) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: duals (0, 1.5, 1).
  LpProblem p;
  p.set_sense(Sense::kMaximize);
  const auto x = p.add_variable("x", 0.0, lp::kInfinity, 3.0);
  const auto y = p.add_variable("y", 0.0, lp::kInfinity, 5.0);
  p.add_constraint({{x, 1.0}}, Relation::kLessEq, 4.0);
  p.add_constraint({{y, 2.0}}, Relation::kLessEq, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEq, 18.0);
  const auto sparse = lp::solve_revised(p);
  ASSERT_EQ(sparse.status, LpStatus::kOptimal);
  ASSERT_EQ(sparse.duals.size(), 3u);
  EXPECT_NEAR(sparse.duals[0], 0.0, 1e-9);
  EXPECT_NEAR(sparse.duals[1], 1.5, 1e-9);
  EXPECT_NEAR(sparse.duals[2], 1.0, 1e-9);

  // min 2x s.t. x >= 3: tightening rhs by 1 costs 2.
  LpProblem q;
  const auto z = q.add_variable("z", 0.0, lp::kInfinity, 2.0);
  q.add_constraint({{z, 1.0}}, Relation::kGreaterEq, 3.0);
  const auto qsol = lp::solve_revised(q);
  ASSERT_EQ(qsol.status, LpStatus::kOptimal);
  ASSERT_EQ(qsol.duals.size(), 1u);
  EXPECT_NEAR(qsol.duals[0], 2.0, 1e-9);
}

// -------------------------------------------------------- polytope LP sweep

/// Builds the max-throughput LP of a random stream network: the flow
/// polytope with the linear utility objective on the admitted rates.
lp::LpProblem polytope_lp(const stream::StreamNetwork& net) {
  const xform::ExtendedGraph xg(net);
  xform::FlowPolytope polytope = xform::build_flow_polytope(xg);
  polytope.problem.set_sense(Sense::kMaximize);
  for (std::size_t j = 0; j < net.commodity_count(); ++j) {
    polytope.problem.set_objective_coefficient(polytope.admitted_var[j],
                                               net.utility(j).weight());
  }
  return std::move(polytope.problem);
}

TEST(LpDiff, FlowPolytopesAgree) {
  // 48 network LPs: 16 seeds x 3 shapes (the instance family this backend
  // was built for — equality flow-balance rows plus capacity rows).
  struct Shape {
    std::size_t servers, commodities, stages;
  };
  const Shape shapes[] = {{8, 1, 2}, {12, 2, 3}, {18, 3, 3}};
  for (const Shape& shape : shapes) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      util::Rng rng(seed * 104729 + shape.servers);
      gen::RandomInstanceParams params;
      params.servers = shape.servers;
      params.commodities = shape.commodities;
      params.stages = shape.stages;
      const auto net = gen::random_instance(params, rng);
      expect_backends_agree(
          polytope_lp(net),
          "polytope servers=" + std::to_string(shape.servers) +
              " seed=" + std::to_string(seed));
    }
  }
}

TEST(LpDiff, WarmStartReachesTheSameOptimum) {
  // Solve a polytope LP cold, then re-solve warm from the returned basis
  // after perturbing the objective: the warm solve must still match the
  // dense answer on the perturbed problem, in (far) fewer pivots.
  util::Rng rng(20260808);
  gen::RandomInstanceParams params;
  params.servers = 14;
  params.commodities = 2;
  params.stages = 3;
  const auto net = gen::random_instance(params, rng);
  lp::LpProblem p = polytope_lp(net);

  lp::SimplexBasis basis;
  const auto cold = lp::solve_revised(p, {}, &basis);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  ASSERT_FALSE(basis.empty());

  // Nudge one commodity's weight: the previous basis stays near-optimal.
  const xform::ExtendedGraph xg(net);
  const auto polytope = xform::build_flow_polytope(xg);
  p.set_objective_coefficient(polytope.admitted_var[0], 1.25);
  const auto dense = lp::solve(p);
  const auto warm = lp::solve_revised(p, {}, &basis);
  ASSERT_EQ(warm.status, dense.status);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, dense.objective,
              1e-6 * (1.0 + std::abs(dense.objective)));
  EXPECT_LT(warm.iterations, cold.iterations);
}

}  // namespace
