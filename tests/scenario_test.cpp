#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "gen/figure1.hpp"
#include "gen/random_instance.hpp"
#include "scenario/scenario.hpp"
#include "stream/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;

const char* kTiny = R"(
# a tiny pipeline
server a 10
server b 20      # the filter
sink t
link a b 5
link b t 6
commodity feed a t 8 linear
use feed a b 2
use feed b t 1
potential feed b 0.5
potential feed t 0.5
)";

TEST(Scenario, ParsesTinyPipeline) {
  const StreamNetwork net = maxutil::scenario::parse_string(kTiny);
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.link_count(), 2u);
  ASSERT_EQ(net.commodity_count(), 1u);
  EXPECT_EQ(net.node_name(0), "a");
  EXPECT_DOUBLE_EQ(net.capacity(1), 20.0);
  EXPECT_TRUE(net.is_sink(2));
  EXPECT_DOUBLE_EQ(net.bandwidth(0), 5.0);
  EXPECT_DOUBLE_EQ(net.lambda(0), 8.0);
  EXPECT_TRUE(net.utility(0).is_linear());
  EXPECT_DOUBLE_EQ(net.consumption(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(net.shrinkage(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(net.shrinkage(0, 1), 1.0);
  EXPECT_TRUE(maxutil::stream::validate(net).ok());
}

TEST(Scenario, UtilityTokens) {
  EXPECT_TRUE(maxutil::scenario::parse_utility("linear").is_linear());
  EXPECT_DOUBLE_EQ(maxutil::scenario::parse_utility("linear*2.5").weight(), 2.5);
  EXPECT_EQ(maxutil::scenario::parse_utility("log").family(),
            Utility::Family::kLog);
  EXPECT_EQ(maxutil::scenario::parse_utility("sqrt*3").family(),
            Utility::Family::kSqrt);
  const Utility alpha = maxutil::scenario::parse_utility("alpha2*0.5");
  EXPECT_EQ(alpha.family(), Utility::Family::kAlphaFair);
  EXPECT_DOUBLE_EQ(alpha.alpha(), 2.0);
  EXPECT_DOUBLE_EQ(alpha.weight(), 0.5);
  EXPECT_THROW(maxutil::scenario::parse_utility("cubic"), CheckError);
  EXPECT_THROW(maxutil::scenario::parse_utility("linear*x"), CheckError);
  EXPECT_THROW(maxutil::scenario::parse_utility("alphaX"), CheckError);
}

TEST(Scenario, UtilityTokenRoundTrip) {
  for (const Utility u :
       {Utility::linear(), Utility::linear(2.0), Utility::logarithmic(3.0),
        Utility::square_root(), Utility::alpha_fair(2.0, 0.5)}) {
    const Utility parsed =
        maxutil::scenario::parse_utility(maxutil::scenario::utility_token(u));
    EXPECT_EQ(parsed.family(), u.family());
    EXPECT_DOUBLE_EQ(parsed.weight(), u.weight());
    EXPECT_NEAR(parsed.value(3.7), u.value(3.7), 1e-12);
  }
}

TEST(Scenario, ParseErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* text, const char* fragment) {
    try {
      maxutil::scenario::parse_string(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << text;
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("server a\n", "expects 2 arguments");
  expect_error("frobnicate x\n", "unknown keyword");
  expect_error("server a ten\n", "expected a number");
  expect_error("server a 1\nserver a 2\n", "duplicate node");
  expect_error("link a b 1\n", "unknown node");
  expect_error("server a 1\nsink t\nuse c a t 1\n", "unknown commodity");
  expect_error("server a 1\nsink t\nlink a t 1\n"
               "commodity c a t 5 linear\nuse c t a 1\n",
               "no link");
  expect_error("server a 1\nsink t\nlink a t 1\n"
               "commodity c a t 5 cubic\n",
               "unknown utility");
  // Model-layer rule violations are also tagged with the line.
  expect_error("server a 0\n", "line 1");
}

TEST(Scenario, RoundTripPreservesNetwork) {
  maxutil::util::Rng rng(33);
  maxutil::gen::RandomInstanceParams p;
  p.servers = 12;
  p.commodities = 2;
  p.stages = 3;
  const StreamNetwork net = maxutil::gen::random_instance(p, rng);
  const std::string text = maxutil::scenario::write_string(net);
  const StreamNetwork back = maxutil::scenario::parse_string(text);

  ASSERT_EQ(back.node_count(), net.node_count());
  ASSERT_EQ(back.link_count(), net.link_count());
  ASSERT_EQ(back.commodity_count(), net.commodity_count());
  for (maxutil::stream::NodeId n = 0; n < net.node_count(); ++n) {
    EXPECT_EQ(back.node_name(n), net.node_name(n));
    EXPECT_EQ(back.is_sink(n), net.is_sink(n));
    if (!net.is_sink(n)) {
      EXPECT_DOUBLE_EQ(back.capacity(n), net.capacity(n));
    }
  }
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    EXPECT_DOUBLE_EQ(back.bandwidth(l), net.bandwidth(l));
    for (std::size_t j = 0; j < net.commodity_count(); ++j) {
      ASSERT_EQ(back.uses_link(j, l), net.uses_link(j, l));
      if (net.uses_link(j, l)) {
        EXPECT_DOUBLE_EQ(back.consumption(j, l), net.consumption(j, l));
        EXPECT_DOUBLE_EQ(back.shrinkage(j, l), net.shrinkage(j, l));
      }
    }
  }
  for (std::size_t j = 0; j < net.commodity_count(); ++j) {
    EXPECT_DOUBLE_EQ(back.lambda(j), net.lambda(j));
    EXPECT_EQ(back.source(j), net.source(j));
    EXPECT_EQ(back.sink(j), net.sink(j));
    EXPECT_NEAR(back.delivery_gain(j), net.delivery_gain(j), 1e-12);
  }
}

TEST(Scenario, WriteRejectsUnrepresentableNames) {
  // Figure-1 node names contain spaces ("Server 1"), which the
  // whitespace-delimited format cannot express: writing fails loudly
  // instead of producing a file that parses into a different network.
  const StreamNetwork net = maxutil::gen::figure1_example();
  EXPECT_THROW(maxutil::scenario::write_string(net), CheckError);
}

TEST(Scenario, LoadFileMissing) {
  EXPECT_THROW(maxutil::scenario::load_file("/no/such/file.maxutil"),
               CheckError);
}

}  // namespace
