#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace maxutil::ctrl {

/// One topology-churn event kind (docs/CONTROLLER.md §2).
enum class ChurnEventKind {
  kCrash,     // crash=NODE@T       : fail-stop a server (reversible)
  kRestore,   // restore=NODE@T     : bring a crashed server back
  kCapScale,  // cap=NODE*F@T       : scale computing power to F * current
  kBwScale,   // bw=FROM-TO*F@T     : scale every FROM->TO link's bandwidth
  kArrive,    // arrive=J@T, arrive=J*F@T : (re-)admit commodity J, lambda*F
  kDepart,    // depart=J@T         : withdraw commodity J
};

const char* to_string(ChurnEventKind kind);

/// One parsed event. Entity fields name *baseline* entities (the network the
/// controller was constructed with): node/commodity names, or decimal ids.
/// Which fields are meaningful depends on `kind`.
struct ChurnEvent {
  ChurnEventKind kind = ChurnEventKind::kCrash;
  std::size_t time = 0;    // virtual event time (the @T suffix)
  std::string node;        // crash / restore / cap
  std::string from, to;    // bw endpoints
  std::string commodity;   // arrive / depart
  double factor = 1.0;     // cap / bw / arrive lambda factor

  /// The event in spec form, e.g. "cap=relay*0.5@3".
  std::string describe() const;
};

/// A scripted, deterministic churn sequence: the controller replays it
/// event by event, re-optimizing after each. Parsed from the comma-separated
/// grammar above (same shape as the PR-2 fault grammar); events are kept in
/// stable time order, so same-time events apply in spec order.
struct ChurnPlan {
  std::vector<ChurnEvent> events;

  bool empty() const { return events.empty(); }

  /// Entity-independent checks (factors positive and finite, non-empty
  /// names); entity resolution happens in the controller against its
  /// baseline network.
  void validate() const;

  /// The plan in canonical spec form.
  std::string describe() const;
};

/// Parses "crash=n2@1,restore=n2@4,cap=relay*0.5@6,...". Throws
/// util::CheckError naming the offending entry on any malformed input
/// (unknown key, missing @T, bad number, empty entity). The empty spec is an
/// empty plan.
ChurnPlan parse_churn_plan(const std::string& spec);

}  // namespace maxutil::ctrl
