// Capacity planning with shadow prices: where is the system constrained,
// and what is one more unit of capacity worth? The LP reference exposes the
// exact capacity duals; the running gradient optimizer exposes the same
// economics *distributedly* through the barrier's marginal prices
// (eps * D'(f), local at every node). Both point at the same node to
// upgrade, and the predicted utility gain (price x delta-capacity) matches a
// re-solve.

#include <cstdio>
#include <iostream>

#include "core/bottleneck.hpp"
#include "core/optimizer.hpp"
#include "gen/random_instance.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xform/extended_graph.hpp"
#include "xform/lp_reference.hpp"

int main() {
  using namespace maxutil;

  util::Rng rng(2007);
  gen::RandomInstanceParams params;
  params.servers = 20;
  params.commodities = 3;
  params.stages = 3;
  auto net = gen::random_instance(params, rng);

  xform::PenaltyConfig penalty;
  penalty.epsilon = 0.02;  // small eps: barrier prices approach LP duals
  const xform::ExtendedGraph xg(net, penalty);

  const auto reference = xform::solve_reference(xg);
  core::GradientOptions options;
  options.eta = 0.05;
  options.record_history = false;
  options.max_iterations = 20000;
  core::GradientOptimizer optimizer(xg, options);
  optimizer.run();

  std::printf("capacity planning on a contended 20-server instance"
              " (utility: gradient %.3f, LP %.3f)\n\n",
              optimizer.utility(), reference.optimal_utility);

  const auto report = core::bottleneck_report(xg, optimizer.flows(), 5);
  util::Table table({"rank", "resource", "utilization", "barrier price",
                     "LP shadow price"});
  for (std::size_t i = 0; i < report.size(); ++i) {
    const auto& entry = report[i];
    table.add_row({util::Table::cell(static_cast<long long>(i + 1)),
                   xg.node_label(entry.node),
                   util::Table::cell(100.0 * entry.utilization, 1) + "%",
                   util::Table::cell(entry.price, 4),
                   util::Table::cell(reference.node_shadow_price[entry.node], 4)});
  }
  table.print(std::cout);

  // "What if we upgrade the top bottleneck by 20%?" — the dual predicts the
  // utility gain to first order.
  const auto& top = report.front();
  const double price = reference.node_shadow_price[top.node];
  const double old_capacity = xg.capacity(top.node);
  const double delta = 0.2 * old_capacity;

  // Apply the upgrade on the physical network (server or link).
  if (xg.node_kind(top.node) == xform::NodeKind::kBandwidth) {
    std::printf("\n(top bottleneck is a link; upgrading its bandwidth)\n");
  }
  // Rebuild the network with the upgraded capacity.
  stream::StreamNetwork upgraded;
  {
    const auto& g = net.graph();
    for (stream::NodeId n = 0; n < net.node_count(); ++n) {
      if (net.is_sink(n)) {
        upgraded.add_sink(net.node_name(n));
      } else {
        double capacity = net.capacity(n);
        if (xg.node_kind(top.node) == xform::NodeKind::kServer &&
            xg.physical_node(top.node) == n) {
          capacity += delta;
        }
        upgraded.add_server(net.node_name(n), capacity);
      }
    }
    for (std::size_t l = 0; l < net.link_count(); ++l) {
      double bandwidth = net.bandwidth(l);
      if (xg.node_kind(top.node) == xform::NodeKind::kBandwidth &&
          xg.physical_link_of_bandwidth_node(top.node) == l) {
        bandwidth += delta;
      }
      upgraded.add_link(g.tail(l), g.head(l), bandwidth);
    }
    for (std::size_t j = 0; j < net.commodity_count(); ++j) {
      upgraded.add_commodity(net.commodity_name(j), net.source(j), net.sink(j),
                             net.lambda(j), net.utility(j));
      for (std::size_t l = 0; l < net.link_count(); ++l) {
        if (net.uses_link(j, l)) {
          upgraded.enable_link(j, l, net.consumption(j, l));
        }
      }
      for (stream::NodeId n = 0; n < net.node_count(); ++n) {
        upgraded.set_potential(j, n, net.potential(j, n));
      }
    }
  }
  const xform::ExtendedGraph xg2(upgraded, penalty);
  const auto upgraded_reference = xform::solve_reference(xg2);

  const double predicted = price * delta;
  const double actual =
      upgraded_reference.optimal_utility - reference.optimal_utility;
  std::printf("\nupgrade '%s' by %.2f units of capacity:\n",
              xg.node_label(top.node).c_str(), delta);
  std::printf("  shadow-price prediction: +%.4f utility\n", predicted);
  std::printf("  actual LP re-solve:      +%.4f utility\n", actual);
  std::printf("\nThe dual predicts the gain to first order (it overestimates"
              " once the upgrade is large enough that the bottleneck moves"
              " elsewhere) — and the *distributed* barrier prices identified"
              " the same resource without any centralized solve.\n");
  return 0;
}
