#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::xform {

/// Which simplex implementation solves the reference LP.
enum class LpBackend {
  kDense,   // lp::solve — dense two-phase tableau (reference implementation)
  kSparse,  // lp::solve_revised — sparse revised simplex, warm-startable
};

/// Options for the centralized LP reference solve.
struct ReferenceOptions {
  /// Piecewise-linear segments used per non-linear utility (linear utilities
  /// are encoded exactly). More segments shrink the concave-approximation
  /// gap at the cost of LP size.
  std::size_t pwl_segments = 200;
  lp::SimplexOptions simplex;
  /// Backend selection. Both produce the same statuses, objectives (within
  /// tolerance) and dual conventions; kSparse scales to instances whose
  /// dense tableau would not fit in memory and supports warm starts.
  LpBackend backend = LpBackend::kDense;
  /// Knobs for the kSparse backend (ignored by kDense).
  lp::RevisedSimplexOptions revised;
  /// Optional warm-start basis for kSparse: when non-null, a previous basis
  /// is adopted on entry and the final basis is written back, so repeated
  /// solves of a drifting instance (churn, admission batches) re-pivot from
  /// the last optimum. The basis is only portable across solves whose
  /// polytope has identical variable/constraint layout; a mismatched basis
  /// is ignored.
  lp::SimplexBasis* warm_basis = nullptr;
  /// Generate human-readable variable names ("y[j3,e17]", "a3.seg0") for the
  /// polytope and PWL variables. Names are diagnostics-only; building the
  /// strings dominates polytope assembly at scale, so they are off by
  /// default.
  bool generate_names = false;
};

/// The centralized optimum of the transformed problem — the paper's
/// "optimal total throughput obtained using an optimization solver"
/// horizontal line in Figure 4.
struct ReferenceSolution {
  lp::LpStatus status = lp::LpStatus::kIterationLimit;
  /// Optimal overall utility sum_j U_j(a_j) (exact for linear utilities,
  /// PWL-approximate otherwise).
  double optimal_utility = 0.0;
  /// Optimal admitted rate a_j per commodity.
  std::vector<double> admitted;
  /// Resource usage f_v per extended node at the optimum.
  std::vector<double> node_usage;
  /// Commodity flows: per commodity, (extended edge, flow rate y = t*phi)
  /// pairs with y > 0.
  std::vector<std::vector<std::pair<EdgeId, double>>> flows;
  /// Shadow price per extended node: marginal utility of one extra unit of
  /// that node's resource (the capacity row's LP dual; 0 for slack or
  /// unconstrained nodes). The economics behind "which server to upgrade".
  std::vector<double> node_shadow_price;
  /// Simplex pivot count.
  std::size_t iterations = 0;
};

/// The feasible flow polytope of the transformed problem: variables
/// y_{j,e} >= 0 for every usable (commodity, extended edge), flow balance
/// with shrinkage at every non-sink commodity node (eq. 7), and capacity
/// f_v <= C_v at every finite-capacity node (eq. 6). The admitted rate a_j
/// is the variable of the dummy input link.
struct FlowPolytope {
  lp::LpProblem problem;  // objective all-zero; constraints = the polytope
  /// flow_var[j] maps a usable extended edge to its LP variable.
  std::vector<std::vector<std::pair<EdgeId, lp::VarId>>> flow_var;
  /// Variable of commodity j's dummy input link (the admitted rate).
  std::vector<lp::VarId> admitted_var;
  /// Constraint-row index of each node's capacity constraint, or
  /// `kNoCapacityRow` for nodes without one (infinite capacity / unused).
  std::vector<std::size_t> capacity_row;

  static constexpr std::size_t kNoCapacityRow = static_cast<std::size_t>(-1);
};

/// Assembles the polytope (shared by the simplex reference and the
/// Frank-Wolfe cross-check) from the graph's CommodityIndex. Variable names
/// are diagnostics-only and cost real time/memory at scale, so they are
/// generated only on request.
FlowPolytope build_flow_polytope(const ExtendedGraph& xg,
                                 bool generate_names = false);

/// Builds and solves the exact multicommodity LP on the extended graph:
///
///   max  sum_j U_j(a_j)  over the FlowPolytope,
///
/// with non-linear concave utilities encoded by piecewise-linear segments.
/// This solves the *original* constrained problem (no penalty barrier), so
/// its value upper-bounds what the penalty-regularized distributed
/// algorithms converge to; the gap is controlled by epsilon (bench E3).
ReferenceSolution solve_reference(const ExtendedGraph& xg,
                                  const ReferenceOptions& options = {});

/// Independent cross-check for concave utilities: maximizes sum U_j(a_j)
/// over the same polytope with the Frank-Wolfe method (exact line search,
/// simplex as the linear oracle) — no PWL discretization involved. Returns
/// the achieved utility, admitted rates, and the final duality gap, which
/// certifies the distance to the true optimum.
struct FrankWolfeReference {
  lp::LpStatus status = lp::LpStatus::kIterationLimit;
  double utility = 0.0;
  std::vector<double> admitted;
  double duality_gap = 0.0;
  std::size_t iterations = 0;
};
FrankWolfeReference solve_reference_frank_wolfe(const ExtendedGraph& xg,
                                                std::size_t max_iterations = 400);

}  // namespace maxutil::xform
