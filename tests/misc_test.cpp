// Remaining edge-path coverage: accessor error paths, growth-order
// invariants in the model, extended-graph kind guards, and runtime
// payload accounting.

#include <gtest/gtest.h>

#include <memory>

#include "gen/figure1.hpp"
#include "graph/digraph.hpp"
#include "sim/distributed_gradient.hpp"
#include "sim/runtime.hpp"
#include "stream/model.hpp"
#include "util/check.hpp"
#include "xform/extended_graph.hpp"

namespace {

using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::util::CheckError;
using maxutil::xform::ExtendedGraph;

TEST(Misc, DigraphDotWithoutLabels) {
  maxutil::graph::Digraph g(2);
  g.add_edge(0, 1);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_EQ(dot.find("label"), std::string::npos);
}

TEST(Misc, ModelGrowsPotentialVectorsForLateNodes) {
  // Nodes added *after* a commodity exists must still carry the default
  // potential 1 for it.
  StreamNetwork net;
  const NodeId a = net.add_server("a", 5.0);
  const NodeId t = net.add_sink("t");
  const auto at = net.add_link(a, t, 5.0);
  const CommodityId j = net.add_commodity("c", a, t, 1.0, Utility::linear());
  net.enable_link(j, at, 1.0);
  const NodeId late = net.add_server("late", 5.0);
  EXPECT_DOUBLE_EQ(net.potential(j, late), 1.0);
  // And late links default to unusable for existing commodities.
  const auto al = net.add_link(a, late, 5.0);
  EXPECT_FALSE(net.uses_link(j, al));
}

TEST(Misc, ExtendedGraphKindGuards) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const ExtendedGraph xg(net);
  // physical_link only exists for processing/transfer edges.
  EXPECT_THROW(xg.physical_link(xg.dummy_input_link(0)), CheckError);
  // dummy_commodity only exists for dummy edges.
  EXPECT_THROW(xg.dummy_commodity(xg.processing_edge(0)), CheckError);
  // physical_node is only valid for server/sink nodes.
  EXPECT_THROW(xg.physical_node(xg.bandwidth_node(0)), CheckError);
  EXPECT_THROW(xg.physical_link_of_bandwidth_node(0), CheckError);
  // beta/cost_rate reject unusable (commodity, edge) pairs.
  EXPECT_THROW(xg.beta(ids.s2, xg.dummy_input_link(ids.s1)), CheckError);
  EXPECT_THROW(xg.cost_rate(ids.s2, xg.dummy_input_link(ids.s1)), CheckError);
}

TEST(Misc, ExtendedGraphEdgeHelpers) {
  maxutil::gen::Figure1Ids ids;
  const StreamNetwork net = maxutil::gen::figure1_example({}, &ids);
  const ExtendedGraph xg(net);
  for (std::size_t l = 0; l < net.link_count(); ++l) {
    const auto pe = xg.processing_edge(l);
    const auto te = xg.transfer_edge(l);
    EXPECT_EQ(xg.link_kind(pe), maxutil::xform::LinkKind::kProcessing);
    EXPECT_EQ(xg.link_kind(te), maxutil::xform::LinkKind::kTransfer);
    EXPECT_EQ(xg.physical_link(pe), l);
    EXPECT_EQ(xg.physical_link(te), l);
    EXPECT_EQ(xg.graph().head(pe), xg.bandwidth_node(l));
    EXPECT_EQ(xg.graph().tail(te), xg.bandwidth_node(l));
  }
}

TEST(Misc, MarginalMessagesCarryCurvaturePayload) {
  // The marginal wave's payload is [edge, dr, tag, K]: 4 doubles per
  // message; forecast messages carry 2. The payload counter must reflect
  // the mix (strictly more than 2 doubles per message on average).
  const StreamNetwork net = maxutil::gen::figure1_example();
  const ExtendedGraph xg(net);
  maxutil::sim::DistributedGradientSystem system(xg);
  system.iterate();
  const auto& rt = system.runtime();
  EXPECT_GT(rt.delivered_payload_doubles(), 2 * rt.delivered_messages());
  EXPECT_LT(rt.delivered_payload_doubles(), 4 * rt.delivered_messages());
}

TEST(Misc, UtilityAccessorsForScenarioTokens) {
  EXPECT_DOUBLE_EQ(Utility::linear(3.0).alpha(), 0.0);
  EXPECT_DOUBLE_EQ(Utility::logarithmic().alpha(), 1.0);
  EXPECT_DOUBLE_EQ(Utility::square_root().alpha(), 0.5);
  EXPECT_EQ(Utility::linear().family(), Utility::Family::kLinear);
}

TEST(Misc, SecondDerivativesAreConcave) {
  for (const Utility u : {Utility::linear(), Utility::logarithmic(2.0),
                          Utility::square_root(), Utility::alpha_fair(2.0)}) {
    for (const double a : {0.1, 1.0, 10.0}) {
      EXPECT_LE(u.second_derivative(a), 1e-12) << u.describe();
    }
  }
  // Finite-difference spot check for the log family.
  const Utility u = Utility::logarithmic(2.0);
  const double h = 1e-5, a = 3.0;
  const double fd =
      (u.derivative(a + h) - u.derivative(a - h)) / (2.0 * h);
  EXPECT_NEAR(u.second_derivative(a), fd, 1e-6);
}

}  // namespace
