#include "core/optimality.hpp"

#include <algorithm>
#include <limits>

namespace maxutil::core {

OptimalityReport check_optimality(const ExtendedGraph& xg,
                                  const RoutingState& routing,
                                  const FlowState& flows,
                                  const MarginalCosts& marginals) {
  const auto& g = xg.graph();
  OptimalityReport report;
  for (CommodityId j = 0; j < xg.commodity_count(); ++j) {
    const auto& dr = marginals.d_cost_d_input[j];
    for (const NodeId v : xg.commodity_nodes(j)) {
      if (v == xg.sink(j)) continue;
      double min_via = std::numeric_limits<double>::infinity();
      for (const EdgeId e : g.out_edges(v)) {
        if (!xg.usable(j, e)) continue;
        const double via = marginal_via_edge(xg, flows, marginals, j, e);
        min_via = std::min(min_via, via);
        // Sufficient condition (13): via >= dA/dr_v on every usable edge.
        report.sufficient_violation =
            std::max(report.sufficient_violation, dr[v] - via);
      }
      for (const EdgeId e : g.out_edges(v)) {
        if (!xg.usable(j, e)) continue;
        const double phi = routing.phi(j, e);
        if (phi <= 0.0) continue;
        const double via = marginal_via_edge(xg, flows, marginals, j, e);
        // Necessary condition (12): loaded links sit at the minimum,
        // weighted by phi so vanishing fractions do not dominate.
        report.stationarity_gap =
            std::max(report.stationarity_gap, phi * (via - min_via));
      }
    }
  }
  return report;
}

}  // namespace maxutil::core
