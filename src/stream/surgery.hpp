#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "stream/model.hpp"

namespace maxutil::stream {

/// Sentinel in SurgeryResult maps: the entity did not survive the surgery.
inline constexpr std::size_t kRemovedEntity = static_cast<std::size_t>(-1);

/// Old-id -> new-id maps of a surgery (kRemovedEntity where the entity did
/// not survive). Shared between SurgeryResult and the warm-start remapping
/// layer (core::remap_routing), which only needs the maps, never the
/// rebuilt network itself.
struct EntityMaps {
  /// Old node id -> new node id (kRemovedEntity for removed servers).
  std::vector<NodeId> node_map;
  /// Old link id -> new link id (kRemovedEntity when an endpoint died or
  /// the link itself was removed).
  std::vector<LinkId> link_map;
  /// Old commodity id -> new commodity id (kRemovedEntity when the surgery
  /// disconnected its source from its sink, or removed it outright).
  std::vector<CommodityId> commodity_map;
};

/// Result of rebuilding a network under a topology edit.
struct SurgeryResult : EntityMaps {
  StreamNetwork network;
};

/// Declarative topology edit applied by `rebuild`. All ids refer to the
/// input network. Factors must be positive and finite; a factor of 1 is a
/// no-op. Removing entities and scaling capacities compose freely; the
/// result is always pruned so that it passes stream::validate.
struct RebuildSpec {
  std::vector<NodeId> removed_nodes;
  std::vector<LinkId> removed_links;
  std::vector<CommodityId> removed_commodities;
  /// (node, factor): server computing power scaled to factor * C_u.
  std::vector<std::pair<NodeId, double>> capacity_factors;
  /// (link, factor): bandwidth scaled to factor * B_ik.
  std::vector<std::pair<LinkId, double>> bandwidth_factors;
  /// (commodity, factor): offered load scaled to factor * lambda_j.
  std::vector<std::pair<CommodityId, double>> lambda_factors;
};

/// Rebuilds `net` under `spec`: removed servers take their incident links
/// with them, removed links disappear, surviving capacities/bandwidths/
/// lambdas are scaled, and each surviving commodity's usable subgraph is
/// pruned to the links still on some source->sink path (so the result
/// always passes validate()). Commodities whose source died, whose sink
/// became unreachable, or which were removed outright map to
/// kRemovedEntity. An empty spec reproduces the input network exactly with
/// identity maps — the restore-from-snapshot path of the churn controller
/// (src/ctrl), which keeps a pristine baseline and re-applies its current
/// edit set after every event, making crashes reversible.
SurgeryResult rebuild(const StreamNetwork& net, const RebuildSpec& spec);

/// Rebuilds `net` as if `failed` crashed fail-stop: the server and its
/// incident links disappear; commodities whose sink became unreachable are
/// dropped.
///
/// This is the recovery path of the paper's Section-3 remark that spare
/// penalty-induced headroom helps "faster recovery in the case of node or
/// link failures": after surgery one simply re-runs the optimizer on the
/// surviving network (see examples/failure_recovery.cpp for the one-shot
/// walkthrough and src/ctrl for the online controller form).
SurgeryResult without_server(const StreamNetwork& net, NodeId failed);

/// Rebuilds `net` as if physical link `failed` was severed (both endpoints
/// stay up). Commodities left without a source->sink path are dropped.
SurgeryResult without_link(const StreamNetwork& net, LinkId failed);

/// Rebuilds `net` with server `node`'s computing power scaled to
/// factor * C_u (factor > 0; > 1 models an upgrade). Structure is
/// unchanged, so all maps are identities.
SurgeryResult with_capacity_scaled(const StreamNetwork& net, NodeId node,
                                   double factor);

/// Rebuilds `net` with link `link`'s bandwidth scaled to factor * B_ik.
/// Structure is unchanged, so all maps are identities.
SurgeryResult with_bandwidth_scaled(const StreamNetwork& net, LinkId link,
                                    double factor);

/// Composes two surgeries of the *same* baseline network into the maps from
/// the first result's network onto the second's: given `to_old` (baseline ->
/// network A) and `to_new` (baseline -> network B), returns A -> B maps. An
/// entity of A maps to kRemovedEntity when its baseline pre-image did not
/// survive into B. This is how the churn controller threads a routing from
/// the pre-event network onto the post-event one when both were rebuilt from
/// the shared baseline.
EntityMaps compose_maps(const EntityMaps& to_old, const EntityMaps& to_new);

}  // namespace maxutil::stream
