file(REMOVE_RECURSE
  "libmaxutil_stream.a"
)
