#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace maxutil::util {

/// Column-oriented recorder for per-iteration experiment series
/// (e.g. "iteration, utility, cost, messages") with CSV export.
///
/// All columns share one row index; `append` adds a full row. Used by the
/// optimizer drivers to log convergence traces that the bench harness turns
/// into the paper's figures.
class TimeSeries {
 public:
  /// Defines the column layout. Must be non-empty and names unique.
  explicit TimeSeries(std::vector<std::string> column_names);

  /// Appends one row; `row.size()` must equal the number of columns.
  void append(const std::vector<double>& row);

  /// Number of recorded rows.
  std::size_t rows() const;

  /// Number of columns.
  std::size_t cols() const { return names_.size(); }

  /// Column names, in layout order.
  const std::vector<std::string>& names() const { return names_; }

  /// Entire column by name; throws if unknown.
  const std::vector<double>& column(const std::string& name) const;

  /// Single cell access.
  double at(std::size_t row, std::size_t col) const;

  /// Writes an RFC-4180 style CSV (header + rows) to `out`.
  void write_csv(std::ostream& out) const;

  /// Downsamples rows to at most `max_rows`, keeping first and last rows and
  /// approximately log-spaced interior rows — matches the paper's
  /// log-scale x-axis in Figure 4. Returns a new series.
  TimeSeries log_downsample(std::size_t max_rows) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

}  // namespace maxutil::util
