file(REMOVE_RECURSE
  "libmaxutil_util.a"
)
