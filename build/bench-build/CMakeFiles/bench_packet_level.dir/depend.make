# Empty dependencies file for bench_packet_level.
# This may be replaced when dependencies are built.
