
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/figure1.cpp" "src/gen/CMakeFiles/maxutil_gen.dir/figure1.cpp.o" "gcc" "src/gen/CMakeFiles/maxutil_gen.dir/figure1.cpp.o.d"
  "/root/repo/src/gen/random_instance.cpp" "src/gen/CMakeFiles/maxutil_gen.dir/random_instance.cpp.o" "gcc" "src/gen/CMakeFiles/maxutil_gen.dir/random_instance.cpp.o.d"
  "/root/repo/src/gen/trace.cpp" "src/gen/CMakeFiles/maxutil_gen.dir/trace.cpp.o" "gcc" "src/gen/CMakeFiles/maxutil_gen.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/maxutil_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maxutil_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/maxutil_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
