
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xform/extended_graph.cpp" "src/xform/CMakeFiles/maxutil_xform.dir/extended_graph.cpp.o" "gcc" "src/xform/CMakeFiles/maxutil_xform.dir/extended_graph.cpp.o.d"
  "/root/repo/src/xform/lp_reference.cpp" "src/xform/CMakeFiles/maxutil_xform.dir/lp_reference.cpp.o" "gcc" "src/xform/CMakeFiles/maxutil_xform.dir/lp_reference.cpp.o.d"
  "/root/repo/src/xform/penalty.cpp" "src/xform/CMakeFiles/maxutil_xform.dir/penalty.cpp.o" "gcc" "src/xform/CMakeFiles/maxutil_xform.dir/penalty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/maxutil_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/maxutil_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/maxutil_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/maxutil_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maxutil_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
