#include "core/marginals.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace maxutil::core {

using maxutil::util::ensure;
using maxutil::xform::CommodityIndex;

double marginal_via_slot(const ExtendedGraph& xg, const FlowState& flows,
                         const MarginalCosts& marginals, std::size_t slot) {
  const CommodityIndex& idx = *marginals.index;
  const EdgeId e = idx.edge(slot);
  const NodeId tail = xg.graph().tail(e);
  const double dAi_dfe = xg.edge_cost_derivative(e, flows.f_edge[e]) +
                         xg.node_penalty_derivative(tail, flows.f_node[tail]);
  return dAi_dfe * idx.cost_rate(slot) +
         idx.beta(slot) * marginals.d_cost_d_input[idx.head_local(slot)];
}

double curvature_via_slot(const ExtendedGraph& xg, const FlowState& flows,
                          const MarginalCosts& marginals, std::size_t slot) {
  const CommodityIndex& idx = *marginals.index;
  const EdgeId e = idx.edge(slot);
  const NodeId tail = xg.graph().tail(e);
  const double c = idx.cost_rate(slot);
  const double beta = idx.beta(slot);
  const double second =
      xg.edge_cost_second_derivative(e, flows.f_edge[e]) +
      xg.node_penalty_second_derivative(tail, flows.f_node[tail]);
  return c * c * second + beta * beta * marginals.curvature[idx.head_local(slot)];
}

double marginal_via_edge(const ExtendedGraph& xg, const FlowState& flows,
                         const MarginalCosts& marginals, CommodityId j,
                         EdgeId e) {
  const std::size_t slot = marginals.index->slot_of(j, e);
  ensure(slot != CommodityIndex::kNoSlot,
         "marginal_via_edge: edge not usable by commodity");
  return marginal_via_slot(xg, flows, marginals, slot);
}

double curvature_via_edge(const ExtendedGraph& xg, const FlowState& flows,
                          const MarginalCosts& marginals, CommodityId j,
                          EdgeId e) {
  const std::size_t slot = marginals.index->slot_of(j, e);
  ensure(slot != CommodityIndex::kNoSlot,
         "curvature_via_edge: edge not usable by commodity");
  return curvature_via_slot(xg, flows, marginals, slot);
}

MarginalCosts compute_marginals(const ExtendedGraph& xg,
                                const RoutingState& routing,
                                const FlowState& flows) {
  const CommodityIndex& idx = xg.index();
  ensure(routing.slot_count() == idx.slot_count(),
         "compute_marginals: routing shape does not match graph index");
  MarginalCosts marginals;
  marginals.index = xg.index_ptr();
  marginals.d_cost_d_input.assign(idx.local_node_count(), 0.0);
  marginals.curvature.assign(idx.local_node_count(), 0.0);
  for (CommodityId j = 0; j < idx.commodity_count(); ++j) {
    // Reverse topological order: by the time node v is processed, every
    // downstream dA/dr is final — the sweep models the paper's wait-for-all-
    // downstream message protocol. dA/dr at the sink is 0 by convention.
    for (std::size_t local = idx.node_end(j); local-- > idx.node_begin(j);) {
      if (local == idx.sink_local(j)) continue;
      double total = 0.0;
      double total_curvature = 0.0;
      for (std::size_t s = idx.out_begin(local); s < idx.out_end(local); ++s) {
        const double phi = routing.phi_slot(s);
        if (phi == 0.0) continue;
        total += phi * marginal_via_slot(xg, flows, marginals, s);
        total_curvature +=
            phi * phi * curvature_via_slot(xg, flows, marginals, s);
      }
      marginals.d_cost_d_input[local] = total;
      marginals.curvature[local] = total_curvature;
    }
  }
  return marginals;
}

}  // namespace maxutil::core
