#pragma once

#include <memory>
#include <vector>

#include "core/routing.hpp"
#include "xform/extended_graph.hpp"

namespace maxutil::core {

/// All flow quantities induced by a routing decision (Section 4, eqs. 3-5):
/// node traffic t, per-(commodity, edge) flow y = t * phi, per-edge resource
/// usage f_ik, per-node usage f_i, and the decomposed cost A = Y + eps*D
/// (eq. 8 summed over nodes).
///
/// Per-commodity quantities are sparse SoA over the graph's CommodityIndex:
/// `t` is indexed by flat local node, `y` by slot. The aggregate usages
/// `f_edge`/`f_node` stay globally indexed (every consumer — capacity
/// guards, penalties, allocation — wants them dense). Use `t_at`/`y_at` for
/// (commodity, global id) lookups.
struct FlowState {
  std::shared_ptr<const xform::CommodityIndex> index;
  std::vector<double> t;       // [flat local node]: traffic rate
  std::vector<double> y;       // [slot]: flow (tail units)
  std::vector<double> f_edge;  // [global edge]: resource usage rate f_ik
  std::vector<double> f_node;  // [global node]: total usage f_i
  double utility_loss = 0.0;   // Y = sum of dummy difference costs
  double penalty = 0.0;        // eps * D summed over nodes

  /// Total transformed cost A = Y + eps*D that the algorithm minimizes.
  double cost() const { return utility_loss + penalty; }

  /// Traffic rate t_v(j) by global node id; 0 when v is not a commodity-j
  /// node. O(log |nodes(j)|).
  double t_at(CommodityId j, NodeId v) const {
    const std::size_t local = index->local_of(j, v);
    return local == xform::CommodityIndex::kNoSlot ? 0.0 : t[local];
  }

  /// Flow y_e(j) by global edge id; 0 when e is not usable by j. O(1).
  double y_at(CommodityId j, EdgeId e) const {
    const std::size_t slot = index->slot_of(j, e);
    return slot == xform::CommodityIndex::kNoSlot ? 0.0 : y[slot];
  }
};

/// Solves the flow balance equations (3) by propagating in topological order
/// of each commodity's usable subgraph (a DAG, so the unique fixed point is
/// reached in one pass), then accumulates f (eqs. 4-5) and the cost terms.
FlowState compute_flows(const ExtendedGraph& xg, const RoutingState& routing);

/// Admitted rate a_j = flow on the dummy input link.
double admitted_rate(const ExtendedGraph& xg, const FlowState& flows,
                     CommodityId j);

/// Overall system utility sum_j U_j(a_j) at this flow.
double total_utility(const ExtendedGraph& xg, const FlowState& flows);

/// Largest violation of the eq.-7 balance identity
///   sum_out y - sum_in beta*y = r  at every non-sink commodity node,
/// for verifying the propagation (tests/property checks).
double max_balance_residual(const ExtendedGraph& xg, const FlowState& flows);

}  // namespace maxutil::core
