// Focused tests for the blocked-set machinery of Section 5 (eq. 18 and the
// tag protocol): an engineered configuration where one branch is
// persistently expensive produces a tag, and the tag actually prevents
// phi from being raised from zero on edges into the tagged region.

#include <gtest/gtest.h>

#include <cmath>

#include "core/flow.hpp"
#include "core/gamma.hpp"
#include "core/marginals.hpp"
#include "core/routing.hpp"
#include "stream/model.hpp"
#include "xform/extended_graph.hpp"

namespace {

using maxutil::core::FlowState;
using maxutil::core::GammaOptions;
using maxutil::core::MarginalCosts;
using maxutil::core::RoutingState;
using maxutil::graph::EdgeId;
using maxutil::stream::CommodityId;
using maxutil::stream::NodeId;
using maxutil::stream::StreamNetwork;
using maxutil::stream::Utility;
using maxutil::xform::ExtendedGraph;

/// a -> {b, c} -> t diamond. The b branch is made expensive by a tight
/// capacity on b, so dA/dr_b >> dA/dr_c at moderate load.
struct Diamond {
  StreamNetwork net;
  ExtendedGraph* xg = nullptr;
  NodeId a, b, c, t;
  EdgeId a_to_b, a_to_c;  // processing edges out of a in the extended graph

  Diamond() {
    a = net.add_server("a", 100.0);
    b = net.add_server("b", 6.0);  // tight: barrier price blows up
    c = net.add_server("c", 100.0);
    t = net.add_sink("t");
    const auto ab = net.add_link(a, b, 100.0);
    const auto ac = net.add_link(a, c, 100.0);
    const auto bt = net.add_link(b, t, 100.0);
    const auto ct = net.add_link(c, t, 100.0);
    const CommodityId j = net.add_commodity("d", a, t, 10.0, Utility::linear());
    for (const auto l : {ab, ac, bt, ct}) net.enable_link(j, l, 1.0);
  }
};

TEST(Blocking, ImproperBranchGetsTagged) {
  Diamond d;
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.2;
  const ExtendedGraph xg(d.net, penalty);

  // Load the expensive branch heavily: admit everything, 50/50 split at a.
  RoutingState routing = RoutingState::initial(xg);
  routing.set_phi(0, xg.dummy_difference_link(0), 0.0);
  routing.set_phi(0, xg.dummy_input_link(0), 1.0);
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  // b runs at 5/6 capacity: dA/dr_b is large, dA/dr_a is the 50/50 average,
  // so the cheap-side inequality dr_a <= beta * dr_b holds and the a->b
  // fraction is too large to vanish this iteration: node a gets tagged.
  ASSERT_GT(marginals.dr_at(0, d.b), marginals.dr_at(0, d.c));
  GammaOptions options;
  options.eta = 0.04;
  const auto tagged =
      maxutil::core::compute_blocked_tags(xg, routing, flows, marginals, 0,
                                          options);
  EXPECT_TRUE(tagged[d.a]);
  // The sink is never tagged; the pure cheap branch is not tagged either.
  EXPECT_FALSE(tagged[d.t]);
  EXPECT_FALSE(tagged[d.c]);
}

TEST(Blocking, TagPropagatesUpstream) {
  Diamond d;
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.2;
  const ExtendedGraph xg(d.net, penalty);
  RoutingState routing = RoutingState::initial(xg);
  routing.set_phi(0, xg.dummy_difference_link(0), 0.0);
  routing.set_phi(0, xg.dummy_input_link(0), 1.0);
  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  GammaOptions options;
  options.eta = 0.04;
  const auto tagged =
      maxutil::core::compute_blocked_tags(xg, routing, flows, marginals, 0,
                                          options);
  ASSERT_TRUE(tagged[d.a]);
  // The dummy source routes through a with phi = 1 (loaded link into a
  // tagged node): the tag must propagate to the dummy source itself.
  EXPECT_TRUE(tagged[xg.dummy_source(0)]);
}

TEST(Blocking, BlockedEdgeStaysAtZeroInGamma) {
  // Same diamond, but the a -> b edge starts at phi = 0 while b is made to
  // look *cheap from a's marginal* yet sits inside a tagged region reached
  // via another path. Engineer: give b a second feeder so b is loaded (and
  // tagged via its own improper out-edge is impossible — b has one out-edge)
  // ... instead verify the contract directly: an edge with phi = 0 whose
  // head is tagged is skipped by apply_gamma even if it is the cheapest.
  Diamond d;
  maxutil::xform::PenaltyConfig penalty;
  penalty.epsilon = 0.2;
  const ExtendedGraph xg(d.net, penalty);
  RoutingState routing = RoutingState::initial(xg);
  routing.set_phi(0, xg.dummy_difference_link(0), 0.0);
  routing.set_phi(0, xg.dummy_input_link(0), 1.0);
  // Move all of a's traffic to the expensive branch b, zeroing a -> c.
  const auto& g = xg.graph();
  const EdgeId to_b = g.find_edge(d.a, xg.bandwidth_node(0));
  const EdgeId to_c = g.find_edge(d.a, xg.bandwidth_node(1));
  routing.set_phi(0, to_b, 1.0);
  routing.set_phi(0, to_c, 0.0);

  const FlowState flows = maxutil::core::compute_flows(xg, routing);
  const MarginalCosts marginals =
      maxutil::core::compute_marginals(xg, routing, flows);
  GammaOptions options;
  options.eta = 0.04;

  // With 10 units through b (capacity 6) the barrier is infinite-ish; the
  // cost is infinite, so instead admit less to stay feasible.
  // (Feasibility guard: this configuration pushes f_b = 10 > 6; back off.)
  RoutingState feasible = RoutingState::initial(xg);
  feasible.set_phi(0, xg.dummy_difference_link(0), 0.5);
  feasible.set_phi(0, xg.dummy_input_link(0), 0.5);
  feasible.set_phi(0, to_b, 1.0);
  feasible.set_phi(0, to_c, 0.0);
  const FlowState f2 = maxutil::core::compute_flows(xg, feasible);
  ASSERT_TRUE(std::isfinite(f2.cost()));
  const MarginalCosts m2 = maxutil::core::compute_marginals(xg, feasible, f2);
  const auto tagged =
      maxutil::core::compute_blocked_tags(xg, feasible, f2, m2, 0, options);

  RoutingState updated = feasible;
  maxutil::core::apply_gamma(xg, f2, m2, options, updated);
  EXPECT_TRUE(updated.is_valid(xg, 1e-9));
  if (tagged[xg.bandwidth_node(1)]) {
    // If the cheap branch's bandwidth node were tagged, a -> c must stay 0.
    EXPECT_DOUBLE_EQ(updated.phi(0, to_c), 0.0);
  } else {
    // Normal case: mass shifts away from the overloaded b branch.
    EXPECT_LT(updated.phi(0, to_b), 1.0);
    EXPECT_GT(updated.phi(0, to_c), 0.0);
  }
}

}  // namespace
