file(REMOVE_RECURSE
  "CMakeFiles/maxutil_cli.dir/maxutil_cli.cpp.o"
  "CMakeFiles/maxutil_cli.dir/maxutil_cli.cpp.o.d"
  "maxutil_cli"
  "maxutil_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxutil_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
