# Empty compiler generated dependencies file for maxutil_cli.
# This may be replaced when dependencies are built.
