// Registry adapter for the centralized LP reference
// (xform::solve_reference): the transformed problem solved exactly by the
// built-in two-phase simplex, with concave utilities encoded piecewise-
// linearly. Emits a routing recovered from the optimal vertex
// (core::routing_from_flows) so pipelines can warm-start iterative stages
// from the LP optimum.

#include <algorithm>
#include <string>
#include <utility>

#include "core/warm_start.hpp"
#include "solver/adapters.hpp"
#include "solver/registry.hpp"
#include "xform/lp_reference.hpp"

namespace maxutil::solver {

namespace {

Status map_status(lp::LpStatus status) {
  switch (status) {
    case lp::LpStatus::kOptimal: return Status::kConverged;
    case lp::LpStatus::kInfeasible: return Status::kInfeasible;
    case lp::LpStatus::kUnbounded: return Status::kUnbounded;
    case lp::LpStatus::kIterationLimit: return Status::kFailed;
  }
  return Status::kFailed;
}

SolveResult solve_lp(const Problem& problem, const SolveOptions& options) {
  xform::ReferenceOptions ro;
  ro.pwl_segments = static_cast<std::size_t>(
      options.extra_number("pwl_segments", static_cast<double>(ro.pwl_segments)));

  const auto reference = xform::solve_reference(problem.extended(), ro);
  SolveResult result;
  result.status = map_status(reference.status);
  result.iterations = reference.iterations;
  if (reference.status != lp::LpStatus::kOptimal) {
    result.message =
        std::string("LP solve failed: ") + lp::to_string(reference.status);
    return result;
  }
  result.admitted = reference.admitted;
  result.utility = reference.optimal_utility;
  result.node_usage = reference.node_usage;
  // The optimal vertex saturates capacities; routing_from_flows repairs it
  // to a strictly guard-feasible warm start (finite barrier cost).
  result.routing = core::routing_from_flows(
      problem.extended(), reference.flows,
      options.extra_number("capacity_guard", 0.999));
  double max_price = 0.0;
  for (const double p : reference.node_shadow_price) {
    max_price = std::max(max_price, p);
  }
  result.metrics = {{"max_shadow_price", max_price}};
  return result;
}

}  // namespace

void register_lp_solver(SolverRegistry& registry) {
  SolverInfo info;
  info.name = "lp";
  info.description =
      "centralized LP reference: two-phase simplex on the transformed "
      "problem (PWL-encoded concave utilities)";
  info.emits_routing = true;
  info.solve = solve_lp;
  registry.add(std::move(info));
}

}  // namespace maxutil::solver
